"""Encrypted logistic-regression inference (a toy HELR, workload #2).

Evaluates w.x + b followed by a Chebyshev sigmoid on encrypted feature
vectors, with the inner product computed by the rotate-and-sum idiom —
the same HROT/PMULT/HADD mixture that makes HELR one of the paper's six
evaluation workloads.

Run:  python examples/encrypted_logistic_regression.py
"""

import numpy as np

from repro.ckks import make_context
from repro.ckks.polyeval import ChebyshevEvaluator, chebyshev_coefficients
from repro.params import toy_params


def sigmoid(x):
    return 1.0 / (1.0 + np.exp(-x))


def main():
    params = toy_params(degree=2 ** 9, level_count=10, aux_count=3)
    features = 16                     # one sample packed per 16 slots
    samples = params.slot_count // features
    rotations = [1 << k for k in range(int(np.log2(features)))]
    context = make_context(params, rotations=rotations)
    chebyshev = ChebyshevEvaluator(context)

    rng = np.random.default_rng(42)
    weights = rng.normal(scale=0.4, size=features)
    bias = 0.1
    data = rng.normal(scale=0.5, size=(samples, features))

    # Pack all samples into one ciphertext, feature-major.
    packed = data.reshape(-1)
    ct = context.encrypt_message(packed)

    # w . x: multiply by the tiled weight vector, then rotate-and-sum
    # over the feature stride (log2(features) rotations).
    tiled_weights = np.tile(weights, samples)
    pt_weights = context.encoder.encode(tiled_weights)
    acc = context.mul_plain(ct, pt_weights)
    for shift in rotations:
        acc = context.add(acc, context.rotate(acc, shift))
    logits = context.add_scalar(acc, bias)

    # Mask away the partial sums in the non-leading slots: their large
    # values would exceed the sigmoid's approximation interval and —
    # because every slot shares the same polynomial coefficients —
    # amplify the rescaling noise for all slots.
    mask = np.zeros(params.slot_count)
    mask[::features] = 1.0
    logits = context.mul_plain(logits, context.encoder.encode(mask))

    # Sigmoid via a degree-9 Chebyshev approximation on [-6, 6].
    coeffs = chebyshev_coefficients(sigmoid, 9, (-6.0, 6.0))
    probabilities = chebyshev.evaluate(logits, coeffs, (-6.0, 6.0))

    decrypted = context.decrypt_message(probabilities).real
    predicted = decrypted[::features][:samples]
    expected = sigmoid(data @ weights + bias)

    err = np.abs(predicted - expected).max()
    agreement = np.mean((predicted > 0.5) == (expected > 0.5))
    print(f"samples: {samples}, features: {features}")
    print(f"max probability error vs cleartext: {err:.4f}")
    print(f"classification agreement:           {agreement * 100:.1f}%")
    print("first five encrypted vs cleartext probabilities:")
    for p_enc, p_clear in list(zip(predicted, expected))[:5]:
        print(f"  {p_enc:.4f}  vs  {p_clear:.4f}")
    assert err < 0.05
    assert agreement > 0.95


if __name__ == "__main__":
    main()
