"""Design-space exploration with the Anaheim performance models.

Sweeps the PIM data-buffer size and compares the three Table III PIM
configurations on full bootstrapping, then prints the hybrid execution
Gantt chart of a hoisted linear transform (the paper's Fig. 4a view).

Run:  python examples/design_space_exploration.py
"""

from repro import (A100_80GB, A100_CUSTOM_HBM, A100_NEAR_BANK,
                   AnaheimFramework, RTX4090_NEAR_BANK, RTX_4090,
                   paper_params)
from repro.analysis.reporting import format_table
from repro.core.gantt import render_gantt
from repro.pim.configs import with_buffer
from repro.workloads.bootstrap_trace import bootstrap_blocks
from repro.workloads.linear_transform_trace import hoisted_block

PARAMS = paper_params()


def buffer_sweep():
    print("=== Data-buffer sweep: bootstrapping on A100 near-bank PIM ===")
    blocks, _ = bootstrap_blocks(PARAMS)
    rows = []
    for b in (8, 16, 32, 64):
        framework = AnaheimFramework(A100_80GB, with_buffer(A100_NEAR_BANK, b))
        report = framework.run(blocks, PARAMS.degree, label=f"B={b}").report
        rows.append([b, f"{report.total_time * 1e3:.2f}ms",
                     f"{report.pim_time * 1e3:.2f}ms",
                     f"{report.energy:.2f}J"])
    print(format_table(["B", "boot time", "PIM time", "energy"], rows))


def config_comparison():
    print()
    print("=== PIM variants on bootstrapping ===")
    blocks, _ = bootstrap_blocks(PARAMS)
    rows = []
    for label, gpu, pim in (
            ("A100 near-bank", A100_80GB, A100_NEAR_BANK),
            ("A100 custom-HBM", A100_80GB, A100_CUSTOM_HBM),
            ("RTX 4090 near-bank", RTX_4090, RTX4090_NEAR_BANK)):
        framework = AnaheimFramework(gpu, pim)
        runs = framework.compare(blocks, PARAMS.degree, label=label)
        gpu_r, pim_r = runs["gpu"].report, runs["pim"].report
        rows.append([label, f"{gpu_r.total_time * 1e3:.1f}ms",
                     f"{pim_r.total_time * 1e3:.1f}ms",
                     f"{gpu_r.total_time / pim_r.total_time:.2f}x",
                     f"{(gpu_r.energy * gpu_r.total_time) / (pim_r.energy * pim_r.total_time):.2f}x"])
    print(format_table(
        ["configuration", "GPU only", "Anaheim", "speedup", "EDP gain"],
        rows))


def other_memories():
    print()
    print("=== §VI-D: Anaheim on other DRAM technologies ===")
    from repro.core.trace import PimKernel
    from repro.pim.executor import PimExecutor
    from repro.pim.other_memories import (DDR5_NEAR_BANK, LPDDR5_NEAR_BANK,
                                          general_purpose_pim)
    kernel = PimKernel(name="PAccum", instruction="PAccum",
                       limbs=PARAMS.level_count + PARAMS.aux_count,
                       degree=PARAMS.degree, fan_in=4)
    rows = []
    for config in (A100_NEAR_BANK, DDR5_NEAR_BANK, LPDDR5_NEAR_BANK,
                   general_purpose_pim(A100_NEAR_BANK)):
        cost = PimExecutor(config).cost(kernel)
        rows.append([config.name, f"{config.bandwidth_multiplier:.1f}x",
                     f"{cost.time * 1e6:.1f}us",
                     f"{cost.energy * 1e3:.2f}mJ"])
    print(format_table(
        ["configuration", "BW incr.", "PAccum<4> time", "energy"], rows))


def gantt_view():
    print()
    print("=== Hybrid schedule of a hoisted linear transform (K=8) ===")
    blocks = hoisted_block(PARAMS.level_count, PARAMS.aux_count,
                           PARAMS.dnum, rotations=8)
    framework = AnaheimFramework(A100_80GB, A100_NEAR_BANK,
                                 keep_segments=True)
    report = framework.run(blocks, PARAMS.degree,
                           label="hoisted transform").report
    print(render_gantt(report, width=90))
    print("  [N=(I)NTT  B=BConv  e=element-wise  A=automorphism "
          "w=write-back  P=PIM kernel]")


if __name__ == "__main__":
    buffer_sweep()
    config_comparison()
    other_memories()
    gantt_view()
