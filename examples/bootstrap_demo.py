"""Functional CKKS bootstrapping at reduced ring degree.

Exhausts a ciphertext's levels with repeated multiplications, then
bootstraps it — ModRaise, CoeffToSlot, the homomorphic sine (EvalMod),
SlotToCoeff — and keeps computing on the refreshed ciphertext.

Run:  python examples/bootstrap_demo.py   (~10 s)
"""

import time

import numpy as np

from repro.ckks.bootstrap import Bootstrapper
from repro.ckks.evaluator import CkksEvaluator
from repro.ckks.keys import KeyGenerator
from repro.params import CkksParams


def main():
    params = CkksParams.create(degree=2 ** 7, level_count=15, aux_count=4,
                               prime_bits=28, base_prime_bits=31)
    print(f"parameters: N={params.degree}, L={params.level_count}, "
          f"alpha={params.aux_count}, D={params.dnum}")

    keygen = KeyGenerator(params, seed=11)
    keys = keygen.generate(sparse_secret=True)
    evaluator = CkksEvaluator(params, keys)
    print("building bootstrapper (generates rotation keys)...")
    start = time.time()
    bootstrapper = Bootstrapper(evaluator, keygen)
    print(f"  done in {time.time() - start:.1f}s; "
          f"bootstrap depth = {bootstrapper.depth()} levels")

    rng = np.random.default_rng(9)
    message = 0.3 * (rng.normal(size=params.slot_count)
                     + 1j * rng.normal(size=params.slot_count))
    ct = evaluator.encrypt_message(message)
    print(f"fresh ciphertext: level {ct.level_count}")

    # Burn the level budget: multiply by 1.0 repeatedly.
    while ct.level_count > 1:
        ct = evaluator.mul_scalar(ct, 1.0)
    print(f"exhausted ciphertext: level {ct.level_count} "
          "(no multiplications possible)")

    start = time.time()
    refreshed = bootstrapper.bootstrap(ct)
    elapsed = time.time() - start
    err = np.abs(evaluator.decrypt_message(refreshed) - message).max()
    print(f"bootstrapped in {elapsed:.1f}s: level {ct.level_count} -> "
          f"{refreshed.level_count}, max error {err:.2e}")

    squared = evaluator.multiply(refreshed, refreshed)
    err2 = np.abs(evaluator.decrypt_message(squared) - message ** 2).max()
    print(f"post-bootstrap multiplication works: max error {err2:.2e}")


if __name__ == "__main__":
    main()
