"""Run Alg. 1 (PAccum<4>) on the functional PIM model, bit for bit.

Stores real polynomial residues inside simulated DRAM banks under the
column-partitioning layout, executes the fused PAccum<4> instruction
through the Montgomery MMAC lanes, and compares both the numerical
result (vs numpy) and the ACT/PRE command counts of the CP layout vs
the naive contiguous layout (§VI-B/C).

Run:  python examples/pim_functional_demo.py
"""

import numpy as np

from repro.ckks import modmath
from repro.dram.bank import Bank
from repro.dram.configs import HBM2_A100
from repro.pim.layout import BankLayout
from repro.pim.unit import PimUnit, load_poly, store_poly

CHUNKS = 16          # Fig. 7: 16 chunks (128 elements) per bank per limb
ELEMENTS = CHUNKS * 8


def run(layout_kind):
    q = modmath.generate_primes(1, 64, bits=27)[0]
    bank = Bank(HBM2_A100, rows=64)
    layout = BankLayout(HBM2_A100, chunks_per_poly=CHUNKS, width=2)
    unit = PimUnit(bank, q, buffer_entries=16)
    allocate = (layout.allocate_naive if layout_kind == "naive"
                else layout.allocate)

    rng = np.random.default_rng(1)
    plaintexts = [rng.integers(0, q, ELEMENTS) for _ in range(4)]
    inputs = [rng.integers(0, q, ELEMENTS) for _ in range(8)]

    group_p = allocate(4)
    group_ab = allocate(8)
    group_out = allocate(2)
    for placement, value in zip(group_p.placements, plaintexts):
        store_poly(bank, placement, value)
    for placement, value in zip(group_ab.placements, inputs):
        store_poly(bank, placement, value)

    bank.stats.reset()
    unit.execute("PAccum", dsts=group_out.placements,
                 src_groups=[group_p.placements, group_ab.placements],
                 fan_in=4)
    stats = bank.stats

    x = load_poly(bank, group_out[0]) if True else None
    y = load_poly(bank, group_out[1])
    x_ref = sum(a * p % q for a, p in zip(inputs[0::2], plaintexts)) % q
    y_ref = sum(b * p % q for b, p in zip(inputs[1::2], plaintexts)) % q
    assert np.array_equal(x, x_ref), "PAccum x mismatch!"
    assert np.array_equal(y, y_ref), "PAccum y mismatch!"
    return stats


def main():
    print("PAccum<4> over 14 polynomial slices "
          f"({CHUNKS} chunks each), B = 16, G = B/6 = 2")
    print()
    cp = run("column-partitioned")
    naive = run("naive")
    print(f"{'layout':>20s} {'ACT':>6s} {'RD':>6s} {'WR':>6s}")
    print(f"{'column-partitioned':>20s} {cp.activates:6d} "
          f"{cp.chunk_reads:6d} {cp.chunk_writes:6d}")
    print(f"{'naive contiguous':>20s} {naive.activates:6d} "
          f"{naive.chunk_reads:6d} {naive.chunk_writes:6d}")
    print()
    print(f"results verified against numpy for both layouts.")
    print(f"column partitioning saves "
          f"{naive.activates / cp.activates:.1f}x row activations "
          "(paper §VI-C: 14 vs 3 per loop iteration).")


if __name__ == "__main__":
    main()
