"""Write an FHE program once, project its Anaheim performance for free.

Uses the RecordingEvaluator: an encrypted variance computation runs
*functionally* at a toy ring degree (real encryption, real math), while
every homomorphic op is journaled as a block program.  The journal is
then re-scaled to the paper's N=2^16 parameters and costed on the
A100 + near-bank-PIM model — the §V-C "high-level code -> GPU kernels +
PIM kernels" pipeline end to end.

Run:  python examples/performance_projection.py
"""

import numpy as np

from repro import A100_80GB, A100_NEAR_BANK, AnaheimFramework, paper_params
from repro.ckks.keys import KeyGenerator
from repro.ckks.linalg import rotations_for_block_sum
from repro.core.recorder import RecordingEvaluator, scale_blocks
from repro.params import toy_params


def encrypted_variance(ctx, ct, n_slots):
    """Var(x) = E[x^2] - E[x]^2 over all packed slots, homomorphically."""
    sum_x = ct
    sum_x2 = ctx.multiply(ct, ct)
    for shift in rotations_for_block_sum(n_slots):
        sum_x = ctx.add(sum_x, ctx.rotate(sum_x, shift))
        sum_x2 = ctx.add(sum_x2, ctx.rotate(sum_x2, shift))
    mean = ctx.mul_scalar(sum_x, 1.0 / n_slots)
    mean_sq = ctx.multiply(mean, mean)
    ex2 = ctx.mul_scalar(sum_x2, 1.0 / n_slots)
    return ctx.sub(ex2, mean_sq)


def main():
    # --- Functional execution at a toy ring degree. ---
    params = toy_params(degree=2 ** 8, level_count=8, aux_count=3)
    n = params.slot_count
    keygen = KeyGenerator(params, seed=3)
    keys = keygen.generate(rotations=rotations_for_block_sum(n))
    ctx = RecordingEvaluator(params, keys)

    rng = np.random.default_rng(0)
    data = rng.normal(loc=0.3, scale=0.8, size=n)
    ct = ctx.encrypt_message(data)
    result = encrypted_variance(ctx, ct, n)
    decrypted = ctx.decrypt_message(result).real[0]
    print(f"encrypted variance : {decrypted:.5f}")
    print(f"cleartext variance : {data.var():.5f}")
    print(f"ops recorded       : {len(ctx.recorded)} blocks")

    # --- Performance projection at paper scale. ---
    target = paper_params()
    blocks = scale_blocks(ctx.recorded, params, target)
    framework = AnaheimFramework(A100_80GB, A100_NEAR_BANK)
    runs = framework.compare(blocks, target.degree,
                             label="encrypted variance")
    gpu, pim = runs["gpu"].report, runs["pim"].report
    print()
    print(f"projected at N=2^16, L={target.level_count} on A100 80GB:")
    print(f"  GPU only      : {gpu.total_time * 1e3:.2f} ms")
    print(f"  GPU + PIM     : {pim.total_time * 1e3:.2f} ms  "
          f"({gpu.total_time / pim.total_time:.2f}x speedup, "
          f"{(gpu.energy * gpu.total_time) / (pim.energy * pim.total_time):.2f}x EDP)")
    print(f"  DRAM traffic  : {gpu.gpu_dram_bytes / 1e9:.2f} GB -> "
          f"{pim.gpu_dram_bytes / 1e9:.2f} GB")


if __name__ == "__main__":
    main()
