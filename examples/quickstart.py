"""Quickstart: encrypted arithmetic + Anaheim performance modeling.

Part 1 uses the executable CKKS library at a small ring degree:
encrypt two vectors, add/multiply/rotate them homomorphically, decrypt.

Part 2 models the paper's headline experiment: full-slot bootstrapping
on an A100, with and without Anaheim's PIM offloading.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import A100_80GB, A100_NEAR_BANK, AnaheimFramework, paper_params
from repro.ckks import make_context
from repro.params import toy_params
from repro.workloads.applications import build
from repro.workloads.bootstrap_trace import t_boot_eff


def encrypted_arithmetic():
    print("=== Part 1: executable CKKS (N = 2^10) ===")
    params = toy_params(degree=2 ** 10, level_count=5, aux_count=2)
    context = make_context(params, rotations=[1, 4])

    rng = np.random.default_rng(0)
    u = rng.normal(size=params.slot_count)
    v = rng.normal(size=params.slot_count)

    ct_u = context.encrypt_message(u)
    ct_v = context.encrypt_message(v)

    total = context.add(ct_u, ct_v)
    product = context.multiply(ct_u, ct_v)
    rotated = context.rotate(ct_u, 4)

    for label, ct, expected in [
            ("u + v", total, u + v),
            ("u * v", product, u * v),
            ("u << 4", rotated, np.roll(u, -4))]:
        decrypted = context.decrypt_message(ct).real
        err = np.abs(decrypted - expected).max()
        print(f"  {label:8s} max error = {err:.2e}")


def anaheim_performance_model():
    print()
    print("=== Part 2: Anaheim performance model (N = 2^16, Table IV) ===")
    params = paper_params()
    workload = build("Boot", params)
    framework = AnaheimFramework(A100_80GB, A100_NEAR_BANK)
    runs = framework.compare(workload.blocks, params.degree, label="Boot")
    gpu = runs["gpu"].report
    pim = runs["pim"].report
    print(f"  baseline GPU bootstrap : {gpu.total_time * 1e3:6.1f} ms "
          f"(T_boot,eff {t_boot_eff(gpu.total_time, workload.boot_meta) * 1e3:.2f} ms)")
    print(f"  Anaheim (GPU + PIM)    : {pim.total_time * 1e3:6.1f} ms "
          f"(T_boot,eff {t_boot_eff(pim.total_time, workload.boot_meta) * 1e3:.2f} ms)")
    print(f"  speedup                : {gpu.total_time / pim.total_time:.2f}x")
    print(f"  energy efficiency gain : {gpu.energy / pim.energy:.2f}x")
    print(f"  EDP improvement        : "
          f"{(gpu.energy * gpu.total_time) / (pim.energy * pim.total_time):.2f}x")
    print(f"  GPU-side DRAM traffic  : {gpu.gpu_dram_bytes / 1e9:.1f} GB "
          f"-> {pim.gpu_dram_bytes / 1e9:.1f} GB")


if __name__ == "__main__":
    encrypted_arithmetic()
    anaheim_performance_model()
