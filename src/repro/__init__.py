"""Anaheim (HPCA 2025) reproduction: PIM architecture and algorithms for FHE.

A from-scratch Python implementation of the systems the paper builds on
and contributes:

* :mod:`repro.ckks` — a complete, executable RNS-CKKS library
  (NTT, key switching, linear transforms, bootstrapping);
* :mod:`repro.gpu` — a calibrated roofline model of the evaluated GPUs;
* :mod:`repro.dram` / :mod:`repro.pim` — the DRAM substrate and the
  Anaheim PIM microarchitecture (functional + analytic);
* :mod:`repro.core` — the Anaheim software framework: block IR, kernel
  fusion, automorphism reordering, PIM offloading, hybrid scheduling;
* :mod:`repro.workloads` — the six evaluation workloads and metrics.

Quickstart::

    from repro import AnaheimFramework, A100_80GB, A100_NEAR_BANK
    from repro.workloads.applications import build
    from repro.params import paper_params

    params = paper_params()
    workload = build("Boot", params)
    framework = AnaheimFramework(A100_80GB, A100_NEAR_BANK)
    result = framework.compare(workload.blocks, params.degree)
    print(result["gpu"].report.total_time, result["pim"].report.total_time)
"""

from repro.core.framework import AnaheimFramework
from repro.core.fusion import LoweringOptions
from repro.core.scheduler import ScheduleReport, Scheduler
from repro.gpu.configs import A100_80GB, CHEDDAR, GPUS, LIBRARIES, RTX_4090
from repro.obs.tracer import Tracer
from repro.params import CkksParams, PaperParams, paper_params, toy_params
from repro.pim.configs import (A100_CUSTOM_HBM, A100_NEAR_BANK, PIM_CONFIGS,
                               RTX4090_NEAR_BANK)

__version__ = "1.0.0"

__all__ = [
    "A100_80GB",
    "A100_CUSTOM_HBM",
    "A100_NEAR_BANK",
    "AnaheimFramework",
    "CHEDDAR",
    "CkksParams",
    "GPUS",
    "LIBRARIES",
    "LoweringOptions",
    "PIM_CONFIGS",
    "PaperParams",
    "RTX4090_NEAR_BANK",
    "RTX_4090",
    "ScheduleReport",
    "Scheduler",
    "Tracer",
    "paper_params",
    "toy_params",
]
