"""Observability: tracing, exporters, run manifests, and baselines.

This package makes runs of the reproduction *measurable*:

* :mod:`repro.obs.tracer` — a lightweight span/counter tracer threaded
  through lowering, scheduling, and the device cost models (opt-in:
  every instrumented call site is a single ``is None`` check when
  tracing is off).
* :mod:`repro.obs.export` — Chrome trace-event JSON (loadable in
  Perfetto / ``chrome://tracing``) generated from tracer spans or from
  a :class:`~repro.core.scheduler.ScheduleReport`'s simulated Gantt
  segments, plus a full JSON run manifest with config provenance.
* :mod:`repro.obs.metrics` — a process-wide, label-aware metrics
  registry (counters, gauges, histograms) with deterministic snapshots,
  Prometheus text exposition, and a structured JSONL event log.
* :mod:`repro.obs.utilization` — :class:`UtilizationReport`, derived
  device-utilization accounting (busy fractions, MMAC lane occupancy,
  bandwidth utilization, overlap efficiency) from any schedule report.
* :mod:`repro.obs.baseline` — ``BENCH_<workload>.json`` performance
  baselines, a tolerance-based regression check, and per-workload
  run-history trend files.
* :mod:`repro.obs.profile` — aggregated span-tree rendering with
  self/cumulative times (the ``anaheim-repro profile`` output).
* :mod:`repro.obs.provenance` — git SHA, environment, and dataclass
  serialization helpers used by the manifest.
"""

from repro.obs.baseline import (BaselineRegression, baseline_metrics,
                                baseline_path, check_baseline, load_baseline,
                                write_baseline)
from repro.obs.export import (chrome_trace_from_report,
                              chrome_trace_from_tracer, report_dict,
                              run_manifest, write_json)
from repro.obs.metrics import (Counter, EventLog, Gauge, Histogram,
                               MetricsRegistry, get_registry,
                               parse_prometheus)
from repro.obs.profile import render_counters, render_span_tree
from repro.obs.provenance import config_dict, environment_info, git_sha
from repro.obs.tracer import Span, Tracer, maybe_span
from repro.obs.utilization import UtilizationReport

__all__ = [
    "BaselineRegression",
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "UtilizationReport",
    "baseline_metrics",
    "baseline_path",
    "check_baseline",
    "chrome_trace_from_report",
    "chrome_trace_from_tracer",
    "config_dict",
    "environment_info",
    "get_registry",
    "git_sha",
    "load_baseline",
    "maybe_span",
    "parse_prometheus",
    "render_counters",
    "render_span_tree",
    "report_dict",
    "run_manifest",
    "write_baseline",
    "write_json",
]
