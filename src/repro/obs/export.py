"""Exporters: Chrome trace-event JSON and the run manifest.

Two timelines can be exported in the trace-event format that
``chrome://tracing`` and Perfetto load:

* the **simulated** schedule — every
  :class:`~repro.core.scheduler.Segment` of a
  :class:`~repro.core.scheduler.ScheduleReport` becomes a complete
  (``ph="X"``) event on a GPU or PIM track, so the paper's Gantt chart
  (Fig. 4a) is browsable interactively;
* the **wall-clock** tracer spans — where the reproduction itself
  spends time (lowering, scheduling, cost models).

The run manifest is a single JSON document carrying full provenance:
hardware/library configs, lowering options, environment, and every
report metric (time, energy, EDP, DRAM traffic).
"""

from __future__ import annotations

import json
import os
import tempfile

from repro.core.scheduler import ScheduleReport
from repro.core.trace import CATEGORY_LABELS
from repro.obs.provenance import (config_dict, environment_info,
                                  fault_plan_info)
from repro.obs.tracer import Tracer

#: Trace-event thread ids per simulated device track.
_DEVICE_TIDS = {"gpu": 1, "pim": 2}


def _metadata_events(pid: int, process: str, threads: dict) -> list:
    events = [{"ph": "M", "pid": pid, "tid": 0, "name": "process_name",
               "args": {"name": process}}]
    for tid, name in threads.items():
        events.append({"ph": "M", "pid": pid, "tid": tid,
                       "name": "thread_name", "args": {"name": name}})
    return events


def chrome_trace_from_report(report: ScheduleReport, pid: int = 0) -> dict:
    """Trace-event document for a report's simulated Gantt segments.

    Simulated seconds map to trace microseconds 1:1 (the trace-event
    ``ts``/``dur`` unit), so durations read directly in Perfetto.
    """
    events = _metadata_events(
        pid, f"simulated: {report.label or 'schedule'}",
        {tid: device.upper() for device, tid in _DEVICE_TIDS.items()})
    for segment in report.segments:
        events.append({
            "ph": "X",
            "pid": pid,
            "tid": _DEVICE_TIDS.get(segment.device, 9),
            "ts": segment.start * 1e6,
            "dur": segment.duration * 1e6,
            "name": segment.name,
            "cat": segment.category.value,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_from_tracer(tracer: Tracer, pid: int = 100) -> dict:
    """Trace-event document for the tracer's wall-clock spans."""
    events = _metadata_events(pid, "anaheim-repro (wall clock)",
                              {1: "main"})
    for span in tracer.spans:
        events.append({
            "ph": "X",
            "pid": pid,
            "tid": 1,
            "ts": span.start * 1e6,
            "dur": span.duration * 1e6,
            "name": span.name,
            "cat": "tracer",
            "args": config_dict(span.tags),
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def merge_traces(*documents: dict) -> dict:
    """Concatenate several trace-event documents into one."""
    events = []
    for doc in documents:
        events.extend(doc.get("traceEvents", []))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def report_dict(report: ScheduleReport, segments: bool = False) -> dict:
    """Every metric the figures use, as plain JSON-safe values."""
    out = {
        "label": report.label,
        "total_time": report.total_time,
        "gpu_time": report.gpu_time,
        "pim_time": report.pim_time,
        "transition_time": report.transition_time,
        "transitions": report.transitions,
        "time_by_category": {CATEGORY_LABELS[cat]: seconds
                             for cat, seconds
                             in report.time_by_category.items()},
        "gpu_dram_bytes": report.gpu_dram_bytes,
        "transfer_bytes": report.transfer_bytes,
        "pim_internal_bytes": report.pim_internal_bytes,
        "pim_activations": report.pim_activations,
        "energy_gpu_dynamic": report.energy_gpu_dynamic,
        "energy_gpu_idle": report.energy_gpu_idle,
        "energy_pim": report.energy_pim,
        "energy": report.energy,
        "edp": report.edp,
        "pipelining_bound": report.pipelining_bound(),
        "pipelining_headroom": report.pipelining_headroom(),
    }
    if report.fault_summary:
        out["fault_summary"] = config_dict(report.fault_summary)
    if segments:
        out["segments"] = [{"start": s.start, "end": s.end,
                            "device": s.device, "name": s.name,
                            "category": s.category.value}
                           for s in report.segments]
    return out


def run_manifest(report: ScheduleReport, *, gpu=None, pim=None,
                 library=None, options=None, workload: str = "",
                 degree: int | None = None, fault_plan=None,
                 metrics=None, extra: dict | None = None) -> dict:
    """Full provenance + results document for one execution.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) embeds
    the full metrics snapshot plus its digest, so a manifest pins the
    exact counter state that produced the report.
    """
    manifest = {
        "tool": "anaheim-repro",
        "workload": workload,
        "degree": degree,
        "environment": environment_info(),
        "config": {
            "gpu": config_dict(gpu),
            "pim": config_dict(pim),
            "library": config_dict(library),
            "lowering_options": config_dict(options),
            "lowering_level": options.describe() if options else None,
            "fault_plan": fault_plan_info(fault_plan),
        },
        "report": report_dict(report),
    }
    if metrics is not None:
        manifest["metrics"] = {"digest": metrics.digest(),
                               "snapshot": metrics.snapshot()}
    if extra:
        manifest.update(extra)
    return manifest


def write_json(path, document: dict) -> None:
    """Crash-safe JSON write: temp file in the same directory, then
    ``os.replace``.  An interrupt mid-write leaves the previous file
    (if any) untouched — never a truncated JSON."""
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(prefix=os.path.basename(path) + ".",
                               suffix=".tmp", dir=directory)
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(document, fh, indent=2, sort_keys=False)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
