"""Label-aware metrics: counters, gauges, histograms, and exporters.

The tracer (:mod:`repro.obs.tracer`) answers "where did *this* run
spend its time"; this module answers the aggregate questions the
paper's evaluation is actually about — rates, distributions, and
utilization breakdowns over many kernels, units, and jobs.  A
:class:`MetricsRegistry` holds three metric kinds:

* :class:`Counter` — monotonically non-decreasing totals (kernels
  dispatched, faults detected, retries);
* :class:`Gauge` — point-in-time values that move both ways (breaker
  state, degradation level);
* :class:`Histogram` — value distributions over explicit buckets with
  Prometheus ``le`` (upper-inclusive) semantics, tracking per-bucket
  counts plus sum and count for mean/quantile estimation.

Every metric family is declared with a fixed tuple of label names;
samples are keyed by label *values* so one family holds e.g. kernel
latencies split by ``(device, category)``.

Three export paths, all deterministic (snapshots are sorted by family
name and label values, so two runs with the same seed/config produce
byte-identical documents):

* :meth:`MetricsRegistry.render_prometheus` — the text exposition
  format scrapable by any Prometheus-compatible collector;
* :meth:`MetricsRegistry.snapshot` / :meth:`MetricsRegistry.digest` —
  a JSON document (embedded in run manifests) plus its sha256;
* :class:`EventLog` — an append-only structured event stream written
  as JSONL.

:func:`parse_prometheus` is the validating parser the ``metrics
--smoke`` CLI gate and CI use: it checks line format, label syntax,
histogram bucket monotonicity, and counter non-negativity.

Instrumented components follow the tracer convention: they accept
``metrics=None`` and guard every site with one ``is None`` check, so
the un-instrumented path stays free.
"""

from __future__ import annotations

import hashlib
import json
import math
import re
from bisect import bisect_left

from repro.errors import ParameterError

#: Valid Prometheus metric and label names.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default buckets for simulated kernel durations (seconds).  Kernel
#: times in the performance model span ~100ns (launch-overhead bound)
#: to ~100ms (full bootstrap phases).
KERNEL_SECONDS_BUCKETS = (1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1,
                          1.0, 10.0)

#: Default buckets for serving-unit latencies (simulated seconds).
UNIT_SECONDS_BUCKETS = (1e-3, 1e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
                        10.0, 30.0, 60.0)

#: Default buckets for queue waits (simulated seconds).  Finer at the
#: low end than the unit buckets: at light load most jobs dispatch in
#: well under a millisecond of simulated queueing.
QUEUE_SECONDS_BUCKETS = (1e-4, 1e-3, 5e-3, 1e-2, 0.05, 0.1, 0.25, 0.5,
                         1.0, 2.5, 5.0, 10.0)


def format_value(value: float) -> str:
    """Deterministic sample rendering: integers stay integral."""
    if value != value:                       # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _render_labels(names, values) -> str:
    if not names:
        return ""
    inner = ",".join(f'{n}="{_escape_label(str(v))}"'
                     for n, v in zip(names, values))
    return "{" + inner + "}"


class Metric:
    """Shared bookkeeping: name, help text, fixed label names."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames=()):
        if not _NAME_RE.match(name):
            raise ParameterError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ParameterError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        #: label-value tuple (in ``labelnames`` order) -> sample state.
        self._samples: dict = {}

    def _key(self, labels: dict) -> tuple:
        if set(labels) != set(self.labelnames):
            raise ParameterError(
                f"metric {self.name!r} takes labels "
                f"{list(self.labelnames)}, got {sorted(labels)}")
        return tuple(str(labels[n]) for n in self.labelnames)

    def _sorted_samples(self):
        return sorted(self._samples.items())

    def clear(self) -> None:
        self._samples.clear()

    def _check_mergeable(self, other: "Metric") -> None:
        """One-line rejection of structurally incompatible families."""
        if type(other) is not type(self):
            raise ParameterError(
                f"cannot merge {other.kind} into {self.kind} metric "
                f"{self.name!r}")
        if other.labelnames != self.labelnames:
            raise ParameterError(
                f"cannot merge metric {self.name!r}: label names "
                f"{list(other.labelnames)} != {list(self.labelnames)}")

    def merge(self, other: "Metric") -> None:
        """Fold ``other``'s samples into this family.

        Deterministic label-sorted semantics: samples are visited in
        sorted label-value order, counters/histograms accumulate, and
        gauges take the incoming value (the merger is replaying
        ``other`` *after* this registry's own history).
        """
        raise NotImplementedError


class Counter(Metric):
    """A monotonically non-decreasing total."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ParameterError(
                f"counter {self.name!r} cannot decrease (inc {amount})")
        key = self._key(labels)
        self._samples[key] = self._samples.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return self._samples.get(self._key(labels), 0.0)

    def snapshot_samples(self) -> list:
        return [{"labels": dict(zip(self.labelnames, key)),
                 "value": value}
                for key, value in self._sorted_samples()]

    def render(self) -> list:
        return [f"{self.name}{_render_labels(self.labelnames, key)} "
                f"{format_value(value)}"
                for key, value in self._sorted_samples()]

    def merge(self, other: Metric) -> None:
        self._check_mergeable(other)
        for key, value in other._sorted_samples():
            self._samples[key] = self._samples.get(key, 0.0) + value


class Gauge(Metric):
    """A value that can move in both directions."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        self._samples[self._key(labels)] = float(value)

    def merge(self, other: Metric) -> None:
        self._check_mergeable(other)
        for key, value in other._sorted_samples():
            self._samples[key] = value

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        self._samples[key] = self._samples.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        return self._samples.get(self._key(labels), 0.0)

    snapshot_samples = Counter.snapshot_samples
    render = Counter.render


class _HistogramState:
    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, n_buckets: int):
        self.bucket_counts = [0] * n_buckets    # per-bucket, not cumulative
        self.sum = 0.0
        self.count = 0


class Histogram(Metric):
    """Explicit-bucket histogram with Prometheus ``le`` semantics.

    ``buckets`` are finite upper bounds in strictly increasing order; a
    ``+Inf`` bucket is always appended.  A value lands in the first
    bucket whose bound is **>=** the value (boundary values count in
    the bucket they name, matching ``le`` = "less than or equal").
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "", labelnames=(),
                 buckets=KERNEL_SECONDS_BUCKETS):
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ParameterError(f"histogram {name!r} needs >= 1 bucket")
        if any(b != b or b == float("inf") for b in bounds):
            raise ParameterError(
                f"histogram {name!r}: finite bounds only (+Inf is "
                f"implicit)")
        if list(bounds) != sorted(set(bounds)):
            raise ParameterError(
                f"histogram {name!r}: bucket bounds must strictly "
                f"increase")
        self.buckets = bounds

    def _state(self, labels: dict) -> _HistogramState:
        key = self._key(labels)
        state = self._samples.get(key)
        if state is None:
            state = self._samples[key] = _HistogramState(
                len(self.buckets) + 1)
        return state

    def observe(self, value: float, **labels) -> None:
        state = self._state(labels)
        # First bound >= value; everything past the last bound is +Inf.
        state.bucket_counts[bisect_left(self.buckets, value)] += 1
        state.sum += value
        state.count += 1

    # -- Per-labelset queries ------------------------------------------------

    def count(self, **labels) -> int:
        key = self._key(labels)
        state = self._samples.get(key)
        return state.count if state else 0

    def sum(self, **labels) -> float:
        key = self._key(labels)
        state = self._samples.get(key)
        return state.sum if state else 0.0

    def cumulative(self, **labels) -> list:
        """Cumulative counts per bucket (``le`` order, +Inf last)."""
        key = self._key(labels)
        state = self._samples.get(key)
        counts = (state.bucket_counts if state
                  else [0] * (len(self.buckets) + 1))
        out, running = [], 0
        for c in counts:
            running += c
            out.append(running)
        return out

    def quantile(self, q: float, **labels) -> float:
        """Estimated q-quantile by linear interpolation within the
        containing bucket.  ``nan`` for an empty histogram; values in
        the +Inf bucket clamp to the largest finite bound."""
        if not 0.0 <= q <= 1.0:
            raise ParameterError("quantile must be in [0, 1]")
        cumulative = self.cumulative(**labels)
        total = cumulative[-1]
        if total == 0:
            return math.nan
        rank = q * total
        for i, running in enumerate(cumulative):
            if running >= rank:
                if i >= len(self.buckets):
                    return self.buckets[-1]
                lower = self.buckets[i - 1] if i else 0.0
                upper = self.buckets[i]
                prev = cumulative[i - 1] if i else 0
                in_bucket = running - prev
                if in_bucket == 0:
                    return upper
                frac = (rank - prev) / in_bucket
                return lower + frac * (upper - lower)
        return self.buckets[-1]

    def merge(self, other: Metric) -> None:
        self._check_mergeable(other)
        if other.buckets != self.buckets:
            raise ParameterError(
                f"cannot merge histogram {self.name!r}: bucket edges "
                f"{[format_value(b) for b in other.buckets]} != "
                f"{[format_value(b) for b in self.buckets]}")
        for key, theirs in other._sorted_samples():
            state = self._samples.get(key)
            if state is None:
                state = self._samples[key] = _HistogramState(
                    len(self.buckets) + 1)
            for i, count in enumerate(theirs.bucket_counts):
                state.bucket_counts[i] += count
            state.sum += theirs.sum
            state.count += theirs.count

    # -- Export --------------------------------------------------------------

    def snapshot_samples(self) -> list:
        out = []
        for key, state in self._sorted_samples():
            labels = dict(zip(self.labelnames, key))
            out.append({
                "labels": labels,
                "buckets": [{"le": format_value(b), "count": c}
                            for b, c in zip(
                                list(self.buckets) + [float("inf")],
                                self.cumulative(**labels))],
                "sum": state.sum,
                "count": state.count,
            })
        return out

    def render(self) -> list:
        lines = []
        for key, state in self._sorted_samples():
            labels = dict(zip(self.labelnames, key))
            bounds = [format_value(b) for b in self.buckets] + ["+Inf"]
            for bound, running in zip(bounds, self.cumulative(**labels)):
                names = self.labelnames + ("le",)
                values = key + (bound,)
                lines.append(f"{self.name}_bucket"
                             f"{_render_labels(names, values)} {running}")
            suffix = _render_labels(self.labelnames, key)
            lines.append(f"{self.name}_sum{suffix} "
                         f"{format_value(state.sum)}")
            lines.append(f"{self.name}_count{suffix} {state.count}")
        return lines


class MetricsRegistry:
    """Get-or-create registry with deterministic export ordering."""

    def __init__(self):
        self._metrics: dict = {}

    # -- Declaration ---------------------------------------------------------

    def _declare(self, cls, name, help, labelnames, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ParameterError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {cls.kind}")
            if existing.labelnames != tuple(labelnames):
                raise ParameterError(
                    f"metric {name!r} already registered with labels "
                    f"{list(existing.labelnames)}")
            return existing
        metric = cls(name, help, labelnames, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "",
                labelnames=()) -> Counter:
        return self._declare(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames=()) -> Gauge:
        return self._declare(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "", labelnames=(),
                  buckets=KERNEL_SECONDS_BUCKETS) -> Histogram:
        return self._declare(Histogram, name, help, labelnames,
                             buckets=buckets)

    # -- Introspection -------------------------------------------------------

    def get(self, name: str):
        return self._metrics.get(name)

    def families(self) -> list:
        return [self._metrics[name] for name in sorted(self._metrics)]

    def clear(self) -> None:
        self._metrics.clear()

    # -- Merge ---------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's families into this one.

        The worker-pool seam: each worker process records into its own
        registry, and the parent merges them back **in unit order**, so
        the merged registry is byte-identical to what a serial run
        would have recorded (counters and histograms accumulate; a
        gauge takes the incoming value, replaying the worker's write
        after this registry's history).  Families are visited in sorted
        name order; a structural mismatch — kind, label names, or
        histogram bucket edges — is a one-line
        :class:`~repro.errors.ParameterError`.
        """
        for name in sorted(other._metrics):
            theirs = other._metrics[name]
            mine = self._metrics.get(name)
            if mine is None:
                kwargs = ({"buckets": theirs.buckets}
                          if isinstance(theirs, Histogram) else {})
                mine = self._declare(type(theirs), name, theirs.help,
                                     theirs.labelnames, **kwargs)
            mine.merge(theirs)

    # -- Export --------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON document: families sorted by name, samples by labels."""
        return {"metrics": [
            {"name": m.name, "type": m.kind, "help": m.help,
             "labels": list(m.labelnames),
             **({"buckets": [format_value(b) for b in m.buckets]}
                if isinstance(m, Histogram) else {}),
             "samples": m.snapshot_samples()}
            for m in self.families()]}

    def digest(self) -> str:
        canonical = json.dumps(self.snapshot(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def render_prometheus(self) -> str:
        """The text exposition format, newline-terminated."""
        lines = []
        for metric in self.families():
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.render())
        return "\n".join(lines) + "\n" if lines else ""


#: The process-wide default registry.  Library callers that want
#: isolation (tests, the CLI's deterministic snapshots) construct their
#: own :class:`MetricsRegistry` and pass it down instead.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY


class EventLog:
    """Append-only structured events, exported as JSONL.

    Events carry no wall-clock timestamps by default — a sequence
    number plus whatever simulated-time fields the emitter supplies —
    so the log of a seeded run is byte-reproducible.
    """

    def __init__(self):
        self.events: list = []

    def emit(self, kind: str, **fields) -> dict:
        event = {"seq": len(self.events), "kind": kind}
        event.update(fields)
        self.events.append(event)
        return event

    def to_jsonl(self) -> str:
        return "".join(json.dumps(e, sort_keys=True) + "\n"
                       for e in self.events)

    def write(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_jsonl())


# -- Exposition-format validation ----------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)(?:\s+\d+)?$")
_LABEL_PAIR_RE = re.compile(
    r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$')


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return math.nan
    return float(text)


def parse_prometheus(text: str) -> dict:
    """Parse and validate a text-exposition document.

    Returns ``{"types": {family: type}, "samples": [(name, labels,
    value)]}``.  Raises :class:`~repro.errors.ParameterError` on any
    malformed line, unknown sample suffix, non-monotone histogram
    buckets, or negative counter — the checks ``metrics --smoke``
    gates CI on.
    """
    types: dict = {}
    samples: list = []
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary",
                    "untyped"):
                raise ParameterError(
                    f"line {lineno}: malformed TYPE line: {line!r}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ParameterError(
                f"line {lineno}: malformed sample line: {line!r}")
        labels = {}
        label_text = match.group("labels")
        if label_text:
            for pair in re.split(r",(?=[a-zA-Z_])", label_text):
                pair_match = _LABEL_PAIR_RE.match(pair.strip())
                if not pair_match:
                    raise ParameterError(
                        f"line {lineno}: malformed label pair "
                        f"{pair!r}")
                labels[pair_match.group("name")] = \
                    pair_match.group("value")
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            raise ParameterError(
                f"line {lineno}: unparseable value "
                f"{match.group('value')!r}")
        samples.append((match.group("name"), labels, value))

    # Semantic checks against the declared types.
    histogram_buckets: dict = {}
    for name, labels, value in samples:
        family, suffix = name, ""
        for candidate in ("_bucket", "_sum", "_count"):
            if name.endswith(candidate) and name[:-len(candidate)] \
                    in types and types[name[:-len(candidate)]] \
                    == "histogram":
                family, suffix = name[:-len(candidate)], candidate
                break
        kind = types.get(family)
        if kind is None:
            raise ParameterError(
                f"sample {name!r} has no preceding TYPE declaration")
        if kind == "histogram" and not suffix:
            raise ParameterError(
                f"histogram {family!r} sample {name!r} must use "
                f"_bucket/_sum/_count")
        if kind == "counter" and value < 0:
            raise ParameterError(
                f"counter {name!r} has negative value {value}")
        if suffix == "_bucket":
            if "le" not in labels:
                raise ParameterError(
                    f"bucket sample of {family!r} is missing its "
                    f"'le' label")
            key = (family, tuple(sorted((k, v) for k, v in
                                        labels.items() if k != "le")))
            histogram_buckets.setdefault(key, []).append(
                (_parse_value(labels["le"]), value))
    for (family, _), buckets in histogram_buckets.items():
        bounds = [b for b, _ in buckets]
        counts = [c for _, c in buckets]
        if bounds != sorted(bounds):
            raise ParameterError(
                f"histogram {family!r} buckets are not in increasing "
                f"'le' order")
        if bounds[-1] != float("inf"):
            raise ParameterError(
                f"histogram {family!r} is missing its +Inf bucket")
        if counts != sorted(counts):
            raise ParameterError(
                f"histogram {family!r} bucket counts are not "
                f"monotone")
    return {"types": types, "samples": samples}
