"""Run provenance: git state, environment, and config serialization."""

from __future__ import annotations

import dataclasses
import enum
import platform
import subprocess
import sys
from pathlib import Path


def git_sha(cwd: str | None = None) -> str | None:
    """The repository HEAD SHA, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd or Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=5)
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def environment_info() -> dict:
    return {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "git_sha": git_sha(),
    }


def fault_plan_info(plan) -> dict | None:
    """Manifest block identifying a fault plan (None when no plan).

    Carries the canonical plan serialization plus its sha256 digest so
    two runs are provably under the same injected-fault sequence.
    """
    if plan is None:
        return None
    return {"digest": plan.digest(), "plan": plan.canonical()}


def config_dict(obj):
    """JSON-safe view of a config object.

    Dataclasses recurse field by field; enums flatten to their values;
    frozensets become sorted lists.  Anything already JSON-native passes
    through, and unknown objects fall back to ``repr`` so a manifest
    never fails to serialize.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return obj.value
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: config_dict(getattr(obj, f.name))
                for f in dataclasses.fields(obj)}
    if isinstance(obj, dict):
        return {str(k): config_dict(v) for k, v in obj.items()}
    if isinstance(obj, (frozenset, set)):
        return sorted(str(x) for x in obj)
    if isinstance(obj, (list, tuple)):
        return [config_dict(x) for x in obj]
    return repr(obj)
