"""Hardware-utilization accounting derived from a schedule timeline.

Anaheim's core claims are utilization claims: the MMAC lanes stream a
chunk per PIM clock while rows are open (§VI-A), every bank works in
lockstep on its slice of a limb (§VI-B), and the serialized GPU/PIM
stream leaves little for pipelining to recover once the element-wise
share shrinks (§V-C, Fig. 10).  A :class:`UtilizationReport` computes
those breakdowns from any :class:`~repro.core.scheduler.ScheduleReport`:

* **per-device busy fractions** — seconds each device held the stream
  (from the Gantt segments when kept, else the report's aggregate
  times), as a fraction of the makespan;
* **PIM occupancy** — the share of PIM busy time the MMAC lanes spent
  streaming chunks versus exposed row ACT/PRE turnarounds, recovered
  from ``pim_internal_bytes`` and the PIM clock (the executor charges
  ``cycles_per_chunk`` per 256-bit chunk per unit, §VI-A), and the
  achieved fraction of aggregate internal bandwidth;
* **GPU DRAM-bandwidth utilization** — achieved bytes/s while the GPU
  was busy against peak, plus the transfer slice specifically
  (``transfer_bytes`` over the transfer-category time at peak);
* **overlap efficiency** — ``pipelining_bound / total_time``: how
  close the serialized schedule already is to a perfectly-overlapped
  one (1.0 = pipelining could recover nothing).

The accounting is exact: busy times summed from segments match the
report's per-device aggregates to float precision
(:meth:`UtilizationReport.accounting_error`), which the ``metrics
--smoke`` gate checks on every run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.scheduler import ScheduleReport
from repro.core.trace import CATEGORY_LABELS, OpCategory


def _busy_from_segments(report: ScheduleReport) -> dict:
    busy: dict = {}
    for segment in report.segments:
        busy[segment.device] = busy.get(segment.device, 0.0) \
            + segment.duration
    return busy


@dataclass
class UtilizationReport:
    """Utilization breakdown of one scheduled execution."""

    label: str
    total_time: float
    #: Seconds each device held the execution stream.
    busy_time: dict = field(default_factory=dict)
    transition_time: float = 0.0
    #: |sum(busy) + transitions - total| — 0 up to float rounding for
    #: any schedule the stream scheduler produced.
    accounting_error: float = 0.0
    overlap_efficiency: float = 1.0
    pipelining_headroom: float = 1.0
    #: Fraction of the makespan in each kernel category.
    category_fraction: dict = field(default_factory=dict)
    #: PIM occupancy (populated when a PimConfig is supplied).
    pim_bank_busy_fraction: float | None = None
    mmac_stream_time: float | None = None
    mmac_lane_occupancy: float | None = None
    pim_act_overhead_fraction: float | None = None
    pim_internal_bw_utilization: float | None = None
    #: GPU bandwidth (populated when a GpuConfig is supplied).
    gpu_dram_bw_utilization: float | None = None
    transfer_time: float = 0.0
    transfer_bw_utilization: float | None = None

    # -- Derived -------------------------------------------------------------

    def busy_fraction(self, device: str) -> float:
        if self.total_time == 0:
            return 0.0
        return self.busy_time.get(device, 0.0) / self.total_time

    @classmethod
    def from_report(cls, report: ScheduleReport, gpu=None,
                    pim=None) -> "UtilizationReport":
        """Derive utilization from a report (and optional configs).

        ``gpu`` is a :class:`~repro.gpu.configs.GpuConfig`; ``pim`` a
        :class:`~repro.pim.configs.PimConfig`.  Without them the
        device-time and overlap accounting still applies; the
        bandwidth/occupancy fields need the hardware peaks.
        """
        total = report.total_time
        if report.segments:
            busy = _busy_from_segments(report)
        else:
            busy = {}
            if report.gpu_time:
                busy["gpu"] = report.gpu_time
            if report.pim_time:
                busy["pim"] = report.pim_time
        accounted = sum(busy.values()) + report.transition_time
        bound = report.pipelining_bound()
        out = cls(
            label=report.label,
            total_time=total,
            busy_time=busy,
            transition_time=report.transition_time,
            accounting_error=abs(accounted - total),
            overlap_efficiency=(bound / total) if total else 1.0,
            pipelining_headroom=report.pipelining_headroom(),
            category_fraction={
                CATEGORY_LABELS[cat]: report.category_share(cat)
                for cat in OpCategory
                if cat in report.time_by_category},
        )
        out.transfer_time = report.time_by_category.get(
            OpCategory.TRANSFER, 0.0)
        pim_busy = busy.get("pim", 0.0)
        if pim is not None and pim_busy > 0:
            out.pim_bank_busy_fraction = pim_busy / total if total else 0.0
            # The executor streams one chunk per ``cycles_per_chunk``
            # unit cycles; each unit serves its banks' chunks serially.
            chunk_accesses = report.pim_internal_bytes / pim.chunk_bytes
            per_unit = chunk_accesses / pim.units
            stream = per_unit * pim.cycles_per_chunk / pim.clock_hz
            out.mmac_stream_time = stream
            out.mmac_lane_occupancy = min(1.0, stream / pim_busy)
            out.pim_act_overhead_fraction = 1.0 - out.mmac_lane_occupancy
            out.pim_internal_bw_utilization = (
                report.pim_internal_bytes
                / (pim_busy * pim.internal_bandwidth))
        gpu_busy = busy.get("gpu", 0.0)
        if gpu is not None and gpu_busy > 0:
            out.gpu_dram_bw_utilization = (
                report.gpu_dram_bytes
                / (gpu_busy * gpu.dram_bandwidth))
            if out.transfer_time > 0 and report.transfer_bytes:
                out.transfer_bw_utilization = (
                    report.transfer_bytes
                    / (out.transfer_time * gpu.dram_bandwidth))
        return out

    # -- Export --------------------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "total_time": self.total_time,
            "busy_time": dict(sorted(self.busy_time.items())),
            "busy_fraction": {device: self.busy_fraction(device)
                              for device in sorted(self.busy_time)},
            "transition_time": self.transition_time,
            "accounting_error": self.accounting_error,
            "overlap_efficiency": self.overlap_efficiency,
            "pipelining_headroom": self.pipelining_headroom,
            "category_fraction": self.category_fraction,
            "pim_bank_busy_fraction": self.pim_bank_busy_fraction,
            "mmac_stream_time": self.mmac_stream_time,
            "mmac_lane_occupancy": self.mmac_lane_occupancy,
            "pim_act_overhead_fraction": self.pim_act_overhead_fraction,
            "pim_internal_bw_utilization":
                self.pim_internal_bw_utilization,
            "gpu_dram_bw_utilization": self.gpu_dram_bw_utilization,
            "transfer_time": self.transfer_time,
            "transfer_bw_utilization": self.transfer_bw_utilization,
        }

    def record(self, registry) -> None:
        """Publish the breakdown as gauges on a metrics registry."""
        busy = registry.gauge(
            "anaheim_device_busy_fraction",
            "Fraction of the makespan each device held the stream",
            labelnames=("device",))
        for device in sorted(self.busy_time):
            busy.set(self.busy_fraction(device), device=device)
        overlap = registry.gauge(
            "anaheim_overlap_efficiency",
            "pipelining_bound / total_time (1.0 = nothing to overlap)")
        overlap.set(self.overlap_efficiency)
        scalar_gauges = (
            ("anaheim_mmac_lane_occupancy",
             "Streaming share of PIM busy time",
             self.mmac_lane_occupancy),
            ("anaheim_pim_internal_bw_utilization",
             "Achieved fraction of aggregate PIM internal bandwidth",
             self.pim_internal_bw_utilization),
            ("anaheim_gpu_dram_bw_utilization",
             "Achieved fraction of peak GPU DRAM bandwidth while busy",
             self.gpu_dram_bw_utilization),
            ("anaheim_transfer_bw_utilization",
             "Transfer bytes over transfer time at peak bandwidth",
             self.transfer_bw_utilization),
        )
        for name, help_text, value in scalar_gauges:
            if value is not None:
                registry.gauge(name, help_text).set(value)

    def render(self) -> str:
        """Human-readable utilization table."""
        def pct(value) -> str:
            return "-" if value is None else f"{value:7.2%}"

        lines = [f"utilization: {self.label or '(unlabeled)'} "
                 f"({self.total_time:.6g}s makespan)"]
        for device in sorted(self.busy_time):
            lines.append(f"  {device + ' busy':<28s}"
                         f"{pct(self.busy_fraction(device))}  "
                         f"({self.busy_time[device]:.6g}s)")
        if self.total_time:
            lines.append(f"  {'transitions':<28s}"
                         f"{pct(self.transition_time / self.total_time)}"
                         f"  ({self.transition_time:.6g}s)")
        lines.append(f"  {'overlap efficiency':<28s}"
                     f"{pct(self.overlap_efficiency)}  (pipelining "
                     f"headroom {self.pipelining_headroom:.3f}x)")
        for name, value in (
                ("PIM bank busy", self.pim_bank_busy_fraction),
                ("MMAC lane occupancy", self.mmac_lane_occupancy),
                ("PIM ACT/PRE overhead", self.pim_act_overhead_fraction),
                ("PIM internal BW util", self.pim_internal_bw_utilization),
                ("GPU DRAM BW util", self.gpu_dram_bw_utilization),
                ("transfer BW util", self.transfer_bw_utilization)):
            if value is not None:
                lines.append(f"  {name:<28s}{pct(value)}")
        if self.category_fraction:
            shares = "  ".join(f"{label} {share:.1%}" for label, share
                               in self.category_fraction.items())
            lines.append(f"  by category: {shares}")
        lines.append(f"  accounting error: {self.accounting_error:.3g}s")
        return "\n".join(lines)
