"""Aggregated span-tree rendering (the ``profile`` subcommand output)."""

from __future__ import annotations

from repro.obs.tracer import Tracer


def _format_time(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:9.3f}s "
    if seconds >= 1e-3:
        return f"{seconds * 1e3:9.3f}ms"
    return f"{seconds * 1e6:9.3f}us"


def render_span_tree(tracer: Tracer, name_width: int = 44) -> str:
    """Call-tree profile: spans grouped by name at each tree level.

    ``cum`` is the wall-clock time inside a span including children;
    ``self`` excludes direct children — the classic profiler split, so
    hot leaf passes stand out even under broad parent spans.
    """
    if not tracer.spans:
        return "(no spans recorded)"
    header = (f"{'span':<{name_width}s}{'calls':>8s}"
              f"{'cum':>12s}{'self':>12s}")
    lines = [header, "-" * len(header)]

    def walk(spans, depth):
        groups: dict = {}
        for span in spans:
            groups.setdefault(span.name, []).append(span)
        for name, group in groups.items():
            cum = sum(s.duration for s in group)
            self_time = sum(tracer.self_time(s) for s in group)
            label = "  " * depth + name
            lines.append(f"{label:<{name_width}s}{len(group):>8d}"
                         f"  {_format_time(cum)}  {_format_time(self_time)}")
            children = [child for span in group
                        for child in tracer.children(span.index)]
            if children:
                walk(children, depth + 1)

    walk(tracer.roots(), 0)
    return "\n".join(lines)


def render_counters(tracer: Tracer, name_width: int = 44) -> str:
    if not tracer.counters:
        return "(no counters recorded)"
    lines = [f"{'counter':<{name_width}s}{'value':>16s}"]
    lines.append("-" * (name_width + 16))
    for name in sorted(tracer.counters):
        value = tracer.counters[name]
        text = f"{value:,.0f}" if value == int(value) else f"{value:,.3f}"
        lines.append(f"{name:<{name_width}s}{text:>16s}")
    return "\n".join(lines)
