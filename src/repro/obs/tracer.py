"""Lightweight span/counter tracer.

The tracer records *wall-clock* spans of the reproduction's own code
(lowering passes, scheduling, device cost models) — as opposed to the
*simulated* timeline a :class:`~repro.core.scheduler.ScheduleReport`
describes.  Both can be exported as Chrome trace events
(:mod:`repro.obs.export`).

Instrumentation is opt-in.  Every instrumented object takes
``tracer=None`` and call sites guard with a single ``is None`` check
(or equivalently :func:`maybe_span`), so the default path pays one
branch per site and records nothing.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field


@dataclass
class Span:
    """One timed region.  ``parent`` indexes ``Tracer.spans`` (-1 = root)."""

    name: str
    index: int
    parent: int
    depth: int
    start: float
    end: float = 0.0
    tags: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def open(self) -> bool:
        return self.end == 0.0 and self.start != 0.0


class Tracer:
    """Collects nested spans and named counters.

    Spans are stored flat, in start order, with parent indices — cheap
    to record, trivial to rebuild into a tree afterwards.  Counters are
    a plain ``{name: value}`` accumulator for events too frequent or
    too small to deserve a span (kernel costings, emitted kernels,
    device transitions).
    """

    def __init__(self, clock=time.perf_counter):
        self.spans: list[Span] = []
        self.counters: dict[str, float] = {}
        self._clock = clock
        self._stack: list[int] = []
        self._origin = clock()

    # -- Recording ----------------------------------------------------------

    @contextmanager
    def span(self, name: str, **tags):
        """Time a region; nests under the innermost open span.

        A raising body still closes the span (the ``finally``) and tags
        it ``status=error`` — so an aborted run's trace shows *where*
        it died instead of a forever-open span with no end time.
        """
        index = len(self.spans)
        parent = self._stack[-1] if self._stack else -1
        record = Span(name=name, index=index, parent=parent,
                      depth=len(self._stack),
                      start=self._clock() - self._origin, tags=tags)
        self.spans.append(record)
        self._stack.append(index)
        try:
            yield record
        except BaseException:
            record.tags.setdefault("status", "error")
            raise
        finally:
            self._stack.pop()
            record.end = self._clock() - self._origin

    def count(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to the named counter."""
        self.counters[name] = self.counters.get(name, 0.0) + value

    # -- Introspection ------------------------------------------------------

    def children(self, index: int) -> list:
        return [s for s in self.spans if s.parent == index]

    def roots(self) -> list:
        return [s for s in self.spans if s.parent == -1]

    def self_time(self, span: Span) -> float:
        """Span duration minus the time spent in direct children."""
        return span.duration - sum(c.duration
                                   for c in self.children(span.index))

    def total_time(self) -> float:
        return sum(s.duration for s in self.roots())

    def find(self, name: str) -> list:
        return [s for s in self.spans if s.name == name]


def maybe_span(tracer, name: str, **tags):
    """``tracer.span(...)`` when tracing, a no-op context otherwise."""
    if tracer is None:
        return nullcontext()
    return tracer.span(name, **tags)
