"""Performance baselines and regression checking.

``anaheim-repro bench`` writes one ``BENCH_<workload>.json`` per
workload/configuration; ``anaheim-repro bench --check`` re-runs the
model and compares every recorded metric against the baseline with a
relative tolerance, exiting nonzero on regression.  Because the
performance model is deterministic, an unchanged tree reproduces its
baseline exactly — any drift is a real modeling change.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.core.scheduler import ScheduleReport
from repro.obs.export import write_json
from repro.obs.provenance import environment_info

#: Metrics recorded in a baseline and compared by ``check``.
BASELINE_METRICS = ("total_time", "gpu_time", "pim_time",
                    "transition_time", "energy", "edp", "gpu_dram_bytes")


@dataclass(frozen=True)
class BaselineRegression:
    """One metric outside tolerance."""

    metric: str
    baseline: float
    current: float
    tolerance: float

    @property
    def ratio(self) -> float:
        return self.current / self.baseline if self.baseline else float("inf")

    def describe(self) -> str:
        return (f"{self.metric}: baseline {self.baseline:.6g} -> "
                f"current {self.current:.6g} ({self.ratio:+.2%} of baseline, "
                f"tolerance ±{self.tolerance:.0%})".replace("+", ""))


def baseline_path(directory, workload: str) -> Path:
    return Path(directory) / f"BENCH_{workload}.json"


def baseline_metrics(report: ScheduleReport) -> dict:
    return {name: getattr(report, name) if hasattr(report, name)
            else None for name in BASELINE_METRICS}


def write_baseline_metrics(directory, workload: str, metrics: dict,
                           config: dict | None = None,
                           extra: dict | None = None) -> Path:
    """Write a ``BENCH_<workload>.json`` from an explicit metrics dict.

    The report-based :func:`write_baseline` delegates here; functional
    (wall-clock) benchmarks that have no ``ScheduleReport`` call this
    directly.
    """
    path = baseline_path(directory, workload)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "workload": workload,
        "config": config or {},
        "environment": environment_info(),
        "metrics": metrics,
    }
    document.update(extra or {})
    write_json(path, document)
    return path


def write_baseline(directory, workload: str, report: ScheduleReport,
                   config: dict | None = None) -> Path:
    return write_baseline_metrics(directory, workload,
                                  baseline_metrics(report), config=config)


def load_baseline(directory, workload: str) -> dict:
    with open(baseline_path(directory, workload)) as fh:
        return json.load(fh)


def check_baseline_metrics(baseline: dict, current: dict,
                           tolerance: float = 0.02) -> list:
    """Regressions of a current metrics dict against a stored baseline.

    A metric regresses when it deviates from the baseline by more than
    ``tolerance`` *in either direction* — an unexplained speedup is as
    suspicious as a slowdown in a deterministic model.  (Wall-clock
    benchmarks are *not* deterministic; pass a generous tolerance.)
    """
    regressions = []
    for metric, reference in baseline.get("metrics", {}).items():
        value = current.get(metric)
        if value is None or reference is None:
            continue
        if reference == 0:
            deviation = 0.0 if value == 0 else float("inf")
        else:
            deviation = abs(value - reference) / abs(reference)
        if deviation > tolerance:
            regressions.append(BaselineRegression(
                metric=metric, baseline=reference, current=value,
                tolerance=tolerance))
    return regressions


def check_baseline(baseline: dict, report: ScheduleReport,
                   tolerance: float = 0.02) -> list:
    return check_baseline_metrics(baseline, baseline_metrics(report),
                                  tolerance=tolerance)


# -- Run history ---------------------------------------------------------------
#
# Baselines answer "did this run regress against the pinned reference";
# the history answers "how has this metric *moved*" — every bench run
# appends one JSONL line to ``history/<workload>.jsonl`` next to the
# baseline file, and ``bench --history`` renders the trend.


def history_path(directory, workload: str) -> Path:
    return Path(directory) / "history" / f"{workload}.jsonl"


def append_history(directory, workload: str, metrics: dict,
                   config: dict | None = None,
                   timestamp: str | None = None) -> Path:
    """Append one bench run's metrics to the workload's history file."""
    path = history_path(directory, workload)
    path.parent.mkdir(parents=True, exist_ok=True)
    entry = {"workload": workload, "config": config or {},
             "git_sha": environment_info()["git_sha"],
             "metrics": metrics}
    if timestamp is not None:
        entry["timestamp"] = timestamp
    with open(path, "a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return path


def load_history(directory, workload: str) -> list:
    """All recorded runs, oldest first; [] when no history exists."""
    path = history_path(directory, workload)
    if not path.exists():
        return []
    entries = []
    with open(path) as fh:
        for line in fh:
            if line.strip():
                entries.append(json.loads(line))
    return entries


def _format_delta(current, reference):
    if current is None or reference is None:
        return "-"
    if reference == 0:
        return "-" if current == 0 else "new"
    return f"{(current / reference - 1.0):+.2%}"


def render_history(entries: list, baseline: dict | None = None,
                   metrics=("total_time", "energy", "edp")) -> str:
    """Trend table: each run's metrics with delta vs the previous run,
    and (when a baseline document is given) delta vs the baseline."""
    if not entries:
        return "no history recorded"
    base_metrics = (baseline or {}).get("metrics", {})
    lines = []
    header = ["run", "sha"]
    for name in metrics:
        header += [name, "vs prev", "vs base"]
    widths = None
    rows = []
    previous = None
    for i, entry in enumerate(entries):
        values = entry.get("metrics", {})
        row = [str(i), (entry.get("git_sha") or "-")[:9]]
        for name in metrics:
            value = values.get(name)
            row.append("-" if value is None else f"{value:.6g}")
            row.append(_format_delta(
                value, (previous or {}).get(name)))
            row.append(_format_delta(value, base_metrics.get(name)))
        rows.append(row)
        previous = values
    widths = [max(len(header[i]), *(len(r[i]) for r in rows))
              for i in range(len(header))]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        lines.append("  ".join(c.rjust(w) if i > 1 else c.ljust(w)
                               for i, (c, w) in enumerate(zip(row,
                                                              widths))))
    return "\n".join(lines)
