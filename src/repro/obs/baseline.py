"""Performance baselines and regression checking.

``anaheim-repro bench`` writes one ``BENCH_<workload>.json`` per
workload/configuration; ``anaheim-repro bench --check`` re-runs the
model and compares every recorded metric against the baseline with a
relative tolerance, exiting nonzero on regression.  Because the
performance model is deterministic, an unchanged tree reproduces its
baseline exactly — any drift is a real modeling change.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.core.scheduler import ScheduleReport
from repro.obs.export import write_json
from repro.obs.provenance import environment_info

#: Metrics recorded in a baseline and compared by ``check``.
BASELINE_METRICS = ("total_time", "gpu_time", "pim_time",
                    "transition_time", "energy", "edp", "gpu_dram_bytes")


@dataclass(frozen=True)
class BaselineRegression:
    """One metric outside tolerance."""

    metric: str
    baseline: float
    current: float
    tolerance: float

    @property
    def ratio(self) -> float:
        return self.current / self.baseline if self.baseline else float("inf")

    def describe(self) -> str:
        return (f"{self.metric}: baseline {self.baseline:.6g} -> "
                f"current {self.current:.6g} ({self.ratio:+.2%} of baseline, "
                f"tolerance ±{self.tolerance:.0%})".replace("+", ""))


def baseline_path(directory, workload: str) -> Path:
    return Path(directory) / f"BENCH_{workload}.json"


def baseline_metrics(report: ScheduleReport) -> dict:
    return {name: getattr(report, name) if hasattr(report, name)
            else None for name in BASELINE_METRICS}


def write_baseline_metrics(directory, workload: str, metrics: dict,
                           config: dict | None = None,
                           extra: dict | None = None) -> Path:
    """Write a ``BENCH_<workload>.json`` from an explicit metrics dict.

    The report-based :func:`write_baseline` delegates here; functional
    (wall-clock) benchmarks that have no ``ScheduleReport`` call this
    directly.
    """
    path = baseline_path(directory, workload)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "workload": workload,
        "config": config or {},
        "environment": environment_info(),
        "metrics": metrics,
    }
    document.update(extra or {})
    write_json(path, document)
    return path


def write_baseline(directory, workload: str, report: ScheduleReport,
                   config: dict | None = None) -> Path:
    return write_baseline_metrics(directory, workload,
                                  baseline_metrics(report), config=config)


def load_baseline(directory, workload: str) -> dict:
    with open(baseline_path(directory, workload)) as fh:
        return json.load(fh)


def check_baseline_metrics(baseline: dict, current: dict,
                           tolerance: float = 0.02) -> list:
    """Regressions of a current metrics dict against a stored baseline.

    A metric regresses when it deviates from the baseline by more than
    ``tolerance`` *in either direction* — an unexplained speedup is as
    suspicious as a slowdown in a deterministic model.  (Wall-clock
    benchmarks are *not* deterministic; pass a generous tolerance.)
    """
    regressions = []
    for metric, reference in baseline.get("metrics", {}).items():
        value = current.get(metric)
        if value is None or reference is None:
            continue
        if reference == 0:
            deviation = 0.0 if value == 0 else float("inf")
        else:
            deviation = abs(value - reference) / abs(reference)
        if deviation > tolerance:
            regressions.append(BaselineRegression(
                metric=metric, baseline=reference, current=value,
                tolerance=tolerance))
    return regressions


def check_baseline(baseline: dict, report: ScheduleReport,
                   tolerance: float = 0.02) -> list:
    return check_baseline_metrics(baseline, baseline_metrics(report),
                                  tolerance=tolerance)
