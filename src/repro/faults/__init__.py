"""Fault injection, detection, and recovery (verify -> retry -> fallback).

The subsystem has three layers:

* **Plans** (:mod:`repro.faults.plan`): deterministic, seedable fault
  plans — which fault models fire, at what rate, at which sites.
* **Injection + detection**: :mod:`repro.faults.inject` corrupts both
  real residue words (functional layer) and symbolic kernel executions
  (analytic layer); :mod:`repro.faults.checksum` provides the residue
  checksums that catch the corruption.
* **Recovery**: :mod:`repro.faults.guard` wraps the functional RNS
  kernels, :class:`repro.core.scheduler.ResilientScheduler` wraps the
  analytic timeline; both implement bounded retry, GPU fallback, and
  site quarantine.  :mod:`repro.faults.campaign` runs whole campaigns
  and reports coverage/overhead.

Exports resolve lazily (PEP 562): the numeric layer imports
``repro.faults.guard`` on its hot path, and an eager package import
would close a cycle through :mod:`repro.pim`.
"""

_EXPORTS = {
    "FaultModel": "repro.faults.plan",
    "FaultSpec": "repro.faults.plan",
    "FaultPlan": "repro.faults.plan",
    "default_plan": "repro.faults.plan",
    "DEFAULT_RATES": "repro.faults.plan",
    "PIM_MODELS": "repro.faults.plan",
    "PERSISTENT_MODELS": "repro.faults.plan",
    "FaultEvent": "repro.faults.events",
    "FaultLog": "repro.faults.events",
    "FaultInjector": "repro.faults.inject",
    "StuckRegion": "repro.faults.inject",
    "gpu_equivalent": "repro.faults.fallback",
    "limb_checksum": "repro.faults.checksum",
    "checksum_add": "repro.faults.checksum",
    "checksum_sub": "repro.faults.checksum",
    "checksum_neg": "repro.faults.checksum",
    "checksum_scalar_mul": "repro.faults.checksum",
    "checksum_mul_pairs": "repro.faults.checksum",
    "mismatched_limbs": "repro.faults.checksum",
    "residues_in_range": "repro.faults.checksum",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module 'repro.faults' has no attribute {name!r}")
    import importlib
    return getattr(importlib.import_module(module), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
