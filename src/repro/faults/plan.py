"""Fault campaign specification: fault model x rate x site.

A :class:`FaultPlan` is a deterministic, seedable description of a
fault-injection campaign.  Every random decision an injector makes is
drawn from a generator derived from ``(plan.seed, stream key)`` by
hashing, so two runs of the same plan inject byte-identical faults —
campaigns are reproducible and their results comparable across code
changes.  ``digest()`` canonicalizes the whole plan to a SHA-256 so run
manifests can tell traced runs with and without (or with different)
injection apart.

The fault models map onto Anaheim's near-bank microarchitecture
(§VI-A/B): transient bit flips in the PIM unit's data buffer or on an
MMAC lane output, stuck-at cells scoped to a (bank, PolyGroup) row/
column region, dropped or duplicated compound PIM instructions in the
command stream, corrupted GPU kernel outputs, and lost transfer
segments on the GPU<->DRAM path.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ParameterError


class FaultModel(enum.Enum):
    """Where and how a fault manifests."""

    PIM_BITFLIP_BUFFER = "pim-bitflip-buffer"   # data-buffer entry bit flip
    PIM_BITFLIP_MMAC = "pim-bitflip-mmac"       # MMAC lane output bit flip
    PIM_STUCK_AT = "pim-stuck-at"               # persistent cell fault in a
    #                                             (bank, PolyGroup) region
    PIM_INSTR_DROP = "pim-instr-drop"           # compound instruction skipped
    PIM_INSTR_DUP = "pim-instr-dup"             # compound instruction re-run
    GPU_OUTPUT = "gpu-output"                   # corrupted GPU kernel output
    TRANSFER_LOST = "transfer-lost"             # lost writeback/transfer chunk


#: Models that corrupt a PIM-side result (the detection-coverage
#: denominator of a campaign counts these).
PIM_MODELS = frozenset({
    FaultModel.PIM_BITFLIP_BUFFER, FaultModel.PIM_BITFLIP_MMAC,
    FaultModel.PIM_STUCK_AT, FaultModel.PIM_INSTR_DROP,
    FaultModel.PIM_INSTR_DUP,
})

#: Models that persist at a site: retrying on the same hardware hits the
#: same fault again, so recovery must reroute instead of re-execute.
PERSISTENT_MODELS = frozenset({FaultModel.PIM_STUCK_AT})

#: PIM instructions that accumulate into their outputs; re-running one
#: of these (a duplicated command) corrupts the result, while re-running
#: a pure function of its inputs is benign.
ACCUMULATING_INSTRUCTIONS = frozenset({
    "MAC", "PMAC", "CMAC", "PAccum", "CAccum",
})


@dataclass(frozen=True)
class FaultSpec:
    """One fault model with its rate and (optionally) a site scope.

    ``rate`` is a per-opportunity probability: per element-wise kernel
    for the transient models, per transfer kernel for
    ``TRANSFER_LOST``.  Site-scoped models (``PIM_STUCK_AT``) instead
    name the affected sites explicitly: the fault fires on every kernel
    mapped to one of ``sites`` until the site is quarantined.
    """

    model: FaultModel
    rate: float = 0.0
    sites: tuple = ()
    bit: int = 12            # flipped / stuck bit position inside a word
    stuck_value: int = 1     # 0 or 1 for stuck-at faults

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ParameterError(f"fault rate {self.rate} outside [0, 1]")
        if not 0 <= self.bit < 32:
            raise ParameterError(f"fault bit {self.bit} outside a 32b word")
        if self.stuck_value not in (0, 1):
            raise ParameterError("stuck_value must be 0 or 1")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded campaign: fault specs plus the recovery policy knobs.

    ``n_sites`` partitions PIM work into bank-region sites for stuck-at
    scoping and quarantine bookkeeping; ``max_attempts`` bounds retries
    per kernel before falling back to GPU re-execution;
    ``quarantine_threshold`` is how many fallbacks a site absorbs before
    subsequent kernels are rerouted around it entirely.
    """

    seed: int = 0
    specs: tuple = ()
    max_attempts: int = 3
    allow_fallback: bool = True
    quarantine_threshold: int = 3
    n_sites: int = 32
    #: Modeled verification cost for a PIM kernel, as a fraction of the
    #: kernel's own time (checksum lanes ride the existing stream).
    pim_verify_overhead: float = 0.02

    def __post_init__(self):
        if self.max_attempts < 0:
            raise ParameterError("max_attempts must be >= 0")
        if self.n_sites < 1:
            raise ParameterError("need at least one PIM site")
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise ParameterError("specs must be FaultSpec instances")

    # -- Lookup --------------------------------------------------------------

    def spec_for(self, model: FaultModel):
        for spec in self.specs:
            if spec.model is model:
                return spec
        return None

    def rate(self, model: FaultModel) -> float:
        spec = self.spec_for(model)
        return spec.rate if spec is not None else 0.0

    def stuck_sites(self) -> tuple:
        spec = self.spec_for(FaultModel.PIM_STUCK_AT)
        return tuple(spec.sites) if spec is not None else ()

    # -- Determinism ---------------------------------------------------------

    def canonical(self) -> dict:
        """JSON-safe canonical form (the digest input)."""
        return {
            "seed": self.seed,
            "specs": [{"model": s.model.value, "rate": s.rate,
                       "sites": list(s.sites), "bit": s.bit,
                       "stuck_value": s.stuck_value}
                      for s in self.specs],
            "max_attempts": self.max_attempts,
            "allow_fallback": self.allow_fallback,
            "quarantine_threshold": self.quarantine_threshold,
            "n_sites": self.n_sites,
            "pim_verify_overhead": self.pim_verify_overhead,
        }

    def digest(self) -> str:
        """SHA-256 over the canonical JSON encoding of the plan."""
        blob = json.dumps(self.canonical(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def rng(self, *key) -> np.random.Generator:
        """A generator derived deterministically from (seed, key)."""
        material = json.dumps([self.seed] + [str(k) for k in key])
        word = int.from_bytes(
            hashlib.sha256(material.encode()).digest()[:8], "little")
        return np.random.default_rng(word)


#: Default per-kernel rates: high enough that a bootstrap-sized
#: campaign (~5k element-wise kernels) injects tens of faults, low
#: enough that recovery traffic stays a small share of the timeline.
DEFAULT_RATES = {
    FaultModel.PIM_BITFLIP_BUFFER: 4e-3,
    FaultModel.PIM_BITFLIP_MMAC: 4e-3,
    FaultModel.PIM_INSTR_DROP: 2e-3,
    FaultModel.PIM_INSTR_DUP: 2e-3,
    FaultModel.GPU_OUTPUT: 1e-3,
    FaultModel.TRANSFER_LOST: 1e-3,
}


def default_plan(seed: int = 0, scale: float = 1.0,
                 models=None, stuck_sites: tuple = (),
                 **policy) -> FaultPlan:
    """The default campaign: every transient model at its default rate
    (scaled by ``scale``), plus stuck-at faults on ``stuck_sites``."""
    chosen = set(models) if models is not None else set(DEFAULT_RATES)
    specs = [FaultSpec(model=m, rate=min(1.0, r * scale))
             for m, r in DEFAULT_RATES.items() if m in chosen]
    if stuck_sites:
        specs.append(FaultSpec(model=FaultModel.PIM_STUCK_AT,
                               sites=tuple(stuck_sites)))
    return FaultPlan(seed=seed, specs=tuple(specs), **policy)
