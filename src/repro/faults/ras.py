"""Memory RAS: SEC-DED ECC, retention-aware scrubbing, spare remapping.

Two cooperating pieces close the gap between fault *injection*
(:mod:`repro.faults.inject`) and a PIM part that *survives* its own
DRAM physics:

* :class:`SecDedCode` — an extended-Hamming SEC-DED code over the
  32-bit RNS limb-plane words the PIM banks store.  Single-bit flips
  are corrected exactly; double-bit flips are detected and **never**
  miscorrected (a provable property of the extended code, pinned by a
  Hypothesis test); three or more flips can slip through or miscorrect,
  and those escapes are exactly what the existing residue-checksum
  guard (:mod:`repro.faults.checksum`) catches — the two layers
  compose into a detection story with no silent gap for any
  single-word corruption.

* :class:`RasEngine` — drives the retention/wear model of
  :class:`repro.dram.reliability.ReliabilityConfig` on the simulated
  clock inside :class:`~repro.core.scheduler.ResilientScheduler`:
  errors accrue per region with time-since-scrub and wear, a scrubber
  sweeps every region each ``scrub_interval_s`` (idle-opportunistic
  passes ride PIM-idle windows for free; the rest are charged through
  :mod:`repro.dram.timing`), ECC corrections/detections/escapes are
  resolved per kernel access, and regions that leak correctable errors
  past ``remap_threshold`` are predictively migrated to spare regions
  (migration charged on the timeline, stuck-at faults in the retired
  region neutralized).  Sustained uncorrectable rates feed the
  :class:`~repro.serving.health.HealthMonitor` memory-pressure input
  and degrade PIM -> GPU like any other fault storm.

The engine is a pure function of its config and the kernel schedule:
per-region RNG streams are consumed in timeline order, so same-seed
runs are byte-identical for any worker count.  Scrub, repair,
correction, and migration charge simulated *time* only (no energy
model is attached to maintenance traffic).
"""

from __future__ import annotations

from repro.dram.reliability import RegionState, ReliabilityConfig
from repro.dram.timing import HBM2_TIMING, DramTiming

__all__ = ["SecDedCode", "RasEngine"]


class SecDedCode:
    """Extended Hamming SEC-DED over ``data_bits``-bit words.

    The codeword has ``data_bits`` data bits at the non-power-of-two
    positions ``1..n``, Hamming check bits at the power-of-two
    positions, and an overall-parity bit at position 0 — 39 bits total
    for the default 32-bit RNS residue word.  :meth:`decode` returns
    ``(word, status)`` with status one of ``"ok"``, ``"corrected"``,
    or ``"detected"``.
    """

    def __init__(self, data_bits: int = 32):
        if data_bits < 1:
            raise ValueError("data_bits must be >= 1")
        self.data_bits = data_bits
        r = 0
        while (1 << r) < data_bits + r + 1:
            r += 1
        self.check_bits = r
        #: Hamming length: positions 1..n carry data + check bits.
        self.n = data_bits + r
        #: Total codeword width including the overall-parity bit.
        self.codeword_bits = self.n + 1
        self._data_pos = tuple(
            p for p in range(1, self.n + 1) if p & (p - 1) != 0)
        self._check_pos = tuple(1 << i for i in range(r))

    def encode(self, word: int) -> int:
        """Codeword for ``word`` (bit i of the result = position i)."""
        if not 0 <= word < (1 << self.data_bits):
            raise ValueError(
                f"word out of range for {self.data_bits}-bit code")
        cw = 0
        for i, pos in enumerate(self._data_pos):
            if (word >> i) & 1:
                cw |= 1 << pos
        for check in self._check_pos:
            parity = 0
            for pos in range(1, self.n + 1):
                if pos & check and pos != check and (cw >> pos) & 1:
                    parity ^= 1
            cw |= parity << check
        overall = 0
        for pos in range(1, self.n + 1):
            overall ^= (cw >> pos) & 1
        return cw | overall

    def _extract(self, cw: int) -> int:
        word = 0
        for i, pos in enumerate(self._data_pos):
            if (cw >> pos) & 1:
                word |= 1 << i
        return word

    def decode(self, cw: int) -> "tuple[int, str]":
        """Decode a possibly corrupted codeword.

        * 0 flips -> ``("ok", word)``.
        * 1 flip  -> corrected exactly.
        * 2 flips -> ``"detected"`` always (even parity rules out the
          single-error hypothesis, so the decoder never miscorrects).
        * >= 3 flips -> may miscorrect (odd counts) or report
          ``"detected"``; either way the returned word can be wrong —
          the residue-checksum guard is the backstop.
        """
        syndrome = 0
        for pos in range(1, self.n + 1):
            if (cw >> pos) & 1:
                syndrome ^= pos
        parity = 0
        for pos in range(0, self.n + 1):
            parity ^= (cw >> pos) & 1
        if syndrome == 0 and parity == 0:
            return self._extract(cw), "ok"
        if parity == 1:
            # Odd flip count: assume a single error at the syndrome
            # position (0 means the overall-parity bit itself).
            if syndrome <= self.n:
                return self._extract(cw ^ (1 << syndrome)), "corrected"
            return self._extract(cw), "detected"
        return self._extract(cw), "detected"


class RasEngine:
    """Clock-driven retention, scrubbing, ECC, and spare remapping.

    One engine instance serves one scheduler run; the scheduler calls
    :meth:`before_kernel` ahead of every PIM kernel (scrubs due,
    operand-fetch ECC resolution, remap checks), :meth:`note_idle` for
    every GPU execution window (feeding the idle-opportunistic scrub
    budget), and :meth:`repair_items` when the checksum guard catches
    an ECC escape after execution.  All methods return
    ``(name, seconds)`` timeline items the scheduler charges as PIM
    segments.
    """

    def __init__(self, config: ReliabilityConfig,
                 timing: DramTiming = HBM2_TIMING,
                 tracer=None, metrics=None):
        self.config = config
        self.timing = timing
        self.tracer = tracer
        self.injector = None
        self.health = None
        self._m_corrected = None
        if metrics is not None:
            self._m_corrected = metrics.counter(
                "anaheim_ecc_corrected_total",
                "Single-bit errors corrected by SEC-DED")
            self._m_detected = metrics.counter(
                "anaheim_ecc_detected_total",
                "Double-bit errors detected (uncorrectable) by SEC-DED")
            self._m_scrubs = metrics.counter(
                "anaheim_scrub_passes_total",
                "Scrub passes by kind", labelnames=("kind",))
            self._m_remaps = metrics.counter(
                "anaheim_remap_total",
                "Region migrations to spares", labelnames=("reason",))
        self._regions: "dict[int, RegionState]" = {}
        self._next_scrub_s = config.scrub_interval_s
        self._idle_budget_s = 0.0
        self._pending_escapes: "dict[int, int]" = {}
        self._spares_flagged: "set[int]" = set()
        self.errors_total = 0
        self.corrected = 0
        self.detected = 0
        self.escaped = 0
        self.spares_used = 0
        self.spares_exhausted = 0
        self.scrub_passes = {"periodic": 0, "idle": 0, "demand": 0}
        self.remaps = {"predictive": 0, "uncorrectable": 0}
        self.remapped_sites: "list[int]" = []
        self.scrub_time_s = 0.0
        self.repair_time_s = 0.0
        self.correct_time_s = 0.0
        self.migration_time_s = 0.0
        self.idle_absorbed_s = 0.0

    def bind(self, injector, health) -> None:
        """Attach the run's fault injector (stuck-region neutralization
        on remap) and health monitor (memory-pressure input)."""
        self.injector = injector
        self.health = health

    # -- Error accrual -------------------------------------------------------

    def _region(self, site: int) -> RegionState:
        state = self._regions.get(site)
        if state is None:
            state = RegionState(stream=self.config.rng("region", site))
            self._regions[site] = state
        return state

    def _live_sites(self) -> "list[int]":
        return sorted(set(range(self.config.n_regions)) | set(self._regions))

    def _observe(self, site: int, now: float) -> "tuple[int, int, int]":
        """Draw the errors accrued in the region since it was last
        known clean, classify them, and reset its window."""
        cfg = self.config
        state = self._region(site)
        dt = now - state.last_clean_s
        state.last_clean_s = now
        if dt <= 0.0:
            return 0, 0, 0
        lam = cfg.retention_rate * dt * (1.0 + cfg.wear_factor * state.wear)
        n = int(state.stream.poisson(lam))
        if n == 0:
            return 0, 0, 0
        u = state.stream.random(n)
        escapes = int((u < cfg.escape_fraction).sum())
        doubles = int(((u >= cfg.escape_fraction)
                       & (u < cfg.escape_fraction
                          + cfg.multi_bit_fraction)).sum())
        singles = n - doubles - escapes
        state.corrected += singles
        state.detected += doubles
        state.escaped += escapes
        self.errors_total += n
        self.corrected += singles
        self.detected += doubles
        self.escaped += escapes
        if self._m_corrected is not None:
            if singles:
                self._m_corrected.inc(singles)
            if doubles:
                self._m_detected.inc(doubles)
        if self.health is not None:
            for _ in range(doubles + escapes):
                self.health.note_uncorrectable(site, now)
        return singles, doubles, escapes

    # -- Maintenance actions -------------------------------------------------

    def _count_scrub(self, kind: str, passes: int = 1) -> None:
        self.scrub_passes[kind] += passes
        if self._m_corrected is not None:
            self._m_scrubs.inc(passes, kind=kind)
        if self.tracer is not None:
            self.tracer.count(f"scheduler.ras.scrub.{kind}", passes)

    def _repair(self, items: list) -> None:
        """One demand rewrite of a region from redundant data."""
        cost = self.config.scrub_pass_s(self.timing)
        self.repair_time_s += cost
        items.append(("ras.repair", cost))
        self._count_scrub("demand")

    def _maybe_remap(self, site: int, now: float, items: list) -> None:
        cfg = self.config
        state = self._region(site)
        if state.corrected >= cfg.remap_threshold:
            reason = "predictive"
        elif state.uncorrectable >= cfg.uncorrectable_remap_threshold:
            reason = "uncorrectable"
        else:
            return
        if self.spares_used >= cfg.spare_regions:
            if site not in self._spares_flagged:
                self._spares_flagged.add(site)
                self.spares_exhausted += 1
                if self.tracer is not None:
                    self.tracer.count("scheduler.ras.spares_exhausted")
            return
        cost = cfg.migration_s(self.timing)
        self.migration_time_s += cost
        items.append(("ras.remap", cost))
        self.spares_used += 1
        self.remaps[reason] += 1
        self.remapped_sites.append(site)
        if self._m_corrected is not None:
            self._m_remaps.inc(reason=reason)
        if self.tracer is not None:
            self.tracer.count(f"scheduler.ras.remap.{reason}")
        if self.injector is not None:
            self.injector.retire_site(site)
        # The spare starts fresh: health counters and wear reset, the
        # remapped flag records that this logical region now lives in
        # a spare physical region.
        state.wear = 0
        state.corrected = 0
        state.detected = 0
        state.escaped = 0
        state.remapped = True
        state.last_clean_s = now

    def _scrub_due(self, now: float, items: list) -> None:
        """Run every full scrub pass due at or before ``now``.  Passes
        that fit in the accumulated PIM-idle budget are free
        (``kind="idle"``); the rest charge the timeline."""
        cfg = self.config
        per_region = cfg.scrub_pass_s(self.timing)
        while self._next_scrub_s <= now:
            pass_time = self._next_scrub_s
            self._next_scrub_s += cfg.scrub_interval_s
            sites = self._live_sites()
            cost = per_region * len(sites)
            for site in sites:
                singles, doubles, escapes = self._observe(site, pass_time)
                # Scrub corrects singles in-stream; doubles are
                # rewritten from redundancy; the end-of-pass checksum
                # audit catches anything the ECC miscorrected.
                if doubles or escapes:
                    self._repair(items)
                self._maybe_remap(site, pass_time, items)
            absorbed = min(self._idle_budget_s, cost)
            self._idle_budget_s -= absorbed
            self.idle_absorbed_s += absorbed
            charged = cost - absorbed
            if charged > 0.0:
                self.scrub_time_s += charged
                items.append(("ras.scrub", charged))
                self._count_scrub("periodic")
            else:
                self._count_scrub("idle")

    # -- Scheduler hooks -----------------------------------------------------

    def note_idle(self, seconds: float) -> None:
        """PIM banks idled for ``seconds`` (a GPU execution window);
        grow the opportunistic scrub budget.  The bank is capped at one
        full sweep — idle time cannot be hoarded across passes, so
        aggressive scrub intervals show up as charged periodic time."""
        cap = (self.config.n_regions
               * self.config.scrub_pass_s(self.timing))
        self._idle_budget_s = min(self._idle_budget_s + seconds, cap)

    def before_kernel(self, site: int, now: float):
        """Maintenance due before a PIM kernel touches ``site``.

        Returns ``(items, escape)``: timeline items to charge, and
        whether an ECC escape corrupted the operands — the caller must
        re-execute after the checksum guard flags the result and then
        charge :meth:`repair_items`.
        """
        items: "list[tuple[str, float]]" = []
        self._scrub_due(now, items)
        state = self._region(site)
        state.wear += 1
        singles, doubles, escapes = self._observe(site, now)
        if singles:
            cost = singles * self.config.correction_time_s
            self.correct_time_s += cost
            items.append(("ras.correct", cost))
        if doubles:
            # ECC flags the operand fetch before execution starts: the
            # region is rewritten from redundancy and the kernel
            # proceeds on clean data — no recompute needed.
            self._repair(items)
        if escapes:
            self._pending_escapes[site] = (
                self._pending_escapes.get(site, 0) + escapes)
        self._maybe_remap(site, now, items)
        return items, bool(escapes)

    def repair_items(self, site: int, now: float):
        """Recovery charged after the checksum guard catches an ECC
        escape: rewrite the region, then the caller re-executes."""
        items: "list[tuple[str, float]]" = []
        self._pending_escapes.pop(site, None)
        self._repair(items)
        self._maybe_remap(site, now, items)
        return items

    # -- Reporting -----------------------------------------------------------

    def summary(self) -> dict:
        uncorrected = sum(self._pending_escapes.values())
        return {
            "config": self.config.canonical(),
            "config_digest": self.config.digest(),
            "errors_total": self.errors_total,
            "corrected": self.corrected,
            "detected": self.detected,
            "escaped": self.escaped,
            "uncorrected": uncorrected,
            "scrub_passes": dict(self.scrub_passes),
            "remaps": dict(self.remaps),
            "remapped_sites": list(self.remapped_sites),
            "spares_used": self.spares_used,
            "spares_total": self.config.spare_regions,
            "spares_exhausted": self.spares_exhausted,
            "scrub_time_s": self.scrub_time_s,
            "repair_time_s": self.repair_time_s,
            "correct_time_s": self.correct_time_s,
            "migration_time_s": self.migration_time_s,
            "idle_absorbed_s": self.idle_absorbed_s,
            "ras_time_s": (self.scrub_time_s + self.repair_time_s
                           + self.correct_time_s + self.migration_time_s),
        }
