"""Verify -> retry -> fallback guard for the functional numeric layer.

A :class:`FaultSession` wraps every element-wise RNS kernel
(:mod:`repro.ckks.rns` calls :meth:`FaultSession.elementwise` right
after computing a result).  The session plays the PIM side of the
story: it injects faults per the plan (bit flips in the buffered
operands or on the MMAC lane outputs, stuck cells at a site), verifies
the result against the residue-checksum algebra of the op, retries the
kernel a bounded number of times on transient failure, and falls back
to a clean "GPU" re-execution when retries are exhausted or the site's
fault is persistent.  Sites that keep failing are quarantined: later
kernels mapped there skip the PIM path entirely.

With no session attached the hot path pays a single ``is None`` check
per kernel (the module-level ``ACTIVE`` slot), keeping the PR-2 fast
kernels at full speed.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro.ckks import instrument
from repro.errors import FaultError
from repro.faults import checksum as cks
from repro.faults.inject import FaultInjector
from repro.faults.plan import FaultModel, FaultPlan

#: The active functional-layer session, or None (the fast path).
ACTIVE: "FaultSession | None" = None


class FaultSession:
    """Injection + verification state for one functional campaign."""

    def __init__(self, plan: FaultPlan, injector: FaultInjector | None = None):
        self.plan = plan
        self.injector = injector if injector is not None else FaultInjector(
            plan)
        self._op_index = 0

    @property
    def log(self):
        return self.injector.log

    # -- Checksum algebra per op --------------------------------------------

    def _expected(self, op: str, inputs, q_col: np.ndarray, scalars):
        if op == "add":
            return cks.checksum_add(cks.limb_checksum(inputs[0], q_col),
                                    cks.limb_checksum(inputs[1], q_col),
                                    q_col)
        if op == "sub":
            return cks.checksum_sub(cks.limb_checksum(inputs[0], q_col),
                                    cks.limb_checksum(inputs[1], q_col),
                                    q_col)
        if op == "neg":
            return cks.checksum_neg(cks.limb_checksum(inputs[0], q_col),
                                    q_col)
        if op == "mul":
            return cks.checksum_mul_pairs(inputs[0], inputs[1], q_col)
        if op == "scalar":
            return cks.checksum_scalar_mul(scalars,
                                           cks.limb_checksum(inputs[0],
                                                             q_col), q_col)
        raise FaultError(f"no checksum algebra for op {op!r}")

    # -- Injection per attempt ----------------------------------------------

    def _inject(self, out: np.ndarray, op: str, site: int):
        injector = self.injector
        if injector.is_stuck(site):
            detail = injector.stick_word(out, site)
            if detail is None:
                return None        # latent: stored bits equal the stuck value
            return injector.event(FaultModel.PIM_STUCK_AT, op,
                                  "functional", site=site, **detail)
        for model in (FaultModel.PIM_BITFLIP_BUFFER,
                      FaultModel.PIM_BITFLIP_MMAC):
            if injector.draw(model):
                detail = injector.flip_word(out, model)
                return injector.event(model, op, "functional", site=site,
                                      **detail)
        return None

    # -- The guard ----------------------------------------------------------

    def elementwise(self, op: str, inputs, out: np.ndarray,
                    q_col: np.ndarray, recompute, scalars=None) -> None:
        """Guard one element-wise kernel whose clean result is ``out``.

        ``recompute`` re-fills ``out`` with the clean result (the
        simulated re-execution); injection draws are fresh per attempt,
        so retried kernels can fault again.
        """
        plan = self.plan
        injector = self.injector
        site = injector.site_for(self._op_index)
        self._op_index += 1
        if injector.is_quarantined(site):
            # PIM site is out of rotation: the clean result stands in
            # for the rerouted GPU execution.
            injector.note_reroute()
            instrument.count("faults.rerouted")
            return
        expected = self._expected(op, inputs, q_col, scalars)
        event = None
        attempts = 0
        while True:
            injected = self._inject(out, op, site)
            if injected is not None:
                event = injected
                instrument.count("faults.injected")
            if not cks.mismatched_limbs(out, expected, q_col).any():
                if event is not None and event.recovery is None \
                        and not event.detected:
                    # A corruption that left every checksum intact would
                    # be a silent escape; single-word faults cannot, but
                    # account for the path anyway.
                    event.benign = True
                break
            # Mismatch: the fault (this attempt's or a persistent one)
            # is detected.
            if event is not None:
                event.detected = True
                event.attempts = attempts + 1
            instrument.count("faults.detected")
            attempts += 1
            if (attempts <= plan.max_attempts
                    and not injector.is_stuck(site)):
                recompute(out)
                if event is not None:
                    event.recovery = "retry"
                instrument.count("faults.retries")
                continue
            if not plan.allow_fallback:
                raise FaultError(
                    f"kernel {op!r} at site {site} failed "
                    f"{attempts} attempt(s) and fallback is disabled")
            recompute(out)
            if event is not None:
                event.recovery = "fallback"
            instrument.count("faults.fallbacks")
            if injector.record_site_failure(site):
                instrument.count("faults.quarantined_sites")
            break


@contextmanager
def session(plan: FaultPlan, injector: FaultInjector | None = None):
    """Attach a functional fault session for the duration of a block."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = FaultSession(plan, injector=injector)
    try:
        yield ACTIVE
    finally:
        ACTIVE = previous
