"""GPU re-execution equivalents for PIM kernels.

When a PIM site is quarantined (or a detected fault exhausts its retry
budget), the recovery policy reroutes the kernel back to the GPU.  The
GPU equivalent of a Table II PIM kernel is an element-wise roofline
kernel with the same modular-op count and the polynomial traffic the
instruction's operands imply — exactly what the lowering would have
emitted had the kernel never been offloaded (§V-C).
"""

from __future__ import annotations

from repro.core.trace import GpuKernel, OpCategory, PimKernel
from repro.pim import isa

WORD_BYTES = 4


def gpu_equivalent(kernel: PimKernel) -> GpuKernel:
    """The GPU kernel that recomputes one PIM kernel's outputs."""
    inst = isa.instruction(kernel.instruction)
    fan_in = kernel.fan_in
    volume = kernel.limbs * kernel.degree * WORD_BYTES
    ops = kernel.limbs * kernel.degree * inst.ops_per_element * (
        fan_in if inst.compound else 1)
    return GpuKernel(
        name=f"{kernel.name}.gpu-fallback",
        category=OpCategory.ELEMENTWISE,
        mod_ops=float(ops),
        bytes_read=float(inst.read_polys(fan_in) * volume),
        bytes_written=float(inst.writes * volume),
        tags=frozenset({"fault-fallback"}),
    )
