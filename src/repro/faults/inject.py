"""Deterministic fault injector driven by a :class:`FaultPlan`.

One injector serves both execution layers: the *functional* numeric
pipeline asks it to corrupt real int64 residue words (bit flips, stuck
cells), and the *analytic* scheduler asks it for per-kernel fault draws
(which kernel's output is corrupt, which compound instruction dropped
or duplicated).  Every decision comes from a per-model generator
derived from the plan's seed, so a campaign is exactly reproducible.

The injector also owns the site bookkeeping the recovery policy needs:
per-site failure counts and the quarantine set that reroutes subsequent
kernels to the GPU once a bank region proves unreliable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.events import FaultEvent, FaultLog
from repro.faults.plan import (ACCUMULATING_INSTRUCTIONS, FaultModel,
                               FaultPlan)


@dataclass(frozen=True)
class StuckRegion:
    """A persistent cell fault covering a (bank, PolyGroup) footprint."""

    site: int
    base_row: int
    rows: int
    col_offset: int
    width: int
    bit: int = 12
    value: int = 1

    def covers(self, row: int, col: int) -> bool:
        return (self.base_row <= row < self.base_row + self.rows
                and self.col_offset <= col < self.col_offset + self.width)

    def apply(self, word: int) -> int:
        mask = 1 << self.bit
        return word | mask if self.value else word & ~mask


class FaultInjector:
    """Draws faults per the plan; records them in a :class:`FaultLog`."""

    def __init__(self, plan: FaultPlan, log: FaultLog | None = None):
        self.plan = plan
        self.log = log if log is not None else FaultLog()
        self._rngs = {model: plan.rng("model", model.value)
                      for model in FaultModel}
        self._site_failures: dict = {}
        self._quarantined: set = set()
        self._stuck_sites = frozenset(plan.stuck_sites())
        self._retired: set = set()
        self.stuck_regions: list = []

    # -- Bernoulli draws -----------------------------------------------------

    def draw(self, model: FaultModel) -> bool:
        rate = self.plan.rate(model)
        if rate <= 0.0:
            return False
        return bool(self._rngs[model].random() < rate)

    # -- Site bookkeeping ----------------------------------------------------

    def site_for(self, index: int) -> int:
        """Bank-region site a PIM kernel lands on (round-robin over the
        plan's site partition, mirroring the all-bank data mapping)."""
        return index % self.plan.n_sites

    def is_stuck(self, site: int) -> bool:
        return site in self._stuck_sites and site not in self._retired

    def retire_site(self, site: int) -> None:
        """The RAS layer remapped ``site`` to a spare region: stuck-at
        faults pinned to the retired physical region no longer fire
        (the spare's cells are healthy)."""
        self._retired.add(site)

    def is_quarantined(self, site) -> bool:
        return site in self._quarantined

    def record_site_failure(self, site) -> bool:
        """Count one fallback at ``site``; True if it just got quarantined."""
        if site is None:
            return False
        count = self._site_failures.get(site, 0) + 1
        self._site_failures[site] = count
        if (count >= self.plan.quarantine_threshold
                and site not in self._quarantined):
            self._quarantined.add(site)
            self.log.quarantined_sites.append(site)
            return True
        return False

    def note_reroute(self) -> None:
        self.log.rerouted += 1

    # -- Functional-layer corruption ----------------------------------------

    def flip_word(self, array: np.ndarray, model: FaultModel) -> dict:
        """Flip one random bit of one random word of ``array`` in place."""
        rng = self._rngs[model]
        flat = array.reshape(-1)
        index = int(rng.integers(flat.size))
        bit = int(rng.integers(32))
        flat[index] = int(flat[index]) ^ (1 << bit)
        return {"index": index, "bit": bit}

    def stick_word(self, array: np.ndarray, site: int) -> dict | None:
        """Apply the stuck-at spec to a site-deterministic word of
        ``array``; None when the stuck value equals the stored bits
        (the fault is latent and provably benign this access)."""
        spec = self.plan.spec_for(FaultModel.PIM_STUCK_AT)
        if spec is None:
            return None
        flat = array.reshape(-1)
        index = (site * 7919) % flat.size     # fixed cell per site
        mask = 1 << spec.bit
        before = int(flat[index])
        after = before | mask if spec.stuck_value else before & ~mask
        if after == before:
            return None
        flat[index] = after
        return {"index": index, "bit": spec.bit, "value": spec.stuck_value}

    def add_stuck_region(self, region: StuckRegion) -> None:
        self.stuck_regions.append(region)

    def apply_stuck_regions(self, site: int, row: int, col: int,
                            chunk: np.ndarray) -> bool:
        """Overlay stuck cells on a chunk read from (row, col); True if
        any word changed."""
        changed = False
        if site in self._retired:
            return False
        for region in self.stuck_regions:
            if region.site == site and region.covers(row, col):
                word = col % chunk.size       # one cell of the chunk
                before = int(chunk[word])
                after = region.apply(before)
                if after != before:
                    chunk[word] = after
                    changed = True
        return changed

    # -- Analytic-layer kernel draws ----------------------------------------

    def kernel_fault(self, device: str, category,
                     instruction: str | None = None,
                     site: int | None = None) -> FaultModel | None:
        """Which fault (if any) strikes one kernel execution.

        Fresh draws per call, so a retried kernel faces independent
        transient faults — but a stuck site fails every attempt until
        it is quarantined.
        """
        from repro.core.trace import OpCategory
        if device == "pim":
            if site is not None and self.is_stuck(site):
                return FaultModel.PIM_STUCK_AT
            for model in (FaultModel.PIM_BITFLIP_BUFFER,
                          FaultModel.PIM_BITFLIP_MMAC,
                          FaultModel.PIM_INSTR_DROP,
                          FaultModel.PIM_INSTR_DUP):
                if self.draw(model):
                    return model
            return None
        if category is OpCategory.TRANSFER:
            return FaultModel.TRANSFER_LOST if self.draw(
                FaultModel.TRANSFER_LOST) else None
        return FaultModel.GPU_OUTPUT if self.draw(
            FaultModel.GPU_OUTPUT) else None

    @staticmethod
    def fault_is_benign(model: FaultModel, instruction: str | None) -> bool:
        """A duplicated pure instruction recomputes the same output."""
        return (model is FaultModel.PIM_INSTR_DUP
                and instruction not in ACCUMULATING_INSTRUCTIONS)

    def event(self, model: FaultModel, op: str, layer: str,
              site: int | None = None, **detail) -> FaultEvent:
        return self.log.record(FaultEvent(
            model=model.value, op=op, layer=layer, site=site,
            detail=dict(detail)))
