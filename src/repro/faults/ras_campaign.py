"""The RAS campaign: retention-rate x scrub-interval grid.

Each **analytic cell** schedules a workload twice — clean, and with a
:class:`~repro.faults.ras.RasEngine` driving retention errors, ECC,
scrubbing, and spare remapping on the simulated clock — and reports
the uncorrected-error count and the time overhead.  The **functional
cell** replays the same two-layer story against real RNS words: the
shared bootstrap fixture runs under :class:`RasSession`, where every
retention event flips 1-3 bits of a SEC-DED codeword, ECC resolves
what it can, and only the escapes reach the residue-checksum guard.

The matrix gate pins the composition claim: **zero uncorrected errors
in every cell** (ECC + checksum leave no silent gap) and bounded
overhead at the default operating point.  Cells are pure functions of
their arguments, so ``workers > 1`` fans them out across a
:class:`~repro.parallel.WorkerPool` and the assembled document is
byte-identical to a serial sweep.
"""

from __future__ import annotations

import time

import numpy as np

from repro.dram.reliability import ReliabilityConfig
from repro.faults.guard import FaultSession
from repro.faults.plan import FaultModel, FaultPlan
from repro.faults.ras import SecDedCode

#: Grid axes swept by the default campaign.  The default operating
#: point (DEFAULT_RELIABILITY's rate and interval) is a grid cell, so
#: the pinned baseline reads straight off the surface.
DEFAULT_RETENTION_RATES = (200.0, 1000.0, 5000.0)
DEFAULT_SCRUB_INTERVALS = (2e-4, 1e-3, 5e-3)

#: Acceptance bound on the default cell's total RAS overhead.
OVERHEAD_BOUND = 0.05

#: Per-kernel exposure window of the functional model: converts the
#: analytic errors/second retention rate into a per-elementwise-kernel
#: event probability.
FUNCTIONAL_DT_S = 2e-5


class RasSession(FaultSession):
    """Functional fault session with a SEC-DED layer ahead of the
    residue-checksum guard.

    Every element-wise kernel faces one retention event with
    probability ``retention_rate * FUNCTIONAL_DT_S``; an event flips
    1, 2, or 3 bits (per the config's severity fractions) of the ECC
    codeword protecting one stored residue word.  Single-bit flips are
    corrected in place, double-bit flips are detected and repaired
    from redundancy before the kernel consumes them, and >= 3-bit
    escapes (possibly miscorrected by the decoder) corrupt the word
    for real — the inherited checksum verify catches those and drives
    the usual retry recovery.
    """

    def __init__(self, config: ReliabilityConfig):
        super().__init__(FaultPlan(seed=config.seed))
        self.config = config
        self.code = SecDedCode(32)
        self._rng = config.rng("functional")
        self.event_rate = min(0.05,
                              config.retention_rate * FUNCTIONAL_DT_S)
        self.events = 0
        self.ecc_corrected = 0
        self.ecc_detected = 0
        self.checksum_caught = 0

    def _inject(self, out: np.ndarray, op: str, site: int):
        injected = super()._inject(out, op, site)
        if injected is not None:
            return injected
        cfg = self.config
        rng = self._rng
        if rng.random() >= self.event_rate:
            return None
        self.events += 1
        severity = rng.random()
        if severity < cfg.escape_fraction:
            flips = 3
        elif severity < cfg.escape_fraction + cfg.multi_bit_fraction:
            flips = 2
        else:
            flips = 1
        flat = out.reshape(-1)
        index = int(rng.integers(flat.size))
        clean = int(flat[index]) & 0xFFFFFFFF
        codeword = self.code.encode(clean)
        for pos in rng.choice(self.code.codeword_bits, size=flips,
                              replace=False):
            codeword ^= 1 << int(pos)
        decoded, status = self.code.decode(codeword)
        if decoded == clean:
            # Data bits intact (flips confined to check bits, or
            # corrected exactly): the word the kernel consumes is clean.
            if status == "corrected":
                self.ecc_corrected += 1
            else:
                self.ecc_detected += 1
            return None
        if status == "detected":
            # ECC flagged the fetch; the word is rewritten from
            # redundancy before the kernel consumes it.
            self.ecc_detected += 1
            return None
        # Miscorrection: the decoder "fixed" a >= 3-bit pattern into
        # the wrong word.  The corruption is live — the checksum guard
        # below is the backstop.
        self.checksum_caught += 1
        flat[index] = decoded
        return self.injector.event(FaultModel.PIM_BITFLIP_BUFFER, op,
                                   "functional", site=site, index=index,
                                   flips=int(flips), ecc="escape")


def _record_ras_metrics(metrics, corrected: int, detected: int,
                        scrub_passes=None, remaps=None) -> None:
    if metrics is None:
        return
    if corrected:
        metrics.counter("anaheim_ecc_corrected_total",
                        "Single-bit errors corrected by SEC-DED").inc(
                            corrected)
    if detected:
        metrics.counter(
            "anaheim_ecc_detected_total",
            "Double-bit errors detected (uncorrectable) by SEC-DED").inc(
                detected)
    for kind, count in (scrub_passes or {}).items():
        if count:
            metrics.counter("anaheim_scrub_passes_total",
                            "Scrub passes by kind",
                            labelnames=("kind",)).inc(count, kind=kind)
    for reason, count in (remaps or {}).items():
        if count:
            metrics.counter("anaheim_remap_total",
                            "Region migrations to spares",
                            labelnames=("reason",)).inc(count,
                                                        reason=reason)


def run_analytic_ras(config: ReliabilityConfig, workload: str = "Boot",
                     gpu=None, pim=None, metrics=None) -> dict:
    """One analytic grid cell: clean vs RAS-enabled schedule."""
    from repro.core.framework import AnaheimFramework
    from repro.gpu.configs import A100_80GB
    from repro.pim.configs import A100_NEAR_BANK
    from repro.workloads.applications import PaperParams, build

    gpu = gpu if gpu is not None else A100_80GB
    pim = pim if pim is not None else A100_NEAR_BANK
    params = PaperParams()
    wl = build(workload, params)

    clean = AnaheimFramework(gpu, pim=pim).run(
        wl.blocks, params.degree, label=f"{workload} (clean)")
    guarded = AnaheimFramework(gpu, pim=pim, ras_config=config,
                               metrics=metrics).run(
        wl.blocks, params.degree, label=f"{workload} (ras)")

    clean_t = clean.report.total_time
    ras_t = guarded.report.total_time
    ras = guarded.report.fault_summary["ras"]
    return {
        "layer": "analytic",
        "workload": workload,
        "retention_rate": config.retention_rate,
        "scrub_interval_s": config.scrub_interval_s,
        "config_digest": config.digest(),
        "clean_time_s": clean_t,
        "guarded_time_s": ras_t,
        "overhead": ras_t / clean_t - 1.0 if clean_t else 0.0,
        "ras": ras,
    }


def run_functional_ras(config: ReliabilityConfig,
                       record_wall: bool = True, metrics=None) -> dict:
    """The functional validation cell: bootstrap under ECC + checksum.

    ``record_wall=False`` omits the wall-clock field so the result is
    a pure function of the config (the determinism contract).
    """
    from repro.ckks.fixture import bootstrap_fixture

    from repro.faults import guard

    fx = bootstrap_fixture()
    sess = RasSession(config)

    start = time.perf_counter()
    previous = guard.ACTIVE
    guard.ACTIVE = sess
    try:
        refreshed = fx.bts.bootstrap(fx.ct_low)
    finally:
        guard.ACTIVE = previous
    wall_s = time.perf_counter() - start

    refreshed.check_invariants()
    err = fx.decrypt_error(refreshed)
    summary = sess.log.summary()
    accounted = (sess.ecc_corrected + sess.ecc_detected
                 + sess.checksum_caught)
    result = {
        "layer": "functional",
        "seed": config.seed,
        "retention_rate": config.retention_rate,
        "config_digest": config.digest(),
        "events": sess.events,
        "ecc_corrected": sess.ecc_corrected,
        "ecc_detected": sess.ecc_detected,
        "checksum_caught": sess.checksum_caught,
        "unaccounted": sess.events - accounted,
        "summary": summary,
        "max_error": err,
        "decrypt_ok": err <= 1e-2,
    }
    if record_wall:
        result["wall_s"] = wall_s
    _record_ras_metrics(metrics, sess.ecc_corrected, sess.ecc_detected)
    return result


def ras_units(retention_rates=DEFAULT_RETENTION_RATES,
              scrub_intervals=DEFAULT_SCRUB_INTERVALS,
              base: ReliabilityConfig = None,
              functional: bool = True) -> list:
    """Ordered cells of one RAS matrix: the rate-major analytic grid,
    an explicit default cell when the grid misses the base operating
    point, and the functional validation cell."""
    base = base if base is not None else ReliabilityConfig()
    units = [("analytic", rate, interval)
             for rate in retention_rates
             for interval in scrub_intervals]
    if ("analytic", base.retention_rate, base.scrub_interval_s) \
            not in units:
        units.append(("analytic", base.retention_rate,
                      base.scrub_interval_s))
    if functional:
        units.append(("functional", base.retention_rate,
                      base.scrub_interval_s))
    return units


def ras_unit_key(kind: str, rate: float, interval: float) -> str:
    return f"{kind}/{rate:g}/{interval:g}"


def run_ras_unit(kind: str, rate: float, interval: float, *,
                 base: ReliabilityConfig = None, workload: str = "Boot",
                 record_wall: bool = True, gpu=None, pim=None,
                 metrics=None) -> dict:
    """Execute one matrix cell (fully determined by its arguments)."""
    base = base if base is not None else ReliabilityConfig()
    config = base.with_overrides(retention_rate=rate,
                                 scrub_interval_s=interval)
    if kind == "functional":
        return run_functional_ras(config, record_wall=record_wall,
                                  metrics=metrics)
    return run_analytic_ras(config, workload=workload, gpu=gpu, pim=pim,
                            metrics=metrics)


def _ras_pool_unit(task):
    """Worker-side RAS cell (module-level, hence picklable).  Metrics
    land in a fresh per-unit registry merged in unit order by the
    parent, keeping the merged snapshot byte-identical to a serial
    sweep."""
    (kind, rate, interval, base, workload, record_wall, gpu, pim,
     collect_metrics) = task
    from repro.obs.metrics import MetricsRegistry
    registry = MetricsRegistry() if collect_metrics else None
    result = run_ras_unit(kind, rate, interval, base=base,
                          workload=workload, record_wall=record_wall,
                          gpu=gpu, pim=pim, metrics=registry)
    return result, registry


def assemble_ras_matrix(results, retention_rates, scrub_intervals,
                        base: ReliabilityConfig, workload: str,
                        functional: bool,
                        overhead_bound: float = OVERHEAD_BOUND) -> dict:
    """The campaign document from per-unit results (a pure function
    of its inputs)."""
    def cell(rate, interval):
        return results[ras_unit_key("analytic", rate, interval)]

    surfaces = {"uncorrected": [], "overhead": [], "corrected": [],
                "scrub_time_s": [], "remaps": []}
    for rate in retention_rates:
        row = {key: [] for key in surfaces}
        for interval in scrub_intervals:
            c = cell(rate, interval)
            row["uncorrected"].append(c["ras"]["uncorrected"])
            row["overhead"].append(c["overhead"])
            row["corrected"].append(c["ras"]["corrected"])
            row["scrub_time_s"].append(c["ras"]["scrub_time_s"])
            row["remaps"].append(sum(c["ras"]["remaps"].values()))
        for key in surfaces:
            surfaces[key].append(row[key])

    default_cell = cell(base.retention_rate, base.scrub_interval_s)
    func_cell = (results.get(ras_unit_key(
        "functional", base.retention_rate, base.scrub_interval_s))
        if functional else None)

    violations = []
    for key, result in sorted(results.items()):
        if result["layer"] != "analytic":
            continue
        if result["ras"]["uncorrected"] != 0:
            violations.append(
                f"{key}: {result['ras']['uncorrected']} uncorrected "
                f"errors escaped both ECC and checksum recovery")
    if default_cell["overhead"] >= overhead_bound:
        violations.append(
            f"default cell overhead {default_cell['overhead']:.4f} "
            f">= bound {overhead_bound}")
    if func_cell is not None:
        if not func_cell["decrypt_ok"]:
            violations.append("functional: decrypt error over bound")
        if func_cell["summary"]["undetected"] != 0:
            violations.append("functional: undetected checksum escapes")
        if func_cell["summary"]["unrecovered"] != 0:
            violations.append("functional: unrecovered faults")
        if func_cell["unaccounted"] != 0:
            violations.append(
                f"functional: {func_cell['unaccounted']} retention "
                f"events unaccounted by ECC/checksum layers")
    return {
        "tool": "anaheim-repro",
        "kind": "ras",
        "version": 1,
        "workload": workload,
        "config": base.canonical(),
        "retention_rates": list(retention_rates),
        "scrub_intervals": list(scrub_intervals),
        "cells": [results[ras_unit_key("analytic", rate, interval)]
                  for rate in retention_rates
                  for interval in scrub_intervals],
        "default_cell": default_cell,
        "functional": func_cell,
        "surfaces": surfaces,
        "gate": {"passed": not violations, "violations": violations,
                 "overhead_bound": overhead_bound},
    }


def run_ras_matrix(retention_rates=DEFAULT_RETENTION_RATES,
                   scrub_intervals=DEFAULT_SCRUB_INTERVALS,
                   base: ReliabilityConfig = None,
                   workload: str = "Boot", functional: bool = True,
                   record_wall: bool = True, gpu=None, pim=None,
                   overhead_bound: float = OVERHEAD_BOUND,
                   metrics=None, workers: int = 1,
                   threads: int = 1) -> dict:
    """The full RAS campaign: grid sweep, surfaces, and gate verdict.

    ``workers > 1`` fans the cells out across a worker pool; a crashed
    worker costs one cell, re-run inline.  ``threads`` sets each
    worker's kernel thread count.  Every cell is a pure function of
    its arguments, so the document is byte-identical for any worker
    count.
    """
    base = base if base is not None else ReliabilityConfig()
    units = ras_units(retention_rates, scrub_intervals, base=base,
                      functional=functional)
    results = {}
    if workers > 1 and len(units) > 1:
        from repro.parallel import WorkerPool, worker_warmup
        tasks = [(kind, rate, interval, base, workload, record_wall,
                  gpu, pim, metrics is not None)
                 for kind, rate, interval in units]
        with WorkerPool(workers, initializer=worker_warmup,
                        initargs=(threads,)) as pool:
            outcomes = pool.run(_ras_pool_unit, tasks)
        for (kind, rate, interval), task, outcome in zip(units, tasks,
                                                         outcomes):
            if outcome.crashed:
                result, registry = _ras_pool_unit(task)
            else:
                result, registry = outcome.value
            if registry is not None and metrics is not None:
                metrics.merge(registry)
            results[ras_unit_key(kind, rate, interval)] = result
    else:
        # Serial cells still record into per-unit registries merged in
        # order — the same float-summation grouping the pool produces.
        from repro.obs.metrics import MetricsRegistry
        for kind, rate, interval in units:
            registry = MetricsRegistry() if metrics is not None else None
            results[ras_unit_key(kind, rate, interval)] = run_ras_unit(
                kind, rate, interval, base=base, workload=workload,
                record_wall=record_wall, gpu=gpu, pim=pim,
                metrics=registry)
            if registry is not None:
                metrics.merge(registry)
    return assemble_ras_matrix(results, retention_rates,
                               scrub_intervals, base, workload,
                               functional, overhead_bound=overhead_bound)


def ras_baseline_metrics(document: dict) -> dict:
    """Flat, gateable metrics of the default cell (plus the functional
    validation counts) for baseline write/check."""
    cell = document["default_cell"]
    ras = cell["ras"]
    metrics = {
        "errors_total": float(ras["errors_total"]),
        "corrected": float(ras["corrected"]),
        "detected": float(ras["detected"]),
        "escaped": float(ras["escaped"]),
        "uncorrected": float(ras["uncorrected"]),
        "scrub_passes_total": float(sum(ras["scrub_passes"].values())),
        "remaps_total": float(sum(ras["remaps"].values())),
        "overhead": float(cell["overhead"]),
        "ras_time_s": float(ras["ras_time_s"]),
        "clean_time_s": float(cell["clean_time_s"]),
    }
    func = document.get("functional")
    if func is not None:
        metrics["functional_events"] = float(func["events"])
        metrics["functional_ecc_corrected"] = float(
            func["ecc_corrected"])
        metrics["functional_checksum_caught"] = float(
            func["checksum_caught"])
    return metrics
