"""Fault event records and the campaign log.

Every injected fault becomes one :class:`FaultEvent`, updated in place
as detection and recovery proceed; the :class:`FaultLog` aggregates the
events into the coverage/recovery summary the CLI reports and the run
manifest embeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FaultEvent:
    """One injected fault and what became of it.

    ``layer`` distinguishes faults injected into the *functional*
    numeric pipeline (real corrupted words) from faults in the
    *analytic* timeline model (symbolic corrupted kernels).  ``benign``
    marks injections that provably cannot alter the result (e.g. a
    duplicated idempotent instruction); they count as injected but are
    excluded from the detection-coverage denominator.
    """

    model: str
    op: str
    layer: str                      # "functional" | "analytic"
    site: int | None = None
    benign: bool = False
    detected: bool = False
    recovery: str | None = None     # "retry" | "fallback" | None
    attempts: int = 0
    detail: dict = field(default_factory=dict)


@dataclass
class FaultLog:
    """Accumulates events plus site/quarantine bookkeeping counters."""

    events: list = field(default_factory=list)
    rerouted: int = 0               # kernels steered around quarantined sites
    quarantined_sites: list = field(default_factory=list)

    def record(self, event: FaultEvent) -> FaultEvent:
        self.events.append(event)
        return event

    # -- Aggregation ---------------------------------------------------------

    def summary(self) -> dict:
        """Coverage and recovery counts over the whole campaign."""
        injected = len(self.events)
        benign = sum(1 for e in self.events if e.benign)
        effective = injected - benign
        detected = sum(1 for e in self.events if e.detected)
        recovered_retry = sum(1 for e in self.events
                              if e.recovery == "retry")
        recovered_fallback = sum(1 for e in self.events
                                 if e.recovery == "fallback")
        undetected = sum(1 for e in self.events
                         if not e.benign and not e.detected)
        unrecovered = sum(1 for e in self.events
                          if e.detected and e.recovery is None)
        return {
            "injected": injected,
            "benign": benign,
            "effective": effective,
            "detected": detected,
            "undetected": undetected,
            "recovered_retry": recovered_retry,
            "recovered_fallback": recovered_fallback,
            "unrecovered": unrecovered,
            "coverage": (detected / effective) if effective else 1.0,
            "rerouted": self.rerouted,
            "quarantined_sites": sorted(self.quarantined_sites),
        }

    def by_model(self) -> dict:
        """{model: {injected, detected, recovered}} breakdown."""
        out: dict = {}
        for event in self.events:
            row = out.setdefault(event.model, {"injected": 0, "benign": 0,
                                               "detected": 0, "recovered": 0})
            row["injected"] += 1
            row["benign"] += int(event.benign)
            row["detected"] += int(event.detected)
            row["recovered"] += int(event.recovery is not None)
        return out
