"""Residue checksums over RNS limb planes.

The checksum of a limb is the sum of its residues mod the limb's prime
— a linear functional, so it commutes with the element-wise ops the PIM
offloads (Table II): the expected output checksum of an add/sub/neg/
scalar-mul is computable from the *input* checksums alone, and for the
bilinear ops (mul/MAC) from one multiply-accumulate reduction over the
inputs — O(N) lane work with no extra DRAM writes, which is why the
checksum lanes can ride the existing MMAC stream.

Detection guarantee: a single-word corruption replaces residue ``v``
with ``v ^ 2^k``; the limb checksum shifts by ``±2^k mod q``, which is
nonzero for every odd prime ``q``, so any single bit flip (hence any
single-word corruption that changes the residue class) is caught.

All helpers are vectorized over the limb axis: ``coeffs`` is the usual
``(L, N)`` int64 matrix and ``q_col`` the ``(L, 1)`` modulus column.
Sums of up to 2^35 residues of < 2^31 each stay below 2^63, so the
reductions are exact in int64.
"""

from __future__ import annotations

import numpy as np


def limb_checksum(coeffs: np.ndarray, q_col: np.ndarray) -> np.ndarray:
    """``(L,)`` vector: sum of each limb's residues mod its prime."""
    return coeffs.sum(axis=1, dtype=np.int64) % q_col[:, 0]


def checksum_add(cs_a: np.ndarray, cs_b: np.ndarray,
                 q_col: np.ndarray) -> np.ndarray:
    return (cs_a + cs_b) % q_col[:, 0]


def checksum_sub(cs_a: np.ndarray, cs_b: np.ndarray,
                 q_col: np.ndarray) -> np.ndarray:
    return (cs_a - cs_b) % q_col[:, 0]


def checksum_neg(cs_a: np.ndarray, q_col: np.ndarray) -> np.ndarray:
    return (-cs_a) % q_col[:, 0]


def checksum_scalar_mul(scalars: np.ndarray, cs_a: np.ndarray,
                        q_col: np.ndarray) -> np.ndarray:
    """Expected checksum of a per-limb scalar multiply.

    ``scalars`` is the ``(L, 1)`` (or ``(L,)``) reduced constant column.
    """
    col = np.asarray(scalars, dtype=np.int64).reshape(-1)
    return (col * cs_a) % q_col[:, 0]


def checksum_mul_pairs(a: np.ndarray, b: np.ndarray,
                       q_col: np.ndarray) -> np.ndarray:
    """Expected checksum of the element-wise product ``a ⊙ b``.

    Bilinear ops don't factor through the input checksums, so the
    verifier accumulates ``sum_j a_j * b_j mod q`` directly from the
    operands — the independent reduction a MAC-side checksum unit
    computes while the product streams past it.
    """
    prods = (a * b) % q_col          # residues < 2^31: products fit int64
    return prods.sum(axis=1, dtype=np.int64) % q_col[:, 0]


def mismatched_limbs(coeffs: np.ndarray, expected: np.ndarray,
                     q_col: np.ndarray) -> np.ndarray:
    """Boolean ``(L,)`` mask of limbs whose checksum disagrees."""
    return limb_checksum(coeffs, q_col) != expected


def residues_in_range(coeffs: np.ndarray, q_col: np.ndarray) -> bool:
    """Whether every residue lies in the canonical range ``[0, q)``."""
    return bool(((coeffs >= 0) & (coeffs < q_col)).all())
