"""Fault-injection campaigns: coverage and overhead measurement.

A campaign exercises both halves of the duality:

* the **functional** campaign bootstraps a real ciphertext under an
  active :mod:`repro.faults.guard` session — every injected corruption
  must be detected by the residue checksums and recovered (retry or
  GPU fallback) such that the final decrypt is still correct;
* the **analytic** campaign schedules a paper-scale workload through
  :class:`repro.core.scheduler.ResilientScheduler` and compares the
  timeline against the clean schedule, yielding the time overhead of
  verification + recovery.

``run_matrix`` sweeps both over a seed list and aggregates into the
pass/fail gate the CLI and CI enforce: every effective fault detected
(coverage >= the threshold), nothing unrecovered, decrypt correct.
"""

from __future__ import annotations

import time

import numpy as np

from repro.faults import guard
from repro.faults.plan import FaultPlan, default_plan

#: Decryption error ceiling for the campaign's bootstrap (the clean
#: fixture lands around 2e-4 at the bench parameters; recovery must not
#: degrade it to another order of magnitude).
MAX_DECRYPT_ERROR = 1e-2

#: Minimum detected/effective ratio the campaign gate demands.
COVERAGE_THRESHOLD = 0.99


def run_functional_campaign(plan: FaultPlan,
                            max_error: float = MAX_DECRYPT_ERROR) -> dict:
    """Bootstrap a ciphertext with faults live; report coverage.

    Key generation and the one-time warmup bootstrap run *outside* the
    fault session (the paper's fault model targets the PIM datapath at
    execution time, not key material at rest).
    """
    from repro.ckks.bench import BENCH_PARAMS
    from repro.ckks.bootstrap import Bootstrapper
    from repro.ckks.evaluator import CkksEvaluator
    from repro.ckks.keys import KeyGenerator
    from repro.params import CkksParams

    params = CkksParams.create(**BENCH_PARAMS)
    keygen = KeyGenerator(params, seed=11)
    keys = keygen.generate(sparse_secret=True)
    ev = CkksEvaluator(params, keys)
    bts = Bootstrapper(ev, keygen)

    rng = np.random.default_rng(7)
    message = 0.3 * (rng.normal(size=params.slot_count)
                     + 1j * rng.normal(size=params.slot_count))
    ct_low = ev.drop_to_basis(ev.encrypt_message(message),
                              tuple(params.moduli[:1]))
    bts.bootstrap(ct_low)          # warmup: rotation keys, diag caches

    start = time.perf_counter()
    with guard.session(plan) as sess:
        refreshed = bts.bootstrap(ct_low)
    wall_s = time.perf_counter() - start

    refreshed.check_invariants()
    decrypted = ev.decrypt_message(refreshed, params.slot_count)
    err = float(np.abs(decrypted - message).max())
    summary = sess.log.summary()
    return {
        "layer": "functional",
        "seed": plan.seed,
        "plan_digest": plan.digest(),
        "summary": summary,
        "events_by_model": {k: v["injected"]
                            for k, v in sess.log.by_model().items()},
        "max_error": err,
        "decrypt_ok": err <= max_error,
        "wall_s": wall_s,
    }


def run_analytic_campaign(plan: FaultPlan, workload: str = "Boot",
                          gpu=None, pim=None) -> dict:
    """Schedule a workload clean and resilient; report time overhead."""
    from repro.core.framework import AnaheimFramework
    from repro.gpu.configs import A100_80GB
    from repro.pim.configs import A100_NEAR_BANK
    from repro.workloads.applications import PaperParams, build

    gpu = gpu if gpu is not None else A100_80GB
    pim = pim if pim is not None else A100_NEAR_BANK
    params = PaperParams()
    wl = build(workload, params)

    clean = AnaheimFramework(gpu, pim=pim).run(
        wl.blocks, params.degree, label=f"{workload} (clean)")
    faulted = AnaheimFramework(gpu, pim=pim, fault_plan=plan).run(
        wl.blocks, params.degree, label=f"{workload} (faulted)")

    clean_t = clean.report.total_time
    fault_t = faulted.report.total_time
    summary = dict(faulted.report.fault_summary)
    return {
        "layer": "analytic",
        "seed": plan.seed,
        "workload": workload,
        "plan_digest": plan.digest(),
        "summary": summary,
        "clean_time_s": clean_t,
        "faulted_time_s": fault_t,
        "overhead": fault_t / clean_t - 1.0 if clean_t else 0.0,
        "verify_time_s": summary.get("verify_time", 0.0),
        "retry_time_s": summary.get("retry_time", 0.0),
        "fallback_time_s": summary.get("fallback_time", 0.0),
    }


def _aggregate(runs) -> dict:
    """Pool the per-run fault summaries of one campaign layer."""
    keys = ("injected", "benign", "effective", "detected", "undetected",
            "recovered_retry", "recovered_fallback", "unrecovered",
            "rerouted")
    total = {k: sum(r["summary"].get(k, 0) for r in runs) for k in keys}
    total["coverage"] = (total["detected"] / total["effective"]
                         if total["effective"] else 1.0)
    return total


def run_matrix(seeds=(0, 1, 2), scale: float = 1.0,
               workload: str = "Boot", stuck_sites=(),
               functional: bool = True, analytic: bool = True,
               coverage_threshold: float = COVERAGE_THRESHOLD,
               gpu=None, pim=None) -> dict:
    """The campaign matrix: (layer x seed) sweep plus the gate verdict."""
    plans = [default_plan(seed=seed, scale=scale, stuck_sites=stuck_sites)
             for seed in seeds]
    functional_runs = ([run_functional_campaign(plan) for plan in plans]
                       if functional else [])
    analytic_runs = ([run_analytic_campaign(plan, workload=workload,
                                            gpu=gpu, pim=pim)
                      for plan in plans]
                     if analytic else [])

    result = {
        "seeds": list(seeds),
        "scale": scale,
        "stuck_sites": list(stuck_sites),
        "functional": functional_runs,
        "analytic": analytic_runs,
    }
    if functional_runs:
        agg = _aggregate(functional_runs)
        agg["decrypt_ok"] = all(r["decrypt_ok"] for r in functional_runs)
        agg["max_error"] = max(r["max_error"] for r in functional_runs)
        result["functional_aggregate"] = agg
    if analytic_runs:
        agg = _aggregate(analytic_runs)
        agg["mean_overhead"] = float(
            np.mean([r["overhead"] for r in analytic_runs]))
        result["analytic_aggregate"] = agg

    gate = {"coverage_threshold": coverage_threshold}
    checks = []
    for key in ("functional_aggregate", "analytic_aggregate"):
        agg = result.get(key)
        if agg is None:
            continue
        checks.append(agg["coverage"] >= coverage_threshold)
        checks.append(agg["unrecovered"] == 0)
        checks.append(agg["undetected"] == 0)
    if functional_runs:
        checks.append(result["functional_aggregate"]["decrypt_ok"])
    gate["passed"] = bool(checks) and all(checks)
    result["gate"] = gate
    return result
