"""Fault-injection campaigns: coverage and overhead measurement.

A campaign exercises both halves of the duality:

* the **functional** campaign bootstraps a real ciphertext under an
  active :mod:`repro.faults.guard` session — every injected corruption
  must be detected by the residue checksums and recovered (retry or
  GPU fallback) such that the final decrypt is still correct;
* the **analytic** campaign schedules a paper-scale workload through
  :class:`repro.core.scheduler.ResilientScheduler` and compares the
  timeline against the clean schedule, yielding the time overhead of
  verification + recovery.

``run_matrix`` sweeps both over a seed list and aggregates into the
pass/fail gate the CLI and CI enforce: every effective fault detected
(coverage >= the threshold), nothing unrecovered, decrypt correct.

The matrix is factored into **units** — one ``(layer, seed)`` cell per
unit — so the serving layer can run a campaign incrementally: each
finished unit is checkpointed, and a resumed campaign replays only the
missing units before :func:`assemble_matrix` rebuilds the exact same
document an uninterrupted run would have produced (every unit is
deterministic; pass ``record_wall=False`` to drop the one wall-clock
field the functional layer reports).
"""

from __future__ import annotations

import time

import numpy as np

from repro.faults import guard
from repro.faults.plan import FaultPlan, default_plan

#: Decryption error ceiling for the campaign's bootstrap (the clean
#: fixture lands around 2e-4 at the bench parameters; recovery must not
#: degrade it to another order of magnitude).
MAX_DECRYPT_ERROR = 1e-2

#: Minimum detected/effective ratio the campaign gate demands.
COVERAGE_THRESHOLD = 0.99

#: Fault-summary counters mirrored into the metrics registry.
_SUMMARY_EVENTS = ("injected", "benign", "effective", "detected",
                   "undetected", "recovered_retry", "recovered_fallback",
                   "unrecovered", "rerouted")


def _record_summary(metrics, layer: str, summary: dict) -> None:
    """Mirror one unit's fault summary into campaign counters."""
    if metrics is None:
        return
    counter = metrics.counter(
        "anaheim_campaign_faults_total",
        "Fault-campaign injection/detection/recovery outcomes",
        labelnames=("layer", "event"))
    for event in _SUMMARY_EVENTS:
        value = summary.get(event, 0)
        if value:
            counter.inc(value, layer=layer, event=event)


def run_functional_campaign(plan: FaultPlan,
                            max_error: float = MAX_DECRYPT_ERROR,
                            record_wall: bool = True,
                            metrics=None) -> dict:
    """Bootstrap a ciphertext with faults live; report coverage.

    Key generation and the one-time warmup bootstrap run *outside* the
    fault session (the paper's fault model targets the PIM datapath at
    execution time, not key material at rest).  ``record_wall=False``
    omits the wall-clock field so the result is a pure function of the
    plan — required for byte-identical checkpoint/resume.
    """
    from repro.ckks.fixture import bootstrap_fixture

    fx = bootstrap_fixture()

    start = time.perf_counter()
    with guard.session(plan) as sess:
        refreshed = fx.bts.bootstrap(fx.ct_low)
    wall_s = time.perf_counter() - start

    refreshed.check_invariants()
    err = fx.decrypt_error(refreshed)
    summary = sess.log.summary()
    result = {
        "layer": "functional",
        "seed": plan.seed,
        "plan_digest": plan.digest(),
        "summary": summary,
        "events_by_model": {k: v["injected"]
                            for k, v in sess.log.by_model().items()},
        "max_error": err,
        "decrypt_ok": err <= max_error,
    }
    if record_wall:
        result["wall_s"] = wall_s
    _record_summary(metrics, "functional", summary)
    return result


def run_analytic_campaign(plan: FaultPlan, workload: str = "Boot",
                          gpu=None, pim=None, health=None, breakers=None,
                          kernel_timeout: float | None = None,
                          metrics=None) -> dict:
    """Schedule a workload clean and resilient; report time overhead.

    ``health``/``breakers``/``kernel_timeout`` thread the serving
    layer's degradation machinery into the faulted run; its state lands
    in the result's ``summary`` (via ``report.fault_summary``).
    """
    from repro.core.framework import AnaheimFramework
    from repro.gpu.configs import A100_80GB
    from repro.pim.configs import A100_NEAR_BANK
    from repro.workloads.applications import PaperParams, build

    gpu = gpu if gpu is not None else A100_80GB
    pim = pim if pim is not None else A100_NEAR_BANK
    params = PaperParams()
    wl = build(workload, params)

    clean = AnaheimFramework(gpu, pim=pim).run(
        wl.blocks, params.degree, label=f"{workload} (clean)")
    faulted = AnaheimFramework(
        gpu, pim=pim, fault_plan=plan, health=health, breakers=breakers,
        kernel_timeout=kernel_timeout).run(
        wl.blocks, params.degree, label=f"{workload} (faulted)")

    clean_t = clean.report.total_time
    fault_t = faulted.report.total_time
    summary = dict(faulted.report.fault_summary)
    _record_summary(metrics, "analytic", summary)
    return {
        "layer": "analytic",
        "seed": plan.seed,
        "workload": workload,
        "plan_digest": plan.digest(),
        "summary": summary,
        "clean_time_s": clean_t,
        "faulted_time_s": fault_t,
        "overhead": fault_t / clean_t - 1.0 if clean_t else 0.0,
        "verify_time_s": summary.get("verify_time", 0.0),
        "retry_time_s": summary.get("retry_time", 0.0),
        "fallback_time_s": summary.get("fallback_time", 0.0),
    }


def campaign_units(seeds=(0, 1, 2), functional: bool = True,
                   analytic: bool = True) -> list:
    """Ordered ``(layer, seed)`` cells of one campaign matrix."""
    units = [("functional", seed) for seed in seeds] if functional else []
    if analytic:
        units.extend(("analytic", seed) for seed in seeds)
    return units


def unit_key(layer: str, seed: int) -> str:
    return f"{layer}/{seed}"


def run_campaign_unit(layer: str, seed: int, *, scale: float = 1.0,
                      workload: str = "Boot", stuck_sites=(),
                      record_wall: bool = True, gpu=None, pim=None,
                      health=None, breakers=None,
                      kernel_timeout: float | None = None,
                      metrics=None) -> dict:
    """Execute one matrix cell (fully determined by its arguments)."""
    plan = default_plan(seed=seed, scale=scale, stuck_sites=stuck_sites)
    if layer == "functional":
        return run_functional_campaign(plan, record_wall=record_wall,
                                       metrics=metrics)
    return run_analytic_campaign(plan, workload=workload, gpu=gpu, pim=pim,
                                 health=health, breakers=breakers,
                                 kernel_timeout=kernel_timeout,
                                 metrics=metrics)


def _campaign_pool_unit(task):
    """Worker-side campaign cell (module-level, hence picklable).

    Metrics land in a fresh per-unit registry that travels back with
    the result so the parent can merge registries in unit order —
    keeping the merged snapshot byte-identical to a serial sweep.
    """
    (layer, seed, scale, workload, stuck_sites, record_wall, gpu, pim,
     collect_metrics) = task
    from repro.obs.metrics import MetricsRegistry
    registry = MetricsRegistry() if collect_metrics else None
    result = run_campaign_unit(
        layer, seed, scale=scale, workload=workload,
        stuck_sites=stuck_sites, record_wall=record_wall,
        gpu=gpu, pim=pim, metrics=registry)
    return result, registry


def _aggregate(runs) -> dict:
    """Pool the per-run fault summaries of one campaign layer."""
    keys = ("injected", "benign", "effective", "detected", "undetected",
            "recovered_retry", "recovered_fallback", "unrecovered",
            "rerouted")
    total = {k: sum(r["summary"].get(k, 0) for r in runs) for k in keys}
    total["coverage"] = (total["detected"] / total["effective"]
                         if total["effective"] else 1.0)
    return total


def assemble_matrix(results, seeds, scale: float = 1.0, stuck_sites=(),
                    coverage_threshold: float = COVERAGE_THRESHOLD) -> dict:
    """The campaign document from per-unit results.

    ``results`` maps :func:`unit_key` strings to unit result dicts.  A
    pure function of its inputs: assembling from freshly-run units and
    from checkpoint-restored units yields identical documents.
    """
    functional_runs = [results[unit_key("functional", s)] for s in seeds
                       if unit_key("functional", s) in results]
    analytic_runs = [results[unit_key("analytic", s)] for s in seeds
                     if unit_key("analytic", s) in results]
    result = {
        "seeds": list(seeds),
        "scale": scale,
        "stuck_sites": list(stuck_sites),
        "functional": functional_runs,
        "analytic": analytic_runs,
    }
    if functional_runs:
        agg = _aggregate(functional_runs)
        agg["decrypt_ok"] = all(r["decrypt_ok"] for r in functional_runs)
        agg["max_error"] = max(r["max_error"] for r in functional_runs)
        result["functional_aggregate"] = agg
    if analytic_runs:
        agg = _aggregate(analytic_runs)
        agg["mean_overhead"] = float(
            np.mean([r["overhead"] for r in analytic_runs]))
        result["analytic_aggregate"] = agg

    gate = {"coverage_threshold": coverage_threshold}
    checks = []
    for key in ("functional_aggregate", "analytic_aggregate"):
        agg = result.get(key)
        if agg is None:
            continue
        checks.append(agg["coverage"] >= coverage_threshold)
        checks.append(agg["unrecovered"] == 0)
        checks.append(agg["undetected"] == 0)
    if functional_runs:
        checks.append(result["functional_aggregate"]["decrypt_ok"])
    gate["passed"] = bool(checks) and all(checks)
    result["gate"] = gate
    return result


def run_matrix(seeds=(0, 1, 2), scale: float = 1.0,
               workload: str = "Boot", stuck_sites=(),
               functional: bool = True, analytic: bool = True,
               coverage_threshold: float = COVERAGE_THRESHOLD,
               gpu=None, pim=None, record_wall: bool = True,
               completed: dict | None = None, on_unit=None,
               metrics=None, workers: int = 1,
               threads: int = 1) -> dict:
    """The campaign matrix: (layer x seed) sweep plus the gate verdict.

    ``completed`` (from a checkpoint) short-circuits already-finished
    units; ``on_unit(key, result)`` fires after each fresh unit so a
    caller can checkpoint incrementally.  ``workers > 1`` fans the
    missing cells out across a :class:`~repro.parallel.WorkerPool`
    (each cell is a pure function of its arguments, so the assembled
    document is byte-identical to a serial sweep); a crashed worker
    costs one cell, re-run inline.  ``threads`` sets each worker's
    kernel thread count.
    """
    results = dict(completed or {})
    missing = [(layer, seed)
               for layer, seed in campaign_units(seeds, functional,
                                                 analytic)
               if unit_key(layer, seed) not in results]
    if workers > 1 and len(missing) > 1:
        from repro.parallel import WorkerPool, worker_warmup
        tasks = [(layer, seed, scale, workload, tuple(stuck_sites),
                  record_wall, gpu, pim, metrics is not None)
                 for layer, seed in missing]
        with WorkerPool(workers, initializer=worker_warmup,
                        initargs=(threads,)) as pool:
            outcomes = pool.run(_campaign_pool_unit, tasks)
        for (layer, seed), task, outcome in zip(missing, tasks,
                                                outcomes):
            if outcome.crashed:
                result, registry = _campaign_pool_unit(task)
            else:
                result, registry = outcome.value
            if registry is not None and metrics is not None:
                metrics.merge(registry)
            key = unit_key(layer, seed)
            results[key] = result
            if on_unit is not None:
                on_unit(key, result)
    else:
        # Serial cells still record into per-unit registries merged in
        # order — the same float-summation grouping the pool produces,
        # so the merged snapshot digest-matches any worker count.
        from repro.obs.metrics import MetricsRegistry
        for layer, seed in missing:
            key = unit_key(layer, seed)
            registry = MetricsRegistry() if metrics is not None else None
            results[key] = run_campaign_unit(
                layer, seed, scale=scale, workload=workload,
                stuck_sites=stuck_sites, record_wall=record_wall,
                gpu=gpu, pim=pim, metrics=registry)
            if registry is not None:
                metrics.merge(registry)
            if on_unit is not None:
                on_unit(key, results[key])
    return assemble_matrix(results, seeds, scale=scale,
                           stuck_sites=stuck_sites,
                           coverage_threshold=coverage_threshold)
