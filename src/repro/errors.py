"""Exception types shared across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ParameterError(ReproError):
    """Raised when CKKS or hardware parameters are inconsistent."""


class LevelError(ReproError):
    """Raised when a ciphertext does not have enough levels for an operation."""


class ScaleMismatchError(ReproError):
    """Raised when operands of a homomorphic op carry incompatible scales."""


class EvalKeyError(ReproError):
    """Raised when a required evaluation key is missing."""


#: Backwards-compatible alias for the pre-rename spelling.
KeyError_ = EvalKeyError


class LayoutError(ReproError):
    """Raised when a PIM data layout request cannot be satisfied."""


class ScheduleError(ReproError):
    """Raised when a kernel trace cannot be scheduled."""


class VerificationError(ReproError):
    """Raised when a result fails an integrity check (residue checksum
    mismatch or a ciphertext invariant violation)."""


class FaultError(ReproError):
    """Raised when an injected fault exhausts every recovery path
    (bounded retry and GPU fallback)."""


class SerializationError(ReproError):
    """Raised when a serialized artifact (ciphertext/key archive,
    checkpoint, baseline) is corrupted, truncated, or of the wrong
    kind — a clean one-line diagnosis instead of a numpy/zipfile
    traceback."""


class CheckpointError(SerializationError):
    """Raised when a serve checkpoint cannot be resumed: unreadable,
    truncated, or recorded for a different job matrix/policy."""


class DeadlineError(ReproError):
    """Raised when a job exceeds its wall-clock deadline and the
    caller asked for deadline overruns to be fatal."""


class AdmissionError(ReproError):
    """Raised when the admission controller refuses a job at enqueue:
    rate-limited, queue full, or predicted completion past its
    deadline — the overload layer's one-line rejection."""
