"""Exception types shared across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ParameterError(ReproError):
    """Raised when CKKS or hardware parameters are inconsistent."""


class LevelError(ReproError):
    """Raised when a ciphertext does not have enough levels for an operation."""


class ScaleMismatchError(ReproError):
    """Raised when operands of a homomorphic op carry incompatible scales."""


class KeyError_(ReproError):
    """Raised when a required evaluation key is missing."""


class LayoutError(ReproError):
    """Raised when a PIM data layout request cannot be satisfied."""


class ScheduleError(ReproError):
    """Raised when a kernel trace cannot be scheduled."""
