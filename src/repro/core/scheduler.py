"""Stream-queue scheduler for hybrid GPU+PIM kernel traces (§V-C).

GPU and PIM kernels live in one stream: the end of each kernel triggers
the next, with a small transition overhead whenever execution moves
between the GPU and the PIM devices ("a couple of microseconds", §V-C).
PIM and GPU kernels never overlap (no pipelining, §V-C).

The scheduler produces a :class:`ScheduleReport` with the Gantt-chart
segments (Fig. 4a), per-category time breakdown (Figs. 2-3, 10), DRAM
traffic (Fig. 4b), and the energy decomposition (Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.trace import (CATEGORY_LABELS, GpuKernel, OpCategory,
                              PimKernel, Trace)
from repro.gpu.cache import CacheModel
from repro.gpu.model import GpuModel
from repro.pim.executor import PimExecutor


@dataclass
class Segment:
    """One Gantt-chart bar."""

    start: float
    end: float
    device: str            # "gpu" or "pim"
    name: str
    category: OpCategory

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ScheduleReport:
    """Everything the evaluation figures need from one execution."""

    label: str
    segments: list = field(default_factory=list)
    total_time: float = 0.0
    gpu_time: float = 0.0
    pim_time: float = 0.0
    transition_time: float = 0.0
    transitions: int = 0
    time_by_category: dict = field(default_factory=dict)
    gpu_dram_bytes: float = 0.0
    pim_internal_bytes: float = 0.0
    pim_activations: int = 0
    energy_gpu_dynamic: float = 0.0
    energy_gpu_idle: float = 0.0
    energy_pim: float = 0.0

    @property
    def energy(self) -> float:
        return self.energy_gpu_dynamic + self.energy_gpu_idle + self.energy_pim

    @property
    def edp(self) -> float:
        """Energy-delay product (J·s)."""
        return self.energy * self.total_time

    def pipelining_bound(self) -> float:
        """Lower bound on runtime with perfect GPU/PIM overlap.

        The paper deliberately does not pipeline PIM and GPU kernels
        (§V-C): doing so would need invasive coherence hardware.  This
        bound — the slower device's busy time plus transitions — shows
        what pipelining could at best recover; with Anaheim shrinking
        the element-wise share, the residual gain is marginal (Fig. 10
        discussion).
        """
        return max(self.gpu_time, self.pim_time) + self.transition_time

    def pipelining_headroom(self) -> float:
        """Potential speedup from perfect pipelining (≥ 1.0)."""
        bound = self.pipelining_bound()
        return self.total_time / bound if bound else 1.0

    def category_share(self, category: OpCategory) -> float:
        if self.total_time == 0:
            return 0.0
        return self.time_by_category.get(category, 0.0) / self.total_time

    def breakdown(self) -> dict:
        """{label: seconds} in the paper's legend order."""
        return {CATEGORY_LABELS[cat]: self.time_by_category.get(cat, 0.0)
                for cat in OpCategory}

    def scaled(self, factor: float) -> "ScheduleReport":
        """Report for `factor` repetitions of this schedule (no segments)."""
        out = ScheduleReport(label=self.label)
        out.total_time = self.total_time * factor
        out.gpu_time = self.gpu_time * factor
        out.pim_time = self.pim_time * factor
        out.transition_time = self.transition_time * factor
        out.transitions = int(self.transitions * factor)
        out.time_by_category = {k: v * factor
                                for k, v in self.time_by_category.items()}
        out.gpu_dram_bytes = self.gpu_dram_bytes * factor
        out.pim_internal_bytes = self.pim_internal_bytes * factor
        out.pim_activations = int(self.pim_activations * factor)
        out.energy_gpu_dynamic = self.energy_gpu_dynamic * factor
        out.energy_gpu_idle = self.energy_gpu_idle * factor
        out.energy_pim = self.energy_pim * factor
        return out

    def merged(self, other: "ScheduleReport",
               label: str | None = None) -> "ScheduleReport":
        out = self.scaled(1.0)
        out.label = label or self.label
        out.total_time += other.total_time
        out.gpu_time += other.gpu_time
        out.pim_time += other.pim_time
        out.transition_time += other.transition_time
        out.transitions += other.transitions
        for key, value in other.time_by_category.items():
            out.time_by_category[key] = out.time_by_category.get(
                key, 0.0) + value
        out.gpu_dram_bytes += other.gpu_dram_bytes
        out.pim_internal_bytes += other.pim_internal_bytes
        out.pim_activations += other.pim_activations
        out.energy_gpu_dynamic += other.energy_gpu_dynamic
        out.energy_gpu_idle += other.energy_gpu_idle
        out.energy_pim += other.energy_pim
        return out


class Scheduler:
    """Executes a trace against a GPU model and (optionally) a PIM device."""

    def __init__(self, gpu_model: GpuModel,
                 pim_executor: PimExecutor | None = None,
                 cache: CacheModel | None = None,
                 keep_segments: bool = True,
                 tracer=None):
        self.gpu_model = gpu_model
        self.pim_executor = pim_executor
        self.cache = cache or CacheModel(
            l2_bytes=gpu_model.config.l2_cache_bytes)
        self.keep_segments = keep_segments
        self.tracer = tracer

    # -- Per-kernel dispatch (split out so tracing wraps one call) ----------

    def _dispatch_pim(self, kernel: PimKernel, report: ScheduleReport) -> float:
        cost = self.pim_executor.cost(kernel)
        report.pim_time += cost.time
        report.pim_internal_bytes += cost.internal_bytes
        report.pim_activations += cost.activations
        report.energy_pim += cost.energy
        return cost.time

    def _dispatch_gpu(self, kernel: GpuKernel, report: ScheduleReport) -> float:
        dram = self.cache.dram_bytes(kernel)
        cost = self.gpu_model.kernel_cost(kernel, dram_bytes=dram)
        report.gpu_time += cost.time
        report.gpu_dram_bytes += cost.dram_bytes
        report.energy_gpu_dynamic += self.gpu_model.kernel_energy(
            kernel, cost)
        return cost.time

    def run(self, trace: Trace) -> ScheduleReport:
        report = ScheduleReport(label=trace.label)
        clock = 0.0
        previous_device = None
        overhead = self.gpu_model.config.pim_transition_overhead
        tracer = self.tracer
        for kernel in trace:
            if isinstance(kernel, PimKernel):
                if self.pim_executor is None:
                    raise ValueError(
                        "trace contains PIM kernels but no PIM executor "
                        "was provided")
                device = "pim"
                dispatch = self._dispatch_pim
            else:
                device = "gpu"
                dispatch = self._dispatch_gpu
            if tracer is None:
                duration = dispatch(kernel, report)
            else:
                name = f"dispatch.{device}.{kernel.category.value}"
                with tracer.span(name, kernel=kernel.name):
                    duration = dispatch(kernel, report)
                tracer.count(f"scheduler.kernels.{device}")
            if previous_device is not None and previous_device != device:
                clock += overhead
                report.transition_time += overhead
                report.transitions += 1
                if tracer is not None:
                    tracer.count("scheduler.transitions")
            start = clock
            clock += duration
            report.time_by_category[kernel.category] = (
                report.time_by_category.get(kernel.category, 0.0) + duration)
            if self.keep_segments:
                report.segments.append(Segment(
                    start=start, end=clock, device=device,
                    name=kernel.name, category=kernel.category))
            previous_device = device
        report.total_time = clock
        report.energy_gpu_idle = self.gpu_model.config.idle_power * clock
        return report
