"""Stream-queue scheduler for hybrid GPU+PIM kernel traces (§V-C).

GPU and PIM kernels live in one stream: the end of each kernel triggers
the next, with a small transition overhead whenever execution moves
between the GPU and the PIM devices ("a couple of microseconds", §V-C).
PIM and GPU kernels never overlap (no pipelining, §V-C).

The scheduler produces a :class:`ScheduleReport` with the Gantt-chart
segments (Fig. 4a), per-category time breakdown (Figs. 2-3, 10), DRAM
traffic (Fig. 4b), and the energy decomposition (Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.trace import (CATEGORY_LABELS, GpuKernel, OpCategory,
                              PimKernel, Trace)
from repro.errors import FaultError
from repro.faults.fallback import gpu_equivalent
from repro.faults.inject import FaultInjector
from repro.faults.plan import PERSISTENT_MODELS
from repro.gpu.cache import CacheModel
from repro.gpu.model import GpuModel
from repro.pim.executor import PimExecutor


@dataclass
class Segment:
    """One Gantt-chart bar."""

    start: float
    end: float
    device: str            # "gpu" or "pim"
    name: str
    category: OpCategory

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ScheduleReport:
    """Everything the evaluation figures need from one execution."""

    label: str
    segments: list = field(default_factory=list)
    total_time: float = 0.0
    gpu_time: float = 0.0
    pim_time: float = 0.0
    transition_time: float = 0.0
    transitions: int = 0
    time_by_category: dict = field(default_factory=dict)
    gpu_dram_bytes: float = 0.0
    #: DRAM bytes of transfer-category kernels specifically (a subset
    #: of ``gpu_dram_bytes``) — the numerator of the transfer-bandwidth
    #: utilization the :class:`~repro.obs.utilization.UtilizationReport`
    #: computes.
    transfer_bytes: float = 0.0
    pim_internal_bytes: float = 0.0
    pim_activations: int = 0
    energy_gpu_dynamic: float = 0.0
    energy_gpu_idle: float = 0.0
    energy_pim: float = 0.0
    #: Fault-campaign accounting, populated by :class:`ResilientScheduler`
    #: (empty on plain runs): injection/detection/recovery counts plus the
    #: verify/retry/fallback time the recovery policy added to the
    #: timeline.
    fault_summary: dict = field(default_factory=dict)

    @property
    def energy(self) -> float:
        return self.energy_gpu_dynamic + self.energy_gpu_idle + self.energy_pim

    @property
    def edp(self) -> float:
        """Energy-delay product (J·s)."""
        return self.energy * self.total_time

    def pipelining_bound(self) -> float:
        """Lower bound on runtime with perfect GPU/PIM overlap.

        The paper deliberately does not pipeline PIM and GPU kernels
        (§V-C): doing so would need invasive coherence hardware.  This
        bound — the slower device's busy time plus transitions — shows
        what pipelining could at best recover; with Anaheim shrinking
        the element-wise share, the residual gain is marginal (Fig. 10
        discussion).
        """
        return max(self.gpu_time, self.pim_time) + self.transition_time

    def pipelining_headroom(self) -> float:
        """Potential speedup from perfect pipelining (≥ 1.0)."""
        bound = self.pipelining_bound()
        return self.total_time / bound if bound else 1.0

    def category_share(self, category: OpCategory) -> float:
        if self.total_time == 0:
            return 0.0
        return self.time_by_category.get(category, 0.0) / self.total_time

    def breakdown(self) -> dict:
        """{label: seconds} in the paper's legend order."""
        return {CATEGORY_LABELS[cat]: self.time_by_category.get(cat, 0.0)
                for cat in OpCategory}

    def scaled(self, factor: float) -> "ScheduleReport":
        """Report for `factor` repetitions of this schedule (no segments)."""
        out = ScheduleReport(label=self.label)
        out.total_time = self.total_time * factor
        out.gpu_time = self.gpu_time * factor
        out.pim_time = self.pim_time * factor
        out.transition_time = self.transition_time * factor
        out.transitions = int(self.transitions * factor)
        out.time_by_category = {k: v * factor
                                for k, v in self.time_by_category.items()}
        out.gpu_dram_bytes = self.gpu_dram_bytes * factor
        out.transfer_bytes = self.transfer_bytes * factor
        out.pim_internal_bytes = self.pim_internal_bytes * factor
        out.pim_activations = int(self.pim_activations * factor)
        out.energy_gpu_dynamic = self.energy_gpu_dynamic * factor
        out.energy_gpu_idle = self.energy_gpu_idle * factor
        out.energy_pim = self.energy_pim * factor
        out.fault_summary = _scale_fault_summary(self.fault_summary, factor)
        return out

    def merged(self, other: "ScheduleReport",
               label: str | None = None) -> "ScheduleReport":
        out = self.scaled(1.0)
        out.label = label or self.label
        out.total_time += other.total_time
        out.gpu_time += other.gpu_time
        out.pim_time += other.pim_time
        out.transition_time += other.transition_time
        out.transitions += other.transitions
        for key, value in other.time_by_category.items():
            out.time_by_category[key] = out.time_by_category.get(
                key, 0.0) + value
        out.gpu_dram_bytes += other.gpu_dram_bytes
        out.transfer_bytes += other.transfer_bytes
        out.pim_internal_bytes += other.pim_internal_bytes
        out.pim_activations += other.pim_activations
        out.energy_gpu_dynamic += other.energy_gpu_dynamic
        out.energy_gpu_idle += other.energy_gpu_idle
        out.energy_pim += other.energy_pim
        out.fault_summary = _merge_fault_summaries(out.fault_summary,
                                                   other.fault_summary)
        return out


#: fault_summary keys that are ratios or identities, not extensive
#: counts — they neither scale with repetitions nor sum across merges.
#: The degradation/breaker blocks are end-of-run state snapshots, kept
#: verbatim by the first report in a merge.
_INTENSIVE_FAULT_KEYS = frozenset({"coverage", "plan_digest",
                                   "degradation", "breakers", "ras"})


def _fault_coverage(summary: dict) -> float:
    effective = summary.get("effective", 0)
    return (summary.get("detected", 0) / effective) if effective else 1.0


def _scale_fault_summary(summary: dict, factor: float) -> dict:
    """Fault accounting for ``factor`` repetitions of a schedule."""
    out = {}
    for key, value in summary.items():
        if key in _INTENSIVE_FAULT_KEYS or isinstance(value, bool) \
                or isinstance(value, (list, str)):
            out[key] = value
        elif isinstance(value, int):
            out[key] = int(value * factor)
        elif isinstance(value, float):
            out[key] = value * factor
        else:
            out[key] = value
    return out


def _merge_fault_summaries(a: dict, b: dict) -> dict:
    out = dict(a)
    for key, value in b.items():
        if key in _INTENSIVE_FAULT_KEYS:
            out.setdefault(key, value)
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            out[key] = out.get(key, 0) + value
        elif isinstance(value, list):
            merged = list(out.get(key, [])) + [v for v in value
                                               if v not in out.get(key, [])]
            out[key] = merged
        else:
            out.setdefault(key, value)
    if "effective" in out:
        out["coverage"] = _fault_coverage(out)
    return out


class _SchedulerMetrics:
    """Metric families the scheduler updates (one lookup at init)."""

    def __init__(self, registry):
        from repro.obs.metrics import KERNEL_SECONDS_BUCKETS
        self.kernels = registry.counter(
            "anaheim_kernels_total", "Kernels dispatched",
            labelnames=("device", "category"))
        self.kernel_seconds = registry.histogram(
            "anaheim_kernel_seconds",
            "Simulated kernel time including recovery traffic",
            labelnames=("device", "category"),
            buckets=KERNEL_SECONDS_BUCKETS)
        self.transitions = registry.counter(
            "anaheim_transitions_total", "GPU<->PIM device transitions")
        self.faults = registry.counter(
            "anaheim_fault_events_total",
            "Fault pipeline events seen by the resilient scheduler",
            labelnames=("event",))

    def kernel(self, device: str, category, duration: float) -> None:
        self.kernels.inc(device=device, category=category.value)
        self.kernel_seconds.observe(duration, device=device,
                                    category=category.value)


class Scheduler:
    """Executes a trace against a GPU model and (optionally) a PIM device."""

    def __init__(self, gpu_model: GpuModel,
                 pim_executor: PimExecutor | None = None,
                 cache: CacheModel | None = None,
                 keep_segments: bool = True,
                 tracer=None,
                 metrics=None):
        self.gpu_model = gpu_model
        self.pim_executor = pim_executor
        self.cache = cache or CacheModel(
            l2_bytes=gpu_model.config.l2_cache_bytes)
        self.keep_segments = keep_segments
        self.tracer = tracer
        self.metrics = metrics
        self._m = _SchedulerMetrics(metrics) if metrics is not None \
            else None

    # -- Per-kernel dispatch (split out so tracing wraps one call) ----------

    def _dispatch_pim(self, kernel: PimKernel, report: ScheduleReport) -> float:
        cost = self.pim_executor.cost(kernel)
        report.pim_time += cost.time
        report.pim_internal_bytes += cost.internal_bytes
        report.pim_activations += cost.activations
        report.energy_pim += cost.energy
        return cost.time

    def _dispatch_gpu(self, kernel: GpuKernel, report: ScheduleReport) -> float:
        dram = self.cache.dram_bytes(kernel)
        cost = self.gpu_model.kernel_cost(kernel, dram_bytes=dram)
        report.gpu_time += cost.time
        report.gpu_dram_bytes += cost.dram_bytes
        if kernel.category is OpCategory.TRANSFER:
            report.transfer_bytes += cost.dram_bytes
        report.energy_gpu_dynamic += self.gpu_model.kernel_energy(
            kernel, cost)
        return cost.time

    def run(self, trace: Trace) -> ScheduleReport:
        report = ScheduleReport(label=trace.label)
        clock = 0.0
        previous_device = None
        overhead = self.gpu_model.config.pim_transition_overhead
        tracer = self.tracer
        for kernel in trace:
            if isinstance(kernel, PimKernel):
                if self.pim_executor is None:
                    raise ValueError(
                        "trace contains PIM kernels but no PIM executor "
                        "was provided")
                device = "pim"
                dispatch = self._dispatch_pim
            else:
                device = "gpu"
                dispatch = self._dispatch_gpu
            if tracer is None:
                duration = dispatch(kernel, report)
            else:
                name = f"dispatch.{device}.{kernel.category.value}"
                with tracer.span(name, kernel=kernel.name):
                    duration = dispatch(kernel, report)
                tracer.count(f"scheduler.kernels.{device}")
            if self._m is not None:
                self._m.kernel(device, kernel.category, duration)
            if previous_device is not None and previous_device != device:
                clock += overhead
                report.transition_time += overhead
                report.transitions += 1
                if tracer is not None:
                    tracer.count("scheduler.transitions")
                if self._m is not None:
                    self._m.transitions.inc()
            start = clock
            clock += duration
            report.time_by_category[kernel.category] = (
                report.time_by_category.get(kernel.category, 0.0) + duration)
            if self.keep_segments:
                report.segments.append(Segment(
                    start=start, end=clock, device=device,
                    name=kernel.name, category=kernel.category))
            previous_device = device
        report.total_time = clock
        report.energy_gpu_idle = self.gpu_model.config.idle_power * clock
        return report


class ResilientScheduler(Scheduler):
    """Fault-tolerant scheduler: verify -> bounded retry -> GPU fallback.

    With a :class:`~repro.faults.plan.FaultPlan` attached, every kernel
    execution faces the plan's fault draws; every kernel's output is
    verified (residue checksums for PIM/GPU results, sequence checks
    for transfers), detected faults are retried up to
    ``plan.max_attempts`` times, persistent or retry-exhausted faults
    fall back to an equivalent GPU re-execution, and PIM sites that
    keep failing are quarantined — subsequent kernels mapped there are
    rerouted to the GPU up front.  All recovery traffic (verification,
    re-execution, fallback kernels, extra device transitions) lands in
    the simulated timeline, and the injection/detection/recovery counts
    land in ``report.fault_summary``.

    The serving layer can attach three more policies:

    * ``health`` — a :class:`repro.serving.health.HealthMonitor`.  It
      consumes quarantine events, fault counters, and breaker opens;
      once it crosses into GPU_ONLY, the remaining trace is re-lowered
      on the fly to the GPU-only schedule (every remaining PIM kernel
      executes as its :func:`~repro.faults.fallback.gpu_equivalent`,
      exactly what lowering without offload would have emitted) instead
      of raising :class:`~repro.errors.FaultError`.
    * ``breakers`` — a :class:`repro.serving.breaker.BreakerBoard` with
      per-device circuit breakers (GPU/PIM/transfer) on the simulated
      clock; an open PIM breaker reroutes PIM kernels to the GPU until
      its cooldown elapses and a probe succeeds.
    * ``kernel_timeout`` — a per-kernel ceiling on simulated execution
      time.  A PIM kernel that would exceed it is treated as hung:
      killed at the timeout mark (partial time/energy charged) and
      re-executed on the GPU.

    Without a plan the class degrades to the plain :class:`Scheduler`.
    """

    def __init__(self, gpu_model: GpuModel,
                 pim_executor: PimExecutor | None = None,
                 cache: CacheModel | None = None,
                 keep_segments: bool = True,
                 tracer=None,
                 metrics=None,
                 plan=None,
                 injector: FaultInjector | None = None,
                 health=None,
                 breakers=None,
                 kernel_timeout: float | None = None,
                 ras=None):
        super().__init__(gpu_model, pim_executor, cache=cache,
                         keep_segments=keep_segments, tracer=tracer,
                         metrics=metrics)
        if plan is None and injector is not None:
            plan = injector.plan
        if plan is None and ras is not None:
            # RAS without a fault plan still needs the resilient loop:
            # attach an empty plan (no fault draws) so the per-kernel
            # site/verify machinery runs.
            from repro.faults.plan import FaultPlan
            plan = FaultPlan(seed=ras.config.seed)
        self.plan = plan
        self.injector = injector if injector is not None else (
            FaultInjector(plan) if plan is not None else None)
        self.health = health
        self.breakers = breakers
        self.kernel_timeout = kernel_timeout
        self.ras = ras
        if ras is not None:
            ras.bind(self.injector, health)

    # -- Per-execution accounting helpers ------------------------------------

    def _account_pim(self, cost, report: ScheduleReport) -> None:
        report.pim_time += cost.time
        report.pim_internal_bytes += cost.internal_bytes
        report.pim_activations += cost.activations
        report.energy_pim += cost.energy

    def _account_gpu(self, kernel: GpuKernel,
                     report: ScheduleReport) -> float:
        dram = self.cache.dram_bytes(kernel)
        cost = self.gpu_model.kernel_cost(kernel, dram_bytes=dram)
        report.gpu_time += cost.time
        report.gpu_dram_bytes += cost.dram_bytes
        if kernel.category is OpCategory.TRANSFER:
            report.transfer_bytes += cost.dram_bytes
        report.energy_gpu_dynamic += self.gpu_model.kernel_energy(kernel,
                                                                  cost)
        return cost.time

    def run(self, trace: Trace) -> ScheduleReport:
        if self.injector is None:
            return super().run(trace)
        plan, injector = self.plan, self.injector
        tracer = self.tracer
        ras = self.ras
        health, breakers = self.health, self.breakers
        kernel_timeout = self.kernel_timeout
        report = ScheduleReport(label=trace.label)
        overhead = self.gpu_model.config.pim_transition_overhead
        clock = 0.0
        previous_device = None
        times = {"verify_time": 0.0, "retry_time": 0.0, "fallback_time": 0.0}
        counts = {"degraded_reroutes": 0, "breaker_reroutes": 0,
                  "kernel_timeouts": 0}
        rerouted = 0
        event_base = len(injector.log.events)
        pim_index = 0

        def advance(duration: float, device: str, name: str,
                    category) -> None:
            nonlocal clock, previous_device
            if previous_device is not None and previous_device != device:
                clock += overhead
                report.transition_time += overhead
                report.transitions += 1
                if tracer is not None:
                    tracer.count("scheduler.transitions")
                if self._m is not None:
                    self._m.transitions.inc()
            if self._m is not None:
                self._m.kernel(device, category, duration)
            if ras is not None and device == "gpu":
                # PIM banks idle while the GPU runs: feed the
                # opportunistic scrub budget.
                ras.note_idle(duration)
            start = clock
            clock += duration
            report.time_by_category[category] = (
                report.time_by_category.get(category, 0.0) + duration)
            if self.keep_segments:
                report.segments.append(Segment(
                    start=start, end=clock, device=device,
                    name=name, category=category))
            previous_device = device

        def breaker_device(device: str, category) -> str:
            return "transfer" if category is OpCategory.TRANSFER else device

        def note_event(event: str) -> None:
            if self._m is not None:
                self._m.faults.inc(event=event)

        def note_success(device: str, category) -> None:
            if breakers is not None:
                breakers.record_success(breaker_device(device, category),
                                        clock)

        def note_failure(device: str, category) -> None:
            bdev = breaker_device(device, category)
            if breakers is not None and breakers.record_failure(bdev, clock):
                if tracer is not None:
                    tracer.count(f"scheduler.breaker.open.{bdev}")
                note_event("breaker_open")
                if health is not None:
                    health.note_breaker_open(bdev, clock)
            if health is not None:
                health.note_fault(bdev, clock)
                if health.failed:
                    raise FaultError(
                        "GPU circuit breaker opened; no healthy device "
                        "remains to serve the schedule")

        def note_quarantine(site) -> None:
            if tracer is not None:
                tracer.count("scheduler.faults.quarantined_sites")
            note_event("quarantine")
            if health is not None:
                health.note_quarantine(site, clock)

        def gpu_fallback(pim_name: str, fallback) -> None:
            fb_duration = self._account_gpu(fallback, report)
            fb_verify = self.gpu_model.verify_cost(fallback)
            report.gpu_time += fb_verify
            advance(fb_duration + fb_verify, "gpu",
                    f"{pim_name}.fallback", fallback.category)
            times["verify_time"] += fb_verify
            times["fallback_time"] += fb_duration + fb_verify
            note_success("gpu", fallback.category)

        for kernel in trace:
            is_pim = isinstance(kernel, PimKernel)
            if is_pim and self.pim_executor is None:
                raise ValueError(
                    "trace contains PIM kernels but no PIM executor "
                    "was provided")
            exec_kernel = kernel
            device = "pim" if is_pim else "gpu"
            site = None
            if is_pim:
                site = injector.site_for(pim_index)
                pim_index += 1
                if health is not None:
                    health.note_pim_kernel()
                if injector.is_quarantined(site):
                    injector.note_reroute()
                    rerouted += 1
                    if tracer is not None:
                        tracer.count("scheduler.faults.rerouted")
                    note_event("rerouted")
                    exec_kernel = gpu_equivalent(kernel)
                    device, site = "gpu", None
                elif health is not None and health.gpu_only:
                    # degraded mode: the remaining block sequence runs
                    # on the GPU-only schedule
                    counts["degraded_reroutes"] += 1
                    if tracer is not None:
                        tracer.count("scheduler.faults.degraded_reroutes")
                    note_event("degraded_reroute")
                    exec_kernel = gpu_equivalent(kernel)
                    device, site = "gpu", None
                elif breakers is not None \
                        and not breakers.allow("pim", clock):
                    counts["breaker_reroutes"] += 1
                    if tracer is not None:
                        tracer.count("scheduler.faults.breaker_reroutes")
                    note_event("breaker_reroute")
                    exec_kernel = gpu_equivalent(kernel)
                    device, site = "gpu", None

            ras_escape = False
            if ras is not None and device == "pim":
                # Memory maintenance due before the kernel touches its
                # region: scrub passes, operand-fetch ECC resolution,
                # and any remap migrations, all charged as PIM time.
                ras_items, ras_escape = ras.before_kernel(site, clock)
                for ras_name, ras_secs in ras_items:
                    report.pim_time += ras_secs
                    advance(ras_secs, "pim", ras_name, exec_kernel.category)

            attempts = 0
            while True:
                instruction = getattr(exec_kernel, "instruction", None)
                fault = injector.kernel_fault(device, exec_kernel.category,
                                              instruction=instruction,
                                              site=site)
                if device == "pim":
                    nominal = self.pim_executor.cost(exec_kernel)
                    executed = self.pim_executor.apply_fault(nominal, fault)
                    if (kernel_timeout is not None and fault is None
                            and executed.time > kernel_timeout):
                        # Hung PIM kernel: killed at the timeout mark
                        # (partial time/energy charged, no result to
                        # verify), re-executed on the GPU, and the site
                        # takes a strike like any other failure.
                        fraction = kernel_timeout / executed.time
                        report.pim_time += kernel_timeout
                        report.pim_internal_bytes += (
                            executed.internal_bytes * fraction)
                        report.pim_activations += int(
                            executed.activations * fraction)
                        report.energy_pim += executed.energy * fraction
                        advance(kernel_timeout, "pim",
                                f"{exec_kernel.name}.timeout",
                                exec_kernel.category)
                        counts["kernel_timeouts"] += 1
                        if tracer is not None:
                            tracer.count("scheduler.faults.kernel_timeouts")
                        note_event("kernel_timeout")
                        note_failure("pim", exec_kernel.category)
                        gpu_fallback(exec_kernel.name,
                                     gpu_equivalent(exec_kernel))
                        if injector.record_site_failure(site):
                            note_quarantine(site)
                        break
                    self._account_pim(executed, report)
                    duration = executed.time
                    verify = plan.pim_verify_overhead * nominal.time
                    report.pim_time += verify
                else:
                    duration = self._account_gpu(exec_kernel, report)
                    verify = self.gpu_model.verify_cost(exec_kernel)
                    report.gpu_time += verify
                label = exec_kernel.name if attempts == 0 else (
                    f"{exec_kernel.name}.retry{attempts}")
                advance(duration + verify, device, label,
                        exec_kernel.category)
                times["verify_time"] += verify
                if attempts > 0:
                    times["retry_time"] += duration + verify
                if fault is None:
                    if ras_escape:
                        # An ECC escape (>= 3-bit retention error)
                        # corrupted the operands; the residue-checksum
                        # verify just caught it.  Rewrite the region
                        # from redundancy and re-execute the kernel.
                        ras_escape = False
                        if tracer is not None:
                            tracer.count("scheduler.ras.escapes")
                        note_event("ras_escape")
                        note_failure("pim", exec_kernel.category)
                        for ras_name, ras_secs in ras.repair_items(site,
                                                                   clock):
                            report.pim_time += ras_secs
                            advance(ras_secs, "pim", ras_name,
                                    exec_kernel.category)
                        attempts += 1
                        continue
                    if (kernel_timeout is not None and device == "gpu"
                            and duration > kernel_timeout):
                        # A GPU overrun has no second device to fall
                        # back to: record it (and charge the breaker)
                        # but keep the completed result.
                        counts["kernel_timeouts"] += 1
                        if tracer is not None:
                            tracer.count("scheduler.faults.kernel_timeouts")
                        note_event("kernel_timeout")
                        note_failure(device, exec_kernel.category)
                    else:
                        note_success(device, exec_kernel.category)
                    break
                if tracer is not None:
                    tracer.count("scheduler.faults.injected")
                note_event("injected")
                if injector.fault_is_benign(fault, instruction):
                    event = injector.event(fault, exec_kernel.name,
                                           "analytic", site=site)
                    event.benign = True
                    note_event("benign")
                    note_success(device, exec_kernel.category)
                    break
                event = injector.event(fault, exec_kernel.name, "analytic",
                                       site=site)
                event.detected = True
                event.attempts = attempts + 1
                if tracer is not None:
                    tracer.count("scheduler.faults.detected")
                note_event("detected")
                note_failure(device, exec_kernel.category)
                attempts += 1
                if (attempts <= plan.max_attempts
                        and fault not in PERSISTENT_MODELS):
                    event.recovery = "retry"
                    if tracer is not None:
                        tracer.count("scheduler.faults.retries")
                    note_event("retry")
                    continue
                if not plan.allow_fallback:
                    if health is None:
                        raise FaultError(
                            f"kernel {exec_kernel.name!r} failed "
                            f"{attempts} attempt(s) at site {site} and "
                            f"fallback is disabled")
                    # Service-level override: degrade to GPU_ONLY and
                    # keep serving instead of aborting the whole run.
                    health.note_policy_exhausted(exec_kernel.name, clock)
                    if tracer is not None:
                        tracer.count("scheduler.faults.policy_degraded")
                    note_event("policy_degraded")
                # GPU fallback: re-execute on the reliable device.  A
                # failed PIM site takes a strike; enough strikes
                # quarantine it for the rest of the schedule.
                fallback = (gpu_equivalent(exec_kernel)
                            if device == "pim" else exec_kernel)
                gpu_fallback(exec_kernel.name, fallback)
                event.recovery = "fallback"
                if tracer is not None:
                    tracer.count("scheduler.faults.fallbacks")
                note_event("fallback")
                if device == "pim" and injector.record_site_failure(site):
                    note_quarantine(site)
                break

        report.total_time = clock
        report.energy_gpu_idle = self.gpu_model.config.idle_power * clock
        from repro.faults.events import FaultLog
        run_log = FaultLog(events=injector.log.events[event_base:],
                           rerouted=rerouted,
                           quarantined_sites=list(
                               injector.log.quarantined_sites))
        report.fault_summary = dict(run_log.summary(), **times,
                                    plan_digest=plan.digest())
        if health is not None or breakers is not None \
                or kernel_timeout is not None:
            report.fault_summary.update(counts)
        if health is not None:
            report.fault_summary["degradation"] = health.summary()
        if breakers is not None:
            report.fault_summary["breakers"] = breakers.summary()
        if ras is not None:
            report.fault_summary["ras"] = ras.summary()
        return report
