"""ASCII Gantt chart rendering of schedules (Fig. 4a)."""

from __future__ import annotations

from repro.core.scheduler import ScheduleReport

#: Glyph per (device, category) for the chart body.  Every
#: :class:`~repro.core.trace.OpCategory` is mapped on both devices
#: (uppercase = GPU, lowercase = PIM, with P kept for the dominant
#: PIM element-wise kernels) so no schedule ever renders as ``?``.
_GLYPHS = {
    ("gpu", "ntt"): "N",
    ("gpu", "bconv"): "B",
    ("gpu", "elementwise"): "e",
    ("gpu", "automorphism"): "A",
    ("gpu", "transfer"): "w",
    ("pim", "ntt"): "n",
    ("pim", "bconv"): "b",
    ("pim", "elementwise"): "P",
    ("pim", "automorphism"): "a",
    ("pim", "transfer"): "t",
}


def render_gantt(report: ScheduleReport, width: int = 100) -> str:
    """One line per device, proportional glyphs per kernel category.

    GPU rows show N=(I)NTT, B=BConv, e=element-wise, A=automorphism,
    w=write-back; the PIM row shows P for PIM kernels.
    """
    if not report.segments:
        return "(no segments recorded — construct the framework with "\
               "keep_segments=True)"
    total = report.total_time or 1.0
    rows = {"gpu": [" "] * width, "pim": [" "] * width}
    for segment in report.segments:
        glyph = _GLYPHS.get((segment.device, segment.category.value), "?")
        start = int(segment.start / total * (width - 1))
        end = max(start + 1, int(segment.end / total * width))
        for i in range(start, min(end, width)):
            rows[segment.device][i] = glyph
    header = (f"{report.label}  total={total * 1e6:.0f}us  "
              f"(gpu {report.gpu_time * 1e6:.0f}us, "
              f"pim {report.pim_time * 1e6:.0f}us, "
              f"{report.transitions} transitions)")
    lines = [header,
             "GPU |" + "".join(rows["gpu"]) + "|",
             "PIM |" + "".join(rows["pim"]) + "|"]
    return "\n".join(lines)


def render_breakdown(reports: dict, unit: float = 1e-3,
                     unit_label: str = "ms") -> str:
    """Tabular per-category time breakdown for several reports."""
    if not reports:
        return "(no reports to break down)"
    categories = []
    for report in reports.values():
        for label in report.breakdown():
            if label not in categories:
                categories.append(label)
    name_width = max(len(n) for n in reports) + 2
    header = "".join(f"{c:>14s}" for c in categories) + f"{'total':>14s}"
    lines = [" " * name_width + header]
    for name, report in reports.items():
        cells = "".join(
            f"{report.breakdown().get(c, 0.0) / unit:14.3f}"
            for c in categories)
        cells += f"{report.total_time / unit:14.3f}"
        lines.append(f"{name:<{name_width}s}" + cells)
    lines.append(f"(times in {unit_label})")
    return "\n".join(lines)
