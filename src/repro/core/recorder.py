"""Recording evaluator: the §V-C programming-interface bridge.

"Programmers can write a simple high-level code, which will be
translated into appropriate GPU kernels, API calls, and PIM kernels."

:class:`RecordingEvaluator` is a drop-in CKKS evaluator that executes
real math *and* records the block program it performs.  The recorded
blocks can then be re-scaled to paper parameters and costed by the
Anaheim framework — write an FHE application once at a toy ring degree,
get its projected A100+PIM performance for free::

    ctx = RecordingEvaluator(params, keys)
    ...  # ordinary homomorphic code
    blocks = scale_blocks(ctx.recorded, params, paper_params())
    report = AnaheimFramework(A100_80GB, A100_NEAR_BANK).run(
        blocks, 2 ** 16).report

Recording happens at the evaluator-API level: linear transforms and
bootstrapping built from evaluator calls (baseline/MinKS/BSGS paths)
are captured op by op; the hoisted path manipulates key-switch
internals directly and should be modeled with
:mod:`repro.workloads.linear_transform_trace` instead.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.ckks.evaluator import CkksEvaluator
from repro.core import blocks as B
from repro.params import PaperParams


class RecordingEvaluator(CkksEvaluator):
    """A :class:`CkksEvaluator` that also journals its block program."""

    def __init__(self, params, keys, seed: int = 7):
        super().__init__(params, keys, seed=seed)
        self.recorded: list = []
        self._muted = 0

    def _log(self, block) -> None:
        if not self._muted:
            self.recorded.append(block)

    @contextmanager
    def _suppressed(self):
        """Mute recording inside composite ops so their internal calls
        (e.g. multiply's rescale) are not journaled twice."""
        self._muted += 1
        try:
            yield
        finally:
            self._muted -= 1

    def reset_recording(self) -> None:
        self.recorded = []

    # -- Element-wise functions --------------------------------------------------

    def add(self, x, y):
        out = super().add(x, y)
        self._log(B.hadd(out.level_count))
        return out

    def sub(self, x, y):
        out = super().sub(x, y)
        self._log(B.hadd(out.level_count))
        return out

    def negate(self, x):
        out = super().negate(x)
        self._log(B.elementwise("neg", 2 * x.level_count, reads=1, writes=1,
                                instruction="Neg"))
        return out

    def add_plain(self, x, p):
        out = super().add_plain(x, p)
        self._log(B.elementwise("add_plain", x.level_count, reads=2,
                                writes=1, streaming_reads=1,
                                instruction="Add"))
        return out

    def mul_plain(self, x, p, rescale=True):
        with self._suppressed():
            out = super().mul_plain(x, p, rescale=rescale)
        self._log(B.pmult_pair(x.level_count))
        if rescale:
            self._log(B.rescale_pair(x.level_count))
        return out

    def mul_monomial(self, x, power):
        out = super().mul_monomial(x, power)
        self._log(B.elementwise("monomial", 2 * x.level_count, reads=2,
                                writes=1, instruction="Mult"))
        return out

    # -- Key-switching functions -----------------------------------------------------

    def _log_key_switch(self, limbs: int) -> None:
        self._log(B.mod_up(limbs, self.params.aux_count, self.decomp.dnum))
        self._log(B.key_mult(limbs, self.params.aux_count,
                             self.decomp.dnum))
        self._log(B.mod_down(limbs, self.params.aux_count))

    def multiply(self, x, y, rescale=True):
        limbs = min(x.level_count, y.level_count)
        with self._suppressed():
            out = super().multiply(x, y, rescale=rescale)
        self._log(B.tensor(limbs))
        self._log_key_switch(limbs)
        self._log(B.hadd(limbs))
        if rescale:
            self._log(B.rescale_pair(limbs))
        return out

    def square(self, x, rescale=True):
        with self._suppressed():
            out = super().square(x, rescale=rescale)
        self._log(B.tensor(x.level_count))
        self._log_key_switch(x.level_count)
        self._log(B.hadd(x.level_count))
        if rescale:
            self._log(B.rescale_pair(x.level_count))
        return out

    def rotate(self, x, distance):
        with self._suppressed():
            out = super().rotate(x, distance)
        if distance % (self.params.degree // 2) != 0:
            self._log(B.automorphism_pair(x.level_count))
            self._log_key_switch(x.level_count)
            self._log(B.mac_pair(x.level_count))
        return out

    def conjugate(self, x):
        with self._suppressed():
            out = super().conjugate(x)
        self._log(B.automorphism_pair(x.level_count))
        self._log_key_switch(x.level_count)
        self._log(B.mac_pair(x.level_count))
        return out

    def rescale(self, ct):
        out = super().rescale(ct)
        self._log(B.rescale_pair(ct.level_count))
        return out


def scale_blocks(recorded, functional_params, target: PaperParams) -> list:
    """Re-scale a recorded block program to paper parameters.

    Limb counts stretch proportionally from the functional level budget
    to the target's; the degree is supplied at lowering time, so only
    limbs, aux, and dnum need adjusting.
    """
    ratio = target.level_count / functional_params.level_count
    out = []
    for block in recorded:
        scaled = B.Block(
            kind=block.kind,
            limbs=max(1, round(block.limbs * ratio)),
            aux=target.aux_count if block.aux or block.kind in (
                "modup", "keymult", "moddown_pair") else block.aux,
            dnum=target.dnum if block.dnum > 1 or block.kind in (
                "modup", "keymult") else block.dnum,
            count=block.count,
            polys=block.polys,
            streaming=block.streaming,
            note=block.note,
            attrs=dict(block.attrs),
        )
        out.append(scaled)
    return out
