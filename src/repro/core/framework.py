"""The Anaheim software framework: high-level entry point (§V-C, Fig. 4a).

``AnaheimFramework`` binds a GPU model, an optional PIM device, and a
library profile; it lowers block IR through the optimization passes and
schedules the result, returning :class:`ScheduleReport` objects that the
benchmarks turn into the paper's tables and figures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.fusion import (GPU_ALL_FUSE, PIM_FULL, LoweringOptions,
                               lower)
from repro.core.scheduler import (ResilientScheduler, ScheduleReport,
                                  Scheduler)
from repro.gpu.cache import CacheModel
from repro.gpu.configs import CHEDDAR, GpuConfig, LibraryProfile
from repro.gpu.model import GpuModel
from repro.obs.tracer import maybe_span
from repro.pim.configs import PimConfig
from repro.pim.executor import PimExecutor


@dataclass
class ExecutionResult:
    """A schedule report plus the options that produced it."""

    report: ScheduleReport
    options: LoweringOptions


class AnaheimFramework:
    """Translates FHE block programs into scheduled hybrid executions."""

    def __init__(self, gpu: GpuConfig, pim: PimConfig | None = None,
                 library: LibraryProfile = CHEDDAR,
                 working_set_bytes: float = 0.0,
                 keep_segments: bool = False,
                 tracer=None,
                 metrics=None,
                 fault_plan=None,
                 health=None,
                 breakers=None,
                 kernel_timeout: float | None = None,
                 ras_config=None):
        self.gpu = gpu
        self.pim = pim
        self.library = library
        self.tracer = tracer
        self.metrics = metrics
        self.gpu_model = GpuModel(gpu, library, tracer=tracer,
                                  metrics=metrics)
        self.pim_executor = (PimExecutor(pim, tracer=tracer,
                                         metrics=metrics)
                             if pim is not None else None)
        self.cache = CacheModel(l2_bytes=gpu.l2_cache_bytes,
                                working_set_bytes=working_set_bytes)
        self.keep_segments = keep_segments
        self.fault_plan = fault_plan
        #: Serving-layer resilience state (HealthMonitor / BreakerBoard /
        #: per-kernel timeout).  Shared across runs of this framework on
        #: purpose: degradation is a property of the *hardware*, so a
        #: second workload on the same framework inherits the state.
        self.health = health
        self.breakers = breakers
        self.kernel_timeout = kernel_timeout
        #: Memory RAS model (:class:`repro.dram.reliability
        #: .ReliabilityConfig`).  A fresh :class:`~repro.faults.ras
        #: .RasEngine` is built per run so every run is a pure function
        #: of (config, trace) — wear does not leak across runs.
        self.ras_config = ras_config if pim is not None else None

    def _scheduler(self) -> Scheduler:
        if self.fault_plan is not None or self.ras_config is not None:
            ras = None
            if self.ras_config is not None:
                from repro.faults.ras import RasEngine
                ras = RasEngine(self.ras_config, timing=self.pim.timing,
                                tracer=self.tracer, metrics=self.metrics)
            return ResilientScheduler(self.gpu_model, self.pim_executor,
                                      cache=self.cache,
                                      keep_segments=self.keep_segments,
                                      tracer=self.tracer,
                                      metrics=self.metrics,
                                      plan=self.fault_plan,
                                      health=self.health,
                                      breakers=self.breakers,
                                      kernel_timeout=self.kernel_timeout,
                                      ras=ras)
        return Scheduler(self.gpu_model, self.pim_executor,
                         cache=self.cache,
                         keep_segments=self.keep_segments,
                         tracer=self.tracer,
                         metrics=self.metrics)

    def default_options(self) -> LoweringOptions:
        """Best options for the bound devices: full fusion, plus PIM
        offload when a PIM device is attached (GPU-only configurations
        get the ExtraFuse pass instead — §VII-D)."""
        return PIM_FULL if self.pim is not None else GPU_ALL_FUSE

    def run(self, blocks, degree: int,
            options: LoweringOptions | None = None,
            label: str = "") -> ExecutionResult:
        """Lower and schedule one block program."""
        if options is None:
            options = self.default_options()
        if options.offload and self.pim_executor is None:
            raise ValueError("offloading requested without a PIM device")
        with maybe_span(self.tracer, "framework.run", label=label,
                        options=options.describe()):
            with maybe_span(self.tracer, "framework.lower"):
                trace = lower(blocks, degree, options, label=label,
                              tracer=self.tracer)
            scheduler = self._scheduler()
            with maybe_span(self.tracer, "framework.schedule",
                            kernels=len(trace)):
                report = scheduler.run(trace)
        return ExecutionResult(report=report, options=options)

    def compare(self, blocks, degree: int, label: str = "") -> dict:
        """Baseline GPU vs Anaheim execution of the same program."""
        baseline = AnaheimFramework(
            self.gpu, pim=None, library=self.library,
            working_set_bytes=self.cache.working_set_bytes,
            keep_segments=self.keep_segments, tracer=self.tracer)
        out = {"gpu": baseline.run(blocks, degree, GPU_ALL_FUSE,
                                   label=f"{label} (GPU)")}
        if self.pim is not None:
            out["pim"] = self.run(blocks, degree, PIM_FULL,
                                  label=f"{label} (Anaheim)")
        return out
