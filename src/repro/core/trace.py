"""Kernel-level intermediate representation of FHE execution.

The Anaheim software framework translates programmer-level FHE code into
GPU kernels, API calls, and PIM kernels (Fig. 4a).  This module defines
the IR those passes manipulate:

* :class:`GpuKernel` — a device kernel with exact modular-op and byte
  counts, categorized per the paper's breakdown ((I)NTT, BConv,
  element-wise, automorphism).
* :class:`PimKernel` — a batch of PIM instructions (Table II) executed
  all-bank over a set of limbs.
* :class:`Trace` — an ordered kernel list plus helpers the fusion,
  reordering, and offload passes use.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace


class OpCategory(enum.Enum):
    """Execution-time breakdown categories used throughout Figs. 2-10."""

    NTT = "ntt"                    # forward and inverse NTT
    BCONV = "bconv"                # basis conversion matrix products
    ELEMENTWISE = "elementwise"    # modular add/mult/MAC and friends
    AUTOMORPHISM = "automorphism"  # coefficient permutations
    TRANSFER = "transfer"          # host/device or writeback traffic


#: Category labels for reports, matching the paper's figure legends.
CATEGORY_LABELS = {
    OpCategory.NTT: "(I)NTT",
    OpCategory.BCONV: "BConv",
    OpCategory.ELEMENTWISE: "Element-wise",
    OpCategory.AUTOMORPHISM: "Automorphism",
    OpCategory.TRANSFER: "Transfer",
}


@dataclass
class GpuKernel:
    """One GPU kernel launch with analytic cost inputs.

    ``mod_ops`` counts modular multiplications (the dominant op; each
    expands to several integer instructions on a GPU — §III-A D2).
    ``bytes_read``/``bytes_written`` are the kernel's *memory footprint*;
    ``streaming_bytes`` is the subset guaranteed to miss cache (one-use
    data such as evks and plaintexts — §V-D).
    """

    name: str
    category: OpCategory
    mod_ops: float
    bytes_read: float
    bytes_written: float
    streaming_bytes: float = 0.0
    #: Free-form markers used by the optimization passes, e.g.
    #: "fusible", "evk-load", "pim-offloadable", "writeback".
    tags: frozenset = frozenset()

    @property
    def total_bytes(self) -> float:
        return self.bytes_read + self.bytes_written

    def tagged(self, *tags: str) -> "GpuKernel":
        return replace(self, tags=self.tags | frozenset(tags))

    def has_tag(self, tag: str) -> bool:
        return tag in self.tags


@dataclass
class PimKernel:
    """A PIM kernel: one Table II instruction over many limb-vectors.

    ``instruction`` names the PIM ISA entry; ``limbs`` is how many
    N-element limbs each operand contributes; ``fan_in`` is K for
    compound instructions (PAccum⟨K⟩ / CAccum⟨K⟩).  The PIM executor
    (:mod:`repro.pim.executor`) turns this into DRAM command counts.
    """

    name: str
    instruction: str
    limbs: int
    degree: int
    fan_in: int = 1
    #: Set False for the w/o-CP ablation (Fig. 10) — the executor then
    #: charges one row activation per polynomial access group.
    column_partitioned: bool = True
    tags: frozenset = frozenset()

    @property
    def category(self) -> OpCategory:
        return OpCategory.ELEMENTWISE

    def has_tag(self, tag: str) -> bool:
        return tag in self.tags


@dataclass
class Trace:
    """An ordered sequence of kernels plus workload metadata."""

    kernels: list = field(default_factory=list)
    label: str = ""

    def append(self, kernel) -> None:
        self.kernels.append(kernel)

    def extend(self, kernels) -> None:
        self.kernels.extend(kernels)

    def __iter__(self):
        return iter(self.kernels)

    def __len__(self) -> int:
        return len(self.kernels)

    def gpu_kernels(self):
        return [k for k in self.kernels if isinstance(k, GpuKernel)]

    def pim_kernels(self):
        return [k for k in self.kernels if isinstance(k, PimKernel)]

    def by_category(self) -> dict:
        """Group kernels by their breakdown category."""
        groups: dict = {}
        for kernel in self.kernels:
            groups.setdefault(kernel.category, []).append(kernel)
        return groups

    def count(self, category: OpCategory) -> int:
        return sum(1 for k in self.kernels if k.category == category)

    def total_mod_ops(self) -> float:
        return sum(k.mod_ops for k in self.gpu_kernels())

    def total_gpu_bytes(self) -> float:
        return sum(k.total_bytes for k in self.gpu_kernels())

    def repeated(self, times: int, label: str | None = None) -> "Trace":
        """A trace that executes this one ``times`` times."""
        out = Trace(label=label or f"{self.label} x{times}")
        for _ in range(times):
            out.extend(self.kernels)
        return out

    def concat(self, other: "Trace", label: str | None = None) -> "Trace":
        out = Trace(label=label or self.label)
        out.extend(self.kernels)
        out.extend(other.kernels)
        return out
