"""Static memory planning: PolyGroup preallocation and capacity checks.

FHE dataflow is static (§V-C), so the framework can place every
polynomial before execution.  This module provides the device-level
accounting used to reproduce the paper's out-of-memory results
(Fig. 2b: D ≥ 6 on RTX 4090; Fig. 8: ResNet20/ResNet18 on RTX 4090;
§VIII-B: ResNet18-AESPA needs over 40 GB).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import WORD_BYTES

#: Fragmentation + scratch multiplier over the raw resident footprint
#: (double buffers for ModUp digits, temporaries, framework overheads).
SCRATCH_FACTOR = 1.3


@dataclass(frozen=True)
class MemoryPlan:
    """Resident device memory of one workload."""

    evk_bytes: float
    plaintext_bytes: float
    ciphertext_bytes: float
    scratch_factor: float = SCRATCH_FACTOR

    @property
    def raw_bytes(self) -> float:
        return self.evk_bytes + self.plaintext_bytes + self.ciphertext_bytes

    @property
    def total_bytes(self) -> float:
        return self.raw_bytes * self.scratch_factor

    def fits(self, capacity_bytes: float) -> bool:
        return self.total_bytes <= capacity_bytes

    def describe(self) -> str:
        return (f"evk {self.evk_bytes / 1e9:.1f}GB + "
                f"pt {self.plaintext_bytes / 1e9:.1f}GB + "
                f"ct {self.ciphertext_bytes / 1e9:.1f}GB "
                f"(x{self.scratch_factor:.1f} scratch) = "
                f"{self.total_bytes / 1e9:.1f}GB")


def plan_memory(params, evk_count: int, plaintext_limbs: int,
                live_ciphertexts: int = 16) -> MemoryPlan:
    """Build a :class:`MemoryPlan` from workload metadata.

    ``params`` may be :class:`repro.params.PaperParams` or
    :class:`repro.params.CkksParams` (both expose the size helpers).
    """
    evk_bytes = evk_count * params.evk_bytes()
    plaintext_bytes = plaintext_limbs * params.degree * WORD_BYTES
    ciphertext_bytes = live_ciphertexts * params.ciphertext_bytes()
    return MemoryPlan(evk_bytes=float(evk_bytes),
                      plaintext_bytes=float(plaintext_bytes),
                      ciphertext_bytes=float(ciphertext_bytes))
