"""Lowering of block IR into kernel traces, with kernel fusion.

Implements the paper's three fusion levels (§VII-D, Fig. 10) plus PIM
offloading (§V):

* **Base** — Cheddar-style baseline: constant-polynomial element-wise
  ops are already embedded into the (I)NTT kernels; everything else is
  one kernel per logical op.
* **+BasicFuse** — compound kernels: KeyMult chains fuse into
  PAccum⟨D⟩, constant accumulations into CAccum⟨K⟩, Tensor products
  into single Tensor kernels.
* **+ExtraFuse** — GPU-only extra fusion (e.g. ModDown fusion from
  [38]) applied when PIM is absent; with Anaheim the same ops are
  handled by PIM instead.
* **+AutFuse** — automorphism+accumulate merges into one AutAccum
  kernel (§V-B).

With ``offload=True``, element-wise kernels carrying a PIM instruction
become :class:`PimKernel` records and the producing ModUp NTT kernels
gain coherence write-back traffic (§V-C).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.blocks import Block
from repro.core.trace import GpuKernel, OpCategory, PimKernel, Trace
from repro.errors import ParameterError
from repro.gpu import kernels as gk


@dataclass(frozen=True)
class LoweringOptions:
    """Optimization level of the software framework."""

    basic_fuse: bool = True
    aut_fuse: bool = True
    extra_fuse: bool = False
    offload: bool = False
    column_partitioned: bool = True

    def describe(self) -> str:
        parts = []
        if self.basic_fuse:
            parts.append("BasicFuse")
        if self.aut_fuse:
            parts.append("AutFuse")
        if self.extra_fuse:
            parts.append("ExtraFuse")
        if self.offload:
            parts.append("PIM" + ("" if self.column_partitioned else " w/o CP"))
        return "+".join(parts) if parts else "Base"


#: The GPU-only comparison points of Fig. 10.
GPU_BASE = LoweringOptions(basic_fuse=False, aut_fuse=False)
GPU_BASIC_FUSE = LoweringOptions(basic_fuse=True, aut_fuse=False)
GPU_EXTRA_FUSE = LoweringOptions(basic_fuse=True, aut_fuse=False,
                                 extra_fuse=True)
GPU_ALL_FUSE = LoweringOptions(basic_fuse=True, aut_fuse=True,
                               extra_fuse=True)
#: The Anaheim points of Fig. 10.
PIM_BASE = LoweringOptions(basic_fuse=False, aut_fuse=False, offload=True)
PIM_BASIC_FUSE = LoweringOptions(basic_fuse=True, aut_fuse=False,
                                 offload=True)
PIM_FULL = LoweringOptions(basic_fuse=True, aut_fuse=True, offload=True)
PIM_NO_CP = LoweringOptions(basic_fuse=True, aut_fuse=True, offload=True,
                            column_partitioned=False)


class Lowering:
    """Lowers block lists for one parameter set and option level."""

    def __init__(self, degree: int, options: LoweringOptions, tracer=None):
        self.degree = degree
        self.options = options
        self.tracer = tracer

    # -- Entry point -----------------------------------------------------------

    def lower(self, blocks, label: str = "") -> Trace:
        trace = Trace(label=label)
        tracer = self.tracer
        for block in blocks:
            handler = getattr(self, f"_lower_{block.kind}", None)
            if handler is None:
                raise ParameterError(f"unknown block kind {block.kind!r}")
            if tracer is None:
                trace.extend(handler(block))
                continue
            with tracer.span(f"lower.{block.kind}", limbs=block.limbs):
                kernels = handler(block)
            tracer.count("lower.blocks")
            tracer.count(f"lower.blocks.{block.kind}")
            for kernel in kernels:
                device = "pim" if isinstance(kernel, PimKernel) else "gpu"
                tracer.count(f"lower.kernels.{device}")
            trace.extend(kernels)
        return trace

    # -- Element-wise emission (GPU kernel or PIM instruction) ------------------

    def _ew(self, name: str, limbs: int, reads: int, writes: int,
            ops: float = 1.0, streaming_reads: int = 0,
            instruction: str | None = None, fan_in: int = 1):
        """Emit one element-wise step on the active device."""
        if self.options.offload and instruction is not None:
            return [PimKernel(
                name=name, instruction=instruction, limbs=limbs,
                degree=self.degree, fan_in=fan_in,
                column_partitioned=self.options.column_partitioned)]
        return [gk.elementwise_kernel(
            name, limbs, self.degree, reads=reads, writes=writes,
            ops_per_element=ops, streaming_reads=streaming_reads)]

    # -- Block lowerings ---------------------------------------------------------

    def _lower_ntt(self, b: Block):
        return [gk.ntt_kernel(b.limbs, self.degree)]

    def _lower_intt(self, b: Block):
        return [gk.ntt_kernel(b.limbs, self.degree, inverse=True)]

    def _lower_bconv(self, b: Block):
        return [gk.bconv_kernel(b.limbs, b.attrs["out_limbs"], self.degree)]

    def _lower_modup(self, b: Block):
        """INTT(L) -> D x BConv -> D x NTT, per input polynomial."""
        ext_new = b.limbs + b.aux - min(b.aux, b.limbs)  # freshly made limbs
        out = []
        for _ in range(b.polys):
            out.append(gk.ntt_kernel(b.limbs, self.degree, inverse=True,
                                     name="modup.intt"))
            for _ in range(b.dnum):
                group = -(-b.limbs // b.dnum)
                out.append(gk.bconv_kernel(group, ext_new, self.degree,
                                           name="modup.bconv"))
                ntt = gk.ntt_kernel(ext_new, self.degree, name="modup.ntt")
                out.append(ntt)
            if self.options.offload:
                # The digits feed the PIM block; the L2 copies must be
                # written back to DRAM first (§V-C coherence).
                out.append(gk.writeback_kernel(
                    b.dnum * (b.limbs + b.aux), self.degree,
                    name="modup.writeback"))
        return out

    def _lower_keymult(self, b: Block):
        ext = b.limbs + b.aux
        if self.options.basic_fuse:
            return self._ew("keymult.paccum", ext,
                            reads=3 * b.dnum, writes=2, ops=2 * b.dnum,
                            streaming_reads=2 * b.dnum,
                            instruction="PAccum", fan_in=b.dnum)
        out = []
        for j in range(b.dnum):
            out += self._ew(f"keymult.mul{j}", ext, reads=2, writes=1,
                            streaming_reads=1, instruction="Mult")
            out += self._ew(f"keymult.mul{j}b", ext, reads=2, writes=1,
                            streaming_reads=1, instruction="Mult")
        for j in range(b.dnum - 1):
            out += self._ew(f"keymult.add{j}", ext, reads=2, writes=1,
                            instruction="Add")
            out += self._ew(f"keymult.add{j}b", ext, reads=2, writes=1,
                            instruction="Add")
        return out

    def _lower_pmult_pair(self, b: Block):
        if self.options.basic_fuse:
            return self._ew("pmult", b.limbs, reads=3, writes=2, ops=1.0,
                            streaming_reads=1, instruction="PMult")
        return (self._ew("pmult.b", b.limbs, reads=2, writes=1,
                         streaming_reads=1, instruction="Mult")
                + self._ew("pmult.a", b.limbs, reads=2, writes=1,
                           streaming_reads=1, instruction="Mult"))

    def _lower_pmac_pair(self, b: Block):
        if self.options.basic_fuse:
            return self._ew("pmac", b.limbs, reads=5, writes=2, ops=1.0,
                            streaming_reads=1, instruction="PMAC")
        out = self._lower_pmult_pair(b)
        out += self._ew("pmac.addb", b.limbs, reads=2, writes=1,
                        instruction="Add")
        out += self._ew("pmac.adda", b.limbs, reads=2, writes=1,
                        instruction="Add")
        return out

    def _lower_mac_pair(self, b: Block):
        if self.options.basic_fuse:
            return self._ew("mac", b.limbs, reads=4, writes=2, ops=1.0,
                            instruction="CMAC")
        return (self._ew("mac.b", b.limbs, reads=2, writes=1,
                         instruction="CMAC")
                + self._ew("mac.a", b.limbs, reads=2, writes=1,
                           instruction="CMAC"))

    def _lower_hadd(self, b: Block):
        return self._ew("hadd", 2 * b.limbs, reads=2, writes=1,
                        instruction="Add")

    def _lower_tensor(self, b: Block):
        if self.options.basic_fuse:
            return self._ew("tensor", b.limbs, reads=4, writes=3, ops=2.0,
                            instruction="Tensor")
        out = []
        for name in ("d0", "d2", "d1x", "d1y"):
            out += self._ew(f"tensor.{name}", b.limbs, reads=2, writes=1,
                            instruction="Mult")
        out += self._ew("tensor.d1add", b.limbs, reads=2, writes=1,
                        instruction="Add")
        return out

    def _lower_caccum(self, b: Block):
        if self.options.basic_fuse:
            return self._ew("caccum", b.limbs, reads=2 * b.count, writes=2,
                            ops=float(b.count), streaming_reads=0,
                            instruction="CAccum", fan_in=b.count)
        out = []
        for i in range(b.count):
            out += self._ew(f"caccum.mul{i}", 2 * b.limbs, reads=1, writes=1,
                            instruction="CMult")
            out += self._ew(f"caccum.add{i}", 2 * b.limbs, reads=2, writes=1,
                            instruction="Add")
        return out

    def _lower_automorphism_pair(self, b: Block):
        return [gk.automorphism_kernel(b.limbs, self.degree, polys=2)]

    def _lower_aut_accum(self, b: Block):
        if self.options.aut_fuse:
            # One fused kernel: reads the 2K term polys once, writes the
            # accumulated pair (adds ride along for free).
            kernel = gk.automorphism_kernel(b.limbs, self.degree,
                                            polys=2 * b.count,
                                            name="autaccum")
            kernel = replace(
                kernel, bytes_written=2 * b.limbs * self.degree * 4.0)
            return [kernel]
        out = []
        for i in range(b.count):
            out.append(gk.automorphism_kernel(b.limbs, self.degree, polys=2,
                                              name=f"aut{i}"))
            if i > 0:
                # Separate accumulation kernels (GPU element-wise).
                out += [gk.elementwise_kernel(
                    f"accum{i}", 2 * b.limbs, self.degree, reads=2, writes=1)]
        return out

    def _lower_moddown_pair(self, b: Block):
        out = []
        for _ in range(2):
            out.append(gk.ntt_kernel(b.aux, self.degree, inverse=True,
                                     name="moddown.intt"))
            out.append(gk.bconv_kernel(b.aux, b.limbs, self.degree,
                                       name="moddown.bconv"))
            out.append(gk.ntt_kernel(b.limbs, self.degree,
                                     name="moddown.ntt"))
        fused_ep = (self.options.extra_fuse or self.options.offload
                    or self.options.basic_fuse)
        if fused_ep:
            out += self._ew("moddown.ep", 2 * b.limbs, reads=2, writes=1,
                            ops=2.0, instruction="ModDownEp")
        else:
            out += self._ew("moddown.sub", 2 * b.limbs, reads=2, writes=1,
                            instruction="Sub")
            out += self._ew("moddown.cmult", 2 * b.limbs, reads=1, writes=1,
                            instruction="CMult")
        return out

    def _lower_rescale_pair(self, b: Block):
        # The element-wise correction is embedded into the NTT kernels
        # (the Base fusion every configuration already includes, §VII-D).
        out = []
        for _ in range(2):
            out.append(gk.ntt_kernel(1, self.degree, inverse=True,
                                     name="rescale.intt"))
            out.append(gk.ntt_kernel(b.limbs - 1, self.degree,
                                     name="rescale.ntt"))
        return out

    def _lower_ew(self, b: Block):
        a = b.attrs
        return self._ew(a["name"], b.limbs, reads=a["reads"],
                        writes=a["writes"], ops=a["ops"],
                        streaming_reads=a["streaming_reads"],
                        instruction=a["instruction"], fan_in=a["fan_in"])


def lower(blocks, degree: int, options: LoweringOptions,
          label: str = "", tracer=None) -> Trace:
    """Convenience wrapper: lower a block list into a kernel trace."""
    return Lowering(degree, options, tracer=tracer).lower(blocks, label=label)
