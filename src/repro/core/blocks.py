"""High-level block IR: the unit the Anaheim framework reasons about.

A *block* is one logical step of an FHE op sequence (Fig. 1 / Fig. 5):
ModUp, KeyMult, PMULT pairs, AutAccum, ModDown, Tensor, rescale, and so
on.  Workload builders (:mod:`repro.workloads`) emit block lists; the
lowering pass (:mod:`repro.core.fusion`) turns blocks into GPU/PIM
kernel traces according to the active optimization level.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Block:
    """One logical FHE step.

    ``kind`` selects the lowering rule; ``limbs`` is the number of
    Q-basis limbs the step operates on (the extended modulus adds
    ``aux`` more where relevant).  Remaining knobs parameterize the
    specific kinds (see :mod:`repro.core.fusion` for the lowering of
    each).
    """

    kind: str
    limbs: int
    aux: int = 0
    dnum: int = 1
    count: int = 1          # fan-in K for accumulations / pair counts
    polys: int = 1
    streaming: bool = False
    note: str = ""
    attrs: dict = field(default_factory=dict)


# -- Builders for the § II-B primary op sequences ------------------------------


def mod_up(limbs: int, aux: int, dnum: int, polys: int = 1) -> Block:
    """ModUp: INTT -> D x BConv -> NTT, extending to the PQ basis."""
    return Block(kind="modup", limbs=limbs, aux=aux, dnum=dnum, polys=polys)


def key_mult(limbs: int, aux: int, dnum: int) -> Block:
    """KeyMult: inner product of the digit vector with one evk."""
    return Block(kind="keymult", limbs=limbs, aux=aux, dnum=dnum,
                 streaming=True)


def pmult_pair(limbs: int, accumulate: bool = False) -> Block:
    """PMULT of a ciphertext pair by a (streamed) plaintext."""
    kind = "pmac_pair" if accumulate else "pmult_pair"
    return Block(kind=kind, limbs=limbs, streaming=True)


def mac_pair(limbs: int) -> Block:
    """Constant mult-and-add on a ciphertext pair (the HROT MAC step)."""
    return Block(kind="mac_pair", limbs=limbs)


def automorphism_pair(limbs: int) -> Block:
    return Block(kind="automorphism_pair", limbs=limbs)


def aut_accum(limbs: int, count: int) -> Block:
    """K automorphism+accumulate steps (fusible into one AutAccum)."""
    return Block(kind="aut_accum", limbs=limbs, count=count)


def mod_down(limbs: int, aux: int) -> Block:
    """ModDown of a ciphertext pair from PQ back to Q."""
    return Block(kind="moddown_pair", limbs=limbs, aux=aux)


def rescale_pair(limbs: int) -> Block:
    return Block(kind="rescale_pair", limbs=limbs)


def tensor(limbs: int) -> Block:
    """The HMULT tensor product (d0, d1, d2)."""
    return Block(kind="tensor", limbs=limbs)


def hadd(limbs: int) -> Block:
    return Block(kind="hadd", limbs=limbs)


def caccum(limbs: int, count: int) -> Block:
    """Constant-coefficient accumulation over K pairs (CAccum⟨K⟩)."""
    return Block(kind="caccum", limbs=limbs, count=count)


def elementwise(name: str, limbs: int, reads: int, writes: int,
                ops: float = 1.0, streaming_reads: int = 0,
                instruction: str | None = None, fan_in: int = 1) -> Block:
    """Escape hatch for irregular element-wise steps."""
    return Block(kind="ew", limbs=limbs, attrs={
        "name": name, "reads": reads, "writes": writes, "ops": ops,
        "streaming_reads": streaming_reads, "instruction": instruction,
        "fan_in": fan_in})


def raw_ntt(limbs: int, inverse: bool = False) -> Block:
    return Block(kind="intt" if inverse else "ntt", limbs=limbs)


def raw_bconv(in_limbs: int, out_limbs: int) -> Block:
    return Block(kind="bconv", limbs=in_limbs,
                 attrs={"out_limbs": out_limbs})
