"""The Anaheim software framework: IR, fusion, offload, scheduling."""

from repro.core.allocator import MemoryPlan, plan_memory
from repro.core.framework import AnaheimFramework, ExecutionResult
from repro.core.fusion import (GPU_ALL_FUSE, GPU_BASE, GPU_BASIC_FUSE,
                               GPU_EXTRA_FUSE, PIM_BASE, PIM_BASIC_FUSE,
                               PIM_FULL, PIM_NO_CP, LoweringOptions, lower)
from repro.core.gantt import render_breakdown, render_gantt
from repro.core.scheduler import ScheduleReport, Scheduler, Segment
from repro.core.trace import (CATEGORY_LABELS, GpuKernel, OpCategory,
                              PimKernel, Trace)

__all__ = [
    "AnaheimFramework", "CATEGORY_LABELS", "ExecutionResult", "GPU_ALL_FUSE",
    "GPU_BASE", "GPU_BASIC_FUSE", "GPU_EXTRA_FUSE", "GpuKernel",
    "LoweringOptions", "MemoryPlan", "OpCategory", "PIM_BASE",
    "PIM_BASIC_FUSE", "PIM_FULL", "PIM_NO_CP", "PimKernel",
    "ScheduleReport", "Scheduler", "Segment", "Trace", "lower",
    "plan_memory", "render_breakdown", "render_gantt",
]
