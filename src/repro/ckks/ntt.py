"""Negacyclic number-theoretic transform (NTT) over ``Z_q[X]/(X^N+1)``.

The forward transform uses Cooley-Tukey butterflies (natural input order,
bit-reversed output) and the inverse uses Gentleman-Sande butterflies
(bit-reversed input, natural output), with the 2N-th root-of-unity powers
merged into the butterflies so no separate pre/post scaling by ``psi^i``
is needed (the Longa-Naehrig formulation).

All transforms are vectorized with numpy over arbitrary leading axes, so
an ``(L, N)`` RNS polynomial is transformed limb-by-limb with one context
per prime.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.ckks import instrument, modmath
from repro.errors import ParameterError
from repro.parallel import threads as limb_threads


def bit_reverse_indices(n: int) -> np.ndarray:
    """Return the bit-reversal permutation for length ``n`` (a power of 2)."""
    bits = n.bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    rev = np.zeros(n, dtype=np.int64)
    for _ in range(bits):
        rev = (rev << 1) | (idx & 1)
        idx >>= 1
    return rev


class NttContext:
    """Precomputed NTT tables for one prime ``q`` and ring degree ``N``.

    Requires ``q ≡ 1 (mod 2N)`` so that a primitive 2N-th root of unity
    ``psi`` exists — the same condition the paper exploits for its
    Montgomery reduction circuit (§VI-A).
    """

    def __init__(self, degree: int, q: int):
        if degree & (degree - 1) != 0:
            raise ParameterError("ring degree must be a power of two")
        if (q - 1) % (2 * degree) != 0:
            raise ParameterError(f"prime {q} is not NTT-friendly for N={degree}")
        self.degree = degree
        self.q = q
        psi = modmath.root_of_unity(2 * degree, q)
        rev = bit_reverse_indices(degree)
        powers = np.empty(degree, dtype=np.int64)
        inv_powers = np.empty(degree, dtype=np.int64)
        psi_inv = modmath.mod_inverse(psi, q)
        acc = 1
        acc_inv = 1
        plain = np.empty(degree, dtype=np.int64)
        plain_inv = np.empty(degree, dtype=np.int64)
        for i in range(degree):
            plain[i] = acc
            plain_inv[i] = acc_inv
            acc = acc * psi % q
            acc_inv = acc_inv * psi_inv % q
        powers[:] = plain[rev]
        inv_powers[:] = plain_inv[rev]
        self.psi = psi
        self.psis = powers          # psi^bitrev(i)
        self.inv_psis = inv_powers  # psi^{-bitrev(i)}
        self.n_inv = modmath.mod_inverse(degree, q)

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        """Negacyclic NTT along the last axis (values in ``[0, q)``)."""
        n = self.degree
        if coeffs.shape[-1] != n:
            raise ParameterError("last axis must equal the ring degree")
        a = np.ascontiguousarray(coeffs, dtype=np.int64).copy()
        q = self.q
        t = n
        m = 1
        while m < n:
            t //= 2
            b = a.reshape(a.shape[:-1] + (m, 2, t))
            s = self.psis[m:2 * m].reshape((m, 1))
            u = b[..., 0, :].copy()
            v = b[..., 1, :] * s % q
            b[..., 0, :] = modmath.mod_add(u, v, q)
            b[..., 1, :] = modmath.mod_sub(u, v, q)
            m *= 2
        return a

    def inverse(self, values: np.ndarray) -> np.ndarray:
        """Inverse negacyclic NTT along the last axis."""
        n = self.degree
        if values.shape[-1] != n:
            raise ParameterError("last axis must equal the ring degree")
        a = np.ascontiguousarray(values, dtype=np.int64).copy()
        q = self.q
        t = 1
        m = n
        while m > 1:
            h = m // 2
            b = a.reshape(a.shape[:-1] + (h, 2, t))
            s = self.inv_psis[h:2 * h].reshape((h, 1))
            u = b[..., 0, :].copy()
            v = b[..., 1, :].copy()
            b[..., 0, :] = modmath.mod_add(u, v, q)
            b[..., 1, :] = modmath.mod_sub(u, v, q) * s % q
            t *= 2
            m = h
        return a * self.n_inv % q


class BatchNttContext:
    """Stacked NTT tables for a whole RNS basis.

    The per-prime :class:`NttContext` twiddle tables are stacked into
    ``(L, N)`` limb planes, with the per-limb modulus broadcast as an
    ``(L, 1)`` column, so *one* vectorized butterfly pass transforms all
    limbs of a polynomial — replacing the Python loop over primes.  The
    butterflies run through the allocation-free :mod:`modmath`
    primitives against scratch buffers cached per input shape, so the
    hot path allocates nothing beyond the output array.

    Each pass performs exactly the element-wise operations of the
    per-limb reference, so results are bit-identical to running
    :class:`NttContext` limb by limb (the property tests assert this).
    """

    def __init__(self, degree: int, basis: tuple, contexts=None):
        basis = tuple(basis)
        if not basis:
            raise ParameterError("batched NTT needs at least one prime")
        if contexts is None:
            contexts = [NttContext(degree, q) for q in basis]
        self.degree = degree
        self.basis = basis
        limbs = len(basis)
        self.q_col = np.array(basis, dtype=np.int64).reshape(limbs, 1)
        self.psis = np.stack([c.psis for c in contexts])          # (L, N)
        self.inv_psis = np.stack([c.inv_psis for c in contexts])  # (L, N)
        self.n_inv_col = np.array([c.n_inv for c in contexts],
                                  dtype=np.int64).reshape(limbs, 1)
        self._scratch: dict = {}
        self._scratch_lock = threading.Lock()

    def _buffers(self, shape: tuple):
        """(u, v, mask) scratch of ``shape``, reused across calls.

        Keyed per **thread** as well as per shape: the threaded path
        runs one butterfly block per pool thread, and scratch slabs
        are written concurrently — a shared slab would race.  Pool
        threads are long-lived, so each thread's slabs are reused
        across calls just like the serial path's.
        """
        key = (threading.get_ident(), shape)
        with self._scratch_lock:
            buffers = self._scratch.get(key)
            if buffers is None:
                instrument.count("ckks.scratch.miss")
            else:
                instrument.count("ckks.scratch.hit")
        if buffers is None:
            buffers = (np.empty(shape, dtype=np.int64),
                       np.empty(shape, dtype=np.int64),
                       np.empty(shape, dtype=bool))
            with self._scratch_lock:
                self._scratch[key] = buffers
        return buffers

    def _prepare(self, array: np.ndarray, kind: str) -> np.ndarray:
        limbs = len(self.basis)
        if array.ndim < 2 or array.shape[-1] != self.degree:
            raise ParameterError("last axis must equal the ring degree")
        if array.shape[-2] != limbs:
            raise ParameterError(
                f"second-to-last axis has {array.shape[-2]} limbs; "
                f"basis has {limbs}")
        instrument.count(f"ckks.batch_ntt.{kind}")
        instrument.count("ckks.batch_ntt.limbs",
                         limbs * int(np.prod(array.shape[:-2], dtype=np.int64)
                                     or 1))
        return np.ascontiguousarray(array, dtype=np.int64).copy()

    def _forward_passes(self, a: np.ndarray, psis: np.ndarray,
                        q_col: np.ndarray) -> None:
        """Cooley-Tukey passes in place on ``a`` (``(..., Lb, N)``), with
        ``psis``/``q_col`` already sliced to the same limb rows.  Every
        limb row is independent, so running a row block through these
        passes produces exactly the values a whole-array pass would."""
        n = self.degree
        limbs = a.shape[-2]
        lead = a.shape[:-2]
        u_buf, v_buf, mask_buf = self._buffers(lead + (limbs, n // 2))
        q3 = q_col.reshape(limbs, 1, 1)
        t = n
        m = 1
        while m < n:
            t //= 2
            b = a.reshape(lead + (limbs, m, 2, t))
            s = psis[:, m:2 * m].reshape(limbs, m, 1)
            shape = lead + (limbs, m, t)
            u = u_buf.reshape(shape)
            v = v_buf.reshape(shape)
            mask = mask_buf.reshape(shape)
            np.copyto(u, b[..., 0, :])
            np.multiply(b[..., 1, :], s, out=v)
            np.remainder(v, q3, out=v)
            modmath.mod_add_into(u, v, q3, out=b[..., 0, :], mask=mask)
            modmath.mod_sub_into(u, v, q3, out=b[..., 1, :], mask=mask)
            m *= 2

    def _inverse_passes(self, a: np.ndarray, inv_psis: np.ndarray,
                        q_col: np.ndarray, n_inv_col: np.ndarray) -> None:
        """Gentleman-Sande passes plus the final ``N^{-1}`` scaling, in
        place on ``a`` (``(..., Lb, N)``) with row-sliced tables."""
        n = self.degree
        limbs = a.shape[-2]
        lead = a.shape[:-2]
        u_buf, v_buf, mask_buf = self._buffers(lead + (limbs, n // 2))
        q3 = q_col.reshape(limbs, 1, 1)
        t = 1
        m = n
        while m > 1:
            h = m // 2
            b = a.reshape(lead + (limbs, h, 2, t))
            s = inv_psis[:, h:2 * h].reshape(limbs, h, 1)
            shape = lead + (limbs, h, t)
            u = u_buf.reshape(shape)
            v = v_buf.reshape(shape)
            mask = mask_buf.reshape(shape)
            np.copyto(u, b[..., 0, :])
            np.copyto(v, b[..., 1, :])
            modmath.mod_add_into(u, v, q3, out=b[..., 0, :], mask=mask)
            modmath.mod_sub_into(u, v, q3, out=b[..., 1, :], mask=mask)
            np.multiply(b[..., 1, :], s, out=b[..., 1, :])
            np.remainder(b[..., 1, :], q3, out=b[..., 1, :])
            t *= 2
            m = h
        np.multiply(a, n_inv_col, out=a)
        np.remainder(a, q_col, out=a)

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        """Negacyclic NTT of every limb plane (axes ``(..., L, N)``).

        2-D ``(L, N)`` inputs — the hot path from the RNS layer — split
        their limb rows into contiguous blocks across the shared thread
        pool; higher-rank inputs run serially (their first-axis row
        slices are not limb planes, and middle-axis slices are not
        contiguous views).
        """
        a = self._prepare(coeffs, "forward")
        if a.ndim == 2:
            def work(lo: int, hi: int) -> None:
                self._forward_passes(a[lo:hi], self.psis[lo:hi],
                                     self.q_col[lo:hi])
            if limb_threads.run_blocks(len(self.basis), work) > 1:
                instrument.count("ckks.batch_ntt.threaded")
        else:
            self._forward_passes(a, self.psis, self.q_col)
        return a

    def inverse(self, values: np.ndarray) -> np.ndarray:
        """Inverse negacyclic NTT of every limb plane."""
        a = self._prepare(values, "inverse")
        if a.ndim == 2:
            def work(lo: int, hi: int) -> None:
                self._inverse_passes(a[lo:hi], self.inv_psis[lo:hi],
                                     self.q_col[lo:hi], self.n_inv_col[lo:hi])
            if limb_threads.run_blocks(len(self.basis), work) > 1:
                instrument.count("ckks.batch_ntt.threaded")
        else:
            self._inverse_passes(a, self.inv_psis, self.q_col,
                                 self.n_inv_col)
        return a


def negacyclic_convolution(a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
    """Schoolbook negacyclic convolution — O(N^2) reference for tests."""
    n = a.shape[-1]
    out = np.zeros(n, dtype=np.int64)
    a = a.astype(object)
    b = b.astype(object)
    result = [0] * n
    for i in range(n):
        ai = int(a[i])
        if ai == 0:
            continue
        for j in range(n):
            k = i + j
            term = ai * int(b[j])
            if k >= n:
                result[k - n] -= term
            else:
                result[k] += term
    for k in range(n):
        out[k] = result[k] % q
    return out
