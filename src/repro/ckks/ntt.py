"""Negacyclic number-theoretic transform (NTT) over ``Z_q[X]/(X^N+1)``.

The forward transform uses Cooley-Tukey butterflies (natural input order,
bit-reversed output) and the inverse uses Gentleman-Sande butterflies
(bit-reversed input, natural output), with the 2N-th root-of-unity powers
merged into the butterflies so no separate pre/post scaling by ``psi^i``
is needed (the Longa-Naehrig formulation).

All transforms are vectorized with numpy over arbitrary leading axes, so
an ``(L, N)`` RNS polynomial is transformed limb-by-limb with one context
per prime.
"""

from __future__ import annotations

import numpy as np

from repro.ckks import modmath
from repro.errors import ParameterError


def bit_reverse_indices(n: int) -> np.ndarray:
    """Return the bit-reversal permutation for length ``n`` (a power of 2)."""
    bits = n.bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    rev = np.zeros(n, dtype=np.int64)
    for _ in range(bits):
        rev = (rev << 1) | (idx & 1)
        idx >>= 1
    return rev


class NttContext:
    """Precomputed NTT tables for one prime ``q`` and ring degree ``N``.

    Requires ``q ≡ 1 (mod 2N)`` so that a primitive 2N-th root of unity
    ``psi`` exists — the same condition the paper exploits for its
    Montgomery reduction circuit (§VI-A).
    """

    def __init__(self, degree: int, q: int):
        if degree & (degree - 1) != 0:
            raise ParameterError("ring degree must be a power of two")
        if (q - 1) % (2 * degree) != 0:
            raise ParameterError(f"prime {q} is not NTT-friendly for N={degree}")
        self.degree = degree
        self.q = q
        psi = modmath.root_of_unity(2 * degree, q)
        rev = bit_reverse_indices(degree)
        powers = np.empty(degree, dtype=np.int64)
        inv_powers = np.empty(degree, dtype=np.int64)
        psi_inv = modmath.mod_inverse(psi, q)
        acc = 1
        acc_inv = 1
        plain = np.empty(degree, dtype=np.int64)
        plain_inv = np.empty(degree, dtype=np.int64)
        for i in range(degree):
            plain[i] = acc
            plain_inv[i] = acc_inv
            acc = acc * psi % q
            acc_inv = acc_inv * psi_inv % q
        powers[:] = plain[rev]
        inv_powers[:] = plain_inv[rev]
        self.psi = psi
        self.psis = powers          # psi^bitrev(i)
        self.inv_psis = inv_powers  # psi^{-bitrev(i)}
        self.n_inv = modmath.mod_inverse(degree, q)

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        """Negacyclic NTT along the last axis (values in ``[0, q)``)."""
        n = self.degree
        if coeffs.shape[-1] != n:
            raise ParameterError("last axis must equal the ring degree")
        a = np.ascontiguousarray(coeffs, dtype=np.int64).copy()
        q = self.q
        t = n
        m = 1
        while m < n:
            t //= 2
            b = a.reshape(a.shape[:-1] + (m, 2, t))
            s = self.psis[m:2 * m].reshape((m, 1))
            u = b[..., 0, :].copy()
            v = b[..., 1, :] * s % q
            b[..., 0, :] = modmath.mod_add(u, v, q)
            b[..., 1, :] = modmath.mod_sub(u, v, q)
            m *= 2
        return a

    def inverse(self, values: np.ndarray) -> np.ndarray:
        """Inverse negacyclic NTT along the last axis."""
        n = self.degree
        if values.shape[-1] != n:
            raise ParameterError("last axis must equal the ring degree")
        a = np.ascontiguousarray(values, dtype=np.int64).copy()
        q = self.q
        t = 1
        m = n
        while m > 1:
            h = m // 2
            b = a.reshape(a.shape[:-1] + (h, 2, t))
            s = self.inv_psis[h:2 * h].reshape((h, 1))
            u = b[..., 0, :].copy()
            v = b[..., 1, :].copy()
            b[..., 0, :] = modmath.mod_add(u, v, q)
            b[..., 1, :] = modmath.mod_sub(u, v, q) * s % q
            t *= 2
            m = h
        return a * self.n_inv % q


def negacyclic_convolution(a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
    """Schoolbook negacyclic convolution — O(N^2) reference for tests."""
    n = a.shape[-1]
    out = np.zeros(n, dtype=np.int64)
    a = a.astype(object)
    b = b.astype(object)
    result = [0] * n
    for i in range(n):
        ai = int(a[i])
        if ai == 0:
            continue
        for j in range(n):
            k = i + j
            term = ai * int(b[j])
            if k >= n:
                result[k - n] -= term
            else:
                result[k] += term
    for k in range(n):
        out[k] = result[k] % q
    return out
