"""Negacyclic number-theoretic transform (NTT) over ``Z_q[X]/(X^N+1)``.

The forward transform uses Cooley-Tukey butterflies (natural input order,
bit-reversed output) and the inverse uses Gentleman-Sande butterflies
(bit-reversed input, natural output), with the 2N-th root-of-unity powers
merged into the butterflies so no separate pre/post scaling by ``psi^i``
is needed (the Longa-Naehrig formulation).

Two butterfly kernels exist:

* :class:`NttContext` — the per-limb reference, reducing every butterfly
  with an exact ``%``.  It is deliberately kept divide-based: the
  property tests use it as the oracle for the fast path.
* :class:`BatchNttContext` — the hot path: all RNS limbs at once on
  stacked ``(L, N)`` twiddle planes.  Limbs whose prime is below
  ``2^30`` run Shoup/Harvey lazy-reduction butterflies (mul/shift/sub,
  no hardware divide, values lazily in ``[0, 4q)``) and fold back to
  canonical ``[0, q)`` once after the last pass; limbs of wider primes
  (the 31-bit base prime) dispatch to the exact ``%`` butterfly
  row-run by row-run, so mixed bases stay correct — and the output is
  always bit-identical to the per-limb reference.

Twiddle tables are built once per ``(degree, q)`` in a module-level LRU
(:func:`_twiddle_tables`), so fixtures and tests constructing many
per-limb oracles stop recomputing identical tables.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.ckks import instrument, modmath
from repro.errors import ParameterError
from repro.parallel import threads as limb_threads

#: Bound on the module-level (degree, q) twiddle-table cache.  A
#: paper-scale basis has ~70 primes and the tests sweep a few dozen
#: more; 512 keeps every table of a long run resident while capping
#: growth when serving sweeps many parameter sets.
TWIDDLE_CACHE_SIZE = 512

_twiddle_cache: OrderedDict = OrderedDict()
_twiddle_lock = threading.Lock()

_SHIFT = np.uint64(modmath.SHOUP_SHIFT)


@lru_cache(maxsize=64)
def _bit_reverse_cached(n: int) -> np.ndarray:
    bits = n.bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    rev = np.zeros(n, dtype=np.int64)
    for _ in range(bits):
        rev = (rev << 1) | (idx & 1)
        idx >>= 1
    rev.flags.writeable = False
    return rev


def bit_reverse_indices(n: int) -> np.ndarray:
    """The bit-reversal permutation for length ``n`` (a power of 2).

    Cached per length (read-only array) — every :class:`NttContext` of
    the same degree shares one permutation table.
    """
    return _bit_reverse_cached(n)


@dataclass(frozen=True)
class TwiddleTables:
    """Immutable per-(degree, q) NTT constants shared across contexts."""

    psi: int
    psis: np.ndarray            # psi^bitrev(i), int64, read-only
    inv_psis: np.ndarray        # psi^{-bitrev(i)}, int64, read-only
    n_inv: int
    psis_shoup: np.ndarray      # floor(psis · 2^32 / q), uint64
    inv_psis_shoup: np.ndarray  # floor(inv_psis · 2^32 / q), uint64
    n_inv_shoup: int


def _twiddle_tables(degree: int, q: int) -> TwiddleTables:
    """Twiddle planes for one ``(degree, q)``, from the module LRU.

    Hits/misses/evictions are reported through
    :mod:`repro.ckks.instrument` as ``ckks.ntt_tables.*``.
    """
    key = (degree, q)
    with _twiddle_lock:
        entry = _twiddle_cache.get(key)
        if entry is not None:
            _twiddle_cache.move_to_end(key)
    if entry is not None:
        instrument.count("ckks.ntt_tables.hit")
        return entry
    instrument.count("ckks.ntt_tables.miss")
    psi = modmath.root_of_unity(2 * degree, q)
    rev = bit_reverse_indices(degree)
    psi_inv = modmath.mod_inverse(psi, q)
    plain = np.empty(degree, dtype=np.int64)
    plain_inv = np.empty(degree, dtype=np.int64)
    acc = 1
    acc_inv = 1
    for i in range(degree):
        plain[i] = acc
        plain_inv[i] = acc_inv
        acc = acc * psi % q
        acc_inv = acc_inv * psi_inv % q
    powers = plain[rev]
    inv_powers = plain_inv[rev]
    n_inv = modmath.mod_inverse(degree, q)
    psis_shoup = modmath.shoup_precompute(powers, q)
    inv_psis_shoup = modmath.shoup_precompute(inv_powers, q)
    for table in (powers, inv_powers, psis_shoup, inv_psis_shoup):
        table.flags.writeable = False
    entry = TwiddleTables(
        psi=psi, psis=powers, inv_psis=inv_powers, n_inv=n_inv,
        psis_shoup=psis_shoup, inv_psis_shoup=inv_psis_shoup,
        n_inv_shoup=modmath.shoup_precompute(n_inv, q))
    with _twiddle_lock:
        _twiddle_cache[key] = entry
        _twiddle_cache.move_to_end(key)
        while len(_twiddle_cache) > TWIDDLE_CACHE_SIZE:
            _twiddle_cache.popitem(last=False)
            instrument.count("ckks.ntt_tables.evicted")
    return entry


def twiddle_cache_info() -> dict:
    """Size/bound of the twiddle-table cache (tests use it)."""
    with _twiddle_lock:
        return {"size": len(_twiddle_cache), "maxsize": TWIDDLE_CACHE_SIZE}


def clear_twiddle_cache() -> None:
    with _twiddle_lock:
        _twiddle_cache.clear()


def _owned_copy(array) -> np.ndarray:
    """One fresh C-contiguous int64 copy of ``array``.

    The transforms run in place, so a private buffer is always needed —
    but ``ascontiguousarray(x).copy()`` copied *twice* whenever the
    input was non-contiguous or non-int64; ``np.array(copy=True)``
    allocates the contiguous destination and copies exactly once.
    """
    return np.array(array, dtype=np.int64, order="C", copy=True)


def _clip_segments(segments: tuple, lo: int, hi: int) -> tuple:
    """Dispatch runs intersected with row block ``[lo, hi)``, rebased."""
    return tuple((max(slo, lo) - lo, min(shi, hi) - lo, lazy)
                 for slo, shi, lazy in segments if slo < hi and shi > lo)


class NttContext:
    """Precomputed NTT tables for one prime ``q`` and ring degree ``N``.

    Requires ``q ≡ 1 (mod 2N)`` so that a primitive 2N-th root of unity
    ``psi`` exists — the same condition the paper exploits for its
    Montgomery reduction circuit (§VI-A).

    This class reduces with the exact ``%`` on every butterfly; it is
    the property-test oracle for :class:`BatchNttContext`'s lazy path.
    """

    def __init__(self, degree: int, q: int):
        if degree & (degree - 1) != 0:
            raise ParameterError("ring degree must be a power of two")
        if (q - 1) % (2 * degree) != 0:
            raise ParameterError(f"prime {q} is not NTT-friendly for N={degree}")
        self.degree = degree
        self.q = q
        tables = _twiddle_tables(degree, q)
        self.psi = tables.psi
        self.psis = tables.psis             # psi^bitrev(i)
        self.inv_psis = tables.inv_psis     # psi^{-bitrev(i)}
        self.n_inv = tables.n_inv
        self.psis_shoup = tables.psis_shoup
        self.inv_psis_shoup = tables.inv_psis_shoup
        self.n_inv_shoup = tables.n_inv_shoup

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        """Negacyclic NTT along the last axis (values in ``[0, q)``)."""
        n = self.degree
        if coeffs.shape[-1] != n:
            raise ParameterError("last axis must equal the ring degree")
        a = _owned_copy(coeffs)
        q = self.q
        t = n
        m = 1
        while m < n:
            t //= 2
            b = a.reshape(a.shape[:-1] + (m, 2, t))
            s = self.psis[m:2 * m].reshape((m, 1))
            u = b[..., 0, :].copy()
            v = b[..., 1, :] * s % q
            b[..., 0, :] = modmath.mod_add(u, v, q)
            b[..., 1, :] = modmath.mod_sub(u, v, q)
            m *= 2
        return a

    def inverse(self, values: np.ndarray) -> np.ndarray:
        """Inverse negacyclic NTT along the last axis."""
        n = self.degree
        if values.shape[-1] != n:
            raise ParameterError("last axis must equal the ring degree")
        a = _owned_copy(values)
        q = self.q
        t = 1
        m = n
        while m > 1:
            h = m // 2
            b = a.reshape(a.shape[:-1] + (h, 2, t))
            s = self.inv_psis[h:2 * h].reshape((h, 1))
            u = b[..., 0, :].copy()
            v = b[..., 1, :].copy()
            b[..., 0, :] = modmath.mod_add(u, v, q)
            b[..., 1, :] = modmath.mod_sub(u, v, q) * s % q
            t *= 2
            m = h
        return a * self.n_inv % q


# ---------------------------------------------------------------------------
# Butterfly op builders.
#
# The batched transform compiles each (shape, row block, dispatch) into
# a flat list of zero-argument closures over pre-sliced views — the hot
# loop then only dispatches ufuncs, with no per-pass reshaping/slicing.
#
# Lazy kernels *stage* each pass: the strided even/odd butterfly lanes
# of the work buffer are copied into contiguous uint64 scratch, all
# arithmetic runs at full vector speed against twiddles pre-expanded to
# one value per lane, and two strided writes put the results back.  Only
# the four copies touch gappy memory — at the late passes (pair stride
# 1–4) that is the difference between one long inner loop and thousands
# of length-1 loops.  Every conditional correction is the branchless
# unsigned fold ``r = min(r, r − k·q)`` (the subtraction wraps past
# 2^64 when r < k·q, so ``min`` picks the unfolded value).
# ---------------------------------------------------------------------------


def _forward_lazy_ops(x, y, xs, ys, t1, s_p, ssh_p, q, two_q,
                      xs_v, ys_v, t1_v) -> list:
    """Harvey CT butterfly: entry ``x, y ∈ [0, 4q)``, exit ``∈ [0, 4q)``.

    ``x`` is folded to ``[0, 2q)``, ``v = y·s`` Shoup-reduced to
    ``[0, 2q)`` (valid because ``y < 4q ≤ 2^32``), then ``x' = x + v``
    and ``y' = x − v + 2q``.
    """
    return [
        lambda: np.copyto(xs_v, x),
        lambda: np.copyto(ys_v, y),
        lambda: np.subtract(xs, two_q, out=t1),
        lambda: np.minimum(xs, t1, out=xs),
        lambda: np.multiply(ys, ssh_p, out=t1),
        lambda: np.right_shift(t1, _SHIFT, out=t1),
        lambda: np.multiply(t1, q, out=t1),
        lambda: np.multiply(ys, s_p, out=ys),
        lambda: np.subtract(ys, t1, out=ys),
        lambda: np.subtract(xs, ys, out=t1),
        lambda: np.add(t1, two_q, out=t1),
        lambda: np.copyto(y, t1_v),
        lambda: np.add(xs, ys, out=xs),
        lambda: np.copyto(x, xs_v),
    ]


def _inverse_lazy_ops(x, y, xs, ys, t1, t2, s_p, ssh_p, q, two_q,
                      xs_v, ys_v) -> list:
    """Harvey GS butterfly: entry ``x, y ∈ [0, 2q)``, exit ``∈ [0, 2q)``.

    ``x' = x + y`` folded once; ``y' = (x − y + 2q)·s`` Shoup-reduced
    (valid because ``x − y + 2q < 4q ≤ 2^32``).
    """
    return [
        lambda: np.copyto(xs_v, x),
        lambda: np.copyto(ys_v, y),
        lambda: np.subtract(xs, ys, out=t1),
        lambda: np.add(t1, two_q, out=t1),
        lambda: np.add(xs, ys, out=xs),
        lambda: np.subtract(xs, two_q, out=t2),
        lambda: np.minimum(xs, t2, out=xs),
        lambda: np.copyto(x, xs_v),
        lambda: np.multiply(t1, ssh_p, out=t2),
        lambda: np.right_shift(t2, _SHIFT, out=t2),
        lambda: np.multiply(t2, q, out=t2),
        lambda: np.multiply(t1, s_p, out=ys),
        lambda: np.subtract(ys, t2, out=ys),
        lambda: np.copyto(y, ys_v),
    ]


def _strict_ct_ops(x, y, s, q, u, v, mask) -> list:
    """Exact-``%`` CT butterfly — identical math to the per-limb oracle."""
    return [
        lambda: np.copyto(u, x),
        lambda: np.multiply(y, s, out=v),
        lambda: np.remainder(v, q, out=v),
        lambda: modmath.mod_add_into(u, v, q, out=x, mask=mask),
        lambda: modmath.mod_sub_into(u, v, q, out=y, mask=mask),
    ]


def _strict_gs_ops(x, y, s, q, u, v, mask) -> list:
    """Exact-``%`` GS butterfly — identical math to the per-limb oracle."""
    return [
        lambda: np.copyto(u, x),
        lambda: np.copyto(v, y),
        lambda: modmath.mod_add_into(u, v, q, out=x, mask=mask),
        lambda: modmath.mod_sub_into(u, v, q, out=y, mask=mask),
        lambda: np.multiply(y, s, out=y),
        lambda: np.remainder(y, q, out=y),
    ]


def _forward_fold_ops(rows, scr, q, two_q) -> list:
    """``[0, 4q) → [0, q)`` after the last forward pass (two folds)."""
    return [
        lambda: np.subtract(rows, two_q, out=scr),
        lambda: np.minimum(rows, scr, out=rows),
        lambda: np.subtract(rows, q, out=scr),
        lambda: np.minimum(rows, scr, out=rows),
    ]


def _ninv_lazy_ops(rows, scr, s, s_sh, q) -> list:
    """Final ``N^{-1}`` scaling of lazy rows in ``[0, 2q)`` → ``[0, q)``."""
    return [
        lambda: np.multiply(rows, s_sh, out=scr),
        lambda: np.right_shift(scr, _SHIFT, out=scr),
        lambda: np.multiply(scr, q, out=scr),
        lambda: np.multiply(rows, s, out=rows),
        lambda: np.subtract(rows, scr, out=rows),
        lambda: np.subtract(rows, q, out=scr),
        lambda: np.minimum(rows, scr, out=rows),
    ]


def _ninv_strict_ops(rows, s, q) -> list:
    return [
        lambda: np.multiply(rows, s, out=rows),
        lambda: np.remainder(rows, q, out=rows),
    ]


class BatchNttContext:
    """Stacked NTT tables for a whole RNS basis.

    The per-prime :class:`NttContext` twiddle tables are stacked into
    ``(L, N)`` limb planes, with the per-limb modulus broadcast as an
    ``(L, 1)`` column, so *one* vectorized butterfly pass transforms all
    limbs of a polynomial — replacing the Python loop over primes.

    Limb rows whose prime is below ``2^30`` use the Shoup/Harvey
    lazy-reduction butterfly: the twiddle multiply is the precomputed
    quotient pipeline ``hi = (x·s') >> 32; r = x·s − hi·q`` (no
    division), values stay lazily above ``q`` across passes, and a
    single fold after the last pass replaces the per-butterfly ``%``.
    Wider primes dispatch per contiguous row run to the exact ``%``
    butterfly (:func:`modmath.shoup_segments`).  Both paths land on the
    canonical ``[0, q)`` residues, so results are bit-identical to
    running :class:`NttContext` limb by limb for every mixed basis and
    any thread count (the property tests assert this).

    Each distinct (transform, shape, row block, dispatch) combination is
    compiled once into an execution *plan* — a work buffer plus a flat
    list of ufunc closures over pre-sliced views — so the per-call hot
    loop does no reshaping, slicing, or Python-level bookkeeping.
    """

    #: Bound on cached execution plans per context.
    PLAN_CACHE_SIZE = 128

    def __init__(self, degree: int, basis: tuple, contexts=None):
        basis = tuple(basis)
        if not basis:
            raise ParameterError("batched NTT needs at least one prime")
        if contexts is None:
            contexts = [NttContext(degree, q) for q in basis]
        self.degree = degree
        self.basis = basis
        limbs = len(basis)
        self.q_col = np.array(basis, dtype=np.int64).reshape(limbs, 1)
        self.two_q_col = self.q_col * 2
        self.psis = np.stack([c.psis for c in contexts])          # (L, N)
        self.inv_psis = np.stack([c.inv_psis for c in contexts])  # (L, N)
        self.psis_shoup = np.stack([c.psis_shoup for c in contexts])
        self.inv_psis_shoup = np.stack([c.inv_psis_shoup for c in contexts])
        self.n_inv_col = np.array([c.n_inv for c in contexts],
                                  dtype=np.int64).reshape(limbs, 1)
        self.n_inv_shoup_col = np.array(
            [c.n_inv_shoup for c in contexts],
            dtype=np.uint64).reshape(limbs, 1)
        #: Contiguous (lo, hi, lazy) dispatch runs of the limb rows.
        self.segments = modmath.shoup_segments(basis)
        self._scratch: dict = {}
        self._scratch_lock = threading.Lock()
        self._plans: OrderedDict = OrderedDict()

    def _buffers(self, shape: tuple):
        """(u, v, mask, hi) scratch of ``shape``, reused across calls.

        Keyed per **thread** as well as per shape: the threaded path
        runs one butterfly block per pool thread, and scratch slabs
        are written concurrently — a shared slab would race.  Pool
        threads are long-lived, so each thread's slabs are reused
        across calls just like the serial path's.  ``hi`` holds the
        Shoup high-product; the lazy kernels use ``uint64`` views of
        the int64 slabs.
        """
        key = (threading.get_ident(), shape)
        with self._scratch_lock:
            buffers = self._scratch.get(key)
            if buffers is None:
                instrument.count("ckks.scratch.miss")
            else:
                instrument.count("ckks.scratch.hit")
        if buffers is None:
            buffers = (np.empty(shape, dtype=np.int64),
                       np.empty(shape, dtype=np.int64),
                       np.empty(shape, dtype=bool),
                       np.empty(shape, dtype=np.uint64))
            with self._scratch_lock:
                self._scratch[key] = buffers
        return buffers

    def _prepare(self, array: np.ndarray, kind: str) -> np.ndarray:
        limbs = len(self.basis)
        if array.ndim < 2 or array.shape[-1] != self.degree:
            raise ParameterError("last axis must equal the ring degree")
        if array.shape[-2] != limbs:
            raise ParameterError(
                f"second-to-last axis has {array.shape[-2]} limbs; "
                f"basis has {limbs}")
        instrument.count(f"ckks.batch_ntt.{kind}")
        if array.ndim == 2:
            planes = 1
        else:
            planes = int(np.prod(array.shape[:-2], dtype=np.int64) or 1)
        instrument.count("ckks.batch_ntt.limbs", limbs * planes)
        return _owned_copy(array)

    def _dispatch_segments(self, a: np.ndarray) -> tuple:
        """The active (lo, hi, lazy) runs, honouring the global lazy
        switch, with the per-path limb counters bumped once per call."""
        limbs = len(self.basis)
        segments = (self.segments if modmath.lazy_enabled()
                    else ((0, limbs, False),))
        if instrument.get_tracer() is not None:
            planes = int(np.prod(a.shape[:-2], dtype=np.int64) or 1)
            lazy_rows = sum(hi - lo for lo, hi, lazy in segments if lazy)
            if lazy_rows:
                instrument.count("ckks.modmath.shoup", lazy_rows * planes)
            if limbs - lazy_rows:
                instrument.count("ckks.modmath.strict_fallback",
                                 (limbs - lazy_rows) * planes)
        return segments

    def _plan(self, kind: str, shape: tuple, rlo: int, segments: tuple,
              slabs: tuple):
        key = (threading.get_ident(), kind, shape, rlo, segments)
        with self._scratch_lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
        if plan is None:
            plan = self._build_plan(kind, shape, rlo, segments, slabs)
            with self._scratch_lock:
                self._plans[key] = plan
                self._plans.move_to_end(key)
                while len(self._plans) > self.PLAN_CACHE_SIZE:
                    self._plans.popitem(last=False)
        return plan

    def _build_plan(self, kind: str, shape: tuple, rlo: int,
                    segments: tuple, slabs: tuple):
        """Compile one transform into (work buffer, closure list).

        ``shape`` is the row block's ``(..., Lb, N)`` shape, ``rlo`` its
        first absolute limb row, ``segments`` its rebased dispatch runs,
        and ``slabs`` the :meth:`_buffers` scratch for its shape — the
        same objects on every later call (``_buffers`` never replaces an
        entry), so the compiled views stay valid.
        """
        n = self.degree
        half = n // 2
        limbs = shape[-2]
        lead = shape[:-2]
        rows_all = slice(rlo, rlo + limbs)
        w = np.empty(shape, dtype=np.int64)
        wu = w.view(np.uint64)
        u_buf, v_buf, mask_buf, hi_buf = slabs
        scr = np.empty(shape, dtype=np.uint64)
        q3 = self.q_col[rows_all].reshape(limbs, 1, 1)
        q_rows = self.q_col[rows_all]
        q_rows_u = q_rows.view(np.uint64)
        two_q_rows_u = self.two_q_col[rows_all].view(np.uint64)
        forward = kind == "forward"
        psis = (self.psis if forward else self.inv_psis)[rows_all]
        psis_u = psis.view(np.uint64)
        shoup = (self.psis_shoup if forward
                 else self.inv_psis_shoup)[rows_all]
        stages = []
        if forward:
            t, m = n, 1
            while m < n:
                t //= 2
                stages.append((m, t))
                m *= 2
        else:
            t, m = 1, n
            while m > 1:
                m //= 2
                stages.append((m, t))
                t *= 2
        # Contiguous uint64 staging per lazy segment, shared by all
        # passes of the plan (each pass moves seg·N/2 lane values).
        stage: dict = {}
        for lo, hi, lazy in segments:
            if lazy:
                s_shape = lead + (hi - lo, half)
                stage[lo] = tuple(np.empty(s_shape, dtype=np.uint64)
                                  for _ in range(4))
        ops: list = []
        for m, t in stages:
            b = w.reshape(lead + (limbs, m, 2, t))
            bu = wu.reshape(lead + (limbs, m, 2, t))
            s3 = lead + (limbs, m, t)
            u3 = u_buf.reshape(s3)
            v3 = v_buf.reshape(s3)
            m3 = mask_buf.reshape(s3)
            for lo, hi, lazy in segments:
                seg = hi - lo
                lane = lead + (seg, m, t)
                if lazy:
                    xs, ys, t1, t2 = stage[lo]
                    # One twiddle per lane: each of the m twiddles
                    # repeats across its t-element pair run.
                    s_p = np.repeat(psis_u[lo:hi, m:2 * m], t, axis=1)
                    ssh_p = np.repeat(shoup[lo:hi, m:2 * m], t, axis=1)
                    common = dict(
                        x=bu[..., lo:hi, :, 0, :],
                        y=bu[..., lo:hi, :, 1, :],
                        xs=xs, ys=ys, t1=t1,
                        s_p=s_p, ssh_p=ssh_p,
                        q=q_rows_u[lo:hi], two_q=two_q_rows_u[lo:hi],
                        xs_v=xs.reshape(lane), ys_v=ys.reshape(lane))
                    if forward:
                        ops += _forward_lazy_ops(
                            t1_v=t1.reshape(lane), **common)
                    else:
                        ops += _inverse_lazy_ops(t2=t2, **common)
                else:
                    build = _strict_ct_ops if forward else _strict_gs_ops
                    ops += build(
                        x=b[..., lo:hi, :, 0, :],
                        y=b[..., lo:hi, :, 1, :],
                        s=psis[lo:hi, m:2 * m].reshape(seg, m, 1),
                        q=q3[lo:hi],
                        u=u3[..., lo:hi, :, :],
                        v=v3[..., lo:hi, :, :],
                        mask=m3[..., lo:hi, :, :])
        # Epilogue: lazy rows fold to canonical [0, q); the inverse
        # additionally scales every row by N^{-1}.
        for lo, hi, lazy in segments:
            if forward:
                if lazy:
                    ops += _forward_fold_ops(
                        wu[..., lo:hi, :], scr[..., lo:hi, :],
                        q_rows_u[lo:hi], two_q_rows_u[lo:hi])
            elif lazy:
                ops += _ninv_lazy_ops(
                    wu[..., lo:hi, :], scr[..., lo:hi, :],
                    self.n_inv_col[rows_all].view(np.uint64)[lo:hi],
                    self.n_inv_shoup_col[rows_all][lo:hi],
                    q_rows_u[lo:hi])
            else:
                ops += _ninv_strict_ops(
                    w[..., lo:hi, :], self.n_inv_col[rows_all][lo:hi],
                    q_rows[lo:hi])
        return w, ops

    def _run(self, a: np.ndarray, kind: str, rlo: int, rhi: int,
             segments: tuple) -> None:
        """Transform limb rows ``[rlo, rhi)`` of ``a`` in place."""
        rows = a[..., rlo:rhi, :]
        slabs = self._buffers(rows.shape[:-2] + (rhi - rlo,
                                                 self.degree // 2))
        w, ops = self._plan(kind, rows.shape, rlo, segments, slabs)
        np.copyto(w, rows)
        for op in ops:
            op()
        np.copyto(rows, w)

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        """Negacyclic NTT of every limb plane (axes ``(..., L, N)``).

        2-D ``(L, N)`` inputs — the hot path from the RNS layer — split
        their limb rows into contiguous blocks across the shared thread
        pool; higher-rank inputs run serially (their first-axis row
        slices are not limb planes, and middle-axis slices are not
        contiguous views).
        """
        a = self._prepare(coeffs, "forward")
        segments = self._dispatch_segments(a)
        if a.ndim == 2:
            def work(lo: int, hi: int) -> None:
                self._run(a, "forward", lo, hi,
                          _clip_segments(segments, lo, hi))
            if limb_threads.run_blocks(len(self.basis), work) > 1:
                instrument.count("ckks.batch_ntt.threaded")
        else:
            self._run(a, "forward", 0, len(self.basis), segments)
        return a

    def inverse(self, values: np.ndarray) -> np.ndarray:
        """Inverse negacyclic NTT of every limb plane."""
        a = self._prepare(values, "inverse")
        segments = self._dispatch_segments(a)
        if a.ndim == 2:
            def work(lo: int, hi: int) -> None:
                self._run(a, "inverse", lo, hi,
                          _clip_segments(segments, lo, hi))
            if limb_threads.run_blocks(len(self.basis), work) > 1:
                instrument.count("ckks.batch_ntt.threaded")
        else:
            self._run(a, "inverse", 0, len(self.basis), segments)
        return a


def negacyclic_convolution(a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
    """Schoolbook negacyclic convolution — O(N^2) reference for tests."""
    n = a.shape[-1]
    out = np.zeros(n, dtype=np.int64)
    a = a.astype(object)
    b = b.astype(object)
    result = [0] * n
    for i in range(n):
        ai = int(a[i])
        if ai == 0:
            continue
        for j in range(n):
            k = i + j
            term = ai * int(b[j])
            if k >= n:
                result[k - n] -= term
            else:
                result[k] += term
    for k in range(n):
        out[k] = result[k] % q
    return out
