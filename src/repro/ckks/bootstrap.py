"""CKKS bootstrapping: ModRaise → CoeffToSlot → EvalMod → SlotToCoeff.

Follows the standard full-slot construction ([17] and §II-C of the
paper): after raising the modulus, the ciphertext decrypts to
``m + q_0·I`` with a small integer polynomial ``I``; CoeffToSlot moves
coefficients into slots, a Chebyshev approximation of
``(q_0/2π)·sin(2πx/q_0)`` removes the ``q_0·I`` term, and SlotToCoeff
returns to coefficient form.

The homomorphic DFTs run as BSGS diagonal linear transforms.  The
*performance* model of bootstrapping (including the fftIter
decomposition sweep of Fig. 3) lives in
:mod:`repro.workloads.bootstrap_trace`; this module provides the
executable, precision-validated counterpart at reduced ring degree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ckks.cipher import Ciphertext
from repro.ckks.encoder import _slot_exponents
from repro.ckks.keys import KeyGenerator
from repro.ckks.linear_transform import LinearTransform
from repro.ckks.polyeval import ChebyshevEvaluator, chebyshev_coefficients
from repro.ckks.rns import RnsPolynomial
from repro.errors import LevelError, ParameterError


def special_fft_matrix(degree: int) -> np.ndarray:
    """``E0[t, k] = ζ^{5^t·k}`` — slots from the first N/2 coefficients.

    The full decode map is ``z = E0·(c_lo + i·c_hi)`` because
    ``ζ^{5^t·N/2} = i`` for every slot index t.
    """
    n = degree // 2
    exps = _slot_exponents(degree)
    k = np.arange(n)
    angles = np.pi / degree * (exps[:, None] * k[None, :] % (2 * degree))
    return np.exp(1j * angles)


def mod_raise(ct: Ciphertext, target_basis: tuple,
              base_limbs: int = 1) -> Ciphertext:
    """Reinterpret a base-modulus ciphertext over the full basis.

    The centered residues mod the base modulus ``q_0`` (a single prime,
    or a prime *pair* under double-prime scaling) are re-reduced against
    every prime of ``target_basis``; decryption afterwards yields
    ``m + q_0·I`` for a small integer polynomial ``I``.
    """
    if ct.level_count != base_limbs:
        raise ParameterError(
            f"mod_raise expects a {base_limbs}-limb ciphertext, got "
            f"{ct.level_count}")

    def raise_poly(poly: RnsPolynomial) -> RnsPolynomial:
        centered = poly.to_int_coeffs(centered=True)
        return RnsPolynomial.from_int_coeffs(
            [int(v) for v in centered], target_basis).to_ntt()

    return Ciphertext(b=raise_poly(ct.b), a=raise_poly(ct.a), scale=ct.scale)


@dataclass
class BootstrapConfig:
    """Knobs of the functional bootstrapper.

    ``modulus_range`` is the bound K on the integer polynomial ``I``
    (grows with the secret Hamming weight — hence the paper's
    sparse-secret encapsulation [9]); ``sine_degree`` is the Chebyshev
    degree approximating the scaled sine.
    """

    modulus_range: int = 8
    sine_degree: int = 79
    transform_method: str = "bsgs"


class Bootstrapper:
    """Executable bootstrapping bound to an evaluator.

    Generates any missing rotation/conjugation keys through the supplied
    :class:`KeyGenerator` at construction time (the static key planning
    the Anaheim framework performs ahead of execution, §V-C).
    """

    def __init__(self, evaluator, keygen: KeyGenerator,
                 config: BootstrapConfig | None = None):
        self.evaluator = evaluator
        self.config = config or BootstrapConfig()
        params = evaluator.params
        degree = params.degree
        #: Limbs forming the base modulus: one prime classically, a
        #: prime pair under double-prime scaling.
        self.base_limbs = getattr(params, "primes_per_level", 1)
        self.base_modulus = 1
        for q in params.moduli[:self.base_limbs]:
            self.base_modulus *= q
        e0 = special_fft_matrix(degree)
        self.coeff_to_slot = LinearTransform.from_matrix(
            evaluator, 0.5 * np.linalg.inv(e0))
        self.slot_to_coeff = LinearTransform.from_matrix(evaluator, e0)
        self.chebyshev = ChebyshevEvaluator(evaluator)
        self._ensure_keys(keygen)

    def _ensure_keys(self, keygen: KeyGenerator) -> None:
        method = self.config.transform_method
        needed = set(self.coeff_to_slot.required_rotations(method))
        needed |= set(self.slot_to_coeff.required_rotations(method))
        keys = self.evaluator.keys
        for distance in sorted(needed - set(keys.rotations)):
            keys.rotations[distance] = keygen.rotation_key(
                keys.secret, distance)
        if keys.conjugation is None:
            keys.conjugation = keygen.conjugation_key(keys.secret)

    def depth(self) -> int:
        """Multiplicative levels one bootstrap consumes."""
        eval_mod = self.chebyshev.depth(self.config.sine_degree)
        return 2 + eval_mod  # CtS + StC + (normalize + Chebyshev)

    # -- Pipeline stages ------------------------------------------------------

    def bootstrap(self, ct: Ciphertext) -> Ciphertext:
        """Refresh a base-level ciphertext back to a high level."""
        params = self.evaluator.params
        full_basis = tuple(params.moduli)
        if ct.level_count != self.base_limbs:
            ct = self.evaluator.drop_to_basis(
                ct, ct.basis[:self.base_limbs])
        raised = mod_raise(ct, full_basis, base_limbs=self.base_limbs)
        budget = (raised.level_count - self.base_limbs) // self.base_limbs
        if budget <= self.depth():
            raise LevelError(
                f"parameter set affords {budget} levels but "
                f"bootstrapping consumes {self.depth()}")
        c0, c1 = self._coeff_to_slot(raised)
        c0 = self._eval_mod(c0, raised.scale)
        c1 = self._eval_mod(c1, raised.scale)
        return self._slot_to_coeff(c0, c1)

    def _coeff_to_slot(self, ct: Ciphertext):
        ev = self.evaluator
        half = self.coeff_to_slot.apply(ct, self.config.transform_method)
        conj = ev.conjugate(half)
        c0 = ev.add(half, conj)
        c1 = ev.mul_by_i(ev.sub(conj, half))
        return c0, c1

    def _eval_mod(self, ct: Ciphertext, coeff_scale: float) -> Ciphertext:
        """Approximate ``x mod q_0`` via the scaled sine on slot values.

        ``coeff_scale`` is the scale of the ModRaised ciphertext — the
        factor relating slot values to raw coefficients; using the
        (slightly drifted) post-CoeffToSlot scale instead would shift
        the sine argument by enough to dominate the error.
        """
        q0 = self.base_modulus
        scale = coeff_scale
        k = self.config.modulus_range
        radius = (k + 0.5) * q0 / scale

        def target(y):
            return (q0 / (2.0 * np.pi * scale)) * np.sin(
                2.0 * np.pi * scale * np.asarray(y) / q0)

        coeffs = chebyshev_coefficients(
            target, self.config.sine_degree, (-radius, radius))
        return self.chebyshev.evaluate(ct, coeffs, (-radius, radius))

    def _slot_to_coeff(self, c0: Ciphertext, c1: Ciphertext) -> Ciphertext:
        ev = self.evaluator
        c0, c1 = ev.match_levels(c0, c1)
        combined = ev.add(c0, ev.mul_by_i(c1))
        return self.slot_to_coeff.apply(
            combined, self.config.transform_method)
