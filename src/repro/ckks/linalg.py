"""Encrypted linear algebra on top of the basic CKKS functions.

The Anaheim programming interface promises "optimized routines for
advanced features, such as linear algebra, arbitrary polynomial
evaluation, and DNN support" (§V-C).  This module provides the linear
algebra: packed-vector utilities (block sums, replication, masking),
inner products, and matrix-vector products via the diagonal method.
"""

from __future__ import annotations

import math

import numpy as np

from repro.ckks.cipher import Ciphertext
from repro.ckks.linear_transform import LinearTransform
from repro.errors import ParameterError


def rotations_for_block_sum(block: int) -> list:
    """Rotation distances the rotate-and-sum over ``block`` slots needs."""
    if block & (block - 1) != 0:
        raise ParameterError("block size must be a power of two")
    return [1 << k for k in range(int(math.log2(block)))]


def rotations_for_replicate(block: int, total: int) -> list:
    """Rotation distances replication needs (negative = right shifts)."""
    if total % block != 0:
        raise ParameterError("total slots must be a multiple of the block")
    copies = total // block
    return [-(block << k) % total
            for k in range(int(math.ceil(math.log2(max(copies, 2)))))]


class EncryptedLinalg:
    """Vector/matrix routines bound to an evaluator.

    Rotation keys are the caller's responsibility; the helpers above
    report which distances each routine uses so key sets can be planned
    statically (as the Anaheim framework does).
    """

    def __init__(self, evaluator):
        self.evaluator = evaluator

    @property
    def slot_count(self) -> int:
        return self.evaluator.params.slot_count

    # -- Masking and data movement ---------------------------------------------

    def mask(self, ct: Ciphertext, positions) -> Ciphertext:
        """Keep only the given slot positions (multiplies by a 0/1 mask)."""
        mask = np.zeros(self.slot_count)
        mask[list(positions)] = 1.0
        plain = self.evaluator.encoder.encode(mask, basis=ct.basis)
        return self.evaluator.mul_plain(ct, plain)

    def block_sum(self, ct: Ciphertext, block: int) -> Ciphertext:
        """Sum each aligned ``block``-slot group into its leading slot.

        After this, slot ``b*block`` holds the sum of slots
        ``[b*block, (b+1)*block)``; other slots hold partial sums.
        """
        out = ct
        for shift in rotations_for_block_sum(block):
            out = self.evaluator.add(out, self.evaluator.rotate(out, shift))
        return out

    def replicate(self, ct: Ciphertext, block: int) -> Ciphertext:
        """Broadcast each block's leading slot across the whole vector.

        Expects a ciphertext whose only nonzero slots are at multiples
        of ``block`` (e.g. a masked :meth:`block_sum` result); fills
        every slot of each block with its leading value.
        """
        out = ct
        copies = 1
        while copies < block:
            out = self.evaluator.add(
                out, self.evaluator.rotate(out, -copies))
            copies *= 2
        return out

    # -- Products ------------------------------------------------------------------

    def inner_product(self, x: Ciphertext, y: Ciphertext,
                      block: int | None = None,
                      mask_result: bool = True) -> Ciphertext:
        """⟨x, y⟩ per ``block``-slot group (whole vector by default).

        The result lands in each block's leading slot; with
        ``mask_result`` the partial sums elsewhere are zeroed, at the
        cost of one level.
        """
        if block is None:
            block = self.slot_count
        prod = self.evaluator.multiply(x, y)
        total = self.block_sum(prod, block)
        if not mask_result:
            return total
        return self.mask(total, range(0, self.slot_count, block))

    def plain_inner_product(self, x: Ciphertext, weights,
                            block: int | None = None,
                            mask_result: bool = True) -> Ciphertext:
        """⟨x, w⟩ with cleartext weights, per block."""
        if block is None:
            block = self.slot_count
        weights = np.asarray(weights, dtype=np.complex128)
        if weights.size == block:
            weights = np.tile(weights, self.slot_count // block)
        if weights.size != self.slot_count:
            raise ParameterError(
                f"weights must have {block} or {self.slot_count} entries")
        plain = self.evaluator.encoder.encode(weights, basis=x.basis)
        prod = self.evaluator.mul_plain(x, plain)
        total = self.block_sum(prod, block)
        if not mask_result:
            return total
        return self.mask(total, range(0, self.slot_count, block))

    def matvec(self, matrix: np.ndarray, x: Ciphertext,
               method: str = "bsgs") -> Ciphertext:
        """Dense matrix-vector product via the diagonal method.

        ``matrix`` must be ``(N/2) x (N/2)`` (pad smaller operators into
        the full slot space with :func:`embed_operator`).
        """
        transform = LinearTransform.from_matrix(self.evaluator, matrix)
        return transform.apply(x, method)

    def required_matvec_rotations(self, matrix: np.ndarray,
                                  method: str = "bsgs") -> list:
        transform = LinearTransform.from_matrix(self.evaluator, matrix)
        return transform.required_rotations(method)


def embed_operator(matrix: np.ndarray, slots: int,
                   replicate: bool = True) -> np.ndarray:
    """Embed a small (m x n) operator into the full slot space.

    With ``replicate`` the operator tiles block-diagonally (apply the
    same operator to every packed sample); otherwise it occupies the
    top-left corner only.
    """
    matrix = np.asarray(matrix, dtype=np.complex128)
    m, n = matrix.shape
    block = max(m, n)
    if block > slots:
        raise ParameterError("operator larger than the slot space")
    out = np.zeros((slots, slots), dtype=np.complex128)
    if replicate:
        for base in range(0, slots - block + 1, block):
            out[base:base + m, base:base + n] = matrix
    else:
        out[:m, :n] = matrix
    return out
