"""Plaintext and ciphertext containers with scale/level bookkeeping."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ckks.rns import RnsPolynomial, modulus_column
from repro.errors import (ParameterError, ScaleMismatchError,
                          VerificationError)
from repro.faults.checksum import residues_in_range

#: Relative tolerance when comparing the floating-point scales of two
#: operands.  Scales drift because rescaling divides by primes that only
#: approximate Δ, and the drift roughly doubles per multiplicative
#: level; operands reaching the same level along different paths can
#: disagree by ~1e-3 in deep circuits (e.g. the EvalMod Chebyshev
#: chain).  Mismatches below this bound are absorbed as noise
#: (HEAAN-style approximate scale management); genuinely wrong operand
#: pairings differ by a full prime factor (~2^25) and are still caught.
SCALE_RTOL = 5e-2


@dataclass
class Plaintext:
    """An encoded (but not encrypted) message ⟨u⟩: one polynomial."""

    poly: RnsPolynomial
    scale: float

    @property
    def basis(self) -> tuple:
        return self.poly.basis

    @property
    def level_count(self) -> int:
        return self.poly.limb_count


@dataclass
class Ciphertext:
    """An encryption [⟨u⟩] = (b, a) of a message under secret ``s``.

    Decryption computes ``b + a*s``.  ``scale`` is the current encoding
    scale Δ'; ``basis`` (from the polynomials) tracks the remaining
    level budget.
    """

    b: RnsPolynomial
    a: RnsPolynomial
    scale: float

    def __post_init__(self):
        if self.b.basis != self.a.basis:
            raise ParameterError("ciphertext halves have different bases")

    @property
    def basis(self) -> tuple:
        return self.b.basis

    @property
    def level_count(self) -> int:
        return self.b.limb_count

    @property
    def degree(self) -> int:
        return self.b.degree

    def copy(self) -> "Ciphertext":
        return Ciphertext(self.b.copy(), self.a.copy(), self.scale)

    def check_invariants(self) -> None:
        """Raise :class:`VerificationError` on a structurally broken
        ciphertext.

        The checks are the cheap sanity guards a resilient runtime runs
        after recovery: the scale must be a positive finite number, both
        halves must live in the same domain, and every residue must lie
        in its prime's canonical range ``[0, q)`` — an out-of-range word
        is proof of datapath corruption, not of any valid CKKS state.
        """
        if not (math.isfinite(self.scale) and self.scale > 0):
            raise VerificationError(
                f"ciphertext scale {self.scale!r} is not a positive "
                "finite number")
        if self.b.is_ntt != self.a.is_ntt:
            raise VerificationError(
                "ciphertext halves are in different domains")
        q_col = modulus_column(self.basis)
        for name, poly in (("b", self.b), ("a", self.a)):
            if not residues_in_range(poly.coeffs, q_col):
                raise VerificationError(
                    f"ciphertext half {name!r} holds residues outside "
                    "the canonical range [0, q)")


def check_same_scale(x, y) -> None:
    """Raise unless the two operands carry (numerically) equal scales."""
    if abs(x.scale - y.scale) > SCALE_RTOL * max(abs(x.scale), abs(y.scale)):
        raise ScaleMismatchError(
            f"scales differ: {x.scale:.6g} vs {y.scale:.6g}")


def check_same_basis(x, y) -> None:
    """Raise unless the two operands share the same RNS basis."""
    if x.basis != y.basis:
        raise ParameterError(
            f"bases differ: {len(x.basis)} vs {len(y.basis)} limbs")
