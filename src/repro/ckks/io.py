"""Serialization of CKKS objects to ``.npz`` archives.

Ciphertexts, plaintexts, keys, and parameter sets round-trip through
single-file numpy archives, so encrypted state can persist across
processes — the operational plumbing an adoptable library needs.

Security note: :func:`save_secret_key` exists for test/checkpoint
workflows; in a deployment the secret never leaves the client.
"""

from __future__ import annotations

import json
import zipfile
import zlib
from contextlib import contextmanager

import numpy as np

from repro.ckks.cipher import Ciphertext, Plaintext
from repro.ckks.keys import EvaluationKey, PublicKey, SecretKey
from repro.ckks.rns import RnsPolynomial
from repro.errors import ParameterError, SerializationError
from repro.params import CkksParams

FORMAT_VERSION = 1

#: Low-level failures a corrupted/truncated ``.npz`` surfaces (zip
#: directory damage, deflate stream damage, mangled array headers,
#: missing members, undecodable meta JSON).  All of them collapse to a
#: one-line :class:`~repro.errors.SerializationError`.
_CORRUPTION_ERRORS = (OSError, EOFError, KeyError, ValueError,
                      zlib.error, zipfile.BadZipFile, UnicodeDecodeError,
                      json.JSONDecodeError)


@contextmanager
def _archive(path, kind: str):
    """Open an ``.npz`` archive, translating every way a damaged file
    can fail into a clean :class:`SerializationError`.

    A missing file stays a plain ``FileNotFoundError`` (the caller
    mistyped a path; nothing is corrupt), and kind/format mismatches
    stay :class:`ParameterError` (the file is fine, the request is
    wrong).
    """
    try:
        fh = np.load(path)
    except FileNotFoundError:
        raise
    except _CORRUPTION_ERRORS as exc:
        raise SerializationError(
            f"cannot read {kind} archive {path}: corrupted or truncated "
            f"({exc.__class__.__name__}: {exc})") from None
    try:
        with fh:
            yield fh
    except (ParameterError, SerializationError):
        raise
    except _CORRUPTION_ERRORS as exc:
        raise SerializationError(
            f"cannot read {kind} archive {path}: corrupted or truncated "
            f"({exc.__class__.__name__}: {exc})") from None


def _meta(kind: str, **extra) -> np.ndarray:
    payload = {"format": FORMAT_VERSION, "kind": kind, **extra}
    return np.frombuffer(json.dumps(payload).encode(), dtype=np.uint8)


def _read_meta(archive, expected_kind: str) -> dict:
    if "meta" not in archive:
        raise ParameterError("not a repro.ckks archive (missing meta)")
    payload = json.loads(bytes(archive["meta"].tobytes()).decode())
    if payload.get("format") != FORMAT_VERSION:
        raise ParameterError(
            f"unsupported archive format {payload.get('format')}")
    if payload.get("kind") != expected_kind:
        raise ParameterError(
            f"archive holds a {payload.get('kind')!r}, expected "
            f"{expected_kind!r}")
    return payload


def _poly_arrays(prefix: str, poly: RnsPolynomial) -> dict:
    return {
        f"{prefix}_coeffs": poly.coeffs,
        f"{prefix}_basis": np.array(poly.basis, dtype=np.int64),
        f"{prefix}_ntt": np.array([poly.is_ntt]),
    }


def _poly_from(archive, prefix: str) -> RnsPolynomial:
    return RnsPolynomial(
        archive[f"{prefix}_coeffs"],
        tuple(int(q) for q in archive[f"{prefix}_basis"]),
        is_ntt=bool(archive[f"{prefix}_ntt"][0]))


# -- Parameters ----------------------------------------------------------------


def save_params(path, params: CkksParams) -> None:
    np.savez_compressed(
        path,
        meta=_meta("params", degree=params.degree,
                   scale_bits=params.scale_bits,
                   dense_hamming_weight=params.dense_hamming_weight,
                   sparse_hamming_weight=params.sparse_hamming_weight,
                   error_std=params.error_std,
                   primes_per_level=params.primes_per_level),
        moduli=np.array(params.moduli, dtype=np.int64),
        aux_moduli=np.array(params.aux_moduli, dtype=np.int64))


def load_params(path) -> CkksParams:
    with _archive(path, "params") as archive:
        meta = _read_meta(archive, "params")
        return CkksParams(
            degree=meta["degree"],
            moduli=tuple(int(q) for q in archive["moduli"]),
            aux_moduli=tuple(int(q) for q in archive["aux_moduli"]),
            scale_bits=meta["scale_bits"],
            dense_hamming_weight=meta["dense_hamming_weight"],
            sparse_hamming_weight=meta["sparse_hamming_weight"],
            error_std=meta["error_std"],
            primes_per_level=meta["primes_per_level"])


# -- Ciphertexts and plaintexts ---------------------------------------------------


def save_ciphertext(path, ct: Ciphertext) -> None:
    np.savez_compressed(path, meta=_meta("ciphertext", scale=ct.scale),
                        **_poly_arrays("b", ct.b), **_poly_arrays("a", ct.a))


def load_ciphertext(path) -> Ciphertext:
    with _archive(path, "ciphertext") as archive:
        meta = _read_meta(archive, "ciphertext")
        return Ciphertext(b=_poly_from(archive, "b"),
                          a=_poly_from(archive, "a"),
                          scale=float(meta["scale"]))


def save_plaintext(path, pt: Plaintext) -> None:
    np.savez_compressed(path, meta=_meta("plaintext", scale=pt.scale),
                        **_poly_arrays("p", pt.poly))


def load_plaintext(path) -> Plaintext:
    with _archive(path, "plaintext") as archive:
        meta = _read_meta(archive, "plaintext")
        return Plaintext(poly=_poly_from(archive, "p"),
                         scale=float(meta["scale"]))


# -- Keys -----------------------------------------------------------------------


def save_secret_key(path, key: SecretKey) -> None:
    np.savez_compressed(
        path, meta=_meta("secret", hamming_weight=key.hamming_weight),
        **_poly_arrays("s", key.poly))


def load_secret_key(path) -> SecretKey:
    with _archive(path, "secret") as archive:
        meta = _read_meta(archive, "secret")
        return SecretKey(poly=_poly_from(archive, "s"),
                         hamming_weight=meta["hamming_weight"])


def save_public_key(path, key: PublicKey) -> None:
    np.savez_compressed(path, meta=_meta("public"),
                        **_poly_arrays("b", key.b), **_poly_arrays("a", key.a))


def load_public_key(path) -> PublicKey:
    with _archive(path, "public") as archive:
        _read_meta(archive, "public")
        return PublicKey(b=_poly_from(archive, "b"),
                         a=_poly_from(archive, "a"))


def save_evaluation_key(path, key: EvaluationKey) -> None:
    arrays = {}
    for j, (b, a) in enumerate(zip(key.b_polys, key.a_polys)):
        arrays.update(_poly_arrays(f"b{j}", b))
        arrays.update(_poly_arrays(f"a{j}", a))
    np.savez_compressed(path, meta=_meta("evk", dnum=key.dnum), **arrays)


def load_evaluation_key(path) -> EvaluationKey:
    with _archive(path, "evk") as archive:
        meta = _read_meta(archive, "evk")
        dnum = meta["dnum"]
        return EvaluationKey(
            b_polys=[_poly_from(archive, f"b{j}") for j in range(dnum)],
            a_polys=[_poly_from(archive, f"a{j}") for j in range(dnum)])
