"""Executable RNS-CKKS: the FHE substrate Anaheim accelerates.

This subpackage implements the full CKKS scheme from scratch — modular
arithmetic, negacyclic NTT, RNS polynomials, canonical-embedding
encoding, key generation, the basic homomorphic functions (HADD, PMULT,
HMULT, HROT), hybrid key switching (ModUp/KeyMult/ModDown), linear
transforms (baseline / hoisting / MinKS / BSGS), Chebyshev polynomial
evaluation, and bootstrapping.

It runs real math at reduced ring degrees for correctness validation;
the paper-scale performance modelling lives in :mod:`repro.gpu`,
:mod:`repro.pim`, and :mod:`repro.workloads`.
"""

from repro.ckks.bootstrap import BootstrapConfig, Bootstrapper
from repro.ckks.cipher import Ciphertext, Plaintext
from repro.ckks.encoder import CkksEncoder
from repro.ckks.evaluator import CkksEvaluator, make_context
from repro.ckks.keys import (EvaluationKey, KeyGenerator, KeySet, PublicKey,
                             SecretKey)
from repro.ckks.linalg import EncryptedLinalg, embed_operator
from repro.ckks.linear_transform import (LinearTransform,
                                         generate_hoisting_keys,
                                         matrix_diagonals)
from repro.ckks.nn import Activation, DenseLayer, EncryptedMlp
from repro.ckks.noise import NoiseEstimator, measure_noise_bits
from repro.ckks.polyeval import ChebyshevEvaluator, chebyshev_coefficients
from repro.ckks.rns import RnsPolynomial

__all__ = [
    "Activation",
    "BootstrapConfig",
    "Bootstrapper",
    "ChebyshevEvaluator",
    "Ciphertext",
    "CkksEncoder",
    "CkksEvaluator",
    "DenseLayer",
    "EncryptedLinalg",
    "EncryptedMlp",
    "EvaluationKey",
    "KeyGenerator",
    "KeySet",
    "LinearTransform",
    "NoiseEstimator",
    "Plaintext",
    "PublicKey",
    "RnsPolynomial",
    "SecretKey",
    "chebyshev_coefficients",
    "embed_operator",
    "generate_hoisting_keys",
    "measure_noise_bits",
    "make_context",
    "matrix_diagonals",
]
