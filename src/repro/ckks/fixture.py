"""The shared bootstrap-verify-decrypt fixture.

The functional benchmark (:mod:`repro.ckks.bench`), the fault campaign
(:mod:`repro.faults.campaign`), and the RAS campaign
(:mod:`repro.faults.ras_campaign`) all need the same end-to-end rig: a
keyed evaluator, a bootstrapper with its one-time caches warmed, and a
low-level ciphertext of a known message whose decryption error bounds
correctness after a bootstrap.  This module is the single copy of that
setup; the three consumers differ only in what they wrap around
``bts.bootstrap(ct_low)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.params import CkksParams

#: Parameter set for the functional benchmarks and campaigns —
#: identical to the bootstrap test fixture so the timings track what
#: the tier-1 suite actually exercises.
BENCH_PARAMS = dict(degree=2 ** 7, level_count=15, aux_count=4,
                    prime_bits=28, base_prime_bits=31)


@dataclass
class BootstrapFixture:
    """Everything needed to bootstrap and verify one ciphertext."""

    params: CkksParams
    keygen: object
    keys: object
    ev: object
    bts: object
    #: The encrypted message (complex slots).
    message: np.ndarray
    #: The message at the lowest level, ready to bootstrap.
    ct_low: object

    def decrypt_error(self, refreshed) -> float:
        """Max slot error of a bootstrapped ciphertext vs the message."""
        decrypted = self.ev.decrypt_message(refreshed,
                                            self.params.slot_count)
        return float(np.abs(decrypted - self.message).max())


def bootstrap_fixture(key_seed: int = 11, message_seed: int = 7,
                      warmup: bool = True) -> BootstrapFixture:
    """Build the standard fixture.

    Key generation and the warmup bootstrap (rotation keys, diagonal
    caches) happen here, *outside* any fault or RAS session — the fault
    model targets the PIM datapath at execution time, not key material
    at rest.
    """
    from repro.ckks.bootstrap import Bootstrapper
    from repro.ckks.evaluator import CkksEvaluator
    from repro.ckks.keys import KeyGenerator

    params = CkksParams.create(**BENCH_PARAMS)
    keygen = KeyGenerator(params, seed=key_seed)
    keys = keygen.generate(sparse_secret=True)
    ev = CkksEvaluator(params, keys)
    bts = Bootstrapper(ev, keygen)

    rng = np.random.default_rng(message_seed)
    message = 0.3 * (rng.normal(size=params.slot_count)
                     + 1j * rng.normal(size=params.slot_count))
    ct_low = ev.drop_to_basis(ev.encrypt_message(message),
                              tuple(params.moduli[:1]))
    if warmup:
        bts.bootstrap(ct_low)
    return BootstrapFixture(params=params, keygen=keygen, keys=keys,
                            ev=ev, bts=bts, message=message,
                            ct_low=ct_low)
