"""RNS polynomial representation.

A polynomial ``a ∈ R_Q`` is stored as an ``(L, N)`` ``int64`` matrix of
residues — one row (limb) per prime of the RNS basis, exactly the view
the paper uses (§II-A).  Polynomials can live in coefficient or NTT
(evaluation) form; most CKKS ops keep them NTT-applied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.ckks import modmath
from repro.ckks.ntt import BatchNttContext, NttContext
from repro.errors import ParameterError
from repro.faults import guard as _fault_guard


@lru_cache(maxsize=None)
def ntt_context(degree: int, q: int) -> NttContext:
    """Shared, cached NTT tables per (degree, prime)."""
    return NttContext(degree, q)


@lru_cache(maxsize=None)
def batch_ntt_context(degree: int, basis: tuple) -> BatchNttContext:
    """Shared, cached batched NTT engine per (degree, basis).

    Built from the cached per-prime contexts so both paths share the
    exact same twiddle tables.
    """
    return BatchNttContext(
        degree, basis, contexts=[ntt_context(degree, q) for q in basis])


@lru_cache(maxsize=None)
def modulus_column(basis: tuple) -> np.ndarray:
    """``(L, 1)`` int64 column of the basis primes for broadcasting."""
    return np.array(basis, dtype=np.int64).reshape(len(basis), 1)


def basis_product(basis: tuple) -> int:
    """Product of all primes in a basis (an exact Python int)."""
    prod = 1
    for q in basis:
        prod *= q
    return prod


@dataclass
class RnsPolynomial:
    """A polynomial in RNS form over an explicit prime basis.

    ``coeffs`` has shape ``(len(basis), degree)``; ``coeffs[i]`` is the
    limb modulo ``basis[i]``.  ``is_ntt`` tracks whether limbs hold
    evaluation-domain values.
    """

    coeffs: np.ndarray
    basis: tuple
    is_ntt: bool = False
    #: Cached Shoup dual ``floor(coeffs · 2^32 / q)`` (uint64), computed
    #: by :meth:`ensure_shoup` for constant operands that are multiplied
    #: many times (plaintext diagonals, monomials, key limbs).  Never
    #: recomputed on mutation — only set on polynomials used as
    #: immutable cached constants.
    shoup: np.ndarray | None = field(default=None, repr=False,
                                     compare=False)

    def __post_init__(self):
        if self.coeffs.ndim != 2:
            raise ParameterError("RNS coefficients must be a 2-D matrix")
        if self.coeffs.shape[0] != len(self.basis):
            raise ParameterError(
                f"{self.coeffs.shape[0]} limbs but {len(self.basis)} primes")
        if self.coeffs.dtype != np.int64:
            self.coeffs = self.coeffs.astype(np.int64)

    # -- Constructors --------------------------------------------------------

    @staticmethod
    def zero(degree: int, basis: tuple, is_ntt: bool = True) -> "RnsPolynomial":
        """The zero polynomial (zero in both domains)."""
        return RnsPolynomial(
            np.zeros((len(basis), degree), dtype=np.int64), basis, is_ntt)

    @staticmethod
    def from_int_coeffs(values, basis: tuple) -> "RnsPolynomial":
        """Reduce arbitrary (possibly signed / big) integer coefficients.

        ``values`` may be a Python-int sequence or an object-dtype array;
        residues are taken per prime, so values larger than 63 bits are
        handled exactly.
        """
        arr = np.asarray(values, dtype=object)
        limbs = np.empty((len(basis), arr.shape[0]), dtype=np.int64)
        for i, q in enumerate(basis):
            limbs[i] = (arr % q).astype(np.int64)
        return RnsPolynomial(limbs, tuple(basis), is_ntt=False)

    @staticmethod
    def random_uniform(degree: int, basis: tuple,
                       rng: np.random.Generator,
                       is_ntt: bool = True) -> "RnsPolynomial":
        """Uniformly random polynomial (fresh randomness per limb)."""
        limbs = np.empty((len(basis), degree), dtype=np.int64)
        for i, q in enumerate(basis):
            limbs[i] = rng.integers(0, q, size=degree, dtype=np.int64)
        return RnsPolynomial(limbs, tuple(basis), is_ntt)

    # -- Domain changes -------------------------------------------------------

    @property
    def degree(self) -> int:
        return self.coeffs.shape[1]

    @property
    def limb_count(self) -> int:
        return self.coeffs.shape[0]

    def to_ntt(self) -> "RnsPolynomial":
        """Return the NTT-applied copy (no-op if already applied).

        All limbs are transformed in one batched butterfly pass
        (bit-identical to looping :class:`NttContext` over the primes).
        """
        if self.is_ntt:
            return self.copy()
        out = batch_ntt_context(self.degree, self.basis).forward(self.coeffs)
        return RnsPolynomial(out, self.basis, is_ntt=True)

    def from_ntt(self) -> "RnsPolynomial":
        """Return the coefficient-domain copy (no-op if already there)."""
        if not self.is_ntt:
            return self.copy()
        out = batch_ntt_context(self.degree, self.basis).inverse(self.coeffs)
        return RnsPolynomial(out, self.basis, is_ntt=False)

    def copy(self) -> "RnsPolynomial":
        return RnsPolynomial(self.coeffs.copy(), self.basis, self.is_ntt,
                             self.shoup)

    def ensure_shoup(self) -> "RnsPolynomial":
        """Precompute and cache the Shoup dual of every limb.

        Residue rows whose prime exceeds the lazy bound get a dual too
        (it is computable for any ``q < 2^31``) — the per-limb dispatch
        simply never reads those rows.  Returns ``self`` for chaining.
        """
        if self.shoup is None:
            self.shoup = modmath.shoup_precompute(
                self.coeffs, modulus_column(self.basis))
        return self

    # -- Element-wise arithmetic ----------------------------------------------

    def _check_compatible(self, other: "RnsPolynomial") -> None:
        if self.basis != other.basis:
            raise ParameterError("RNS bases differ")
        if self.is_ntt != other.is_ntt:
            raise ParameterError("operands are in different domains")

    def __add__(self, other: "RnsPolynomial") -> "RnsPolynomial":
        self._check_compatible(other)
        q_col = modulus_column(self.basis)
        out = np.empty_like(self.coeffs)
        modmath.mod_add_into(self.coeffs, other.coeffs, q_col, out)
        if _fault_guard.ACTIVE is not None:
            _fault_guard.ACTIVE.elementwise(
                "add", (self.coeffs, other.coeffs), out, q_col,
                lambda buf: modmath.mod_add_into(
                    self.coeffs, other.coeffs, q_col, buf))
        return RnsPolynomial(out, self.basis, self.is_ntt)

    def __sub__(self, other: "RnsPolynomial") -> "RnsPolynomial":
        self._check_compatible(other)
        q_col = modulus_column(self.basis)
        out = np.empty_like(self.coeffs)
        modmath.mod_sub_into(self.coeffs, other.coeffs, q_col, out)
        if _fault_guard.ACTIVE is not None:
            _fault_guard.ACTIVE.elementwise(
                "sub", (self.coeffs, other.coeffs), out, q_col,
                lambda buf: modmath.mod_sub_into(
                    self.coeffs, other.coeffs, q_col, buf))
        return RnsPolynomial(out, self.basis, self.is_ntt)

    def __neg__(self) -> "RnsPolynomial":
        q_col = modulus_column(self.basis)
        out = np.empty_like(self.coeffs)
        modmath.mod_neg_into(self.coeffs, q_col, out)
        if _fault_guard.ACTIVE is not None:
            _fault_guard.ACTIVE.elementwise(
                "neg", (self.coeffs,), out, q_col,
                lambda buf: modmath.mod_neg_into(self.coeffs, q_col, buf))
        return RnsPolynomial(out, self.basis, self.is_ntt)

    def __mul__(self, other: "RnsPolynomial") -> "RnsPolynomial":
        """Polynomial product — requires both operands NTT-applied."""
        self._check_compatible(other)
        if not self.is_ntt:
            raise ParameterError("polynomial mult requires NTT form")
        q_col = modulus_column(self.basis)
        out = np.empty_like(self.coeffs)
        # A precomputed Shoup dual on either operand turns the per-limb
        # ``%`` into the divide-free mul/shift/sub pipeline (lazy rows
        # only; wide primes still take the exact path) — bit-identical
        # either way.
        const, plain = None, None
        if modmath.lazy_enabled():
            if other.shoup is not None:
                const, plain = other, self
            elif self.shoup is not None:
                const, plain = self, other
        if const is not None:
            modmath.shoup_mod_mul_into(plain.coeffs, const.coeffs,
                                       const.shoup, q_col, self.basis, out)
        else:
            modmath.mod_mul_into(self.coeffs, other.coeffs, q_col, out)
        if _fault_guard.ACTIVE is not None:
            _fault_guard.ACTIVE.elementwise(
                "mul", (self.coeffs, other.coeffs), out, q_col,
                lambda buf: modmath.mod_mul_into(
                    self.coeffs, other.coeffs, q_col, buf))
        return RnsPolynomial(out, self.basis, self.is_ntt)

    def scalar_mul(self, constants) -> "RnsPolynomial":
        """Multiply by per-limb scalar constants (or one shared int)."""
        if isinstance(constants, int):
            constants = [constants] * self.limb_count
        if len(constants) != self.limb_count:
            raise ParameterError("need one constant per limb")
        q_col = modulus_column(self.basis)
        col = np.array([int(c) % q for c, q in zip(constants, self.basis)],
                       dtype=np.int64).reshape(-1, 1)
        out = np.empty_like(self.coeffs)
        modmath.mod_mul_into(self.coeffs, col, q_col, out)
        if _fault_guard.ACTIVE is not None:
            _fault_guard.ACTIVE.elementwise(
                "scalar", (self.coeffs,), out, q_col,
                lambda buf: modmath.mod_mul_into(self.coeffs, col, q_col,
                                                 buf),
                scalars=col)
        return RnsPolynomial(out, self.basis, self.is_ntt)

    # -- Basis manipulation -----------------------------------------------------

    def restrict(self, basis: tuple) -> "RnsPolynomial":
        """Keep only the limbs whose primes appear in ``basis`` (in order)."""
        index = {q: i for i, q in enumerate(self.basis)}
        try:
            rows = [index[q] for q in basis]
        except KeyError as exc:
            raise ParameterError(f"prime {exc} not in source basis") from exc
        dual = None if self.shoup is None else self.shoup[rows].copy()
        return RnsPolynomial(self.coeffs[rows].copy(), tuple(basis),
                             self.is_ntt, dual)

    def concat(self, other: "RnsPolynomial") -> "RnsPolynomial":
        """Stack limbs of two polynomials over disjoint bases."""
        if self.is_ntt != other.is_ntt:
            raise ParameterError("operands are in different domains")
        if set(self.basis) & set(other.basis):
            raise ParameterError("bases overlap")
        return RnsPolynomial(
            np.vstack([self.coeffs, other.coeffs]),
            self.basis + other.basis, self.is_ntt)

    # -- Exact reconstruction ----------------------------------------------------

    def to_int_coeffs(self, centered: bool = True) -> np.ndarray:
        """CRT-recompose to exact big-int coefficients (object dtype).

        With ``centered`` the result lies in ``(-Q/2, Q/2]``, the signed
        representative used when decoding.
        """
        poly = self.from_ntt()
        big_q = basis_product(self.basis)
        out = np.zeros(self.degree, dtype=object)
        for i, q in enumerate(self.basis):
            q_hat = big_q // q
            q_hat_inv = modmath.mod_inverse(q_hat % q, q)
            weight = q_hat * q_hat_inv
            out = (out + poly.coeffs[i].astype(object) * weight) % big_q
        if centered:
            out = np.where(out > big_q // 2, out - big_q, out)
        return out
