"""Key generation: secret, public, and evaluation keys.

Evaluation keys follow Table I: each evk comprises ``2·D`` polynomials
over the extended modulus PQ, one ``(b_j, a_j)`` pair per decomposition
digit, carrying the gadget-encoded source secret.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ckks import automorphism
from repro.ckks.keyswitch import DigitDecomposition
from repro.ckks.rns import RnsPolynomial
from repro.errors import EvalKeyError, ParameterError


@dataclass
class SecretKey:
    """Ternary secret with a fixed Hamming weight, over the full PQ basis."""

    poly: RnsPolynomial          # NTT form, basis Q ∪ P
    hamming_weight: int

    def restricted(self, basis: tuple) -> RnsPolynomial:
        return self.poly.restrict(basis)


@dataclass
class PublicKey:
    """Encryption key (b, a) = (-a·s + e, a) over basis Q."""

    b: RnsPolynomial
    a: RnsPolynomial


@dataclass
class EvaluationKey:
    """Key-switching key from secret ``s_from`` to ``s``: 2·D polynomials."""

    b_polys: list
    a_polys: list

    @property
    def dnum(self) -> int:
        return len(self.b_polys)

    def byte_size(self) -> int:
        """Device bytes of this key (32-bit words per residue)."""
        total_limbs = sum(p.limb_count for p in self.b_polys) + sum(
            p.limb_count for p in self.a_polys)
        return total_limbs * self.b_polys[0].degree * 4

    def ensure_shoup(self) -> "EvaluationKey":
        """Attach Shoup duals to every key limb (idempotent).

        Evaluation keys are long-lived constants multiplied against a
        fresh digit on every key switch, so precomputing their Shoup
        quotients once lets `KeyMult` take the divide-free path.
        ``RnsPolynomial.restrict`` propagates the dual, so leveled
        restrictions inherit it for free.
        """
        for p in self.b_polys:
            p.ensure_shoup()
        for p in self.a_polys:
            p.ensure_shoup()
        return self


@dataclass
class KeySet:
    """All key material a computation needs.

    Rotation keys are stored by rotation distance; the conjugation key
    under the key ``"conj"``.
    """

    secret: SecretKey
    public: PublicKey
    relin: EvaluationKey | None = None
    rotations: dict = field(default_factory=dict)
    conjugation: EvaluationKey | None = None
    #: Modified evks for the hoisted linear transform ([8], §V-B),
    #: keyed by rotation distance.
    hoisting_rotations: dict = field(default_factory=dict)

    def rotation_key(self, distance: int) -> EvaluationKey:
        key = self.rotations.get(distance)
        if key is None:
            raise EvalKeyError(f"no rotation key for distance {distance}")
        return key


class KeyGenerator:
    """Generates keys for a parameter set, with a seeded RNG."""

    def __init__(self, params, seed: int = 2025):
        self.params = params
        self.rng = np.random.default_rng(seed)
        self.decomp = DigitDecomposition(
            moduli=tuple(params.moduli),
            aux_moduli=tuple(params.aux_moduli),
            aux_count=params.aux_count)

    @property
    def full_basis(self) -> tuple:
        return self.decomp.full_basis

    # -- Random ring elements --------------------------------------------------

    def _ternary_secret(self, hamming_weight: int) -> np.ndarray:
        degree = self.params.degree
        if hamming_weight > degree:
            raise ParameterError("Hamming weight exceeds ring degree")
        coeffs = np.zeros(degree, dtype=np.int64)
        positions = self.rng.choice(degree, size=hamming_weight, replace=False)
        signs = self.rng.integers(0, 2, size=hamming_weight) * 2 - 1
        coeffs[positions] = signs
        return coeffs

    def gaussian_error(self, basis: tuple) -> RnsPolynomial:
        """Discrete-Gaussian error polynomial (NTT form)."""
        values = np.round(self.rng.normal(
            0.0, self.params.error_std, self.params.degree)).astype(np.int64)
        return RnsPolynomial.from_int_coeffs(
            [int(v) for v in values], basis).to_ntt()

    def uniform(self, basis: tuple) -> RnsPolynomial:
        return RnsPolynomial.random_uniform(
            self.params.degree, basis, self.rng, is_ntt=True)

    # -- Keys ------------------------------------------------------------------

    def secret_key(self, sparse: bool = False) -> SecretKey:
        weight = (self.params.sparse_hamming_weight if sparse
                  else self.params.dense_hamming_weight)
        # Toy ring degrees can be smaller than the paper's production
        # Hamming weights (Table IV); cap at N/4 to stay meaningful.
        weight = min(weight, self.params.degree // 4)
        coeffs = self._ternary_secret(weight)
        poly = RnsPolynomial.from_int_coeffs(
            [int(v) for v in coeffs], self.full_basis).to_ntt()
        return SecretKey(poly=poly, hamming_weight=weight)

    def public_key(self, secret: SecretKey) -> PublicKey:
        basis = tuple(self.params.moduli)
        a = self.uniform(basis)
        e = self.gaussian_error(basis)
        s = secret.restricted(basis)
        b = -(a * s) + e
        return PublicKey(b=b, a=a)

    def _switching_key(self, source_poly: RnsPolynomial,
                       secret: SecretKey) -> EvaluationKey:
        """evk encoding ``source_poly`` (e.g. s², φ_g(s)) toward ``secret``."""
        basis = self.full_basis
        s = secret.restricted(basis)
        src = source_poly.restrict(basis)
        b_polys = []
        a_polys = []
        for j in range(self.decomp.dnum):
            gadget = self.decomp.gadget_values(j)
            a_j = self.uniform(basis)
            e_j = self.gaussian_error(basis)
            b_j = -(a_j * s) + e_j + src.scalar_mul(gadget)
            b_polys.append(b_j)
            a_polys.append(a_j)
        return EvaluationKey(b_polys=b_polys, a_polys=a_polys)

    def relinearization_key(self, secret: SecretKey) -> EvaluationKey:
        s = secret.poly
        return self._switching_key(s * s, secret)

    def rotation_key(self, secret: SecretKey, distance: int) -> EvaluationKey:
        galois = automorphism.galois_element(distance, self.params.degree)
        rotated = automorphism.apply_automorphism(secret.poly, galois)
        return self._switching_key(rotated, secret)

    def conjugation_key(self, secret: SecretKey) -> EvaluationKey:
        galois = automorphism.conjugation_element(self.params.degree)
        conj = automorphism.apply_automorphism(secret.poly, galois)
        return self._switching_key(conj, secret)

    def hoisting_rotation_key(self, secret: SecretKey,
                              distance: int) -> EvaluationKey:
        """Modified evk for the hoisted linear transform ([8], §V-B)."""
        from repro.ckks.linear_transform import generate_hoisting_keys
        return generate_hoisting_keys(self, secret, [distance])[distance]

    def generate(self, rotations=(), include_conjugation: bool = False,
                 sparse_secret: bool = False,
                 hoisting_rotations=()) -> KeySet:
        """Generate a complete key set for the given rotation distances."""
        secret = self.secret_key(sparse=sparse_secret)
        keys = KeySet(secret=secret, public=self.public_key(secret),
                      relin=self.relinearization_key(secret))
        for distance in rotations:
            keys.rotations[distance] = self.rotation_key(secret, distance)
        for distance in hoisting_rotations:
            keys.hoisting_rotations[distance] = self.hoisting_rotation_key(
                secret, distance)
        if include_conjugation:
            keys.conjugation = self.conjugation_key(secret)
        return keys
