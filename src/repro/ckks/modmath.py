"""Modular arithmetic primitives for RNS-CKKS.

All bulk operations work on ``numpy.int64`` arrays holding residues in
``[0, q)`` for word-sized primes ``q``.  The paper (§VI-A) uses 28-bit
primes satisfying ``q ≡ 1 (mod 2N)`` — the NTT-friendliness condition —
so products of two residues fit comfortably in a signed 64-bit integer
(``2^28 * 2^28 = 2^56 < 2^63``).  We allow primes up to 31 bits, which
keeps the same safety margin, and validate that bound at prime
generation time.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from functools import lru_cache

import numpy as np

from repro.ckks import instrument
from repro.errors import ParameterError

#: Largest prime bit width for which ``int64`` products cannot overflow.
MAX_PRIME_BITS = 31

#: Shift of the Shoup precomputed quotient: ``s' = floor(s·2^32 / q)``.
SHOUP_SHIFT = 32

#: Largest prime width admitted by the lazy ``[0, 2q)`` Shoup pipeline.
#: The binding constraint is the Gentleman-Sande butterfly, which feeds
#: ``x - y + 2q < 4q`` into the Shoup multiply: correctness of the
#: ``[0, 2q)`` bound needs the multiplicand below ``2^32``, so ``4q ≤
#: 2^32`` ⇒ ``q < 2^30``.  Wider primes (the 31-bit base prime) fall
#: back to the exact ``%`` path.
SHOUP_MAX_PRIME_BITS = 30
SHOUP_MAX_PRIME = 1 << SHOUP_MAX_PRIME_BITS

_SHIFT_U64 = np.uint64(SHOUP_SHIFT)


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin primality test for 64-bit integers."""
    if n < 2:
        return False
    for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    # These witnesses are sufficient for all n < 3.3 * 10^24.
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_primes(count: int, n_degree: int, bits: int = 28) -> list[int]:
    """Generate ``count`` distinct NTT-friendly primes ``q ≡ 1 (mod 2N)``.

    Primes are chosen just below ``2**bits``, descending, mirroring the
    paper's choice of primes smaller than ``2^28`` (Table IV).
    """
    if bits > MAX_PRIME_BITS:
        raise ParameterError(
            f"prime width {bits} exceeds int64-safe bound {MAX_PRIME_BITS}")
    if bits < 2:
        raise ParameterError("prime width must be at least 2 bits")
    step = 2 * n_degree
    primes: list[int] = []
    # Largest candidate of the form k * 2N + 1 below 2**bits.
    candidate = ((1 << bits) - 2) // step * step + 1
    while len(primes) < count and candidate > step:
        if is_prime(candidate):
            primes.append(candidate)
        candidate -= step
    if len(primes) < count:
        raise ParameterError(
            f"could not find {count} primes ≡ 1 mod {step} below 2^{bits}")
    return primes


def generate_scale_primes(count: int, n_degree: int, bits: int = 28) -> list[int]:
    """Generate primes alternating just above/below ``2**bits``.

    Rescaling divides the scale by the dropped prime, so primes close to
    the scaling factor keep the scale stable across levels (standard
    RNS-CKKS practice).  The first prime returned is the largest; callers
    typically use it as the base prime ``q_0``.
    """
    if bits >= MAX_PRIME_BITS:
        raise ParameterError(
            f"scale prime width {bits} must leave headroom below "
            f"{MAX_PRIME_BITS} bits")
    step = 2 * n_degree
    target = 1 << bits
    primes: list[int] = []
    lo = target // step * step + 1
    hi = lo + step
    while len(primes) < count:
        if hi < (1 << MAX_PRIME_BITS) and is_prime(hi):
            primes.append(hi)
            if len(primes) == count:
                break
        if lo > step and is_prime(lo):
            primes.append(lo)
        lo -= step
        hi += step
        if hi >= (1 << (MAX_PRIME_BITS + 1)):
            raise ParameterError("ran out of scale prime candidates")
    return primes


def primitive_root(q: int) -> int:
    """Find the smallest primitive root modulo prime ``q``."""
    factors = _factorize(q - 1)
    for g in range(2, q):
        if all(pow(g, (q - 1) // f, q) != 1 for f in factors):
            return g
    raise ParameterError(f"no primitive root found for {q}")


def root_of_unity(order: int, q: int) -> int:
    """Return a primitive ``order``-th root of unity modulo prime ``q``."""
    if (q - 1) % order != 0:
        raise ParameterError(f"{order} does not divide {q}-1")
    g = primitive_root(q)
    root = pow(g, (q - 1) // order, q)
    # pow(g, (q-1)/order) always has order dividing `order`; verify exact.
    if pow(root, order // 2, q) == 1:
        raise ParameterError(f"root has smaller order than {order}")
    return root


def _factorize(n: int) -> set[int]:
    """Return the set of prime factors of ``n`` (trial division)."""
    factors: set[int] = set()
    d = 2
    while d * d <= n:
        while n % d == 0:
            factors.add(d)
            n //= d
        d += 1 if d == 2 else 2
    if n > 1:
        factors.add(n)
    return factors


def mod_inverse(a: int, q: int) -> int:
    """Modular inverse of ``a`` modulo ``q`` (q prime or a coprime)."""
    return pow(a, -1, q)


# ---------------------------------------------------------------------------
# Vectorized residue arithmetic.  Inputs are int64 arrays with values in
# [0, q); outputs satisfy the same invariant.
# ---------------------------------------------------------------------------

def mod_add(a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
    """Element-wise ``(a + b) mod q``."""
    c = a + b
    return np.where(c >= q, c - q, c)


def mod_sub(a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
    """Element-wise ``(a - b) mod q``."""
    c = a - b
    return np.where(c < 0, c + q, c)


def mod_neg(a: np.ndarray, q: int) -> np.ndarray:
    """Element-wise ``(-a) mod q``."""
    return np.where(a == 0, a, q - a)


def mod_mul(a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
    """Element-wise ``(a * b) mod q`` — safe for primes ≤ 31 bits."""
    return a * b % q


def mod_mul_scalar(a: np.ndarray, c: int, q: int) -> np.ndarray:
    """Element-wise ``(a * c) mod q`` for a scalar constant ``c``."""
    return a * (c % q) % q


def mod_mac(a: np.ndarray, b: np.ndarray, acc: np.ndarray, q: int) -> np.ndarray:
    """Element-wise ``(a * b + acc) mod q``.

    ``a·b mod q`` and ``acc`` both lie in ``[0, q)``, so their sum is
    below ``2q`` and one conditional subtraction replaces the second
    ``%`` pass.
    """
    c = a * b % q + acc
    return np.where(c >= q, c - q, c)


# ---------------------------------------------------------------------------
# Allocation-free (``out=``-style) variants.  Same semantics as the pure
# functions above, but every intermediate lands in caller-provided (or a
# single bool) scratch — no ``np.where`` temporaries.  ``q`` may be a
# scalar or any array broadcastable against ``out`` (e.g. the ``(L, 1)``
# per-limb modulus column of an RNS matrix), which is what lets one call
# process every limb of a polynomial at once.
# ---------------------------------------------------------------------------

def _mask(out: np.ndarray, mask: np.ndarray | None) -> np.ndarray:
    return np.empty(out.shape, dtype=bool) if mask is None else mask


def mod_add_into(a, b, q, out: np.ndarray,
                 mask: np.ndarray | None = None) -> np.ndarray:
    """``out[:] = (a + b) mod q`` with one conditional subtraction."""
    mask = _mask(out, mask)
    np.add(a, b, out=out)
    np.greater_equal(out, q, out=mask)
    np.subtract(out, q, out=out, where=mask)
    return out


def mod_sub_into(a, b, q, out: np.ndarray,
                 mask: np.ndarray | None = None) -> np.ndarray:
    """``out[:] = (a - b) mod q`` with one conditional addition."""
    mask = _mask(out, mask)
    np.subtract(a, b, out=out)
    np.less(out, 0, out=mask)
    np.add(out, q, out=out, where=mask)
    return out


def mod_neg_into(a, q, out: np.ndarray,
                 mask: np.ndarray | None = None) -> np.ndarray:
    """``out[:] = (-a) mod q`` (safe when ``out`` aliases ``a``)."""
    mask = _mask(out, mask)
    np.not_equal(a, 0, out=mask)
    np.subtract(q, a, out=out)
    np.multiply(out, mask, out=out)
    return out


def mod_mul_into(a, b, q, out: np.ndarray) -> np.ndarray:
    """``out[:] = (a * b) mod q`` — operands must be residues in [0, q)."""
    np.multiply(a, b, out=out)
    np.remainder(out, q, out=out)
    return out


def mod_mac_into(a, b, acc, q, out: np.ndarray,
                 mask: np.ndarray | None = None) -> np.ndarray:
    """``out[:] = (a * b + acc) mod q`` with a single ``%`` pass."""
    mask = _mask(out, mask)
    np.multiply(a, b, out=out)
    np.remainder(out, q, out=out)
    np.add(out, acc, out=out)
    np.greater_equal(out, q, out=mask)
    np.subtract(out, q, out=out, where=mask)
    return out


# ---------------------------------------------------------------------------
# Lazy-reduction Shoup/Harvey kernels.
#
# For primes ``q < 2^30`` the hardware-divide ``%`` in the hot kernels is
# replaced by Shoup's precomputed-quotient multiply: with ``s' = floor(s ·
# 2^32 / q)`` precomputed once per constant operand ``s``,
#
#     hi = (x · s') >> 32;   r = x·s − hi·q
#
# satisfies ``r ≡ x·s (mod q)`` and ``r ∈ [0, 2q)`` for any ``x < 2^32``
# — a mul/shift/mul/sub pipeline with no division, exactly the datapath
# of Anaheim's MMAC multiplier units (§IV).  Values are kept *lazily* in
# ``[0, 2q)`` between butterfly passes; one conditional subtraction per
# pass replaces the per-butterfly ``%``, and :func:`reduce_final_into`
# folds back to ``[0, q)`` at the end, so results are bit-identical to
# the strict path.  All kernels operate on ``uint64`` views of the
# ``int64`` residue buffers (values never exceed ``2^62``, so the
# reinterpretation is value-preserving).
#
# The 31-bit base/aux primes exceed the ``q < 2^30`` bound; a per-limb
# dispatch table (:func:`shoup_segments`) routes those rows through the
# exact ``%`` fallback so mixed RNS bases stay correct.
# ---------------------------------------------------------------------------

_lazy_enabled = True
_lazy_lock = threading.Lock()


def lazy_enabled() -> bool:
    """Whether the lazy Shoup kernels are active (process-wide)."""
    return _lazy_enabled


def set_lazy_enabled(flag: bool) -> None:
    """Enable/disable the lazy kernels (``False`` forces the ``%`` path
    everywhere — the benchmark and the property tests use this to pit
    the two paths against each other on identical inputs)."""
    global _lazy_enabled
    with _lazy_lock:
        _lazy_enabled = bool(flag)


@contextmanager
def lazy_scope(flag: bool):
    """Temporarily force the lazy kernels on or off."""
    previous = lazy_enabled()
    set_lazy_enabled(flag)
    try:
        yield
    finally:
        set_lazy_enabled(previous)


def supports_shoup(q: int) -> bool:
    """Whether prime ``q`` is narrow enough for the lazy pipeline."""
    return q < SHOUP_MAX_PRIME


@lru_cache(maxsize=None)
def shoup_segments(basis: tuple) -> tuple:
    """Contiguous ``(lo, hi, lazy)`` limb-row runs of an RNS basis.

    Limb rows of an ``(L, N)`` matrix are grouped into maximal runs of
    primes that share a dispatch path, so the batched kernels process
    each run with one vectorized call instead of testing every limb.
    """
    segments = []
    for i, q in enumerate(basis):
        lazy = supports_shoup(q)
        if segments and segments[-1][2] == lazy:
            segments[-1][1] = i + 1
        else:
            segments.append([i, i + 1, lazy])
    return tuple((lo, hi, lazy) for lo, hi, lazy in segments)


def shoup_precompute(s, q):
    """Shoup dual ``floor(s · 2^32 / q)`` of residues ``s ∈ [0, q)``.

    Scalar ints return a Python int; arrays return ``uint64`` (``q`` may
    be an ``(L, 1)`` modulus column broadcast against an ``(L, N)``
    residue matrix).  Valid for any ``q < 2^31`` — duals of strict-path
    limbs are computable (``s << 32 < 2^63``), merely unused.
    """
    if isinstance(s, (int, np.integer)):
        return (int(s) << SHOUP_SHIFT) // int(q)
    s = np.asarray(s).astype(np.uint64)
    q = np.asarray(q).astype(np.uint64)
    return (s << _SHIFT_U64) // q


def shoup_mul(x, s, s_shoup, q) -> np.ndarray:
    """Lazy product ``x·s mod q`` in ``[0, 2q)`` (pure; int64 result).

    Requires ``q < 2^30``, ``s ∈ [0, q)``, ``x < 2^32``.
    """
    x = np.asarray(x).astype(np.uint64)
    s = np.asarray(s).astype(np.uint64)
    s_shoup = np.asarray(s_shoup).astype(np.uint64)
    q = np.asarray(q).astype(np.uint64)
    hi = (x * s_shoup) >> _SHIFT_U64
    return (x * s - hi * q).astype(np.int64)


def shoup_mul_into(x, s, s_shoup, q, out: np.ndarray,
                   hi: np.ndarray) -> np.ndarray:
    """``out[:] = x·s − ((x·s') >> 32)·q ∈ [0, 2q)`` — all ``uint64``.

    ``hi`` is caller scratch of ``out``'s shape.  ``out`` may alias
    ``x`` (``x`` is fully consumed before ``out`` is first written).
    """
    np.multiply(x, s_shoup, out=hi)
    np.right_shift(hi, _SHIFT_U64, out=hi)
    np.multiply(hi, q, out=hi)
    np.multiply(x, s, out=out)
    np.subtract(out, hi, out=out)
    return out


def lazy_add_into(a, b, two_q, out: np.ndarray,
                  mask: np.ndarray) -> np.ndarray:
    """``out[:] = a + b`` folded into ``[0, 2q)`` (operands in
    ``[0, 2q)``) — the deferred-correction butterfly add: one
    conditional subtraction of ``2q``, never a ``%``."""
    np.add(a, b, out=out)
    np.greater_equal(out, two_q, out=mask)
    np.subtract(out, two_q, out=out, where=mask)
    return out


def lazy_sub_into(a, b, two_q, out: np.ndarray,
                  mask: np.ndarray) -> np.ndarray:
    """``out[:] = a − b + 2q`` folded into ``[0, 2q)`` (uint64: the
    transient wrap of ``a − b`` is cancelled exactly by ``+ 2q``)."""
    np.subtract(a, b, out=out)
    np.add(out, two_q, out=out)
    np.greater_equal(out, two_q, out=mask)
    np.subtract(out, two_q, out=out, where=mask)
    return out


def reduce_final(a, q) -> np.ndarray:
    """Map lazy values in ``[0, 2q)`` back to canonical ``[0, q)``."""
    return np.where(a >= q, a - q, a)


def reduce_final_into(a, q, mask: np.ndarray) -> np.ndarray:
    """In-place ``[0, 2q) → [0, q)``: one conditional subtraction."""
    np.greater_equal(a, q, out=mask)
    np.subtract(a, q, out=a, where=mask)
    return a


def shoup_mod_mul_into(x, s, s_shoup, q_col, basis: tuple,
                       out: np.ndarray) -> np.ndarray:
    """``out[:] = (x * s) mod q`` per limb row, Shoup where possible.

    ``x``/``s`` are ``(L, N)`` int64 residue matrices over ``basis``
    with ``s_shoup`` the precomputed ``uint64`` dual of ``s``; rows of
    31-bit primes fall back to the exact ``%``.  Output is canonical
    ``[0, q)`` — bit-identical to :func:`mod_mul_into`.
    """
    segments = shoup_segments(basis)
    if instrument.get_tracer() is not None:
        lazy_rows = sum(hi - lo for lo, hi, lazy in segments if lazy)
        if lazy_rows:
            instrument.count("ckks.modmath.shoup", lazy_rows)
        if len(basis) - lazy_rows:
            instrument.count("ckks.modmath.strict_fallback",
                             len(basis) - lazy_rows)
    for lo, hi, lazy in segments:
        if not lazy:
            mod_mul_into(x[lo:hi], s[lo:hi], q_col[lo:hi], out[lo:hi])
            continue
        xu = x[lo:hi].view(np.uint64)
        ou = out[lo:hi].view(np.uint64)
        qu = q_col[lo:hi].view(np.uint64)
        scratch = np.empty(ou.shape, dtype=np.uint64)
        mask = np.empty(ou.shape, dtype=bool)
        shoup_mul_into(xu, s[lo:hi].view(np.uint64), s_shoup[lo:hi],
                       qu, out=ou, hi=scratch)
        reduce_final_into(ou, qu, mask)
    return out


def barrett_precompute(q: int, width: int = 64) -> int:
    """Precompute the Barrett constant ``floor(2^width / q)``."""
    return (1 << width) // q


class MontgomeryContext:
    """Montgomery-form modular multiplication for a single prime.

    The paper's MMAC units implement Montgomery reduction exploiting
    ``q ≡ 1 (mod 2N)`` (§VI-A) with operands truncated to 28 bits.  This
    class is the functional reference for that circuit: values are kept
    in Montgomery form ``a·R mod q`` with ``R = 2^r_bits``, and
    :meth:`mul` performs the textbook REDC.  The default radix of 2^28
    keeps every intermediate below 2^57, safely inside ``int64``.
    """

    def __init__(self, q: int, r_bits: int = 28):
        if q % 2 == 0:
            raise ParameterError("Montgomery modulus must be odd")
        if q >= (1 << r_bits):
            raise ParameterError("modulus exceeds Montgomery radix")
        if 2 * r_bits + 1 >= 63:
            raise ParameterError("Montgomery radix too wide for int64 REDC")
        self.q = q
        self.r_bits = r_bits
        self.r = 1 << r_bits
        self.r_mask = self.r - 1
        self.r_mod_q = self.r % q
        self.r2_mod_q = self.r_mod_q * self.r_mod_q % q
        # q' such that q * q' ≡ -1 (mod R)
        self.q_inv_neg = (-mod_inverse(q, self.r)) % self.r

    def to_mont(self, a: np.ndarray) -> np.ndarray:
        """Convert residues into Montgomery form."""
        return self.mul(a, np.int64(self.r2_mod_q))

    def from_mont(self, a: np.ndarray) -> np.ndarray:
        """Convert Montgomery-form values back to plain residues."""
        return self._redc(a.astype(np.int64))

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Montgomery product ``a * b * R^{-1} mod q`` (vectorized REDC)."""
        return self._redc(a * b)

    def _redc(self, t: np.ndarray) -> np.ndarray:
        # m = (t mod R) * q' mod R; u = (t + m*q) / R
        m = (t & self.r_mask) * self.q_inv_neg & self.r_mask
        u = (t + m * self.q) >> self.r_bits
        return np.where(u >= self.q, u - self.q, u)
