"""Opt-in counters for the batched CKKS kernel engine.

The executable CKKS layer is a library of free functions and cached
contexts, so it cannot thread a :class:`~repro.obs.tracer.Tracer`
through every call the way the performance models do.  Instead, a
module-level tracer can be attached around a region of interest
(``bench functional`` and ``profile`` do this) and the engine reports
where its speedup comes from:

* ``ckks.batch_ntt.forward`` / ``ckks.batch_ntt.inverse`` — batched
  limb-plane transforms (each replaces ``L`` per-limb transforms).
* ``ckks.batch_ntt.limbs`` — limbs transformed in those calls.
* ``ckks.batch_ntt.threaded`` — transforms that split their limb
  planes across the :mod:`repro.parallel.threads` row-block pool.
* ``ckks.scratch.hit`` / ``ckks.scratch.miss`` — butterfly scratch
  slabs reused vs freshly allocated (per-thread, so a threaded run
  records one miss per worker thread per shape).
* ``ckks.diag_cache.hit`` / ``ckks.diag_cache.miss`` — encoded
  plaintext diagonals served from the :class:`LinearTransform` cache.
* ``ckks.monomial_cache.hit`` / ``ckks.monomial_cache.miss`` — cached
  ``X^k`` multiplier polynomials in the evaluator.
* ``ckks.bconv.batched`` / ``ckks.bconv.chunks`` — vectorized BConv
  calls and the chunked int64 reduction passes they needed.
* ``ckks.bconv.threaded`` — BConv matmuls split across row blocks.
* ``ckks.bconv_tables.hit`` / ``.miss`` / ``.evicted`` — the bounded
  basis-conversion constant cache (long serve runs over many leveled
  bases must not grow memory without bound).
* ``ckks.modmath.shoup`` / ``ckks.modmath.strict_fallback`` — limb
  rows multiplied through the lazy Shoup mul/shift/sub pipeline vs
  rows that fell back to the exact ``%`` path (primes ≥ 2³⁰, or lazy
  reduction disabled via :func:`repro.ckks.modmath.lazy_scope`).
* ``ckks.ntt_tables.hit`` / ``.miss`` / ``.evicted`` — the bounded
  module-level twiddle-plane cache shared by every ``NttContext`` /
  ``BatchNttContext`` keyed on ``(degree, q)``.

When no tracer is attached every counting site is a single ``is None``
branch, keeping the default path free of overhead.  Counting is
thread-safe: the threaded limb-plane kernels bump counters from worker
threads, so each bump merges into the tracer under a module lock.
"""

from __future__ import annotations

import threading

_tracer = None
_lock = threading.Lock()


def set_tracer(tracer) -> None:
    """Attach a tracer collecting engine counters (``None`` detaches)."""
    global _tracer
    _tracer = tracer


def get_tracer():
    """The currently attached tracer, or ``None``."""
    return _tracer


def count(name: str, value: float = 1.0) -> None:
    """Bump a counter on the attached tracer, if any (atomically —
    the read-modify-write merge is serialized under a module lock so
    concurrent kernel threads never lose increments)."""
    if _tracer is not None:
        with _lock:
            if _tracer is not None:
                _tracer.count(name, value)
