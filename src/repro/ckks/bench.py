"""Wall-clock benchmarks of the executable CKKS layer.

Unlike the analytical performance model (``repro.core``), these numbers
time the *functional* implementation actually running: the batched
limb-plane NTT against the per-limb reference, a full hybrid key
switch, and an end-to-end bootstrap.  ``anaheim-repro bench --workload
functional`` records them as a ``BENCH_functional.json`` baseline so
numeric-layer regressions show up in wall-clock terms.

Wall time is noisy, so every metric is the best of ``repeats`` trials
— the minimum is the standard estimator for "how fast can this code
run" on a machine with background load.
"""

from __future__ import annotations

import time

import numpy as np

from repro.ckks import instrument, modmath
from repro.ckks.fixture import BENCH_PARAMS, bootstrap_fixture
from repro.ckks.keyswitch import key_switch
from repro.ckks.ntt import NttContext
from repro.ckks.rns import batch_ntt_context

#: NTT transforms per timing trial; one transform of a (19, 128) limb
#: matrix is microseconds, far below timer resolution.
NTT_LOOPS = 200


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_functional_bench(repeats: int = 3, tracer=None) -> dict:
    """Time the executable numeric layer; returns a metrics document.

    ``tracer`` (a ``repro.obs.tracer.Tracer``) is attached to the CKKS
    instrumentation hooks for the duration of the run, so the returned
    ``counters`` record batched-NTT calls, scratch reuse, and cache
    hits alongside the wall-clock metrics.
    """
    fx = bootstrap_fixture()
    params, keys, ev, bts = fx.params, fx.keys, fx.ev, fx.bts

    full_basis = tuple(params.moduli) + tuple(params.aux_moduli)
    rng = np.random.default_rng(7)
    limbs = np.stack([rng.integers(0, q, size=params.degree, dtype=np.int64)
                      for q in full_basis])

    batch_ctx = batch_ntt_context(params.degree, full_basis)
    per_limb = [NttContext(params.degree, q) for q in full_basis]

    def batched_forward():
        for _ in range(NTT_LOOPS):
            batch_ctx.forward(limbs)

    def batched_inverse():
        for _ in range(NTT_LOOPS):
            batch_ctx.inverse(limbs)

    def reference_forward():
        for _ in range(NTT_LOOPS):
            for i, ctx in enumerate(per_limb):
                ctx.forward(limbs[i])

    # Key switch of a full-basis NTT polynomial under the relin key —
    # the decompose → ModUp → KeyMult → ModDown pipeline end to end.
    ct = ev.encrypt_message(0.3 * rng.normal(size=params.slot_count))

    def one_key_switch():
        key_switch(ct.a, keys.relin, ev.decomp)

    # End-to-end bootstrap from the lowest level.  The fixture's
    # construction already ran the untimed warmup (CtS/StC rotation
    # keys, diagonal-plaintext caches — one-time setup cost).
    ct_low = fx.ct_low
    refreshed = bts.bootstrap(ct_low)

    # Strict-mode arm of the lazy-reduction comparison: the same batched
    # transform with Shoup kernels disabled, i.e. the original per-pass
    # ``%`` algorithm.  Timed OUTSIDE the traced region so the pinned
    # baseline counters (``ckks.batch_ntt.forward`` etc.) are unchanged.
    def strict_forward():
        with modmath.lazy_scope(False):
            for _ in range(NTT_LOOPS):
                batch_ctx.forward(limbs)

    ntt_forward_strict_s = _best_of(strict_forward, repeats)

    old_tracer = instrument.get_tracer()
    instrument.set_tracer(tracer)
    try:
        metrics = {
            "ntt_forward_batched_s": _best_of(batched_forward, repeats),
            "ntt_inverse_batched_s": _best_of(batched_inverse, repeats),
            "ntt_forward_reference_s": _best_of(reference_forward, repeats),
            "key_switch_s": _best_of(one_key_switch, repeats),
            "bootstrap_s": _best_of(
                lambda: bts.bootstrap(ct_low), repeats),
        }
    finally:
        instrument.set_tracer(old_tracer)
    metrics["ntt_batch_speedup"] = (metrics["ntt_forward_reference_s"]
                                    / metrics["ntt_forward_batched_s"])
    metrics["ntt_forward_strict_s"] = ntt_forward_strict_s
    metrics["ntt_lazy_speedup"] = (ntt_forward_strict_s
                                   / metrics["ntt_forward_batched_s"])

    return {
        "metrics": metrics,
        "counters": dict(tracer.counters) if tracer is not None else {},
        "precision_max_err": fx.decrypt_error(refreshed),
        "config": {"params": dict(BENCH_PARAMS), "repeats": repeats,
                   "ntt_loops": NTT_LOOPS,
                   "limb_count": len(full_basis)},
    }
