"""Basis conversion, ModUp/ModDown, rescaling, and key switching.

These are the paper's primary polynomial ops (§II-B): ``ModSwitch``
decomposes into INTT → BConv → NTT, with variants ``ModUp`` (extend a
decomposition digit from its group basis to the full PQ basis) and
``ModDown`` (divide by P and return to basis Q).  ``KeyMult`` is the
inner-product with the evaluation key digits that both HMULT and HROT
share (Fig. 1).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.ckks import instrument, modmath
from repro.ckks.rns import RnsPolynomial, basis_product, modulus_column
from repro.errors import ParameterError
from repro.parallel import threads as limb_threads

#: Bound on the basis-conversion constant cache.  Every (level, digit)
#: pair of a leveled computation wants its own table, but a long serve
#: run sweeping many parameter sets must not grow memory without bound
#: — the paper-scale working set is ~O(dnum · levels) ≈ tens of
#: entries, so 128 keeps every hot table resident while capping growth.
BCONV_CACHE_SIZE = 128

_bconv_cache: OrderedDict = OrderedDict()
_bconv_lock = threading.Lock()


def _bconv_tables(src_basis: tuple, dst_basis: tuple):
    """Precompute fast-basis-conversion constants (HPS / full-RNS [16]).

    Returns ``(q_hat_inv, q_hat_mod_dst, src_prod_mod_dst)`` where
    ``q_hat_inv[i] = (Q̂_i)^{-1} mod q_i`` and
    ``q_hat_mod_dst[i][j] = Q̂_i mod p_j`` with ``Q̂_i = Q_src / q_i``.

    Cached in a **bounded** LRU (:data:`BCONV_CACHE_SIZE` entries,
    thread-safe) instead of an unbounded ``lru_cache``; hits, misses,
    and evictions are reported through :mod:`repro.ckks.instrument`
    as ``ckks.bconv_tables.*``.
    """
    key = (src_basis, dst_basis)
    with _bconv_lock:
        tables = _bconv_cache.get(key)
        if tables is not None:
            _bconv_cache.move_to_end(key)
            instrument.count("ckks.bconv_tables.hit")
            return tables
    instrument.count("ckks.bconv_tables.miss")
    src_prod = basis_product(src_basis)
    q_hat_inv = np.empty(len(src_basis), dtype=np.int64)
    q_hat_mod = np.empty((len(src_basis), len(dst_basis)), dtype=np.int64)
    for i, q in enumerate(src_basis):
        q_hat = src_prod // q
        q_hat_inv[i] = modmath.mod_inverse(q_hat % q, q)
        for j, p in enumerate(dst_basis):
            q_hat_mod[i, j] = q_hat % p
    src_prod_mod = np.array([src_prod % p for p in dst_basis], dtype=np.int64)
    tables = (q_hat_inv, q_hat_mod, src_prod_mod)
    with _bconv_lock:
        _bconv_cache[key] = tables
        _bconv_cache.move_to_end(key)
        while len(_bconv_cache) > BCONV_CACHE_SIZE:
            _bconv_cache.popitem(last=False)
            instrument.count("ckks.bconv_tables.evicted")
    return tables


def bconv_cache_info() -> dict:
    """Size/bound of the basis-conversion table cache (tests use it)."""
    with _bconv_lock:
        return {"size": len(_bconv_cache), "maxsize": BCONV_CACHE_SIZE}


def clear_bconv_cache() -> None:
    with _bconv_lock:
        _bconv_cache.clear()


def basis_convert(poly: RnsPolynomial, dst_basis: tuple) -> RnsPolynomial:
    """Fast basis conversion (BConv) — coefficient domain only.

    Structurally a ``(|dst| × |src|) @ (|src| × N)`` matrix product, as
    the paper notes (§II-B).  A floating-point correction recovers the
    centered representative, so inputs with centered magnitude below
    ``Q_src / 2`` convert exactly.
    """
    if poly.is_ntt:
        raise ParameterError("BConv requires coefficient-domain input")
    src_basis = poly.basis
    dst_basis = tuple(dst_basis)
    q_hat_inv, q_hat_mod, src_prod_mod = _bconv_tables(src_basis, dst_basis)
    instrument.count("ckks.bconv.batched")
    # y_i = x_i * (Q̂_i)^{-1} mod q_i — one pass over the whole matrix.
    y = np.empty_like(poly.coeffs)
    modmath.mod_mul_into(poly.coeffs, q_hat_inv.reshape(-1, 1),
                         modulus_column(src_basis), y)
    # The uncorrected sum equals x + u * Q_src with u = round(sum y_i/q_i)
    # for centered x; subtract u * Q_src to recenter.  Summed limb by
    # limb to keep the float rounding identical to the reference.
    frac = np.zeros(poly.degree, dtype=np.float64)
    for i, q in enumerate(src_basis):
        frac += y[i] / q
    u = np.round(frac).astype(np.int64)
    # acc[j] = Σ_i y_i · (Q̂_i mod p_j): a (|dst| × |src|) @ (|src| × N)
    # product.  Every term is below max(q)·max(p) < 2^62, so instead of
    # reducing after each limb we accumulate `chunk` limbs at a time in
    # int64 and reduce once per chunk.  Destination rows are mutually
    # independent, so the product is split into contiguous row blocks
    # across the kernel thread pool; each block runs the exact per-row
    # operation sequence of the serial loop, keeping the result
    # bit-identical for any thread count.
    dst_col = modulus_column(dst_basis)
    max_term = (max(src_basis) - 1) * (max(dst_basis) - 1)
    headroom = (1 << 63) - 1 - (max(dst_basis) - 1)
    chunk = max(1, headroom // max_term)
    acc = np.zeros((len(dst_basis), poly.degree), dtype=np.int64)
    starts = range(0, len(src_basis), chunk)
    instrument.count("ckks.bconv.chunks", len(starts))

    def accumulate(lo: int, hi: int) -> None:
        rows = acc[lo:hi]
        col = dst_col[lo:hi]
        for start in starts:
            stop = start + chunk
            np.add(rows, q_hat_mod[start:stop, lo:hi].T @ y[start:stop],
                   out=rows)
            np.remainder(rows, col, out=rows)

    if limb_threads.run_blocks(len(dst_basis), accumulate) > 1:
        instrument.count("ckks.bconv.threaded")
    # u is a small non-negative integer (< |src|), so u·(Q_src mod p)
    # stays far below the int64 bound before its reduction.
    corr = np.multiply(u[None, :], src_prod_mod.reshape(-1, 1))
    np.remainder(corr, dst_col, out=corr)
    modmath.mod_sub_into(acc, corr, dst_col, out=acc)
    return RnsPolynomial(acc, dst_basis, is_ntt=False)


@dataclass(frozen=True)
class DigitDecomposition:
    """Gadget decomposition of basis Q into D groups of ≤ α primes."""

    moduli: tuple
    aux_moduli: tuple
    aux_count: int

    @property
    def dnum(self) -> int:
        return -(-len(self.moduli) // self.aux_count)

    def group(self, j: int) -> tuple:
        """Primes of decomposition digit j."""
        return self.moduli[j * self.aux_count:(j + 1) * self.aux_count]

    def groups(self):
        return [self.group(j) for j in range(self.dnum)]

    @property
    def full_basis(self) -> tuple:
        """Basis PQ ordered as Q-part then P-part."""
        return self.moduli + self.aux_moduli

    def gadget_values(self, j: int) -> list:
        """``g_j = P · Q̂_j · [Q̂_j^{-1}]_{Q_j}`` reduced mod each PQ prime."""
        q_prod = basis_product(self.moduli)
        p_prod = basis_product(self.aux_moduli)
        group_prod = basis_product(self.group(j))
        q_hat = q_prod // group_prod
        q_hat_inv = modmath.mod_inverse(q_hat % group_prod, group_prod)
        g = p_prod * q_hat * q_hat_inv
        return [g % q for q in self.full_basis]


def mod_up(poly: RnsPolynomial, group: tuple, target_basis: tuple,
           coeff: RnsPolynomial | None = None) -> RnsPolynomial:
    """ModUp: extend one decomposition digit to ``target_basis``.

    ``group`` are the digit's primes (a subset of both ``poly.basis``
    and ``target_basis``).  Input must be NTT-applied; output is
    NTT-applied over ``target_basis``.  Internally: INTT → BConv → NTT —
    exactly the paper's ModSwitch structure.

    ``coeff`` optionally supplies the coefficient-domain copy of
    ``poly`` so callers extending several digits (ModUp of every
    decomposition group) run the INTT once for all limbs instead of
    once per digit; limb-wise the transform is independent, so
    restricting before or after the INTT is bit-identical.
    """
    limbs = poly.restrict(group)
    if coeff is None:
        coeff_group = limbs.from_ntt()
    else:
        coeff_group = coeff.restrict(group)
    rest = tuple(q for q in target_basis if q not in group)
    extended = basis_convert(coeff_group, rest).to_ntt()
    combined = limbs.to_ntt().concat(extended)
    return combined.restrict(target_basis)


def mod_down(poly: RnsPolynomial, moduli: tuple,
             aux_moduli: tuple) -> RnsPolynomial:
    """ModDown: divide a PQ-basis polynomial by P, returning basis Q.

    The final per-limb step ``x = P^{-1} · (a - b)`` is the PIM
    ``ModDownEp`` instruction (Table II).
    """
    q_part = poly.restrict(moduli)
    p_part = poly.restrict(aux_moduli)
    p_in_q = basis_convert(p_part.from_ntt(), moduli).to_ntt()
    p_prod = basis_product(aux_moduli)
    inv_p = [modmath.mod_inverse(p_prod % q, q) for q in moduli]
    return (q_part - p_in_q).scalar_mul(inv_p)


def rescale_poly(poly: RnsPolynomial) -> RnsPolynomial:
    """Divide by the last prime of the basis and drop its limb."""
    if poly.limb_count < 2:
        raise ParameterError("cannot rescale a single-limb polynomial")
    last = poly.basis[-1]
    kept = poly.basis[:-1]
    last_limb = poly.restrict((last,))
    last_in_kept = basis_convert(last_limb.from_ntt(), kept)
    if poly.is_ntt:
        last_in_kept = last_in_kept.to_ntt()
    inv = [modmath.mod_inverse(last % q, q) for q in kept]
    return (poly.restrict(kept) - last_in_kept).scalar_mul(inv)


def key_mult(digits: list, evk) -> tuple:
    """KeyMult: ``(Σ_j d̃_j · evk_j.b, Σ_j d̃_j · evk_j.a)`` over PQ.

    ``digits[j]`` is the ModUp-extended digit ``d̃_j`` (NTT, basis PQ);
    ``evk`` holds ``2·D`` polynomials (Table I).  On Anaheim this entire
    loop maps to PAccum⟨D⟩ PIM instructions (Alg. 1).
    """
    if len(digits) != len(evk.b_polys):
        raise ParameterError(
            f"{len(digits)} digits but evk has {len(evk.b_polys)}")
    evk.ensure_shoup()
    acc_b = digits[0] * evk.b_polys[0]
    acc_a = digits[0] * evk.a_polys[0]
    for j in range(1, len(digits)):
        acc_b = acc_b + digits[j] * evk.b_polys[j]
        acc_a = acc_a + digits[j] * evk.a_polys[j]
    return acc_b, acc_a


def decompose_digits(poly: RnsPolynomial, decomp: DigitDecomposition):
    """ModUp every decomposition digit of ``poly`` (possibly leveled).

    ``poly`` may live on any prefix of the full Q basis; empty digits
    (all of whose primes were already dropped) are skipped.  Returns
    ``(digits, digit_indices, target_basis)``.
    """
    current = poly.basis
    target = current + decomp.aux_moduli
    coeff = poly.from_ntt()    # shared INTT for every digit's ModUp
    digits = []
    indices = []
    for j in range(decomp.dnum):
        group = tuple(q for q in decomp.group(j) if q in current)
        if not group:
            continue
        digits.append(mod_up(poly, group, target, coeff=coeff))
        indices.append(j)
    return digits, indices, target


def key_switch(poly: RnsPolynomial, evk, decomp: DigitDecomposition) -> tuple:
    """Full key switch of ``poly`` (NTT): ModUp → KeyMult → ModDown.

    ``poly`` may be leveled (a prefix of the full Q basis); the evk —
    generated once over the full PQ basis — is restricted to the current
    basis.  Returns ``(b, a)`` over the current Q basis whose decryption
    adds ``poly · s_from`` under the target secret.
    """
    digits, indices, target = decompose_digits(poly, decomp)
    evk.ensure_shoup()
    acc_b = None
    acc_a = None
    for digit, j in zip(digits, indices):
        evk_b = evk.b_polys[j].restrict(target)
        evk_a = evk.a_polys[j].restrict(target)
        term_b = digit * evk_b
        term_a = digit * evk_a
        acc_b = term_b if acc_b is None else acc_b + term_b
        acc_a = term_a if acc_a is None else acc_a + term_a
    b = mod_down(acc_b, poly.basis, decomp.aux_moduli)
    a = mod_down(acc_a, poly.basis, decomp.aux_moduli)
    return b, a
