"""Homomorphic evaluation of the basic CKKS functions (§II-A).

Implements HADD, HSUB, PMULT, HMULT, HROT and conjugation along with
encryption, decryption, rescaling, and level management.  HMULT and HROT
follow the §II-B structure: decompose → ModUp → KeyMult → ModDown (plus
automorphism for HROT).
"""

from __future__ import annotations

import numpy as np

from repro.ckks import automorphism, instrument
from repro.ckks.cipher import (Ciphertext, Plaintext, check_same_basis,
                               check_same_scale)
from repro.ckks.encoder import CkksEncoder
from repro.ckks.keys import KeyGenerator, KeySet
from repro.ckks.keyswitch import (DigitDecomposition, key_switch,
                                  rescale_poly)
from repro.ckks.rns import RnsPolynomial
from repro.errors import LevelError, ParameterError


class CkksEvaluator:
    """Stateful evaluator bound to a parameter set and a key set."""

    def __init__(self, params, keys: KeySet, seed: int = 7):
        self.params = params
        self.keys = keys
        self.encoder = CkksEncoder(params)
        self.rng = np.random.default_rng(seed)
        self.decomp = DigitDecomposition(
            moduli=tuple(params.moduli),
            aux_moduli=tuple(params.aux_moduli),
            aux_count=params.aux_count)
        #: NTT-applied monomial multipliers keyed by (power, basis) —
        #: mul_by_i alone is called once per bootstrap stage, and the
        #: monomial only depends on the power and the basis.
        self._monomial_cache: dict = {}

    # -- Encryption --------------------------------------------------------

    def encrypt(self, plaintext: Plaintext) -> Ciphertext:
        """Public-key encryption of an encoded message."""
        basis = plaintext.basis
        pk = self.keys.public
        v_coeffs = self.rng.integers(-1, 2, self.params.degree)
        v = RnsPolynomial.from_int_coeffs(
            [int(x) for x in v_coeffs], basis).to_ntt()
        e0 = self._error(basis)
        e1 = self._error(basis)
        b = pk.b.restrict(basis) * v + e0 + plaintext.poly
        a = pk.a.restrict(basis) * v + e1
        return Ciphertext(b=b, a=a, scale=plaintext.scale)

    def encrypt_message(self, message, scale: float | None = None) -> Ciphertext:
        return self.encrypt(self.encoder.encode(message, scale=scale))

    def decrypt(self, ciphertext: Ciphertext) -> Plaintext:
        s = self.keys.secret.restricted(ciphertext.basis)
        poly = ciphertext.b + ciphertext.a * s
        return Plaintext(poly=poly, scale=ciphertext.scale)

    def decrypt_message(self, ciphertext: Ciphertext,
                        slots: int | None = None) -> np.ndarray:
        return self.encoder.decode(self.decrypt(ciphertext), slots=slots)

    def _error(self, basis: tuple) -> RnsPolynomial:
        values = np.round(self.rng.normal(
            0.0, self.params.error_std, self.params.degree)).astype(np.int64)
        return RnsPolynomial.from_int_coeffs(
            [int(v) for v in values], basis).to_ntt()

    # -- Level / scale management -------------------------------------------

    def rescale(self, ct: Ciphertext) -> Ciphertext:
        """Drop one multiplicative level.

        Removes ``params.primes_per_level`` primes — one for classic
        RNS-CKKS, two under double-prime scaling ([1], [45]).
        """
        steps = getattr(self.params, "primes_per_level", 1)
        if ct.level_count < steps + 1:
            raise LevelError("no level left to rescale")
        b, a, scale = ct.b, ct.a, ct.scale
        for _ in range(steps):
            scale /= b.basis[-1]
            b = rescale_poly(b)
            a = rescale_poly(a)
        return Ciphertext(b=b, a=a, scale=scale)

    def drop_to_basis(self, ct: Ciphertext, basis: tuple) -> Ciphertext:
        """Discard limbs so the ciphertext lives on ``basis`` (a prefix)."""
        if tuple(ct.basis[:len(basis)]) != tuple(basis):
            raise ParameterError("target basis is not a prefix of current")
        return Ciphertext(b=ct.b.restrict(basis), a=ct.a.restrict(basis),
                          scale=ct.scale)

    def match_levels(self, x: Ciphertext, y: Ciphertext):
        """Drop limbs of the deeper operand so both share a basis."""
        n = min(x.level_count, y.level_count)
        basis = x.basis[:n]
        if y.basis[:n] != basis:
            raise ParameterError("operand bases disagree on shared prefix")
        return self.drop_to_basis(x, basis), self.drop_to_basis(y, basis)

    # -- Element-wise functions (HADD / PMULT family) -------------------------

    def add(self, x: Ciphertext, y: Ciphertext) -> Ciphertext:
        """HADD — element-wise message addition."""
        x, y = self.match_levels(x, y)
        check_same_scale(x, y)
        return Ciphertext(b=x.b + y.b, a=x.a + y.a, scale=x.scale)

    def sub(self, x: Ciphertext, y: Ciphertext) -> Ciphertext:
        x, y = self.match_levels(x, y)
        check_same_scale(x, y)
        return Ciphertext(b=x.b - y.b, a=x.a - y.a, scale=x.scale)

    def negate(self, x: Ciphertext) -> Ciphertext:
        return Ciphertext(b=-x.b, a=-x.a, scale=x.scale)

    def add_plain(self, x: Ciphertext, p: Plaintext) -> Ciphertext:
        check_same_scale(x, p)
        poly = p.poly.restrict(x.basis)
        return Ciphertext(b=x.b + poly, a=x.a.copy(), scale=x.scale)

    def mul_plain(self, x: Ciphertext, p: Plaintext,
                  rescale: bool = True) -> Ciphertext:
        """PMULT — multiply by an encoded plaintext."""
        poly = p.poly.restrict(x.basis)
        out = Ciphertext(b=x.b * poly, a=x.a * poly,
                         scale=x.scale * p.scale)
        return self.rescale(out) if rescale else out

    def mul_scalar(self, x: Ciphertext, value: complex,
                   rescale: bool = True,
                   scale: float | None = None) -> Ciphertext:
        """Multiply every slot by one scalar (encoded as a constant).

        ``scale`` overrides the plaintext encoding scale — useful for
        equalizing operand scales in deep circuits.
        """
        message = np.full(self.params.degree // 2, value, dtype=np.complex128)
        p = self.encoder.encode(message, basis=x.basis, scale=scale)
        return self.mul_plain(x, p, rescale=rescale)

    def mul_scalar_precise(self, x: Ciphertext, value: complex,
                           depth: int = 2) -> Ciphertext:
        """Multiply by a scalar with extra precision and zero scale drift.

        The constant is encoded at the exact product of the next
        ``depth`` primes to be dropped, then rescaled ``depth`` times:
        the result scale equals ``x.scale`` exactly, and tiny constants
        (e.g. ``1/radius`` in EvalMod) keep ~``depth × prime_bits`` bits
        of precision instead of one prime's worth.
        """
        steps = getattr(self.params, "primes_per_level", 1)
        n_primes = depth * steps
        if x.level_count <= n_primes:
            raise LevelError(f"need {depth} spare levels for precise mul")
        scale = 1.0
        for q in x.basis[-n_primes:]:
            scale *= q
        out = self.mul_scalar(x, value, rescale=False, scale=scale)
        for _ in range(depth):
            out = self.rescale(out)
        return out

    def adjust_scale_to(self, x: Ciphertext, target_scale: float) -> Ciphertext:
        """Bring ``x`` exactly to ``target_scale``, consuming one level.

        Multiplies by 1 encoded at ``q_last·target/current`` and
        rescales; used to re-align operands whose scales drifted apart
        along different multiplication paths (e.g. Chebyshev basis
        polynomials of different depth).
        """
        steps = getattr(self.params, "primes_per_level", 1)
        if x.level_count < steps + 1:
            raise LevelError("need a spare level to adjust the scale")
        dropped = 1.0
        for q in x.basis[-steps:]:
            dropped *= q
        enc_scale = dropped * target_scale / x.scale
        out = self.mul_scalar(x, 1.0, rescale=False, scale=enc_scale)
        out = self.rescale(out)
        out.scale = float(target_scale)
        return out

    def add_scalar(self, x: Ciphertext, value: complex) -> Ciphertext:
        """Add one scalar to every slot (no level consumed)."""
        message = np.full(self.params.degree // 2, value, dtype=np.complex128)
        p = self.encoder.encode(message, basis=x.basis, scale=x.scale)
        return self.add_plain(x, p)

    def mul_monomial(self, x: Ciphertext, power: int) -> Ciphertext:
        """Multiply by the exact monomial ``X^power`` (scale-free).

        ``X^{N/2}`` multiplies every slot by ``i`` — used to recombine
        the real/imaginary halves during bootstrapping.
        """
        degree = self.params.degree
        power = power % (2 * degree)
        key = (power, x.basis)
        mono = self._monomial_cache.get(key)
        if mono is None:
            instrument.count("ckks.monomial_cache.miss")
            coeffs = [0] * degree
            if power < degree:
                coeffs[power] = 1
            else:
                coeffs[power - degree] = -1
            mono = RnsPolynomial.from_int_coeffs(coeffs, x.basis).to_ntt()
            # Cached monomials are constant multipliers; the Shoup dual
            # makes every reuse a divide-free mul/shift/sub.
            mono.ensure_shoup()
            self._monomial_cache[key] = mono
        else:
            instrument.count("ckks.monomial_cache.hit")
        return Ciphertext(b=x.b * mono, a=x.a * mono, scale=x.scale)

    def mul_by_i(self, x: Ciphertext) -> Ciphertext:
        """Multiply every slot by the imaginary unit (exact, scale-free)."""
        return self.mul_monomial(x, self.params.degree // 2)

    # -- Key-switching functions (HMULT / HROT family) --------------------------

    def multiply(self, x: Ciphertext, y: Ciphertext,
                 rescale: bool = True) -> Ciphertext:
        """HMULT — element-wise message multiplication with relinearization."""
        if self.keys.relin is None:
            raise ParameterError("key set lacks a relinearization key")
        x, y = self.match_levels(x, y)
        d0 = x.b * y.b                       # Tensor instruction (Table II)
        d1 = x.a * y.b + x.b * y.a
        d2 = x.a * y.a
        ks_b, ks_a = key_switch(d2, self.keys.relin, self.decomp)
        out = Ciphertext(b=d0 + ks_b, a=d1 + ks_a, scale=x.scale * y.scale)
        return self.rescale(out) if rescale else out

    def square(self, x: Ciphertext, rescale: bool = True) -> Ciphertext:
        """Squaring via the TensorSq pattern."""
        if self.keys.relin is None:
            raise ParameterError("key set lacks a relinearization key")
        d0 = x.b * x.b
        d1 = (x.a * x.b).scalar_mul(2)
        d2 = x.a * x.a
        ks_b, ks_a = key_switch(d2, self.keys.relin, self.decomp)
        out = Ciphertext(b=d0 + ks_b, a=d1 + ks_a, scale=x.scale * x.scale)
        return self.rescale(out) if rescale else out

    def rotate(self, x: Ciphertext, distance: int) -> Ciphertext:
        """HROT — cyclic rotation of the slot vector by ``distance``."""
        distance = distance % (self.params.degree // 2)
        if distance == 0:
            return x.copy()
        evk = self.keys.rotation_key(distance)
        galois = automorphism.galois_element(distance, self.params.degree)
        rotated_b = automorphism.apply_automorphism(x.b, galois)
        rotated_a = automorphism.apply_automorphism(x.a, galois)
        ks_b, ks_a = key_switch(rotated_a, evk, self.decomp)
        return Ciphertext(b=rotated_b + ks_b, a=ks_a, scale=x.scale)

    def conjugate(self, x: Ciphertext) -> Ciphertext:
        """Complex conjugation of every slot."""
        if self.keys.conjugation is None:
            raise ParameterError("key set lacks a conjugation key")
        galois = automorphism.conjugation_element(self.params.degree)
        conj_b = automorphism.apply_automorphism(x.b, galois)
        conj_a = automorphism.apply_automorphism(x.a, galois)
        ks_b, ks_a = key_switch(conj_a, self.keys.conjugation, self.decomp)
        return Ciphertext(b=conj_b + ks_b, a=ks_a, scale=x.scale)


def make_context(params, rotations=(), include_conjugation: bool = False,
                 sparse_secret: bool = False, seed: int = 2025,
                 hoisting_rotations=()):
    """Convenience: generate keys and build an evaluator in one call."""
    keygen = KeyGenerator(params, seed=seed)
    keys = keygen.generate(rotations=rotations,
                           include_conjugation=include_conjugation,
                           sparse_secret=sparse_secret,
                           hoisting_rotations=hoisting_rotations)
    return CkksEvaluator(params, keys, seed=seed + 1)
