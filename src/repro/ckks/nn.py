"""Encrypted neural-network inference — the §V-C "DNN support".

Small feed-forward networks over packed ciphertexts: dense layers run
as diagonal-method matrix-vector products, activations as Chebyshev
polynomial evaluations (the AESPA-style low-degree polynomial
activations the paper's DNN workloads use [37], [64]).

All samples of a batch pack into one ciphertext block-by-block; layers
operate on every block simultaneously — the same packing discipline the
evaluated CNN workloads rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ckks.cipher import Ciphertext
from repro.ckks.linalg import EncryptedLinalg, embed_operator
from repro.ckks.polyeval import ChebyshevEvaluator, chebyshev_coefficients
from repro.errors import ParameterError


@dataclass
class DenseLayer:
    """A dense layer ``y = W x + b`` over each packed block."""

    weights: np.ndarray
    bias: np.ndarray

    def __post_init__(self):
        self.weights = np.asarray(self.weights, dtype=np.float64)
        self.bias = np.asarray(self.bias, dtype=np.float64)
        if self.weights.ndim != 2:
            raise ParameterError("weights must be a matrix")
        if self.bias.shape != (self.weights.shape[0],):
            raise ParameterError("bias length must match output features")

    @property
    def in_features(self) -> int:
        return self.weights.shape[1]

    @property
    def out_features(self) -> int:
        return self.weights.shape[0]

    def reference(self, x: np.ndarray) -> np.ndarray:
        return x @ self.weights.T + self.bias


@dataclass
class Activation:
    """A polynomial activation fit on a fixed interval.

    ``kind`` selects the target function: AESPA-style square, a
    Chebyshev-fit softplus, or tanh.
    """

    kind: str = "square"
    degree: int = 7
    interval: tuple = (-4.0, 4.0)

    def target(self):
        if self.kind == "square":
            return np.square
        if self.kind == "softplus":
            return lambda x: np.log1p(np.exp(np.asarray(x)))
        if self.kind == "tanh":
            return np.tanh
        raise ParameterError(f"unknown activation {self.kind!r}")

    def reference(self, x: np.ndarray) -> np.ndarray:
        return self.target()(np.clip(x, *self.interval))


@dataclass
class EncryptedMlp:
    """A small MLP evaluated homomorphically.

    ``block`` is the per-sample slot block (a power of two at least as
    large as the widest layer).  :meth:`required_rotations` reports the
    rotation keys needed — generate them before :meth:`infer`.
    """

    evaluator: object
    layers: list
    block: int
    _transforms: dict = field(default_factory=dict, repr=False)

    def __post_init__(self):
        if self.block & (self.block - 1) != 0:
            raise ParameterError("block must be a power of two")
        for layer in self.layers:
            if isinstance(layer, DenseLayer):
                if max(layer.in_features, layer.out_features) > self.block:
                    raise ParameterError(
                        f"layer {layer.out_features}x{layer.in_features} "
                        f"exceeds block {self.block}")
        self.linalg = EncryptedLinalg(self.evaluator)
        self.chebyshev = ChebyshevEvaluator(self.evaluator)

    # -- Planning -------------------------------------------------------------------

    def required_rotations(self, method: str = "bsgs") -> list:
        needed = set()
        for index, layer in enumerate(self.layers):
            if isinstance(layer, DenseLayer):
                matrix = self._operator(index, layer)
                transform = self.linalg.required_matvec_rotations(
                    matrix, method)
                needed.update(transform)
        return sorted(needed)

    def _operator(self, index: int, layer: DenseLayer) -> np.ndarray:
        if index not in self._transforms:
            padded = np.zeros((self.block, self.block))
            padded[:layer.out_features, :layer.in_features] = layer.weights
            self._transforms[index] = embed_operator(
                padded, self.evaluator.params.slot_count)
        return self._transforms[index]

    def depth(self) -> int:
        """Multiplicative levels one inference consumes."""
        total = 0
        for layer in self.layers:
            if isinstance(layer, DenseLayer):
                total += 1
            elif isinstance(layer, Activation):
                total += self.chebyshev.depth(layer.degree)
        return total

    # -- Execution --------------------------------------------------------------------

    def pack(self, batch: np.ndarray) -> np.ndarray:
        """Pack a (samples, features) batch into one slot vector."""
        batch = np.asarray(batch, dtype=np.float64)
        samples, features = batch.shape
        if samples * self.block > self.evaluator.params.slot_count:
            raise ParameterError("batch exceeds the slot space")
        slots = np.zeros(self.evaluator.params.slot_count)
        for s in range(samples):
            slots[s * self.block:s * self.block + features] = batch[s]
        return slots

    def unpack(self, slots: np.ndarray, samples: int,
               features: int) -> np.ndarray:
        out = np.empty((samples, features))
        for s in range(samples):
            out[s] = slots[s * self.block:s * self.block + features].real
        return out

    def infer(self, ct: Ciphertext, method: str = "bsgs") -> Ciphertext:
        """Run the network on a packed, encrypted batch."""
        for index, layer in enumerate(self.layers):
            if isinstance(layer, DenseLayer):
                matrix = self._operator(index, layer)
                ct = self.linalg.matvec(matrix, ct, method=method)
                bias = np.tile(
                    np.pad(layer.bias, (0, self.block - layer.out_features)),
                    self.evaluator.params.slot_count // self.block)
                plain = self.evaluator.encoder.encode(bias, scale=ct.scale,
                                                      basis=ct.basis)
                ct = self.evaluator.add_plain(ct, plain)
            elif isinstance(layer, Activation):
                coeffs = chebyshev_coefficients(
                    layer.target(), layer.degree, layer.interval)
                ct = self.chebyshev.evaluate(ct, coeffs, layer.interval)
            else:
                raise ParameterError(f"unknown layer {type(layer).__name__}")
        return ct

    def reference(self, batch: np.ndarray) -> np.ndarray:
        """Cleartext forward pass (with activation-interval clipping)."""
        x = np.asarray(batch, dtype=np.float64)
        for layer in self.layers:
            if isinstance(layer, DenseLayer):
                width = x.shape[1]
                if width < layer.in_features:
                    x = np.pad(x, ((0, 0), (0, layer.in_features - width)))
                x = layer.reference(x[:, :layer.in_features])
            else:
                x = layer.reference(x)
        return x
