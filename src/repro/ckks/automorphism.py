"""Galois automorphisms of the cyclotomic ring (HROT's permutation).

The automorphism ``φ_g : a(X) -> a(X^g)`` for odd ``g`` permutes the
coefficients of each limb with sign flips (§II-B); the pattern is the
same for every limb and depends only on the Galois element ``g``.
Rotation by ``r`` slots corresponds to ``g = 5^r mod 2N``; complex
conjugation corresponds to ``g = 2N - 1``.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.ckks.rns import RnsPolynomial, modulus_column
from repro.errors import ParameterError


def galois_element(rotation: int, degree: int) -> int:
    """Galois element ``5^rotation mod 2N`` for a slot rotation."""
    two_n = 2 * degree
    return pow(5, rotation % (degree // 2), two_n)


def conjugation_element(degree: int) -> int:
    """Galois element for complex conjugation."""
    return 2 * degree - 1


@lru_cache(maxsize=None)
def _permutation(degree: int, galois: int):
    """(target indices, sign) for the coefficient permutation of φ_g.

    Coefficient ``i`` of the input lands at index ``i*g mod 2N``; if that
    index is ≥ N it wraps to ``i*g - N`` with a sign flip (because
    ``X^N = -1``).
    """
    if galois % 2 == 0:
        raise ParameterError("Galois element must be odd")
    two_n = 2 * degree
    src = np.arange(degree, dtype=np.int64)
    dest = src * galois % two_n
    flip = dest >= degree
    dest = np.where(flip, dest - degree, dest)
    return dest, flip


def apply_automorphism(poly: RnsPolynomial, galois: int) -> RnsPolynomial:
    """Apply ``φ_g`` to a polynomial (any domain; returns same domain).

    Functionally we permute in coefficient form; evaluation-domain input
    is round-tripped through the (I)NTT.  The performance models account
    for the real cost separately — on hardware this is a pure
    permutation in either domain.
    """
    was_ntt = poly.is_ntt
    coeff_poly = poly.from_ntt()
    dest, flip = _permutation(poly.degree, galois)
    coeffs = coeff_poly.coeffs
    q_col = modulus_column(poly.basis)
    values = np.where(flip[None, :] & (coeffs != 0), q_col - coeffs, coeffs)
    out = np.empty_like(coeffs)
    out[:, dest] = values
    result = RnsPolynomial(out, poly.basis, is_ntt=False)
    return result.to_ntt() if was_ntt else result
