"""Homomorphic linear transforms: baseline, hoisting, MinKS, and BSGS.

Implements the diagonal-packing method (§III-B): for a matrix ``M`` on
the slot vector, ``y = Σ_i d_i ⊙ (u ≪ i)`` where ``d_i`` is the i-th
generalized diagonal of ``M``.  Four evaluation strategies:

* ``baseline`` — K independent HROT + PMULT evaluations (Fig. 1 left).
* ``hoisting`` — the paper's reordered flow (Fig. 5): one shared ModUp,
  per-rotation KeyMult with modified evks [8], PMULT with preprocessed
  plaintexts in the extended modulus, AutAccum, and a single ModDown.
* ``minks`` — minimum key-switching [32], [46]: one evk reused
  iteratively (requires consecutive diagonal indices).
* ``bsgs`` — baby-step giant-step split (used "whenever applicable").

All strategies compute identical results up to CKKS noise, which the
test suite verifies — the paper's claim that the optimizations "do not
damage the precision" (§V-B).
"""

from __future__ import annotations

import numpy as np

from repro.ckks import automorphism, instrument
from repro.ckks.cipher import Ciphertext
from repro.ckks.keys import EvaluationKey, KeyGenerator
from repro.ckks.keyswitch import decompose_digits, key_mult, mod_down
from repro.errors import EvalKeyError, ParameterError


def matrix_diagonals(matrix: np.ndarray, tolerance: float = 1e-12) -> dict:
    """Extract the nonzero generalized diagonals of a slot matrix.

    ``d_i[t] = M[t, (t+i) mod n]``; diagonals with max magnitude below
    ``tolerance`` are dropped.
    """
    matrix = np.asarray(matrix, dtype=np.complex128)
    n = matrix.shape[0]
    if matrix.shape != (n, n):
        raise ParameterError("matrix must be square")
    diagonals = {}
    rows = np.arange(n)
    for shift in range(n):
        diag = matrix[rows, (rows + shift) % n]
        if np.abs(diag).max() > tolerance:
            diagonals[shift] = diag
    return diagonals


class LinearTransform:
    """A homomorphic linear transform bound to an evaluator.

    ``diagonals`` maps rotation distance -> length-``N/2`` complex
    diagonal vector.  The required rotation keys depend on the strategy:
    :meth:`required_rotations` reports them so callers can generate the
    right key set (MinKS needs 4× fewer evks — Fig. 1 table).
    """

    def __init__(self, evaluator, diagonals: dict):
        self.evaluator = evaluator
        n = evaluator.params.slot_count
        self.diagonals = {}
        for shift, diag in diagonals.items():
            diag = np.asarray(diag, dtype=np.complex128)
            if diag.size != n:
                raise ParameterError(
                    f"diagonal {shift} has {diag.size} slots; expected {n}")
            self.diagonals[int(shift) % n] = diag
        #: Encoded plaintext diagonals keyed by (shift, roll, basis,
        #: scale) — the diagonals are fixed at construction, so repeated
        #: apply() calls reuse the encodings instead of re-running
        #: encoder.encode (the dominant cost of small transforms).
        self._plaintext_cache: dict = {}

    @classmethod
    def from_matrix(cls, evaluator, matrix: np.ndarray) -> "LinearTransform":
        return cls(evaluator, matrix_diagonals(matrix))

    # -- Key requirements ---------------------------------------------------

    def required_rotations(self, method: str = "hoisting") -> list:
        shifts = sorted(s for s in self.diagonals if s != 0)
        if method in ("baseline", "hoisting"):
            return shifts
        if method == "minks":
            return [1] if shifts else []
        if method == "bsgs":
            baby, giant = self._bsgs_split()
            needed = set()
            for shift in shifts:
                needed.add(shift % baby)
                needed.add(shift - shift % baby)
            needed.discard(0)
            return sorted(needed)
        raise ParameterError(f"unknown method {method!r}")

    def _bsgs_split(self) -> tuple:
        count = max(len(self.diagonals), 1)
        baby = max(1, int(round(np.sqrt(count))))
        giant = -(-count // baby)
        return baby, giant

    # -- Evaluation strategies -----------------------------------------------

    def apply(self, ct: Ciphertext, method: str = "hoisting") -> Ciphertext:
        if method == "baseline":
            return self._apply_baseline(ct)
        if method == "hoisting":
            return self._apply_hoisting(ct)
        if method == "minks":
            return self._apply_minks(ct)
        if method == "bsgs":
            return self._apply_bsgs(ct)
        raise ParameterError(f"unknown method {method!r}")

    def _encode_diag(self, diag: np.ndarray, basis: tuple):
        return self.evaluator.encoder.encode(diag, basis=basis)

    def _cached_diag(self, shift: int, roll: int, basis: tuple):
        """Encoded ``np.roll(diagonals[shift], roll)`` — cached.

        Every strategy encodes deterministic transforms of the stored
        diagonals, so (shift, roll, basis, scale) identifies the
        plaintext exactly.  Consumers never mutate plaintext polynomials
        (all RNS ops allocate fresh outputs), so sharing is safe.
        """
        scale = self.evaluator.params.scale
        key = (shift, roll, basis, scale)
        plaintext = self._plaintext_cache.get(key)
        if plaintext is None:
            instrument.count("ckks.diag_cache.miss")
            diag = self.diagonals[shift]
            if roll:
                diag = np.roll(diag, roll)
            plaintext = self._encode_diag(diag, basis)
            # Diagonal plaintexts are reused across every apply(); attach
            # the Shoup dual once so each ct*pt multiply is divide-free.
            plaintext.poly.ensure_shoup()
            self._plaintext_cache[key] = plaintext
        else:
            instrument.count("ckks.diag_cache.hit")
        return plaintext

    def _apply_baseline(self, ct: Ciphertext) -> Ciphertext:
        """K HROTs, each a full ModUp→KeyMult→ModDown, then PMULT+add."""
        ev = self.evaluator
        acc = None
        for shift in sorted(self.diagonals):
            rotated = ev.rotate(ct, shift) if shift else ct
            p = self._cached_diag(shift, 0, rotated.basis)
            term = ev.mul_plain(rotated, p, rescale=False)
            acc = term if acc is None else ev.add(acc, term)
        return ev.rescale(acc)

    def _apply_minks(self, ct: Ciphertext) -> Ciphertext:
        """Iterative rotation reusing the single distance-1 evk."""
        ev = self.evaluator
        shifts = sorted(self.diagonals)
        if shifts and shifts != list(range(shifts[0], shifts[-1] + 1)):
            # MinKS walks rotation-by-rotation; gaps are simply skipped
            # (still only evk_1 is consumed).
            pass
        acc = None
        state = ct
        position = 0
        for shift in shifts:
            while position < shift:
                state = ev.rotate(state, 1)
                position += 1
            p = self._cached_diag(shift, 0, state.basis)
            term = ev.mul_plain(state, p, rescale=False)
            acc = term if acc is None else ev.add(acc, term)
        return ev.rescale(acc)

    def _apply_bsgs(self, ct: Ciphertext) -> Ciphertext:
        """Baby-step giant-step: ≈2√K rotations instead of K."""
        ev = self.evaluator
        baby, _ = self._bsgs_split()
        baby_rotated = {0: ct}
        for shift in sorted(self.diagonals):
            k = shift % baby
            if k not in baby_rotated:
                baby_rotated[k] = ev.rotate(ct, k)
        outer: dict = {}
        for shift in self.diagonals:
            k = shift % baby
            g = shift - k
            # Pre-rotate the diagonal right by g so the giant rotation
            # can be applied after the inner accumulation.
            p = self._cached_diag(shift, g, baby_rotated[k].basis)
            term = ev.mul_plain(baby_rotated[k], p, rescale=False)
            outer[g] = term if g not in outer else ev.add(outer[g], term)
        acc = None
        for g, inner in sorted(outer.items()):
            inner = ev.rescale(inner)
            rotated = ev.rotate(inner, g) if g else inner
            acc = rotated if acc is None else ev.add(acc, rotated)
        return acc

    def _apply_hoisting(self, ct: Ciphertext) -> Ciphertext:
        """The paper's reordered hoisted flow (Fig. 5).

        ModUp(a) once; per rotation: KeyMult with the hoisting evk
        (which targets φ_r^{-1}(s) so the automorphism commutes past
        it), PMULT with the right-rotated plaintext p̂ in the extended
        modulus, then automorphism + accumulation (AutAccum); ModDown
        once at the end.
        """
        ev = self.evaluator
        degree = ev.params.degree
        digits, indices, target = decompose_digits(ct.a, ev.decomp)
        acc_b_pq = None    # extended-modulus accumulators
        acc_a_pq = None
        acc_b_q = None     # message-part accumulator, basis Q
        acc_a_q = None
        for shift in sorted(self.diagonals):
            # p ≫ R preprocessing (§V-B): the diagonal is pre-rotated by
            # its own shift before encoding.
            if shift == 0:
                p = self._cached_diag(0, 0, ct.basis)
                term_b = ct.b * p.poly
                term_a = ct.a * p.poly
                acc_b_q = term_b if acc_b_q is None else acc_b_q + term_b
                acc_a_q = term_a if acc_a_q is None else acc_a_q + term_a
                continue
            evk = self._hoisting_key(shift)
            galois = automorphism.galois_element(shift, degree)
            kb, ka = self._key_mult_restricted(digits, indices, target, evk)
            p_ext = self._cached_diag(shift, shift, target)  # extended modulus
            p_q = self._cached_diag(shift, shift, ct.basis)
            term_b = automorphism.apply_automorphism(kb * p_ext.poly, galois)
            term_a = automorphism.apply_automorphism(ka * p_ext.poly, galois)
            msg_b = automorphism.apply_automorphism(ct.b * p_q.poly, galois)
            acc_b_pq = term_b if acc_b_pq is None else acc_b_pq + term_b
            acc_a_pq = term_a if acc_a_pq is None else acc_a_pq + term_a
            acc_b_q = msg_b if acc_b_q is None else acc_b_q + msg_b
        p_scale = self.evaluator.params.scale
        out_scale = ct.scale * p_scale
        if acc_b_pq is not None:
            down_b = mod_down(acc_b_pq, ct.basis, ev.decomp.aux_moduli)
            down_a = mod_down(acc_a_pq, ct.basis, ev.decomp.aux_moduli)
            acc_b_q = down_b if acc_b_q is None else acc_b_q + down_b
            acc_a_q = down_a if acc_a_q is None else acc_a_q + down_a
        result = Ciphertext(b=acc_b_q, a=acc_a_q, scale=out_scale)
        return ev.rescale(result)

    def _key_mult_restricted(self, digits, indices, target, evk):
        evk.ensure_shoup()
        acc_b = None
        acc_a = None
        for digit, j in zip(digits, indices):
            term_b = digit * evk.b_polys[j].restrict(target)
            term_a = digit * evk.a_polys[j].restrict(target)
            acc_b = term_b if acc_b is None else acc_b + term_b
            acc_a = term_a if acc_a is None else acc_a + term_a
        return acc_b, acc_a

    def _hoisting_key(self, shift: int) -> EvaluationKey:
        keys = self.evaluator.keys
        hoisting = getattr(keys, "hoisting_rotations", None)
        if not hoisting or shift not in hoisting:
            raise EvalKeyError(
                f"no hoisting rotation key for distance {shift}; generate "
                "with generate_hoisting_keys()")
        return hoisting[shift]


def generate_hoisting_keys(keygen: KeyGenerator, secret, distances) -> dict:
    """Generate the modified evks hoisting needs ([8], §V-B).

    A hoisting key for distance ``r`` switches *from* ``s`` *to*
    ``φ_r^{-1}(s)``: applying ``φ_r`` to the KeyMult output then yields a
    ciphertext under ``s`` carrying ``φ_r(a)·φ_r(s)``, letting the
    automorphism move after KeyMult, PMULT, and accumulation.
    """
    degree = keygen.params.degree
    slot_count = degree // 2
    out = {}
    for distance in distances:
        inverse = automorphism.galois_element(
            (-distance) % slot_count, degree)
        target_secret = automorphism.apply_automorphism(
            secret.poly, inverse)
        out[distance] = _switching_key_to_target(
            keygen, source_poly=secret.poly, target_poly=target_secret)
    return out


def _switching_key_to_target(keygen: KeyGenerator, source_poly,
                             target_poly) -> EvaluationKey:
    """Switching key encoding ``source`` decryptable under ``target``."""
    basis = keygen.full_basis
    src = source_poly.restrict(basis)
    tgt = target_poly.restrict(basis)
    b_polys = []
    a_polys = []
    for j in range(keygen.decomp.dnum):
        gadget = keygen.decomp.gadget_values(j)
        a_j = keygen.uniform(basis)
        e_j = keygen.gaussian_error(basis)
        b_j = -(a_j * tgt) + e_j + src.scalar_mul(gadget)
        b_polys.append(b_j)
        a_polys.append(a_j)
    return EvaluationKey(b_polys=b_polys, a_polys=a_polys)
