"""Average-case noise tracking for CKKS ciphertexts.

Production FHE libraries expose a noise budget so applications can plan
parameter sets; this estimator tracks the standard average-case
variance heuristics ([16], [18]) through the basic functions and
converts them into "bits of precision" left at the current scale.

Validated against measured noise in ``tests/ckks/test_noise.py``:
predictions track measurements within a few bits across multiplication
chains, rotations, and rescaling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class NoiseEstimate:
    """Noise state of a ciphertext: a coefficient-domain std estimate."""

    std: float          # absolute standard deviation of the noise poly
    scale: float        # the ciphertext's scale at this point

    @property
    def bits(self) -> float:
        """log2 of the expected max noise magnitude (≈6 sigma)."""
        return math.log2(max(6.0 * self.std, 1e-300))

    def precision_bits(self) -> float:
        """Bits of message precision left: log2(scale / noise)."""
        return math.log2(self.scale) - self.bits


class NoiseEstimator:
    """Tracks noise through homomorphic ops for one parameter set."""

    def __init__(self, params):
        self.params = params
        self.sigma = params.error_std
        self.degree = params.degree
        self.hamming = min(params.dense_hamming_weight, params.degree // 4)

    # -- Sources ------------------------------------------------------------

    def fresh(self, scale: float | None = None) -> NoiseEstimate:
        """Public-key encryption noise: e0 + v*e_pk + e1*s terms."""
        n = self.degree
        variance = self.sigma ** 2 * (1.0 + 2.0 * n / 3.0
                                      + self.hamming)
        return NoiseEstimate(std=math.sqrt(variance),
                             scale=scale or self.params.scale)

    # -- Propagation rules ------------------------------------------------------

    def add(self, a: NoiseEstimate, b: NoiseEstimate) -> NoiseEstimate:
        return NoiseEstimate(std=math.hypot(a.std, b.std), scale=a.scale)

    def mul_plain(self, a: NoiseEstimate, plaintext_scale: float,
                  message_bound: float = 1.0) -> NoiseEstimate:
        """Multiply by an encoded plaintext (before rescaling)."""
        growth = plaintext_scale * message_bound
        return NoiseEstimate(std=a.std * growth,
                             scale=a.scale * plaintext_scale)

    def rescale(self, a: NoiseEstimate, dropped: float) -> NoiseEstimate:
        """Divide by the dropped prime(s) and add rounding noise."""
        rounding = math.sqrt((1.0 + self.hamming) * self.degree / 12.0)
        std = math.hypot(a.std / dropped, rounding)
        return NoiseEstimate(std=std, scale=a.scale / dropped)

    def key_switch(self, a: NoiseEstimate) -> NoiseEstimate:
        """Hybrid key switching: ModUp digits x evk noise, /P at ModDown."""
        p = self.params
        group_bits = p.scale_bits * -(-p.level_count // p.dnum) \
            if hasattr(p, "dnum") else 0
        # Digit magnitude ~ group product; evk error ~ sigma; after the
        # ModDown division by P the residue is a few multiples of the
        # rounding noise per digit.
        per_digit = math.sqrt(self.degree / 12.0) * self.sigma
        dnum = p.dnum
        ks_std = per_digit * math.sqrt(dnum) * math.sqrt(self.degree) / 4
        moddown_round = math.sqrt((1.0 + self.hamming)
                                  * self.degree / 12.0)
        return NoiseEstimate(std=math.hypot(a.std,
                                            math.hypot(ks_std,
                                                       moddown_round)),
                             scale=a.scale)

    def multiply(self, a: NoiseEstimate, b: NoiseEstimate,
                 message_bound: float = 1.0) -> NoiseEstimate:
        """HMULT before rescaling: cross terms dominate."""
        # e = m1*e2 + m2*e1 + e1*e2 (+ key-switch noise for d2).
        cross = math.hypot(a.std * b.scale * message_bound,
                           b.std * a.scale * message_bound)
        tensor = NoiseEstimate(std=cross, scale=a.scale * b.scale)
        return self.key_switch(tensor)

    def rotate(self, a: NoiseEstimate) -> NoiseEstimate:
        return self.key_switch(a)

    # -- Convenience: whole-op estimates matching the evaluator API -------------

    def after_hmult(self, a: NoiseEstimate, b: NoiseEstimate,
                    dropped: float,
                    message_bound: float = 1.0) -> NoiseEstimate:
        return self.rescale(self.multiply(a, b, message_bound), dropped)

    def after_pmult(self, a: NoiseEstimate, plaintext_scale: float,
                    dropped: float,
                    message_bound: float = 1.0) -> NoiseEstimate:
        return self.rescale(
            self.mul_plain(a, plaintext_scale, message_bound), dropped)


def measure_noise_bits(evaluator, ciphertext, expected_slots) -> float:
    """Measured noise: log2 of the max coefficient-domain error.

    Decrypts, compares slot values against the exact expectation, and
    converts back to coefficient units via the tracked scale.
    """
    decrypted = evaluator.decrypt_message(ciphertext)
    slot_err = np.abs(decrypted - np.asarray(expected_slots)).max()
    return math.log2(max(slot_err * ciphertext.scale, 1e-300))
