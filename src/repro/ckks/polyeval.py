"""Homomorphic polynomial evaluation in the Chebyshev basis.

Used by bootstrapping's EvalMod step (§II-C) and exposed as a public
"arbitrary polynomial evaluation" routine, one of the advanced features
the Anaheim high-level programming interface promises (§V-C).
"""

from __future__ import annotations

import numpy as np

from repro.ckks.cipher import Ciphertext
from repro.errors import ParameterError


def chebyshev_coefficients(fn, degree: int, interval: tuple) -> np.ndarray:
    """Chebyshev interpolation coefficients of ``fn`` on ``interval``.

    Returns ``c`` such that ``fn(x) ≈ Σ_k c_k T_k(t)`` with
    ``t = (2x - a - b) / (b - a)`` mapping the interval onto [-1, 1].
    """
    a, b = interval
    if not b > a:
        raise ParameterError("interval must be increasing")

    def scaled(t):
        return fn((b - a) * (np.asarray(t) + 1.0) / 2.0 + a)

    return np.polynomial.chebyshev.chebinterpolate(scaled, degree)


def chebyshev_reference(coeffs: np.ndarray, x: np.ndarray,
                        interval: tuple) -> np.ndarray:
    """Plain (unencrypted) evaluation of a Chebyshev expansion."""
    a, b = interval
    t = (2.0 * np.asarray(x) - a - b) / (b - a)
    return np.polynomial.chebyshev.chebval(t, coeffs)


class ChebyshevEvaluator:
    """Evaluates Chebyshev expansions on ciphertexts.

    The Chebyshev basis is built by index-halving products
    (``T_{2k} = 2T_k^2 - 1``, ``T_{a+b} = 2T_aT_b - T_{a-b}``), so
    computing ``T_d`` consumes only ``ceil(log2 d)`` multiplicative
    levels, plus one level for the final linear combination.
    """

    def __init__(self, evaluator):
        self.evaluator = evaluator

    #: Levels the high-precision interval normalization consumes.
    NORMALIZE_DEPTH = 2

    def depth(self, degree: int, normalized: bool = True) -> int:
        """Multiplicative depth consumed for a degree-``degree`` expansion.

        ``normalized`` adds the cost of the affine map onto [-1, 1];
        pass ``False`` when evaluating directly on the unit interval.
        """
        base = 1 if degree < 1 else int(np.ceil(np.log2(max(degree, 2)))) + 1
        return base + (self.NORMALIZE_DEPTH if normalized else 0)

    def _normalize(self, ct: Ciphertext, interval: tuple) -> Ciphertext:
        """Affine map of the slot values onto [-1, 1].

        Uses the precise scalar multiply: the factor ``2/(b-a)`` can be
        ~1e-6 in EvalMod, far below one prime's encoding precision.
        """
        ev = self.evaluator
        a, b = interval
        scaled = ev.mul_scalar_precise(ct, 2.0 / (b - a),
                                       depth=self.NORMALIZE_DEPTH)
        if abs(a + b) < 1e-300:
            return scaled
        return ev.add_scalar(scaled, -(a + b) / (b - a))

    def _basis(self, t1: Ciphertext, degree: int,
               needed=None) -> dict:
        """Chebyshev basis ciphertexts up to T_degree.

        Operand scales are re-aligned exactly (``adjust_scale_to``)
        before the ``T_{a+b} = 2·T_a·T_b - T_{a-b}`` subtraction, so the
        basis accumulates no scale-drift error even at high degree.

        ``needed`` restricts construction to those indices plus their
        index-halving dependency closure — an odd target function (like
        EvalMod's scaled sine) has near-zero even coefficients, so this
        skips almost half the homomorphic multiplications.  Each built
        ``T_k`` is identical either way: ``build`` is a pure memoized
        recursion, so omitting unused indices cannot change the rest.
        """
        ev = self.evaluator
        basis = {1: t1}

        def build(k: int) -> Ciphertext:
            if k in basis:
                return basis[k]
            half = k // 2
            lo = build(half)
            hi = build(k - half)
            prod = ev.multiply(lo, hi)
            doubled = ev.add(prod, prod)
            if k % 2 == 0:
                term = ev.add_scalar(doubled, -1.0)
            else:
                t_diff = build((k - half) - half)  # T_{a+b} needs T_{a-b}
                steps = getattr(ev.params, "primes_per_level", 1)
                aligned = ev.drop_to_basis(
                    t_diff, t_diff.basis[:doubled.level_count + steps])
                aligned = ev.adjust_scale_to(aligned, doubled.scale)
                term = ev.sub(doubled, aligned)
            basis[k] = term
            return term

        targets = range(2, degree + 1) if needed is None else sorted(needed)
        for k in targets:
            if k >= 1:
                build(k)
        return basis

    def evaluate(self, ct: Ciphertext, coeffs: np.ndarray,
                 interval: tuple = (-1.0, 1.0)) -> Ciphertext:
        """Evaluate ``Σ_k coeffs[k]·T_k`` on the slot values of ``ct``."""
        ev = self.evaluator
        coeffs = np.asarray(coeffs, dtype=np.complex128)
        degree = len(coeffs) - 1
        while degree > 0 and abs(coeffs[degree]) < 1e-14:
            degree -= 1
        if degree == 0:
            zero = ev.mul_scalar(ct, 0.0)
            return ev.add_scalar(zero, complex(coeffs[0]))
        t1 = ct if interval == (-1.0, 1.0) else self._normalize(ct, interval)
        needed = [k for k in range(1, degree + 1)
                  if abs(coeffs[k]) >= 1e-14]
        basis = self._basis(t1, degree, needed=needed)
        # Linear combination: drop every term to the deepest level and
        # pick per-term plaintext scales that land all products on one
        # common scale, so the accumulation is drift-free.
        deepest = min(basis.values(), key=lambda c: c.level_count)
        target_basis = deepest.basis[:deepest.level_count]
        steps = getattr(ev.params, "primes_per_level", 1)
        dropped = 1.0
        for q in target_basis[-steps:]:
            dropped *= q
        common_scale = deepest.scale
        acc = None
        for k in range(1, degree + 1):
            if abs(coeffs[k]) < 1e-14:
                continue
            term = ev.drop_to_basis(basis[k],
                                    basis[k].basis[:len(target_basis)])
            enc_scale = dropped * common_scale / term.scale
            term = ev.mul_scalar(term, complex(coeffs[k]), scale=enc_scale)
            term.scale = common_scale
            acc = term if acc is None else ev.add(acc, term)
        acc = ev.add_scalar(acc, complex(coeffs[0]))
        return acc
