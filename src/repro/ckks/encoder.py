"""CKKS encoding: complex vectors <-> integer polynomials.

A message ``u ∈ C^{N/2}`` is embedded into ``R = Z[X]/(X^N+1)`` through
the canonical embedding: slot ``t`` is the evaluation of the polynomial
at ``ζ^{5^t}`` where ``ζ = exp(iπ/N)`` is a primitive 2N-th root of
unity.  Both directions are computed with a single length-2N FFT rather
than the O(N^2) Vandermonde product.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.ckks.rns import RnsPolynomial
from repro.errors import ParameterError


@lru_cache(maxsize=None)
def _slot_exponents(degree: int) -> np.ndarray:
    """Exponents ``5^t mod 2N`` for t = 0..N/2-1."""
    two_n = 2 * degree
    exps = np.empty(degree // 2, dtype=np.int64)
    acc = 1
    for t in range(degree // 2):
        exps[t] = acc
        acc = acc * 5 % two_n
    return exps


def embed(coeffs: np.ndarray, degree: int) -> np.ndarray:
    """Evaluate real/int coefficients at the slot roots (decode core).

    ``coeffs`` is a length-N real (float) array; returns the length-N/2
    complex slot values.
    """
    two_n = 2 * degree
    padded = np.zeros(two_n, dtype=np.complex128)
    padded[:degree] = coeffs
    # E[j] = sum_k coeffs[k] * exp(+2*pi*i*j*k / 2N)
    evaluations = np.fft.ifft(padded) * two_n
    return evaluations[_slot_exponents(degree)]


def unembed(slots: np.ndarray, degree: int) -> np.ndarray:
    """Inverse of :func:`embed` — real coefficients hitting the slots.

    Returns the unique real length-N coefficient vector ``c`` with
    ``embed(c)[t] = slots[t]`` for every slot.
    """
    two_n = 2 * degree
    scattered = np.zeros(two_n, dtype=np.complex128)
    scattered[_slot_exponents(degree)] = slots
    # c_k = (2/N) * Re( sum_t u_t * exp(-2*pi*i*(5^t)*k / 2N) )
    spectrum = np.fft.fft(scattered)
    return (2.0 / degree) * spectrum[:degree].real


class CkksEncoder:
    """Encode/decode messages against a fixed parameter set.

    Messages shorter than N/2 slots are zero-padded; sparse packing
    (fewer slots with repetition) is exposed via ``slots`` for the
    bootstrapping tests.
    """

    def __init__(self, params):
        self.params = params

    def encode(self, message, scale: float | None = None,
               basis: tuple | None = None) -> "Plaintext":
        """Encode a complex vector into a plaintext at scale Δ."""
        from repro.ckks.cipher import Plaintext

        degree = self.params.degree
        if scale is None:
            scale = self.params.scale
        if basis is None:
            basis = tuple(self.params.moduli)
        message = np.asarray(message, dtype=np.complex128)
        if message.size > degree // 2:
            raise ParameterError(
                f"message has {message.size} slots; max {degree // 2}")
        slots = np.zeros(degree // 2, dtype=np.complex128)
        slots[:message.size] = message
        coeffs = unembed(slots, degree) * scale
        rounded = np.round(coeffs).astype(object)
        ints = [int(v) for v in rounded]
        poly = RnsPolynomial.from_int_coeffs(ints, basis).to_ntt()
        return Plaintext(poly=poly, scale=float(scale))

    def decode(self, plaintext, slots: int | None = None) -> np.ndarray:
        """Decode a plaintext back into complex slot values."""
        degree = self.params.degree
        ints = plaintext.poly.to_int_coeffs(centered=True)
        coeffs = ints.astype(np.float64)
        values = embed(coeffs, degree) / plaintext.scale
        if slots is not None:
            values = values[:slots]
        return values
