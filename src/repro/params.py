"""CKKS parameter sets and security accounting.

Two kinds of parameter sets appear in this reproduction:

* *Functional* parameters (small ring degree, e.g. ``N = 2^10``) used by
  the executable CKKS layer in :mod:`repro.ckks` for correctness tests.
* *Paper-scale* parameters (``N = 2^16``, ``L ≤ 54``, ``α ≤ 14``,
  28-bit primes — Table IV of the paper) used by the analytical
  performance models, which only need limb counts and word sizes.

Both are described by the same :class:`CkksParams` type.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache

from repro.ckks import modmath
from repro.errors import ParameterError

#: Bytes used to store one coefficient residue in device memory.  The
#: paper stores 28-bit residues in 32-bit words (§VI-A).
WORD_BYTES = 4

#: Maximum log2(PQ) for 128-bit IND-CPA security per ring degree,
#: following the homomorphic encryption security standard tables the
#: paper cites ([7], [19]).  Values are the standard sieving estimates.
MAX_LOG_PQ_128 = {
    2 ** 12: 101,
    2 ** 13: 202,
    2 ** 14: 411,
    2 ** 15: 827,
    2 ** 16: 1623,
    2 ** 17: 3246,
}


@dataclass(frozen=True)
class CkksParams:
    """A complete RNS-CKKS parameter set.

    Attributes mirror Table I of the paper: ring degree ``N``, ``L``
    primes :math:`Q_i` forming the ciphertext modulus, ``α`` auxiliary
    primes :math:`P_i` used during key switching, and the decomposition
    number ``D = ceil(L / α)``.
    """

    degree: int
    moduli: tuple
    aux_moduli: tuple
    scale_bits: int
    dense_hamming_weight: int = 2 ** 8
    sparse_hamming_weight: int = 2 ** 5
    error_std: float = 3.2
    #: Primes dropped per rescale: 1 for classic RNS-CKKS, 2 for
    #: double-prime scaling ([1], [45]) — the paper's Table IV setting,
    #: which reaches Δ = 2^48+ despite word-sized (< 2^28) primes.
    primes_per_level: int = 1

    def __post_init__(self):
        if self.degree & (self.degree - 1) != 0:
            raise ParameterError("ring degree must be a power of two")
        if not self.moduli:
            raise ParameterError("need at least one ciphertext prime")
        if not self.aux_moduli:
            raise ParameterError("need at least one auxiliary prime")

    # -- Derived quantities -------------------------------------------------

    @property
    def level_count(self) -> int:
        """L — the number of ciphertext primes."""
        return len(self.moduli)

    @property
    def aux_count(self) -> int:
        """α — the number of auxiliary (key-switching) primes."""
        return len(self.aux_moduli)

    @property
    def dnum(self) -> int:
        """D — the gadget decomposition number, ``ceil(L / α)``."""
        return -(-self.level_count // self.aux_count)

    @property
    def slot_count(self) -> int:
        """Number of complex slots, N/2."""
        return self.degree // 2

    @property
    def log_pq(self) -> float:
        """log2 of the extended modulus PQ."""
        return sum(math.log2(q) for q in self.moduli) + sum(
            math.log2(p) for p in self.aux_moduli)

    @property
    def scale(self) -> float:
        """The default encoding scale Δ."""
        return float(2 ** self.scale_bits)

    def meets_128_bit_security(self) -> bool:
        """Check log PQ against the 128-bit security table for this N."""
        limit = MAX_LOG_PQ_128.get(self.degree)
        if limit is None:
            raise ParameterError(f"no security table entry for N={self.degree}")
        return self.log_pq <= limit

    # -- Sizes used throughout the performance models ------------------------

    def limb_bytes(self) -> int:
        """Bytes of one limb (N coefficients)."""
        return self.degree * WORD_BYTES

    def poly_bytes(self, limbs: int | None = None) -> int:
        """Bytes of a polynomial with ``limbs`` limbs (default L)."""
        if limbs is None:
            limbs = self.level_count
        return limbs * self.limb_bytes()

    def ciphertext_bytes(self, limbs: int | None = None) -> int:
        """Bytes of a ciphertext (two polynomials)."""
        return 2 * self.poly_bytes(limbs)

    def evk_bytes(self) -> int:
        """Bytes of one evaluation key: 2·D polynomials with L+α limbs."""
        return 2 * self.dnum * self.poly_bytes(self.level_count + self.aux_count)

    def at_level(self, level_count: int) -> "CkksParams":
        """Return a copy restricted to the lowest ``level_count`` primes."""
        if not 1 <= level_count <= self.level_count:
            raise ParameterError(
                f"level count {level_count} outside [1, {self.level_count}]")
        return CkksParams(
            degree=self.degree,
            moduli=self.moduli[:level_count],
            aux_moduli=self.aux_moduli,
            scale_bits=self.scale_bits,
            dense_hamming_weight=self.dense_hamming_weight,
            sparse_hamming_weight=self.sparse_hamming_weight,
            error_std=self.error_std,
        )

    # -- Factories -----------------------------------------------------------

    @staticmethod
    def create(degree: int, level_count: int, aux_count: int,
               prime_bits: int = 28, scale_bits: int | None = None,
               base_prime_bits: int | None = None) -> "CkksParams":
        """Generate a parameter set with NTT-friendly primes.

        ``scale_bits`` defaults to ``prime_bits`` so that dropping one
        prime per rescale keeps the scale stable (single-prime scaling).
        ``base_prime_bits`` optionally widens q_0 for extra headroom.
        """
        if scale_bits is None:
            scale_bits = prime_bits
        scale_primes = modmath.generate_scale_primes(
            level_count, degree, bits=prime_bits)
        if base_prime_bits is not None and base_prime_bits != prime_bits:
            base = modmath.generate_primes(1, degree, bits=base_prime_bits)
            moduli = (base[0],) + tuple(scale_primes[:level_count - 1])
        else:
            moduli = tuple(scale_primes)
        aux_pool = modmath.generate_primes(
            aux_count + level_count, degree, bits=min(
                prime_bits + 2, modmath.MAX_PRIME_BITS))
        aux = tuple(p for p in aux_pool if p not in moduli)[:aux_count]
        if len(aux) < aux_count:
            raise ParameterError("could not find enough distinct aux primes")
        return CkksParams(degree=degree, moduli=moduli, aux_moduli=aux,
                          scale_bits=scale_bits)


    @staticmethod
    def create_double_prime(degree: int, level_pairs: int, aux_count: int,
                            scale_bits: int = 48,
                            base_prime_bits: int = 28) -> "CkksParams":
        """Parameters with double-prime scaling ([1], [45]).

        Each multiplicative level is backed by a *pair* of primes whose
        product approximates ``2**scale_bits``; rescaling drops both.
        This is how the paper sustains Δ = 2^48-2^55 precision on
        28-bit hardware words (Table IV, §VI-A).
        """
        pair_bits = scale_bits // 2
        if scale_bits % 2 != 0:
            raise ParameterError("scale_bits must be even for prime pairs")
        scale_primes = modmath.generate_scale_primes(
            2 * level_pairs, degree, bits=pair_bits)
        # The base modulus is itself a prime pair: the last remaining
        # level must still exceed the scale (2^56 > 2^48).
        base = modmath.generate_primes(2, degree, bits=base_prime_bits)
        # Pair large-with-small so each product stays near 2^scale_bits.
        ordered = sorted(scale_primes)
        pairs = []
        for i in range(level_pairs):
            pairs.extend((ordered[i], ordered[-1 - i]))
        moduli = tuple(base) + tuple(pairs)
        aux_pool = modmath.generate_primes(
            aux_count + len(moduli), degree,
            bits=min(base_prime_bits + 2, modmath.MAX_PRIME_BITS))
        aux = tuple(p for p in aux_pool if p not in moduli)[:aux_count]
        if len(aux) < aux_count:
            raise ParameterError("could not find enough distinct aux primes")
        return CkksParams(degree=degree, moduli=moduli, aux_moduli=aux,
                          scale_bits=scale_bits, primes_per_level=2)


@lru_cache(maxsize=None)
def toy_params(degree: int = 2 ** 10, level_count: int = 6,
               aux_count: int = 2, prime_bits: int = 28) -> CkksParams:
    """Small functional parameters for correctness tests and examples.

    The base prime q_0 is a few bits wider than the scale primes so the
    plaintext keeps headroom at the last level: with ``q_0 ≈ Δ``, slot
    values of magnitude ≥ q_0/(2Δ) ≈ 0.5 would wrap around.
    """
    base_bits = min(prime_bits + 2, modmath.MAX_PRIME_BITS - 1)
    return CkksParams.create(degree, level_count, aux_count, prime_bits,
                             base_prime_bits=base_bits)


def paper_params(level_count: int = 54, aux_count: int = 14) -> "PaperParams":
    """Paper-scale Table IV parameters for the performance models."""
    return PaperParams(degree=2 ** 16, level_count=level_count,
                       aux_count=aux_count)


@dataclass(frozen=True)
class PaperParams:
    """Paper-scale parameters carrying only the sizes the models need.

    The analytical GPU/PIM models never touch residues, so there is no
    need to generate 68 actual primes; this light-weight record mirrors
    the size-related API of :class:`CkksParams`.
    """

    degree: int = 2 ** 16
    level_count: int = 54
    aux_count: int = 14
    prime_bits: float = 23.8   # average; 68 primes * 23.8 bits ≈ log PQ 1618
    scale_bits: int = 48       # double-prime scaling [1], [45]

    @property
    def dnum(self) -> int:
        return -(-self.level_count // self.aux_count)

    @property
    def slot_count(self) -> int:
        return self.degree // 2

    @property
    def log_pq(self) -> float:
        return (self.level_count + self.aux_count) * self.prime_bits

    def meets_128_bit_security(self) -> bool:
        limit = MAX_LOG_PQ_128.get(self.degree)
        if limit is None:
            raise ParameterError(f"no security table entry for N={self.degree}")
        return self.log_pq <= limit

    def limb_bytes(self) -> int:
        return self.degree * WORD_BYTES

    def poly_bytes(self, limbs: int | None = None) -> int:
        if limbs is None:
            limbs = self.level_count
        return limbs * self.limb_bytes()

    def ciphertext_bytes(self, limbs: int | None = None) -> int:
        return 2 * self.poly_bytes(limbs)

    def evk_bytes(self) -> int:
        return 2 * self.dnum * self.poly_bytes(
            self.level_count + self.aux_count)

    def with_levels(self, level_count: int, aux_count: int | None = None
                    ) -> "PaperParams":
        """Copy with a different number of ciphertext (and aux) primes."""
        return PaperParams(degree=self.degree, level_count=level_count,
                           aux_count=aux_count or self.aux_count,
                           prime_bits=self.prime_bits,
                           scale_bits=self.scale_bits)


def params_for_dnum(dnum: int, degree: int = 2 ** 16,
                    max_log_pq: int = 1623,
                    prime_bits: float = 23.8) -> PaperParams:
    """Choose (L, α) for a target decomposition number D (§IV-B, Fig. 2b).

    Mirrors the paper's methodology: keep ``N = 2^16`` and
    ``log PQ < 1623`` for 128-bit security while varying D, i.e. pick the
    largest L with ``α = ceil(L / D)`` and ``(L + α) · prime_bits``
    within budget.
    """
    best = None
    for level_count in range(dnum, 200):
        aux = -(-level_count // dnum)
        if (level_count + aux) * prime_bits >= max_log_pq:
            break
        best = (level_count, aux)
    if best is None:
        raise ParameterError(f"no feasible (L, α) for D={dnum}")
    return PaperParams(degree=degree, level_count=best[0], aux_count=best[1],
                       prime_bits=prime_bits)
