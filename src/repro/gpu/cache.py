"""L2 cache model: which kernel traffic reaches DRAM.

The paper's D1 observation: paper-scale FHE working sets (17MB
polynomials, 136MB evks) dwarf GPU L2 caches, so GPUs stream one-use
operands (evks, plaintexts) from DRAM, while multi-use intermediates
achieve partial residency thanks to the MAD-style caching methods [2]
the simulation adopts (§V-D).

Hit rates are per category: ModSwitch intermediates ((I)NTT, BConv)
enjoy good locality — which is why, in the paper's Fig. 4b, element-wise
ops account for 83.7% of all baseline DRAM accesses — whereas the bulky
element-wise operand sets mostly miss.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.trace import GpuKernel, OpCategory

#: Residency of multi-use operands per kernel category, calibrated so
#: the baseline bootstrapping DRAM-access mix matches Fig. 4b (see
#: EXPERIMENTS.md).
DEFAULT_HIT_RATES = {
    OpCategory.NTT: 0.80,
    OpCategory.BCONV: 0.80,
    OpCategory.ELEMENTWISE: 0.72,
    OpCategory.AUTOMORPHISM: 0.30,
    OpCategory.TRANSFER: 0.0,
}


@dataclass(frozen=True)
class CacheModel:
    """Estimates per-kernel DRAM traffic.

    ``working_set_bytes`` lets callers express cache pressure: hit
    rates shrink with the square root of the working-set/L2 ratio once
    the set outgrows the cache.
    """

    l2_bytes: float
    working_set_bytes: float = 0.0
    hit_rates: dict = field(default_factory=lambda: dict(DEFAULT_HIT_RATES))

    def hit_rate(self, category: OpCategory) -> float:
        base = self.hit_rates.get(category, 0.5)
        if self.working_set_bytes <= self.l2_bytes:
            return base
        pressure = self.working_set_bytes / self.l2_bytes
        return base / pressure ** 0.5

    def dram_bytes(self, kernel: GpuKernel) -> float:
        """DRAM traffic of one kernel under this cache state."""
        reusable = kernel.total_bytes - kernel.streaming_bytes
        miss = 1.0 - self.hit_rate(kernel.category)
        return kernel.streaming_bytes + reusable * miss
