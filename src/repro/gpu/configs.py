"""GPU hardware configurations and library profiles (Table III, §IV-A).

The GPU model substitutes real-silicon measurements with a calibrated
roofline: per-category sustained-efficiency factors absorb everything a
cycle-accurate model would capture (shared-memory traffic, shuffles,
occupancy), and are calibrated so the paper's reported cross-GPU and
cross-library ratios hold (§IV-A, Fig. 2a; see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Integer instructions one 32-bit modular multiplication expands to on
#: a GPU (Barrett/Montgomery sequence) — the paper's D2 observation that
#: "one modular mult involves a handful of instructions".
MODMUL_INT_OPS = 5.0


@dataclass(frozen=True)
class LibraryProfile:
    """Relative kernel quality of a GPU FHE library (Fig. 2a).

    Values are sustained-efficiency multipliers per category, relative
    to the hardware's calibrated Cheddar-level efficiency.
    """

    name: str
    ntt: float = 1.0
    bconv: float = 1.0
    elementwise: float = 1.0
    automorphism: float = 1.0


#: Cheddar [44] — the paper's baseline; calibration reference.
CHEDDAR = LibraryProfile(name="Cheddar")

#: 100x [38] — Cheddar accelerates (I)NTT 1.73-1.75x and BConv similarly
#: over it, while element-wise ops are equally memory-bound (§IV-A).
HUNDRED_X = LibraryProfile(name="100x", ntt=1 / 1.74, bconv=1 / 1.74,
                           elementwise=1 / 1.02, automorphism=1 / 1.05)

#: Phantom [77] — slightly behind 100x on compute kernels.
PHANTOM = LibraryProfile(name="Phantom", ntt=1 / 1.80, bconv=1 / 1.81,
                         elementwise=1 / 1.03, automorphism=1 / 1.08)

LIBRARIES = {p.name: p for p in (CHEDDAR, HUNDRED_X, PHANTOM)}


@dataclass(frozen=True)
class GpuConfig:
    """One GPU's roofline and power parameters.

    ``*_efficiency`` are the sustained fractions of peak integer
    throughput for compute-bound kernel categories and of peak DRAM
    bandwidth for memory-bound ones, at Cheddar kernel quality.
    """

    name: str
    int_mult_tops: float           # peak 32-bit int mult-add throughput
    dram_bandwidth: float          # bytes/s
    dram_capacity: float           # bytes
    l2_cache_bytes: float
    # Sustained-efficiency calibration (dimensionless fractions).
    ntt_efficiency: float
    bconv_efficiency: float
    elementwise_bw_efficiency: float
    # Launch/transition overheads (§V-C: "a couple of microseconds").
    kernel_launch_overhead: float = 1e-6
    pim_transition_overhead: float = 2e-6
    # Power model (W): energy = idle·T_total + dynamic·T_compute_busy
    # + memory-subsystem activity·T_busy + DRAM pJ/bit.
    idle_power: float = 60.0
    core_dynamic_power: float = 220.0
    memory_active_power: float = 130.0
    dram_pj_per_bit: float = 3.9   # array + on-die movement + I/O ([62])

    @property
    def int_ops_per_second(self) -> float:
        return self.int_mult_tops * 1e12

    @property
    def roofline_ridge(self) -> float:
        """Arithmetic intensity (int ops/byte) where the roofline bends."""
        return self.int_ops_per_second / self.dram_bandwidth


#: NVIDIA A100 80GB (Table III).  ``ntt_efficiency`` is calibrated so
#: paper-scale (I)NTT is compute-bound with an execution-time share
#: matching Fig. 2; BConv efficiency places its A100 compute time at
#: ~2.7x its memory time, making it compute-bound on A100 but
#: memory-bound on RTX 4090 — reproducing the observed 2.0x / 1.4x
#: cross-GPU speedups (§IV-D).
A100_80GB = GpuConfig(
    name="A100 80GB",
    int_mult_tops=19.5,
    dram_bandwidth=1802e9,
    dram_capacity=80e9,
    l2_cache_bytes=40e6,
    ntt_efficiency=0.33,
    bconv_efficiency=0.67,
    elementwise_bw_efficiency=0.86,
    idle_power=65.0,
    core_dynamic_power=210.0,
)

#: NVIDIA RTX 4090 (Table III): 2.1x the integer throughput, roughly
#: half the DRAM bandwidth — the configuration on which element-wise
#: ops dominate hardest (Fig. 2b).
RTX_4090 = GpuConfig(
    name="RTX 4090",
    int_mult_tops=41.3,
    dram_bandwidth=939e9,
    dram_capacity=24e9,
    l2_cache_bytes=72e6,
    ntt_efficiency=0.33,
    bconv_efficiency=0.67,
    elementwise_bw_efficiency=0.86,
    idle_power=55.0,
    core_dynamic_power=260.0,
)

GPUS = {g.name: g for g in (A100_80GB, RTX_4090)}
