"""Analytic cost descriptors for the GPU kernels of CKKS.

Builders return :class:`repro.core.trace.GpuKernel` records with exact
modular-op and byte counts for each primary polynomial operation
(§II-B).  All sizes assume 32-bit word storage (§VI-A).
"""

from __future__ import annotations

import math

from repro.core.trace import GpuKernel, OpCategory

WORD_BYTES = 4

#: Device traffic passes per (I)NTT: modern fused kernels keep the
#: intermediate radix-√N stage in shared memory, so each limb is read
#: and written once.
NTT_PASSES = 1


def ntt_kernel(limbs: int, degree: int, inverse: bool = False,
               name: str | None = None, **tag_args) -> GpuKernel:
    """(I)NTT over ``limbs`` limbs: N/2·log2 N butterflies per limb."""
    butterflies = limbs * (degree // 2) * int(math.log2(degree))
    traffic = limbs * degree * WORD_BYTES * NTT_PASSES
    return GpuKernel(
        name=name or ("intt" if inverse else "ntt"),
        category=OpCategory.NTT,
        mod_ops=float(butterflies),
        bytes_read=float(traffic),
        bytes_written=float(traffic),
        **tag_args,
    )


def bconv_kernel(in_limbs: int, out_limbs: int, degree: int,
                 name: str = "bconv", **tag_args) -> GpuKernel:
    """Basis conversion: an (out × in) @ (in × N) modular matrix product."""
    return GpuKernel(
        name=name,
        category=OpCategory.BCONV,
        mod_ops=float(in_limbs * out_limbs * degree
                      + in_limbs * degree),      # scaling by q_hat_inv
        bytes_read=float(in_limbs * degree * WORD_BYTES),
        bytes_written=float(out_limbs * degree * WORD_BYTES),
        **tag_args,
    )


def elementwise_kernel(name: str, limbs: int, degree: int,
                       reads: int, writes: int, ops_per_element: float = 1.0,
                       streaming_reads: int = 0, **tag_args) -> GpuKernel:
    """Element-wise modular kernel over ``limbs`` limbs.

    ``reads``/``writes`` count polynomial operands (each ``limbs × N``
    words); ``streaming_reads`` of them are one-use data (evk limbs,
    plaintexts) that always stream from DRAM (§V-D).
    """
    volume = limbs * degree * WORD_BYTES
    return GpuKernel(
        name=name,
        category=OpCategory.ELEMENTWISE,
        mod_ops=float(limbs * degree * ops_per_element),
        bytes_read=float(reads * volume),
        bytes_written=float(writes * volume),
        streaming_bytes=float(streaming_reads * volume),
        **tag_args,
    )


def automorphism_kernel(limbs: int, degree: int, polys: int = 1,
                        name: str = "automorphism", **tag_args) -> GpuKernel:
    """Coefficient permutation: pure data movement, near-zero compute."""
    volume = polys * limbs * degree * WORD_BYTES
    return GpuKernel(
        name=name,
        category=OpCategory.AUTOMORPHISM,
        mod_ops=0.0,
        bytes_read=float(volume),
        bytes_written=float(volume),
        **tag_args,
    )


def writeback_kernel(limbs: int, degree: int, polys: int = 1,
                     name: str = "writeback") -> GpuKernel:
    """L2→DRAM write-back before PIM execution (§V-C coherence).

    Modeled as extra global-memory store traffic inserted into the
    producing kernels, which is how the paper simulates it.
    """
    volume = polys * limbs * degree * WORD_BYTES
    return GpuKernel(
        name=name,
        category=OpCategory.TRANSFER,
        mod_ops=0.0,
        bytes_read=0.0,
        bytes_written=float(volume),
        streaming_bytes=float(volume),
        tags=frozenset({"writeback"}),
    )
