"""Roofline execution model for GPU kernels.

Each kernel's time is ``max(compute, memory) + launch overhead`` where
compute uses the calibrated per-category sustained efficiency and memory
uses the (near-peak) streaming bandwidth.  This reproduces the paper's
§IV analysis: element-wise ops sit far below the roofline ridge
(< 2 ops/byte vs a 10-44 ops/byte ridge) and are bandwidth-bound, while
(I)NTT and BConv are compute-bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.trace import GpuKernel, OpCategory
from repro.gpu.configs import CHEDDAR, MODMUL_INT_OPS, GpuConfig, LibraryProfile


@dataclass(frozen=True)
class KernelCost:
    """Time/energy estimate for one kernel on one GPU."""

    time: float            # seconds, including launch overhead
    compute_time: float
    memory_time: float
    dram_bytes: float      # bytes that actually travel to/from DRAM

    @property
    def bound(self) -> str:
        return "compute" if self.compute_time >= self.memory_time else "memory"


class GpuModel:
    """Costs GPU kernels against a :class:`GpuConfig` and library profile."""

    def __init__(self, config: GpuConfig, library: LibraryProfile = CHEDDAR,
                 tracer=None, metrics=None):
        self.config = config
        self.library = library
        self.tracer = tracer
        self.metrics = metrics
        if metrics is not None:
            self._m_costs = metrics.counter(
                "anaheim_gpu_kernel_costs_total",
                "GPU kernel costings by category",
                labelnames=("category",))
            self._m_dram = metrics.counter(
                "anaheim_gpu_dram_bytes_total",
                "DRAM bytes charged to GPU kernels")

    # -- Calibrated sustained rates -------------------------------------------

    def _compute_efficiency(self, category: OpCategory) -> float:
        cfg = self.config
        lib = self.library
        if category == OpCategory.NTT:
            return cfg.ntt_efficiency * lib.ntt
        if category == OpCategory.BCONV:
            return cfg.bconv_efficiency * lib.bconv
        # Element-wise/automorphism compute is trivially parallel ALU
        # work; treat it as running at NTT-like sustained efficiency so
        # the roofline (not compute) limits it.
        return cfg.ntt_efficiency * lib.elementwise

    def _bandwidth_efficiency(self, category: OpCategory) -> float:
        cfg = self.config
        lib = self.library
        if category == OpCategory.ELEMENTWISE:
            return cfg.elementwise_bw_efficiency * lib.elementwise
        if category == OpCategory.AUTOMORPHISM:
            # Permutations have poor access locality; they sustain less
            # of peak bandwidth than unit-stride element-wise kernels.
            return 0.6 * cfg.elementwise_bw_efficiency * lib.automorphism
        if category == OpCategory.TRANSFER:
            return cfg.elementwise_bw_efficiency
        return cfg.elementwise_bw_efficiency

    # -- Costing ----------------------------------------------------------------

    def kernel_cost(self, kernel: GpuKernel,
                    dram_bytes: float | None = None) -> KernelCost:
        """Roofline time for one kernel.

        ``dram_bytes`` optionally overrides the DRAM traffic (the cache
        model may find part of the footprint resident in L2); kernel
        *time* still pays the full footprint at L2-or-better speed, so
        only the slower DRAM share is charged at DRAM bandwidth.
        """
        cfg = self.config
        int_ops = kernel.mod_ops * MODMUL_INT_OPS
        eff = self._compute_efficiency(kernel.category)
        compute_time = int_ops / (cfg.int_ops_per_second * eff) if int_ops else 0.0
        if dram_bytes is None:
            dram_bytes = kernel.total_bytes
        bw = cfg.dram_bandwidth * self._bandwidth_efficiency(kernel.category)
        memory_time = dram_bytes / bw if dram_bytes else 0.0
        time = max(compute_time, memory_time) + cfg.kernel_launch_overhead
        if self.tracer is not None:
            self.tracer.count("gpu.kernel_costs")
            self.tracer.count(f"gpu.kernel_costs.{kernel.category.value}")
            self.tracer.count("gpu.dram_bytes", dram_bytes)
        if self.metrics is not None:
            self._m_costs.inc(category=kernel.category.value)
            self._m_dram.inc(dram_bytes)
        return KernelCost(time=time, compute_time=compute_time,
                          memory_time=memory_time, dram_bytes=dram_bytes)

    def kernel_energy(self, kernel: GpuKernel, cost: KernelCost) -> float:
        """Dynamic energy of one kernel (J).

        Core dynamic power is charged only while the SMs actually
        compute; memory-bound kernels mostly pay the memory-subsystem
        activity power plus per-bit DRAM access energy.  Idle/static
        power is charged by the scheduler over the whole schedule.
        """
        cfg = self.config
        core = cfg.core_dynamic_power * min(cost.compute_time, cost.time)
        memory = cfg.memory_active_power * cost.time
        dram = cost.dram_bytes * 8.0 * cfg.dram_pj_per_bit * 1e-12
        return core + memory + dram

    #: Fraction of a kernel's output-stream time that inline residue
    #: checksumming adds: the reduction is fused into the producing
    #: kernel (it rides the write stream), so only the extra ALU work
    #: and the tiny checksum vector cost anything.
    VERIFY_STREAM_FRACTION = 0.02

    def verify_cost(self, kernel: GpuKernel) -> float:
        """Modeled residue-checksum verification time for one kernel (s).

        Used by the fault-tolerant scheduler when a fault plan is
        attached; the plain scheduler never calls it.
        """
        if not kernel.bytes_written:
            return 0.0
        cfg = self.config
        bw = cfg.dram_bandwidth * cfg.elementwise_bw_efficiency
        return self.VERIFY_STREAM_FRACTION * kernel.bytes_written / bw

    def arithmetic_intensity(self, kernel: GpuKernel) -> float:
        """Int ops per DRAM byte — the paper's §IV-D metric."""
        if kernel.total_bytes == 0:
            return float("inf")
        return kernel.mod_ops * MODMUL_INT_OPS / kernel.total_bytes
