"""GPU performance models: rooflines, kernels, caches, library profiles."""

from repro.gpu.cache import DEFAULT_HIT_RATES, CacheModel
from repro.gpu.configs import (A100_80GB, CHEDDAR, GPUS, HUNDRED_X,
                               LIBRARIES, MODMUL_INT_OPS, PHANTOM, RTX_4090,
                               GpuConfig, LibraryProfile)
from repro.gpu.model import GpuModel, KernelCost

__all__ = [
    "A100_80GB", "CHEDDAR", "CacheModel", "DEFAULT_HIT_RATES", "GPUS",
    "GpuConfig", "GpuModel", "HUNDRED_X", "KernelCost", "LIBRARIES",
    "LibraryProfile", "MODMUL_INT_OPS", "PHANTOM", "RTX_4090",
]
