"""Chaos soak: overload x chaos campaigns over the simulated clock.

A **soak cell** is one :func:`~repro.serving.overload.simulate_overload`
run at a chosen load factor (a multiple of the server's
:func:`~repro.serving.traffic.capacity_qps` for the tenant mix) with
chaos either off or driven by a seeded fault plan
(:func:`~repro.serving.overload.chaos_events`).  :func:`run_soak`
sweeps the campaign grid — under-loaded, at capacity, and overloaded,
each with and without chaos — and gates every cell on
:func:`~repro.serving.overload.check_invariants`: every offered job
admitted or rejected, every admitted job completed or cleanly shed,
service intervals well-ordered, queue depth bounded.

Everything runs on the simulated clock, so a full campaign costs
milliseconds of wall time and is a pure function of its seeds:
:func:`overload_bench_cell` — the 2x-capacity Poisson burst with an
active fault plan from the acceptance bar — feeds the pinned
``BENCH_overload.json`` baseline via
``anaheim-repro bench --workload overload``.
"""

from __future__ import annotations

from repro.serving.admission import AdmissionPolicy, CostModel
from repro.serving.health import HealthMonitor
from repro.serving.overload import (chaos_events, check_invariants,
                                    simulate_overload)
from repro.serving.traffic import (DEFAULT_TENANTS, ArrivalSpec,
                                   capacity_qps)

#: Load factors swept by the default campaign: comfortable, at
#: capacity, and the 2x overload regime where shedding must engage.
DEFAULT_LOADS = (0.5, 1.0, 2.0)

#: Chaos dimensions: clean, and quarantines from a seeded fault plan.
DEFAULT_CHAOS = ("none", "faults")

_BROWNOUT_LEVELS = {"healthy": 0, "pim-degraded": 1, "gpu-only": 2,
                    "failed": 3}


def default_cost_model(gpu=None, pim=None, library=None,
                       tenants=DEFAULT_TENANTS) -> CostModel:
    """The cost model covering every workload the tenants can offer."""
    workloads = sorted({entry[1] for tenant in tenants
                        for entry in tenant.mix})
    return CostModel.from_model(gpu=gpu, pim=pim, library=library,
                                workloads=workloads)


def soak_cell(load: float, chaos_kind: str, cost_model: CostModel,
              tenants=DEFAULT_TENANTS, policy: AdmissionPolicy = None,
              seed: int = 0, duration_s: float = 2.0,
              process: str = "poisson", fault_seed: int = 0,
              fault_scale: float = 1.0, metrics=None,
              tracer=None) -> dict:
    """One campaign cell: simulate, check invariants, summarize."""
    policy = policy if policy is not None else AdmissionPolicy()
    rate = load * capacity_qps(cost_model, tenants)
    spec = ArrivalSpec(process=process, rate_qps=rate,
                       duration_s=duration_s, seed=seed)
    chaos = (chaos_events(fault_seed, duration_s, scale=fault_scale)
             if chaos_kind == "faults" else ())
    health = HealthMonitor()
    sim = simulate_overload(spec, tenants, policy, cost_model,
                            health=health, chaos=chaos, metrics=metrics,
                            tracer=tracer)
    violations = check_invariants(sim)
    return {"load": load, "chaos": chaos_kind, "rate_qps": rate,
            "passed": not violations, "violations": violations,
            "summary": sim["summary"], "sim": sim}


def run_soak(seed: int = 0, duration_s: float = 2.0,
             loads=DEFAULT_LOADS, chaos_kinds=DEFAULT_CHAOS,
             process: str = "poisson", tenants=DEFAULT_TENANTS,
             policy: AdmissionPolicy = None, cost_model=None,
             gpu=None, pim=None, library=None, fault_seed: int = 0,
             fault_scale: float = 1.0) -> dict:
    """The full soak campaign document (gated, JSON-safe).

    ``gate.passed`` iff every cell satisfies the conservation
    invariants *and* the overloaded cells actually exercised the
    protection (at least one job rejected or shed above capacity —
    a soak that never sheds proves nothing).
    """
    policy = policy if policy is not None else AdmissionPolicy()
    if cost_model is None:
        cost_model = default_cost_model(gpu=gpu, pim=pim, library=library,
                                        tenants=tenants)
    cells = []
    violations = []
    for load in loads:
        for chaos_kind in chaos_kinds:
            cell = soak_cell(load, chaos_kind, cost_model,
                             tenants=tenants, policy=policy, seed=seed,
                             duration_s=duration_s, process=process,
                             fault_seed=fault_seed,
                             fault_scale=fault_scale)
            label = f"load={load:g} chaos={chaos_kind}"
            violations += [f"{label}: {v}" for v in cell["violations"]]
            if load > 1.0:
                summary = cell["summary"]
                protected = (summary["rejected_total"]
                             + summary["shed_total"])
                if summary["offered"] and not protected:
                    violations.append(
                        f"{label}: overloaded cell rejected and shed "
                        f"nothing")
            cell.pop("sim")             # keep the document compact
            cells.append(cell)
    return {
        "tool": "anaheim-repro",
        "kind": "soak",
        "version": 1,
        "seed": seed,
        "duration_s": duration_s,
        "process": process,
        "capacity_qps": capacity_qps(cost_model, tenants),
        "policy": policy.canonical(),
        "tenants": [tenant.canonical() for tenant in tenants],
        "cells": cells,
        "gate": {"passed": not violations, "violations": violations},
    }


def overload_bench_cell(seed: int = 0, duration_s: float = 2.0,
                        tenants=DEFAULT_TENANTS, policy=None,
                        cost_model=None, gpu=None, pim=None,
                        library=None) -> dict:
    """The acceptance-bar cell behind ``BENCH_overload.json``:
    a seeded Poisson burst at 2x capacity with an active fault plan."""
    if cost_model is None:
        cost_model = default_cost_model(gpu=gpu, pim=pim, library=library,
                                        tenants=tenants)
    return soak_cell(2.0, "faults", cost_model, tenants=tenants,
                     policy=policy, seed=seed, duration_s=duration_s)


def overload_bench_metrics(cell: dict) -> dict:
    """Flat, gateable metrics of one cell for baseline write/check."""
    summary = cell["summary"]
    completed = summary["completed"]
    return {
        "offered": float(summary["offered"]),
        "admitted": float(summary["admitted"]),
        "completed": float(completed),
        "rejected_total": float(summary["rejected_total"]),
        "shed_total": float(summary["shed_total"]),
        "goodput_qps": summary["goodput_qps"],
        "shed_rate": summary["shed_rate"],
        "reject_rate": summary["reject_rate"],
        "deadline_hit_rate": (summary["deadline_hits"] / completed
                              if completed else 0.0),
        "queue_wait_p95_s": summary["queue"]["wait_p95_s"],
        "queue_peak_depth": float(summary["queue"]["peak_depth"]),
        "brownout_level": float(_BROWNOUT_LEVELS[
            summary["brownout"]["state"]]),
    }
