"""Resilient job execution: deadlines, retries, breakers, degradation.

The serving layer wraps the analytic framework in the machinery a
long-running reproduction pipeline needs: seeded retry with
exponential backoff, per-device circuit breakers, a PIM-to-GPU
degradation state machine, per-job deadlines, and crash-safe
checkpoint/resume that reproduces an uninterrupted run byte for byte.
"""

from repro.serving.breaker import (DEVICES, BreakerBoard, BreakerState,
                                   CircuitBreaker)
from repro.serving.checkpoint import (CHECKPOINT_KIND, CHECKPOINT_VERSION,
                                      Checkpointer, load_checkpoint,
                                      matrix_digest)
from repro.serving.health import DegradationState, HealthMonitor
from repro.serving.jobs import (JobRunner, JobSpec, ServePolicy,
                                parse_job_spec, parse_jobs)
from repro.serving.retry import RetryPolicy

__all__ = [
    "BreakerBoard", "BreakerState", "CircuitBreaker", "DEVICES",
    "CHECKPOINT_KIND", "CHECKPOINT_VERSION", "Checkpointer",
    "load_checkpoint", "matrix_digest",
    "DegradationState", "HealthMonitor",
    "JobRunner", "JobSpec", "ServePolicy", "parse_job_spec", "parse_jobs",
    "RetryPolicy",
]
