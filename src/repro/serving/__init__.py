"""Resilient job execution: deadlines, retries, breakers, degradation.

The serving layer wraps the analytic framework in the machinery a
long-running reproduction pipeline needs: seeded retry with
exponential backoff, per-device circuit breakers, a PIM-to-GPU
degradation state machine, per-job deadlines, and crash-safe
checkpoint/resume that reproduces an uninterrupted run byte for byte.

On top sits overload protection: a seeded open-loop traffic generator
(:mod:`repro.serving.traffic`), admission control with bounded
priority queues, token buckets, and watermark shedding
(:mod:`repro.serving.admission`), the end-to-end overload simulation
and serve wiring (:mod:`repro.serving.overload`), and the chaos soak
campaign harness (:mod:`repro.serving.soak`).
"""

from repro.serving.admission import (AdmissionController, AdmissionPolicy,
                                     BoundedQueue, CostModel, QueueItem,
                                     TokenBucket)
from repro.serving.breaker import (DEVICES, BreakerBoard, BreakerState,
                                   CircuitBreaker)
from repro.serving.checkpoint import (CHECKPOINT_KIND, CHECKPOINT_VERSION,
                                      Checkpointer, load_checkpoint,
                                      matrix_digest)
from repro.serving.health import DegradationState, HealthMonitor
from repro.serving.jobs import (JobRunner, JobSpec, ServePolicy,
                                parse_job_spec, parse_jobs)
from repro.serving.overload import (chaos_events, check_invariants,
                                    jobs_from_completions,
                                    run_overload_serve, simulate_overload)
from repro.serving.retry import RetryPolicy
from repro.serving.soak import (overload_bench_cell,
                                overload_bench_metrics, run_soak,
                                soak_cell)
from repro.serving.traffic import (DEFAULT_TENANTS, Arrival, ArrivalSpec,
                                   TenantSpec, capacity_qps,
                                   generate_arrivals, parse_arrival_spec,
                                   parse_tenants)

__all__ = [
    "AdmissionController", "AdmissionPolicy", "BoundedQueue", "CostModel",
    "QueueItem", "TokenBucket",
    "BreakerBoard", "BreakerState", "CircuitBreaker", "DEVICES",
    "CHECKPOINT_KIND", "CHECKPOINT_VERSION", "Checkpointer",
    "load_checkpoint", "matrix_digest",
    "DegradationState", "HealthMonitor",
    "JobRunner", "JobSpec", "ServePolicy", "parse_job_spec", "parse_jobs",
    "chaos_events", "check_invariants", "jobs_from_completions",
    "run_overload_serve", "simulate_overload",
    "RetryPolicy",
    "overload_bench_cell", "overload_bench_metrics", "run_soak",
    "soak_cell",
    "DEFAULT_TENANTS", "Arrival", "ArrivalSpec", "TenantSpec",
    "capacity_qps", "generate_arrivals", "parse_arrival_spec",
    "parse_tenants",
]
