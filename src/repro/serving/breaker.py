"""Per-device circuit breakers on the simulated timeline.

A :class:`CircuitBreaker` guards one device ("gpu", "pim", or
"transfer").  It opens after ``threshold`` *consecutive* failures;
while open, callers are told to route around the device.  The cooldown
clock is the **simulated** schedule clock, not wall time: once the
timeline advances past ``cooldown_s`` the breaker half-opens and lets
one probe execution through — success closes it, another failure
re-opens it for a fresh cooldown.  The classic state machine
(CLOSED -> OPEN -> HALF_OPEN -> {CLOSED | OPEN}) keeps a flapping PIM
rank from stalling the whole stream with retry traffic while still
re-admitting it when it recovers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ParameterError


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


#: Gauge encoding of breaker states (0 = healthy, higher = worse).
STATE_VALUES = {BreakerState.CLOSED: 0, BreakerState.HALF_OPEN: 1,
                BreakerState.OPEN: 2}


@dataclass
class CircuitBreaker:
    """Consecutive-failure breaker for one device."""

    device: str
    threshold: int = 3
    cooldown_s: float = 1e-3
    tracer: object = None
    metrics: object = None
    state: BreakerState = BreakerState.CLOSED
    consecutive_failures: int = 0
    failures: int = 0
    successes: int = 0
    opens: int = 0
    rejected: int = 0
    open_until: float = 0.0
    #: (simulated time, transition) history, for traces and manifests.
    events: list = field(default_factory=list)

    def __post_init__(self):
        if self.threshold < 1:
            raise ParameterError("breaker threshold must be >= 1")
        if self.cooldown_s < 0:
            raise ParameterError("breaker cooldown must be >= 0")
        self._publish_state()

    def _publish_state(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge(
                "anaheim_breaker_state",
                "Circuit-breaker state (0 closed, 1 half-open, 2 open)",
                labelnames=("device",)).set(
                    STATE_VALUES[self.state], device=self.device)

    # -- Queries -------------------------------------------------------------

    def allow(self, now: float) -> bool:
        """May the caller dispatch to this device at simulated ``now``?

        An open breaker whose cooldown has elapsed half-opens as a side
        effect and admits the call as its probe.
        """
        if self.state is BreakerState.OPEN:
            if now >= self.open_until:
                self._transition(BreakerState.HALF_OPEN, now,
                                 "cooldown elapsed")
                return True
            self.rejected += 1
            return False
        return True

    # -- Outcome reporting ---------------------------------------------------

    def record_success(self, now: float) -> None:
        self.successes += 1
        self.consecutive_failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self._transition(BreakerState.CLOSED, now, "probe succeeded")

    def record_failure(self, now: float) -> bool:
        """Count one failure; True when this failure opened the breaker."""
        self.failures += 1
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            self._open(now, "probe failed")
            return True
        if (self.state is BreakerState.CLOSED
                and self.consecutive_failures >= self.threshold):
            self._open(now, f"{self.consecutive_failures} consecutive "
                            f"failures")
            return True
        return False

    # -- Internals -----------------------------------------------------------

    def _open(self, now: float, reason: str) -> None:
        self.opens += 1
        self.open_until = now + self.cooldown_s
        self._transition(BreakerState.OPEN, now, reason)

    def _transition(self, state: BreakerState, now: float,
                    reason: str) -> None:
        self.events.append({"at_s": now, "from": self.state.value,
                            "to": state.value, "reason": reason})
        self.state = state
        if self.tracer is not None:
            self.tracer.count(
                f"serve.breaker.{self.device}.{state.value}")
        if self.metrics is not None:
            self.metrics.counter(
                "anaheim_breaker_transitions_total",
                "Circuit-breaker state transitions",
                labelnames=("device", "to")).inc(
                    device=self.device, to=state.value)
            self._publish_state()

    def summary(self) -> dict:
        return {
            "state": self.state.value,
            "threshold": self.threshold,
            "cooldown_s": self.cooldown_s,
            "failures": self.failures,
            "successes": self.successes,
            "opens": self.opens,
            "rejected": self.rejected,
            "events": list(self.events),
        }


#: The devices a hybrid schedule exercises.
DEVICES = ("gpu", "pim", "transfer")


class BreakerBoard:
    """One breaker per device, with a shared policy."""

    def __init__(self, threshold: int = 3, cooldown_s: float = 1e-3,
                 devices=DEVICES, tracer=None, metrics=None):
        self.breakers = {device: CircuitBreaker(
            device=device, threshold=threshold, cooldown_s=cooldown_s,
            tracer=tracer, metrics=metrics) for device in devices}

    def breaker(self, device: str) -> CircuitBreaker:
        return self.breakers[device]

    def allow(self, device: str, now: float) -> bool:
        breaker = self.breakers.get(device)
        return True if breaker is None else breaker.allow(now)

    def record_success(self, device: str, now: float) -> None:
        breaker = self.breakers.get(device)
        if breaker is not None:
            breaker.record_success(now)

    def record_failure(self, device: str, now: float) -> bool:
        breaker = self.breakers.get(device)
        return False if breaker is None else breaker.record_failure(now)

    def summary(self) -> dict:
        return {device: breaker.summary()
                for device, breaker in self.breakers.items()}
