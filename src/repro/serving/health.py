"""Service-level health: the PIM->GPU degradation state machine.

PR 3's :class:`~repro.core.scheduler.ResilientScheduler` handles faults
*per kernel* (verify -> retry -> fallback -> quarantine one site).  The
:class:`HealthMonitor` is the service-level half: it consumes those
quarantine events, per-device fault counters, and breaker transitions,
and decides when the run should stop fighting the PIM hardware and
degrade gracefully:

``HEALTHY -> PIM_DEGRADED -> GPU_ONLY -> FAILED``

* **PIM_DEGRADED** — some PIM capacity lost (quarantined sites), but
  offloading still pays; the scheduler keeps routing around the holes.
* **GPU_ONLY** — enough capacity lost (site count or fault rate over
  threshold) that the remaining block sequence is re-lowered to the
  GPU-only schedule mid-run: every remaining PIM kernel executes as
  its ``gpu_equivalent``, exactly what the lowering would have emitted
  with offload disabled (§V-C / §VII-D's GPU fallback argument).
* **FAILED** — the GPU itself is gone (its breaker opened); there is
  no device left to serve on and the run raises ``FaultError``.

States only escalate — hardware that degraded once is not trusted back
for the remainder of a run; re-admission happens at the *breaker*
level (half-open probes) before GPU_ONLY is reached.
"""

from __future__ import annotations

import enum

from repro.errors import ParameterError


class DegradationState(enum.Enum):
    HEALTHY = "healthy"
    PIM_DEGRADED = "pim-degraded"
    GPU_ONLY = "gpu-only"
    FAILED = "failed"


#: Escalation order (index comparisons implement "only forward").
_ORDER = (DegradationState.HEALTHY, DegradationState.PIM_DEGRADED,
          DegradationState.GPU_ONLY, DegradationState.FAILED)


class HealthMonitor:
    """Degradation state machine fed by the resilient scheduler.

    ``degraded_after``/``gpu_only_after`` are quarantined-site counts;
    ``pim_fault_rate_limit`` (with at least ``rate_window`` PIM kernel
    executions observed) catches the case where faults are spread over
    too many sites for quarantine to trip.
    """

    def __init__(self, degraded_after: int = 1, gpu_only_after: int = 3,
                 pim_fault_rate_limit: float | None = None,
                 rate_window: int = 50,
                 uncorrectable_limit: int | None = None,
                 tracer=None, metrics=None):
        if degraded_after < 1 or gpu_only_after < degraded_after:
            raise ParameterError(
                "need 1 <= degraded_after <= gpu_only_after")
        if pim_fault_rate_limit is not None \
                and not 0.0 < pim_fault_rate_limit <= 1.0:
            raise ParameterError("pim_fault_rate_limit must be in (0, 1]")
        if uncorrectable_limit is not None and uncorrectable_limit < 1:
            raise ParameterError("uncorrectable_limit must be >= 1")
        self.degraded_after = degraded_after
        self.gpu_only_after = gpu_only_after
        self.pim_fault_rate_limit = pim_fault_rate_limit
        self.rate_window = rate_window
        self.uncorrectable_limit = uncorrectable_limit
        self.tracer = tracer
        self.metrics = metrics
        self.state = DegradationState.HEALTHY
        self._publish_state()
        self.quarantined = 0
        self.pim_kernels = 0
        self.pim_faults = 0
        self.gpu_faults = 0
        self.transfer_faults = 0
        self.uncorrectable_memory = 0
        self.events: list = []

    # -- Queries -------------------------------------------------------------

    @property
    def gpu_only(self) -> bool:
        return _ORDER.index(self.state) >= _ORDER.index(
            DegradationState.GPU_ONLY)

    @property
    def failed(self) -> bool:
        return self.state is DegradationState.FAILED

    def pim_fault_rate(self) -> float:
        return self.pim_faults / self.pim_kernels if self.pim_kernels else 0.0

    # -- Inputs from the scheduler -------------------------------------------

    def note_pim_kernel(self) -> None:
        self.pim_kernels += 1

    def note_fault(self, device: str, now: float) -> None:
        """One effective (non-benign) fault detected on ``device``."""
        if device == "pim":
            self.pim_faults += 1
            if (self.pim_fault_rate_limit is not None
                    and self.pim_kernels >= self.rate_window
                    and self.pim_fault_rate() > self.pim_fault_rate_limit):
                self.escalate(DegradationState.GPU_ONLY, now,
                              f"PIM fault rate {self.pim_fault_rate():.3f} "
                              f"over limit {self.pim_fault_rate_limit}")
        elif device == "transfer":
            self.transfer_faults += 1
        else:
            self.gpu_faults += 1

    def note_quarantine(self, site, now: float) -> None:
        """One PIM site quarantined by the recovery policy."""
        self.quarantined += 1
        if self.quarantined >= self.gpu_only_after:
            self.escalate(DegradationState.GPU_ONLY, now,
                          f"{self.quarantined} quarantined sites "
                          f"(threshold {self.gpu_only_after})")
        elif self.quarantined >= self.degraded_after:
            self.escalate(DegradationState.PIM_DEGRADED, now,
                          f"site {site} quarantined "
                          f"({self.quarantined} total)")

    def note_uncorrectable(self, region, now: float) -> None:
        """Memory pressure from the RAS layer: one uncorrectable-by-ECC
        error (double-bit detection or checksum-caught escape) in
        ``region``.  A sustained uncorrectable stream past
        ``uncorrectable_limit`` degrades PIM -> GPU exactly like a
        fault storm — the substrate is leaking faster than scrub and
        spares can contain."""
        self.uncorrectable_memory += 1
        if (self.uncorrectable_limit is not None
                and self.uncorrectable_memory >= self.uncorrectable_limit):
            self.escalate(DegradationState.GPU_ONLY, now,
                          f"{self.uncorrectable_memory} uncorrectable "
                          f"memory errors (limit "
                          f"{self.uncorrectable_limit}, last region "
                          f"{region})")

    def note_breaker_open(self, device: str, now: float) -> None:
        """A device breaker opened; losing the GPU is terminal."""
        if device == "gpu":
            self.escalate(DegradationState.FAILED, now,
                          "GPU circuit breaker opened")
        elif device == "pim":
            self.escalate(DegradationState.PIM_DEGRADED, now,
                          "PIM circuit breaker opened")

    def note_policy_exhausted(self, kernel: str, now: float) -> None:
        """Retries exhausted with fallback disabled: rather than abort
        the whole run (PR 3 raised ``FaultError`` here), the service
        degrades to GPU_ONLY and re-executes the kernel on the GPU."""
        self.escalate(DegradationState.GPU_ONLY, now,
                      f"kernel {kernel!r} exhausted retries with "
                      f"fallback disabled")

    # -- Transitions ---------------------------------------------------------

    def escalate(self, state: DegradationState, now: float,
                 reason: str) -> bool:
        """Move forward to ``state``; False if already at or past it."""
        if _ORDER.index(state) <= _ORDER.index(self.state):
            return False
        self.events.append({"at_s": now, "from": self.state.value,
                            "to": state.value, "reason": reason})
        self.state = state
        if self.tracer is not None:
            self.tracer.count(f"serve.degradation.{state.value}")
        if self.metrics is not None:
            self.metrics.counter(
                "anaheim_degradation_transitions_total",
                "Health-monitor escalations", labelnames=("to",)).inc(
                    to=state.value)
            self._publish_state()
        return True

    def _publish_state(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge(
                "anaheim_degradation_state",
                "Degradation level (0 healthy .. 3 failed)").set(
                    _ORDER.index(self.state))

    def summary(self) -> dict:
        return {
            "state": self.state.value,
            "quarantined_sites": self.quarantined,
            "pim_kernels": self.pim_kernels,
            "pim_faults": self.pim_faults,
            "gpu_faults": self.gpu_faults,
            "transfer_faults": self.transfer_faults,
            "uncorrectable_memory": self.uncorrectable_memory,
            "pim_fault_rate": self.pim_fault_rate(),
            "events": list(self.events),
        }
