"""Deterministic seeded retry policy: exponential backoff + jitter.

Every delay a :class:`RetryPolicy` hands out is derived by hashing
``(seed, key, attempt)`` — the same derivation scheme
:class:`~repro.faults.plan.FaultPlan` uses for its fault draws — so a
resumed or re-run job replays byte-identical backoff schedules.  No
wall-clock state leaks into the decisions: the policy is a pure
function of its inputs, which is what makes checkpoint/resume and the
campaign determinism tests possible.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.errors import ParameterError


def _unit_draw(seed: int, *key) -> float:
    """A deterministic uniform draw in [0, 1) from (seed, key)."""
    material = json.dumps([seed] + [str(k) for k in key])
    word = int.from_bytes(
        hashlib.sha256(material.encode()).digest()[:8], "little")
    return word / 2.0 ** 64


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and seeded jitter.

    ``max_retries`` counts re-executions after the first attempt (0
    disables retrying).  The delay before retry ``attempt`` (0-based)
    is ``base_s * factor**attempt``, scaled by a jitter factor drawn
    uniformly from ``[1 - jitter/2, 1 + jitter/2)`` — full determinism
    per ``(seed, key, attempt)``, decorrelated across keys.
    """

    max_retries: int = 2
    base_s: float = 0.05
    factor: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ParameterError("max_retries must be >= 0")
        if self.base_s < 0 or self.factor <= 0:
            raise ParameterError("backoff base/factor must be positive")
        if not 0.0 <= self.jitter <= 1.0:
            raise ParameterError("jitter must be in [0, 1]")

    def delay(self, key: str, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based) of unit ``key``."""
        nominal = self.base_s * self.factor ** attempt
        if self.jitter == 0.0:
            return nominal
        scale = 1.0 - self.jitter / 2.0 + self.jitter * _unit_draw(
            self.seed, "backoff", key, attempt)
        return nominal * scale

    def schedule(self, key: str) -> tuple:
        """Every backoff delay the policy would grant unit ``key``."""
        return tuple(self.delay(key, attempt)
                     for attempt in range(self.max_retries))

    def canonical(self) -> dict:
        return {"max_retries": self.max_retries, "base_s": self.base_s,
                "factor": self.factor, "jitter": self.jitter,
                "seed": self.seed}
