"""First-class jobs: the resilient execution layer for long workloads.

A :class:`JobRunner` executes a matrix of jobs — modeled workload runs,
bench sweeps, fault campaigns — with the full service policy attached:

* **deadlines** — a per-job wall-clock budget; overrunning jobs stop
  cleanly between units (progress kept) instead of hanging a pipeline;
* **retries** — failed units re-execute up to ``max_retries`` times
  with deterministic seeded exponential backoff
  (:class:`~repro.serving.retry.RetryPolicy`); delays are charged to
  the job's *service time*, never slept on real walls;
* **circuit breakers / degradation** — each analytically-scheduled
  unit runs under a fresh :class:`~repro.serving.breaker.BreakerBoard`
  and :class:`~repro.serving.health.HealthMonitor`; a run job whose
  unit ends degraded (GPU_ONLY) re-lowers its *remaining* units as
  GPU-only block programs (§VII-D's fallback schedule);
* **checkpoint/resume** — every finished unit is recorded through a
  crash-safe :class:`~repro.serving.checkpoint.Checkpointer`; resuming
  replays only missing units and produces output byte-identical to an
  uninterrupted run (degradation carry-over is read from the recorded
  unit documents, not from live objects, precisely so that a resumed
  runner sees the same inputs a continuous one did).

Job spec grammar (the CLI's ``--jobs`` tokens)::

    run:Boot            model workload Boot (one unit)
    run:Boot,HELR       two units, degradation carries across them
    bench:Sort          baseline-metric unit per workload
    faults              full campaign matrix over the policy's seeds
    faults:analytic     analytic layer only
    faults:functional:  functional layer only
    faults:both:HELR    both layers, analytic campaign on HELR
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import DeadlineError, ParameterError, ReproError
from repro.serving.breaker import BreakerBoard
from repro.serving.checkpoint import Checkpointer, load_checkpoint, \
    matrix_digest
from repro.serving.health import HealthMonitor
from repro.serving.retry import RetryPolicy

#: Degraded-or-worse end states a later unit inherits from.
_DEGRADED_END_STATES = ("gpu-only", "failed")


@dataclass(frozen=True)
class ServePolicy:
    """Every knob of the serving layer, in one canonicalizable place."""

    seed: int = 0
    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.5
    deadline_s: float | None = None
    kernel_timeout_s: float | None = None
    checkpoint_every: int = 1
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 1e-3
    degraded_after: int = 1
    gpu_only_after: int = 3
    #: Campaign knobs (fault seeds for ``faults`` jobs; the fault plan
    #: attached to ``run``/``bench`` units when ``fault_seed`` is set).
    seeds: tuple = (0, 1, 2)
    fault_seed: int | None = None
    fault_scale: float = 1.0
    stuck_sites: tuple = ()
    #: Memory RAS knobs: either one being set attaches a
    #: :class:`~repro.dram.reliability.ReliabilityConfig` to run/bench
    #: units, so scrub and repair overhead lands on the served
    #: schedules (and, via the cost model, on admission capacity).
    scrub_interval_s: float | None = None
    retention_rate: float | None = None
    #: Serving output is deterministic by default: the one wall-clock
    #: field the functional campaign reports is omitted.
    record_wall: bool = False

    def fault_plan_digest(self) -> str | None:
        """Digest of the fault plan attached to run/bench units, if
        any — embedded in checkpoints so a resume refuses state
        recorded under a different plan."""
        if self.fault_seed is None:
            return None
        from repro.faults.plan import default_plan
        return default_plan(seed=self.fault_seed, scale=self.fault_scale,
                            stuck_sites=self.stuck_sites).digest()

    def ras_config(self):
        """The RAS configuration attached to run/bench units, or
        ``None`` when neither memory-RAS knob is set."""
        if self.scrub_interval_s is None and self.retention_rate is None:
            return None
        from repro.dram.reliability import ReliabilityConfig
        return ReliabilityConfig(seed=self.seed).with_overrides(
            retention_rate=self.retention_rate,
            scrub_interval_s=self.scrub_interval_s)

    def canonical(self) -> dict:
        return {
            "seed": self.seed,
            "max_retries": self.max_retries,
            "backoff_base_s": self.backoff_base_s,
            "backoff_factor": self.backoff_factor,
            "backoff_jitter": self.backoff_jitter,
            "deadline_s": self.deadline_s,
            "kernel_timeout_s": self.kernel_timeout_s,
            "checkpoint_every": self.checkpoint_every,
            "breaker_threshold": self.breaker_threshold,
            "breaker_cooldown_s": self.breaker_cooldown_s,
            "degraded_after": self.degraded_after,
            "gpu_only_after": self.gpu_only_after,
            "seeds": list(self.seeds),
            "fault_seed": self.fault_seed,
            "fault_scale": self.fault_scale,
            "stuck_sites": list(self.stuck_sites),
            "scrub_interval_s": self.scrub_interval_s,
            "retention_rate": self.retention_rate,
            "record_wall": self.record_wall,
        }

    def retry_policy(self) -> RetryPolicy:
        return RetryPolicy(max_retries=self.max_retries,
                           base_s=self.backoff_base_s,
                           factor=self.backoff_factor,
                           jitter=self.backoff_jitter, seed=self.seed)

    def health_monitor(self, tracer=None, metrics=None) -> HealthMonitor:
        return HealthMonitor(degraded_after=self.degraded_after,
                             gpu_only_after=self.gpu_only_after,
                             tracer=tracer, metrics=metrics)

    def breaker_board(self, tracer=None, metrics=None) -> BreakerBoard:
        return BreakerBoard(threshold=self.breaker_threshold,
                            cooldown_s=self.breaker_cooldown_s,
                            tracer=tracer, metrics=metrics)


@dataclass(frozen=True)
class JobSpec:
    """One job: a kind plus the arguments that enumerate its units."""

    id: str
    kind: str                    # "run" | "bench" | "faults"
    workloads: tuple = ()        # run/bench units; faults analytic target
    layers: tuple = ()           # faults: ("functional", "analytic")
    #: The admission layer's re-lowering wire: a job dispatched in
    #: brownout GPU_ONLY mode executes without PIM offload from its
    #: first unit, exactly as if an earlier unit had degraded.
    degraded_start: bool = False

    def units(self, seeds) -> list:
        if self.kind == "faults":
            from repro.faults.campaign import campaign_units, unit_key
            return [unit_key(layer, seed) for layer, seed in campaign_units(
                seeds, functional="functional" in self.layers,
                analytic="analytic" in self.layers)]
        return list(self.workloads)

    def canonical(self) -> dict:
        return {"id": self.id, "kind": self.kind,
                "workloads": list(self.workloads),
                "layers": list(self.layers),
                "degraded_start": self.degraded_start}


def parse_job_spec(token: str, index: int) -> JobSpec:
    """A :class:`JobSpec` from one ``--jobs`` token (see module doc)."""
    from repro.workloads import applications as apps
    parts = token.split(":")
    kind = parts[0]
    if kind in ("run", "bench"):
        if len(parts) != 2 or not parts[1]:
            raise ParameterError(
                f"job spec {token!r}: expected {kind}:<workload>[,..]")
        workloads = tuple(parts[1].split(","))
        for name in workloads:
            if name not in apps.WORKLOADS:
                raise ParameterError(
                    f"job spec {token!r}: unknown workload {name!r}; "
                    f"choose from {sorted(apps.WORKLOADS)}")
        return JobSpec(id=f"{index}-{kind}", kind=kind, workloads=workloads)
    if kind == "faults":
        layer = parts[1] if len(parts) > 1 and parts[1] else "both"
        workload = parts[2] if len(parts) > 2 and parts[2] else "Boot"
        if layer not in ("both", "functional", "analytic"):
            raise ParameterError(
                f"job spec {token!r}: layer must be both/functional/"
                f"analytic")
        if workload not in apps.WORKLOADS:
            raise ParameterError(
                f"job spec {token!r}: unknown workload {workload!r}")
        layers = (("functional", "analytic") if layer == "both"
                  else (layer,))
        return JobSpec(id=f"{index}-faults", kind="faults",
                       workloads=(workload,), layers=layers)
    raise ParameterError(
        f"job spec {token!r}: unknown kind {kind!r} "
        f"(expected run/bench/faults)")


def parse_jobs(tokens) -> list:
    if not tokens:
        raise ParameterError("no jobs given")
    return [parse_job_spec(token, i) for i, token in enumerate(tokens)]


class _Interrupted(Exception):
    """Internal: the unit budget (``max_units``) ran out mid-matrix."""


@dataclass(frozen=True)
class _UnitTask:
    """Everything a worker process needs to execute one unit.

    Frozen and built only from picklable pieces (the policy and job
    spec are frozen dataclasses; gpu/pim/library are config objects),
    so it travels to pool workers under any start method.
    """

    policy: ServePolicy
    job: JobSpec
    unit: str
    key: str
    degraded: bool
    collect_metrics: bool
    gpu: object = None
    pim: object = None
    library: object = None


def _pool_attempt(task: _UnitTask):
    """Worker-side unit execution (the default ``pool_task_fn``).

    Runs the *exact* serial retry loop against a throwaway runner
    whose metrics land in a fresh registry; returns ``(unit doc,
    registry or None)`` for the parent to commit in matrix order.
    Deterministic: retries are seeded by the unit key and backoff is
    charged to service time, so a unit produces the same doc in any
    worker — or inline in the parent after a worker crash.
    """
    from repro.obs.metrics import MetricsRegistry
    registry = MetricsRegistry() if task.collect_metrics else None
    runner = JobRunner([task.job], task.policy, gpu=task.gpu,
                       pim=task.pim, library=task.library,
                       metrics=registry)
    doc = runner._attempt_unit(task.job, task.unit, task.key,
                               task.degraded)
    return doc, registry


class _WorkerTelemetry:
    """Per-worker attribution metrics.

    Kept in a registry *separate* from the serving metrics: worker
    pids, unit placement, and in-worker wall clocks are scheduling-
    dependent, and the main registry's digest must stay identical
    across worker counts.
    """

    def __init__(self, registry):
        self.units = registry.counter(
            "anaheim_worker_units_total",
            "Units committed, by pool worker",
            labelnames=("worker",))
        self.busy = registry.counter(
            "anaheim_worker_busy_seconds_total",
            "In-worker wall seconds spent executing units",
            labelnames=("worker",))
        self.crashes = registry.counter(
            "anaheim_worker_crashes_total",
            "Worker processes lost mid-unit (unit re-run inline)")


class _ServeMetrics:
    """Serving-layer metric families, declared once per runner."""

    def __init__(self, registry):
        from repro.obs.metrics import UNIT_SECONDS_BUCKETS
        self.units = registry.counter(
            "anaheim_serve_units_total",
            "Serve units finished, by job kind and outcome",
            labelnames=("kind", "status"))
        self.unit_seconds = registry.histogram(
            "anaheim_serve_unit_seconds",
            "Simulated seconds per serve unit (run/bench: schedule "
            "total_time; analytic faults: faulted timeline)",
            labelnames=("kind", "workload"),
            buckets=UNIT_SECONDS_BUCKETS)
        self.retries = registry.counter(
            "anaheim_serve_retries_total", "Unit retry attempts")
        self.backoff = registry.counter(
            "anaheim_serve_backoff_seconds_total",
            "Deterministic backoff charged to job service time")
        self.failures = registry.counter(
            "anaheim_serve_unit_failures_total",
            "Unit attempts that raised a ReproError")
        self.deadline_skips = registry.counter(
            "anaheim_serve_deadline_skips_total",
            "Units skipped because the job deadline had passed")
        self.restored = registry.counter(
            "anaheim_serve_units_restored_total",
            "Units restored from a checkpoint instead of re-executed")


def _unit_seconds(kind: str, doc: dict):
    """Simulated seconds represented by one unit doc, if any.

    Wall clocks never feed the latency histogram: run/bench units
    report the schedule's simulated ``total_time``; analytic fault
    units report the faulted timeline.  Functional fault units have no
    simulated clock (their wall time is optional and non-deterministic)
    so they only count, never time.
    """
    result = doc.get("result")
    if not isinstance(result, dict):
        return None
    if kind == "faults":
        return result.get("faulted_time_s")
    report = result.get("report")
    if isinstance(report, dict):
        return report.get("total_time")
    metrics = result.get("metrics")
    if isinstance(metrics, dict):
        return metrics.get("total_time")
    return None


class JobRunner:
    """Executes a job matrix under a :class:`ServePolicy`.

    ``max_units`` bounds how many units run *fresh* this invocation —
    the hook the smoke test and the resume tests use to simulate a
    mid-campaign kill (the checkpoint survives; a fresh runner with
    ``resume_path`` picks up where this one stopped).  ``clock`` is the
    wall-clock source for deadlines (injectable for tests).

    ``workers > 1`` fans fresh units out across a
    :class:`~repro.parallel.WorkerPool` (``threads`` is the per-worker
    kernel thread count); results are committed in matrix order so
    every document, checkpoint, and metrics digest is byte-identical
    to ``workers=1``.  ``worker_metrics`` is an optional *separate*
    registry for per-worker attribution (``anaheim_worker_*``), and
    ``pool_task_fn`` is the picklable worker entry point (the test
    seam; defaults to :func:`_pool_attempt`).
    """

    def __init__(self, jobs, policy: ServePolicy, gpu=None, pim=None,
                 library=None, checkpoint_path=None, resume_path=None,
                 checkpoint_keep: int | None = None,
                 max_units: int | None = None, tracer=None,
                 metrics=None, on_unit=None,
                 clock=time.monotonic,
                 deadline_fatal: bool = False,
                 workers: int = 1, threads: int = 1,
                 worker_metrics=None, pool_task_fn=None):
        self.jobs = list(jobs)
        self.policy = policy
        self.gpu = gpu
        self.pim = pim
        self.library = library
        self.tracer = tracer
        #: Serving metrics (all values derived from the *simulated*
        #: timeline and deterministic unit documents — never wall
        #: clocks — so seeded runs produce identical snapshots).
        self.metrics = metrics
        #: Progress hook: ``on_unit(job, unit, doc, fresh)`` fires
        #: after every unit lands (freshly executed or restored from a
        #: checkpoint) — the seam ``repro top`` renders from.
        self.on_unit = on_unit
        self.clock = clock
        self.max_units = max_units
        self.deadline_fatal = deadline_fatal
        if workers < 1:
            raise ParameterError("worker count must be >= 1")
        self.workers = workers
        self.threads = threads
        self.worker_metrics = worker_metrics
        self.pool_task_fn = (pool_task_fn if pool_task_fn is not None
                             else _pool_attempt)
        #: Per-worker progress (label -> units/busy_s/last_unit), the
        #: seam ``repro top`` renders worker rows from.
        self.worker_status: dict = {}
        self._wm = (_WorkerTelemetry(worker_metrics)
                    if worker_metrics is not None else None)
        self._pool = None
        self._worker_labels: dict = {}
        self._m = _ServeMetrics(metrics) if metrics is not None else None
        self.digest = matrix_digest([j.canonical() for j in self.jobs],
                                    policy.canonical())
        fault_digest = policy.fault_plan_digest()
        completed = (load_checkpoint(resume_path, self.digest,
                                     expected_fault_digest=fault_digest)
                     if resume_path else {})
        self.checkpointer = Checkpointer(checkpoint_path, self.digest,
                                         every=policy.checkpoint_every,
                                         keep=checkpoint_keep,
                                         fault_plan_digest=fault_digest)
        self.checkpointer.units.update(completed)
        self.resumed_units = len(completed)
        self._fresh_units = 0

    # -- Unit execution ------------------------------------------------------

    def _paper_setup(self, workload_name: str):
        from repro.params import paper_params
        from repro.workloads import applications as apps
        params = paper_params()
        return apps.build(workload_name, params), params

    def _framework(self, degraded: bool):
        """A framework for one run/bench unit.

        ``degraded``: an earlier unit of this job ended GPU_ONLY, so
        this unit is *re-lowered* without PIM offload from the start
        (fresh health state would be meaningless — there is no PIM
        hardware left in the schedule to monitor).
        """
        from repro.core.framework import AnaheimFramework
        from repro.faults.plan import default_plan
        from repro.gpu.configs import A100_80GB
        from repro.pim.configs import A100_NEAR_BANK
        gpu = self.gpu if self.gpu is not None else A100_80GB
        pim = self.pim if self.pim is not None else A100_NEAR_BANK
        policy = self.policy
        plan = None
        if policy.fault_seed is not None:
            plan = default_plan(seed=policy.fault_seed,
                                scale=policy.fault_scale,
                                stuck_sites=policy.stuck_sites)
        ras = policy.ras_config()
        kwargs = dict(library=self.library) if self.library is not None \
            else {}
        if degraded:
            # GPU-only re-lowering has no PIM banks left to scrub, so
            # the RAS config is dropped along with the offload.
            return AnaheimFramework(gpu, None, fault_plan=plan,
                                    kernel_timeout=policy.kernel_timeout_s,
                                    tracer=self.tracer,
                                    metrics=self.metrics, **kwargs), None
        guarded = plan is not None or ras is not None
        health = (policy.health_monitor(self.tracer, self.metrics)
                  if guarded else None)
        breakers = (policy.breaker_board(self.tracer, self.metrics)
                    if guarded else None)
        return AnaheimFramework(gpu, pim, fault_plan=plan,
                                ras_config=ras,
                                health=health, breakers=breakers,
                                kernel_timeout=policy.kernel_timeout_s,
                                tracer=self.tracer,
                                metrics=self.metrics, **kwargs), health

    def _run_unit(self, workload_name: str, degraded: bool,
                  metrics_only: bool) -> dict:
        from repro.obs.baseline import baseline_metrics
        from repro.obs.export import report_dict
        workload, params = self._paper_setup(workload_name)
        framework, health = self._framework(degraded)
        gpu = framework.gpu
        if not workload.memory.fits(gpu.dram_capacity):
            return {"workload": workload_name, "status": "oom",
                    "needs": workload.memory.describe(),
                    "end_state": "failed"}
        result = framework.run(workload.blocks, params.degree,
                               label=workload_name)
        report = result.report
        doc = {
            "workload": workload_name,
            "status": "ok",
            "lowering": result.options.describe(),
            "degraded_lowering": degraded,
            "end_state": (health.state.value if health is not None
                          else ("gpu-only" if degraded else "healthy")),
        }
        if metrics_only:
            doc["metrics"] = baseline_metrics(report)
        else:
            doc["report"] = report_dict(report)
        return doc

    def _faults_unit(self, job: JobSpec, unit: str) -> dict:
        from repro.faults.campaign import run_campaign_unit
        layer, seed_text = unit.split("/")
        policy = self.policy
        health = (policy.health_monitor(self.tracer, self.metrics)
                  if layer == "analytic" else None)
        breakers = (policy.breaker_board(self.tracer, self.metrics)
                    if layer == "analytic" else None)
        return run_campaign_unit(
            layer, int(seed_text), scale=policy.fault_scale,
            workload=job.workloads[0], stuck_sites=policy.stuck_sites,
            record_wall=policy.record_wall, gpu=self.gpu, pim=self.pim,
            health=health, breakers=breakers,
            kernel_timeout=policy.kernel_timeout_s,
            metrics=self.metrics)

    def _execute_unit(self, job: JobSpec, unit: str,
                      degraded: bool) -> dict:
        """One unit's result payload (overridable seam for tests)."""
        if job.kind == "faults":
            return self._faults_unit(job, unit)
        return self._run_unit(unit, degraded,
                              metrics_only=job.kind == "bench")

    # -- The retry loop ------------------------------------------------------

    def _attempt_unit(self, job: JobSpec, unit: str, key: str,
                      degraded: bool) -> dict:
        """Unit doc after bounded retries with seeded backoff."""
        retry = self.policy.retry_policy()
        backoffs: list = []
        attempt = 0
        while True:
            try:
                result = self._execute_unit(job, unit, degraded)
            except ReproError as exc:
                if self.tracer is not None:
                    self.tracer.count("serve.unit_failures")
                if self._m is not None:
                    self._m.failures.inc()
                if attempt < retry.max_retries:
                    delay = retry.delay(key, attempt)
                    backoffs.append(delay)
                    if self.tracer is not None:
                        self.tracer.count("serve.retries")
                        self.tracer.count("serve.backoff_s", delay)
                    if self._m is not None:
                        self._m.retries.inc()
                        self._m.backoff.inc(delay)
                    attempt += 1
                    continue
                return {"status": "failed", "attempts": attempt + 1,
                        "backoff_s": backoffs,
                        "error": f"{exc.__class__.__name__}: {exc}"}
            status = result.get("status", "ok") if isinstance(
                result, dict) else "ok"
            return {"status": status, "attempts": attempt + 1,
                    "backoff_s": backoffs, "result": result}

    def _attempt_unit_isolated(self, job: JobSpec, unit: str, key: str,
                               degraded: bool) -> dict:
        """The retry loop against a fresh per-unit registry, merged
        back afterwards.

        This makes the serial path perform the *same float additions*
        as the worker pool (per-unit subtotals folded in unit order).
        Float addition is not associative, so accumulating every kernel
        directly into the job-lifetime registry would differ from the
        merged per-unit subtotals in the last bits — and ``--workers
        N`` must digest-match ``--workers 1`` exactly.
        """
        if self.metrics is None:
            return self._attempt_unit(job, unit, key, degraded)
        from repro.obs.metrics import MetricsRegistry
        registry = MetricsRegistry()
        saved_metrics, saved_m = self.metrics, self._m
        self.metrics = registry
        self._m = _ServeMetrics(registry)
        try:
            doc = self._attempt_unit(job, unit, key, degraded)
        finally:
            self.metrics, self._m = saved_metrics, saved_m
        self.metrics.merge(registry)
        return doc

    # -- Unit accounting -----------------------------------------------------

    def _observe_unit(self, job: JobSpec, unit: str, doc: dict) -> None:
        """Count one fresh unit and time it on the simulated clock."""
        if self._m is None:
            return
        self._m.units.inc(kind=job.kind, status=doc.get("status", "ok"))
        seconds = _unit_seconds(job.kind, doc)
        if seconds is not None:
            workload = unit if job.kind != "faults" else (
                (doc.get("result") or {}).get("workload", ""))
            self._m.unit_seconds.observe(seconds, kind=job.kind,
                                         workload=workload)

    def _notify(self, job: JobSpec, unit: str, doc: dict,
                fresh: bool) -> None:
        if self.on_unit is not None:
            self.on_unit(job, unit, doc, fresh)

    # -- The matrix ----------------------------------------------------------

    def _job_degraded(self, job: JobSpec, unit_docs: dict) -> bool:
        """Did an earlier unit of this job end degraded-or-worse?

        Read from recorded documents (never live monitors) so fresh and
        resumed runs see identical carry-over state.
        """
        if job.kind == "faults":
            return False
        if job.degraded_start:
            return True
        for doc in unit_docs.values():
            result = doc.get("result") or {}
            if result.get("end_state") in _DEGRADED_END_STATES:
                return True
        return False

    def _check_deadline(self, job: JobSpec, started: float) -> bool:
        """True iff ``job``'s serve deadline has passed.

        The single seam for both execution paths: counts the event,
        and raises :class:`DeadlineError` when deadlines are fatal.
        """
        deadline = self.policy.deadline_s
        if deadline is None or self.clock() - started <= deadline:
            return False
        if self.tracer is not None:
            self.tracer.count("serve.deadline_exceeded")
        if self.deadline_fatal:
            raise DeadlineError(
                f"job {job.id} exceeded its {deadline}s deadline")
        return True

    def _skip_deadline(self, job: JobSpec, unit: str,
                       unit_docs: dict) -> None:
        """Record ``unit`` as deadline-skipped and notify."""
        unit_docs[unit] = {"status": "deadline-skipped"}
        if self._m is not None:
            self._m.deadline_skips.inc()
        self._notify(job, unit, unit_docs[unit], fresh=False)

    def _assemble_job(self, job: JobSpec, unit_docs: dict,
                      status: str) -> dict:
        doc = {
            "id": job.id,
            "kind": job.kind,
            "status": status,
            "units": unit_docs,
            "service_time_s": sum(sum(d.get("backoff_s", []))
                                  for d in unit_docs.values()),
            "retries": sum(max(0, d.get("attempts", 1) - 1)
                           for d in unit_docs.values()),
        }
        if job.kind == "faults":
            from repro.faults.campaign import assemble_matrix
            results = {unit: d["result"] for unit, d in unit_docs.items()
                       if d.get("status") == "ok"}
            campaign = assemble_matrix(
                results, self.policy.seeds, scale=self.policy.fault_scale,
                stuck_sites=self.policy.stuck_sites)
            doc["campaign"] = campaign
            if status == "ok" and not campaign["gate"]["passed"]:
                doc["status"] = "failed"
        return doc

    # -- The worker pool -----------------------------------------------------

    def _worker_pool(self):
        from repro.parallel import WorkerPool, worker_warmup
        if self._pool is None:
            self._pool = WorkerPool(self.workers,
                                    initializer=worker_warmup,
                                    initargs=(self.threads,))
        return self._pool

    def _worker_label(self, pid: int) -> str:
        """Stable display label per worker pid, in commit order
        (``parent`` for crash-recovery units re-run inline)."""
        if pid < 0:
            return "parent"
        label = self._worker_labels.get(pid)
        if label is None:
            label = f"w{len(self._worker_labels)}"
            self._worker_labels[pid] = label
        return label

    def _account_worker(self, key: str, pid: int, wall_s: float) -> None:
        label = self._worker_label(pid)
        status = self.worker_status.setdefault(
            label, {"units": 0, "busy_s": 0.0, "last_unit": ""})
        status["units"] += 1
        status["busy_s"] += wall_s
        status["last_unit"] = key
        if self._wm is not None:
            self._wm.units.inc(worker=label)
            self._wm.busy.inc(wall_s, worker=label)

    def _unit_task(self, job: JobSpec, unit: str, key: str,
                   degraded: bool) -> _UnitTask:
        return _UnitTask(policy=self.policy, job=job, unit=unit, key=key,
                         degraded=degraded,
                         collect_metrics=self.metrics is not None,
                         gpu=self.gpu, pim=self.pim, library=self.library)

    def _run_job_parallel(self, job: JobSpec) -> dict:
        """The matrix walk with fresh units fanned out to the pool.

        Byte-identity with the serial path holds because results are
        *committed* strictly in matrix order — checkpoint records,
        metric merges, and notifications happen exactly as a serial
        run would have issued them — regardless of which worker
        finished first.  Degradation carry-over is speculative: every
        fresh unit dispatches with the flag known at dispatch time; if
        a committed unit flips the job degraded, the not-yet-committed
        speculative results are discarded and the rest redispatched
        re-lowered (the flag is monotone, so at most one redispatch).
        A crashed worker costs one unit, re-run inline in the parent
        through the same ``pool_task_fn``.  Deadlines are checked per
        dispatch round (between rounds, progress is kept).
        """
        from repro.obs.tracer import maybe_span
        policy = self.policy
        unit_docs: dict = {}
        status = "ok"
        started = self.clock()
        units = job.units(policy.seeds)
        with maybe_span(self.tracer, "serve.job", id=job.id,
                        kind=job.kind):
            fresh: list = []
            for unit in units:
                key = f"{job.id}:{unit}"
                stored = self.checkpointer.units.get(key)
                if stored is not None:
                    unit_docs[unit] = stored
                    if self._m is not None:
                        self._m.restored.inc()
                    self._notify(job, unit, stored, fresh=False)
                else:
                    fresh.append((unit, key))
            interrupted = False
            if self.max_units is not None:
                budget = max(0, self.max_units - self._fresh_units)
                if len(fresh) > budget:
                    interrupted = True
                    fresh = fresh[:budget]
            pending = list(fresh)
            while pending:
                if self._check_deadline(job, started):
                    status = "deadline-exceeded"
                    for unit, key in pending:
                        self._skip_deadline(job, unit, unit_docs)
                    break
                degraded = self._job_degraded(job, unit_docs)
                tasks = [self._unit_task(job, unit, key, degraded)
                         for unit, key in pending]
                results = self._worker_pool().run(self.pool_task_fn,
                                                  tasks)
                committed = 0
                for (unit, key), task, res in zip(pending, tasks,
                                                  results):
                    if self._job_degraded(job, unit_docs) \
                            != task.degraded:
                        break
                    if res.crashed:
                        if self.tracer is not None:
                            self.tracer.count("serve.worker_crashes")
                        if self._wm is not None:
                            self._wm.crashes.inc()
                        inline_start = time.perf_counter()
                        doc, registry = self.pool_task_fn(task)
                        self._account_worker(
                            key, -1, time.perf_counter() - inline_start)
                    else:
                        doc, registry = res.value
                        self._account_worker(key, res.worker, res.wall_s)
                    if registry is not None and self.metrics is not None:
                        self.metrics.merge(registry)
                    self._fresh_units += 1
                    unit_docs[unit] = doc
                    self.checkpointer.record(key, doc)
                    self._observe_unit(job, unit, doc)
                    self._notify(job, unit, doc, fresh=True)
                    if doc["status"] not in ("ok",):
                        status = "failed"
                    committed += 1
                pending = pending[committed:]
            if interrupted:
                raise _Interrupted()
        ordered = {unit: unit_docs[unit] for unit in units
                   if unit in unit_docs}
        return self._assemble_job(job, ordered, status)

    def _run_job(self, job: JobSpec) -> dict:
        if self.workers > 1:
            return self._run_job_parallel(job)
        from repro.obs.tracer import maybe_span
        policy = self.policy
        unit_docs: dict = {}
        status = "ok"
        started = self.clock()
        with maybe_span(self.tracer, "serve.job", id=job.id,
                        kind=job.kind):
            for unit in job.units(policy.seeds):
                key = f"{job.id}:{unit}"
                stored = self.checkpointer.units.get(key)
                if stored is not None:
                    unit_docs[unit] = stored
                    if self._m is not None:
                        self._m.restored.inc()
                    self._notify(job, unit, stored, fresh=False)
                    continue
                if self._check_deadline(job, started):
                    status = "deadline-exceeded"
                    self._skip_deadline(job, unit, unit_docs)
                    continue
                if (self.max_units is not None
                        and self._fresh_units >= self.max_units):
                    raise _Interrupted()
                degraded = self._job_degraded(job, unit_docs)
                doc = self._attempt_unit_isolated(job, unit, key,
                                                  degraded)
                self._fresh_units += 1
                unit_docs[unit] = doc
                self.checkpointer.record(key, doc)
                self._observe_unit(job, unit, doc)
                self._notify(job, unit, doc, fresh=True)
                if doc["status"] not in ("ok",):
                    status = "failed"
        return self._assemble_job(job, unit_docs, status)

    def run(self) -> dict:
        """Execute the matrix; the serve document (JSON-safe, and —
        wall clocks aside — a pure function of jobs + policy)."""
        job_docs: list = []
        interrupted = False
        try:
            for job in self.jobs:
                job_docs.append(self._run_job(job))
        except _Interrupted:
            interrupted = True
            self.checkpointer.flush()
        finally:
            if self._pool is not None:
                self._pool.shutdown()
                self._pool = None
        # NB: ``resumed_units`` is deliberately NOT part of the document
        # — a resumed run must be byte-identical to an uninterrupted
        # one, and only this field would differ.  It stays available as
        # an attribute for display.
        document = {
            "tool": "anaheim-repro",
            "kind": "serve",
            "version": 1,
            "matrix_digest": self.digest,
            "policy": self.policy.canonical(),
            "interrupted": interrupted,
            "jobs": job_docs,
            "ok": (not interrupted
                   and all(j["status"] == "ok" for j in job_docs)),
        }
        if not interrupted:
            self.checkpointer.flush()
        return document
