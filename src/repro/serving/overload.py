"""The overload simulation: traffic x admission x service, one clock.

:func:`simulate_overload` replays a seeded open-loop arrival stream
(:mod:`repro.serving.traffic`) against one analytically-modeled server
through the admission policy (:mod:`repro.serving.admission`), entirely
on the simulated clock:

* arrivals are offered in time order; each is admitted, rate-limited,
  rejected at the door (queue full / deadline infeasible), or admitted
  and later shed at a watermark crossing;
* the server drains the bounded queue in priority order; a job whose
  effective deadline already expired when the server reaches it is
  shed (``expired``) instead of wasting service time;
* chaos events (site quarantines on the simulated timeline) and
  sustained overload both feed the same
  :class:`~repro.serving.health.HealthMonitor`; at GPU_ONLY the
  remaining dispatches re-lower to GPU-only service costs and
  brownout-widened deadlines.

Every decision, completion, and summary number is a pure function of
``(spec, tenants, policy, cost model, chaos)`` — byte-identical across
runs and worker counts.  :func:`run_overload_serve` is the end-to-end
wiring: the simulation decides, then a
:class:`~repro.serving.jobs.JobRunner` *executes* the dispatched jobs
in decision order (serially or across a worker pool), with GPU-only
dispatches re-lowered via ``JobSpec.degraded_start``.
"""

from __future__ import annotations

import hashlib
import random

from repro.serving.admission import (AdmissionController, AdmissionPolicy,
                                     CostModel)
from repro.serving.traffic import generate_arrivals


def chaos_events(fault_seed: int, duration_s: float, scale: float = 1.0,
                 sites=(1, 5, 9)) -> tuple:
    """Seeded PIM-site quarantine times for a chaos soak.

    Derived from the :class:`~repro.faults.plan.FaultPlan` digest for
    the same seed/scale, so the chaos stream is bound to the fault
    plan it stands in for: same plan, same quarantine schedule.
    """
    from repro.faults.plan import default_plan
    plan = default_plan(seed=fault_seed, scale=scale)
    rng = random.Random(int.from_bytes(
        hashlib.sha256(f"chaos/{plan.digest()}".encode()).digest()[:8],
        "little"))
    count = max(1, min(len(sites), round(len(sites) * min(scale, 1.0))))
    times = sorted(rng.uniform(0.0, duration_s) for _ in range(count))
    return tuple({"t_s": t, "event": "quarantine", "site": site}
                 for t, site in zip(times, sites))


def _percentile(sorted_values, q: float) -> float:
    """Nearest-rank percentile of an already-sorted list (0.0 empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(q * len(sorted_values))))
    return sorted_values[rank]


def simulate_overload(spec, tenants, policy: AdmissionPolicy,
                      cost_model: CostModel, health=None, chaos=(),
                      metrics=None, tracer=None) -> dict:
    """Run the open-loop overload simulation; the decision document.

    ``health`` is shared state: chaos quarantines and brownout both
    escalate it, and its level selects service mode and deadline
    widening.  After the last arrival the queue drains fully, so every
    admitted job ends completed or cleanly shed.
    """
    arrivals = generate_arrivals(spec, tenants)
    controller = AdmissionController(policy, cost_model, tenants,
                                     health=health, metrics=metrics,
                                     tracer=tracer)
    events = [(arrival.t_s, 0, "arrival", arrival)
              for arrival in arrivals]
    events += [(event["t_s"], 1, "chaos", event) for event in chaos]
    events.sort(key=lambda e: (e[0], e[1]))

    free_at = 0.0
    completions: list = []
    waits: list = []

    def dispatch_one() -> None:
        """Serve (or expire) the head of the queue."""
        nonlocal free_at
        item = controller.queue.pop()
        start = max(free_at, item.enqueued_s)
        arrival = item.arrival
        deadline = controller.effective_deadline(arrival)
        if deadline is not None and start > arrival.t_s + deadline:
            controller.record_shed(item, "expired")
            return
        mode = controller.mode
        cost = cost_model.cost(arrival.kind, arrival.workload, mode)
        done = start + cost
        free_at = done
        wait = start - arrival.t_s
        waits.append(wait)
        controller.record_wait(wait)
        completions.append({
            "index": arrival.index, "tenant": arrival.tenant,
            "kind": arrival.kind, "workload": arrival.workload,
            "priority": arrival.priority, "t_arrival_s": arrival.t_s,
            "t_start_s": start, "t_done_s": done,
            "queue_wait_s": wait, "cost_s": cost, "mode": mode,
            "met_deadline": (deadline is None
                             or done <= arrival.t_s + deadline),
        })

    for t, _, kind, payload in events:
        # Serve everything the server can finish strictly before t.
        while controller.queue.depth and free_at < t:
            dispatch_one()
        if kind == "chaos":
            if health is not None:
                health.note_quarantine(payload["site"], t)
            continue
        backlog = max(0.0, free_at - t)
        controller.offer(payload, t, server_backlog_s=backlog)
    while controller.queue.depth:                       # drain
        dispatch_one()

    hits = sum(1 for c in completions if c["met_deadline"])
    waits.sort()
    shed_total = sum(controller.shed_counts.values())
    rejected_total = sum(v for k, v in controller.counts.items()
                         if k != "admitted")
    summary = {
        "offered": len(arrivals),
        "offered_qps": len(arrivals) / spec.duration_s,
        "admitted": controller.counts["admitted"],
        "rejected": {k: controller.counts[k]
                     for k in ("rate-limited", "queue-full",
                               "deadline-infeasible")},
        "rejected_total": rejected_total,
        "shed": dict(controller.shed_counts),
        "shed_total": shed_total,
        "completed": len(completions),
        "deadline_hits": hits,
        "deadline_misses": len(completions) - hits,
        "goodput_qps": hits / spec.duration_s,
        "shed_rate": (shed_total / len(arrivals)) if arrivals else 0.0,
        "reject_rate": (rejected_total / len(arrivals)) if arrivals
        else 0.0,
        "queue": {
            "cap": policy.queue_cap,
            "peak_depth": controller.queue.peak_depth,
            "wait_p50_s": _percentile(waits, 0.50),
            "wait_p95_s": _percentile(waits, 0.95),
            "wait_max_s": waits[-1] if waits else 0.0,
        },
        "brownout": ({"state": health.state.value,
                      "events": list(health.events)}
                     if health is not None else None),
        "makespan_s": free_at,
    }
    return {"spec": spec.canonical(),
            "tenants": [tenant.canonical() for tenant in tenants],
            "policy": policy.canonical(),
            "chaos": [dict(event) for event in chaos],
            "summary": summary,
            "decisions": controller.decisions,
            "completions": completions}


def check_invariants(sim: dict) -> list:
    """Conservation checks a soak cell must satisfy; violations list.

    Every offered arrival is admitted or rejected; every admitted job
    is completed or cleanly shed; service intervals are well-ordered.
    """
    summary = sim["summary"]
    violations = []
    if summary["offered"] != summary["admitted"] \
            + summary["rejected_total"]:
        violations.append(
            f"offered {summary['offered']} != admitted "
            f"{summary['admitted']} + rejected "
            f"{summary['rejected_total']}")
    if summary["admitted"] != summary["completed"] \
            + summary["shed_total"]:
        violations.append(
            f"admitted {summary['admitted']} != completed "
            f"{summary['completed']} + shed {summary['shed_total']}")
    for completion in sim["completions"]:
        if not (completion["t_arrival_s"] <= completion["t_start_s"]
                <= completion["t_done_s"]):
            violations.append(
                f"job {completion['index']} served out of order: "
                f"arrival {completion['t_arrival_s']:.6f}, start "
                f"{completion['t_start_s']:.6f}, done "
                f"{completion['t_done_s']:.6f}")
    if summary["queue"]["peak_depth"] > summary["queue"]["cap"]:
        violations.append(
            f"peak depth {summary['queue']['peak_depth']} exceeded "
            f"cap {summary['queue']['cap']}")
    return violations


def jobs_from_completions(completions) -> list:
    """Executable :class:`~repro.serving.jobs.JobSpec` list, one per
    dispatched job, in dispatch order.

    GPU-mode dispatches (brownout / chaos re-lowering) carry
    ``degraded_start=True`` so the runner lowers them without PIM
    offload from the first unit — the same §VII-D fallback schedule
    the health machinery uses mid-run.
    """
    from repro.serving.jobs import JobSpec
    jobs = []
    for completion in completions:
        kind = completion["kind"]
        jobs.append(JobSpec(
            id=f"a{completion['index']}-{kind}", kind=kind,
            workloads=(completion["workload"],),
            layers=("analytic",) if kind == "faults" else (),
            degraded_start=completion["mode"] == "gpu"))
    return jobs


def run_overload_serve(spec, tenants, admission_policy, serve_policy,
                       gpu=None, pim=None, library=None, chaos=(),
                       cost_model=None, metrics=None, tracer=None,
                       workers: int = 1, threads: int = 1,
                       checkpoint_path=None, resume_path=None,
                       checkpoint_keep=None, max_units=None,
                       on_unit=None, worker_metrics=None):
    """Simulate admission, then execute the dispatched jobs.

    Returns ``(document, runner)``: the serve document with an
    ``admission`` section (simulation summary + every decision) and
    the jobs the :class:`~repro.serving.jobs.JobRunner` actually
    executed, committed in dispatch order.  Decisions are made once,
    before execution, so they are byte-identical for any ``workers``;
    the runner's ordered-commit discipline keeps unit documents and
    metric digests identical too.
    """
    from repro.serving.jobs import JobRunner
    if cost_model is None:
        workloads = sorted({entry[1] for tenant in tenants
                            for entry in tenant.mix})
        cost_model = CostModel.from_model(gpu=gpu, pim=pim,
                                          library=library,
                                          workloads=workloads,
                                          ras=serve_policy.ras_config())
    health = serve_policy.health_monitor(tracer, metrics)
    sim = simulate_overload(spec, tenants, admission_policy, cost_model,
                            health=health, chaos=chaos, metrics=metrics,
                            tracer=tracer)
    jobs = jobs_from_completions(sim["completions"])
    runner = JobRunner(jobs, serve_policy, gpu=gpu, pim=pim,
                       library=library, checkpoint_path=checkpoint_path,
                       resume_path=resume_path,
                       checkpoint_keep=checkpoint_keep,
                       max_units=max_units, tracer=tracer,
                       metrics=metrics, on_unit=on_unit,
                       workers=workers, threads=threads,
                       worker_metrics=worker_metrics)
    document = runner.run()
    document["admission"] = {
        "spec": sim["spec"], "tenants": sim["tenants"],
        "policy": sim["policy"], "chaos": sim["chaos"],
        "summary": sim["summary"], "decisions": sim["decisions"],
    }
    return document, runner
