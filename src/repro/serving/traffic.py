"""Seeded open-loop traffic: arrival processes and tenant mixes.

The overload layer needs load it can reason about deterministically.
This module generates it: an **open-loop** arrival stream (arrivals
keep coming at the offered rate whether or not the server keeps up —
the regime where admission control matters) on the **simulated clock**,
drawn from a seeded :class:`random.Random` so the same
:class:`ArrivalSpec` always produces the byte-identical arrival list.

Two processes:

* ``poisson:<qps>`` — homogeneous Poisson arrivals at ``qps``
  (exponential inter-arrival times);
* ``burst:<qps>:<factor>:<period_s>`` — an on/off modulated Poisson
  process: during the first half of every ``period_s`` window the rate
  is ``qps * factor``, during the second half it is ``qps`` (generated
  by thinning a ``qps * factor`` stream, so it stays a well-defined
  non-homogeneous Poisson process).

Each arrival is attributed to a **tenant** drawn by weight; the tenant
fixes the job mix (run/bench/faults kinds over the paper workloads),
the priority class, the per-job deadline, and the tenant's token-bucket
rate share.  :data:`DEFAULT_TENANTS` models the classic three-class
serving split: latency-sensitive ``premium`` traffic, ``standard``
interactive traffic, and best-effort ``batch`` campaigns.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from repro.errors import ParameterError


@dataclass(frozen=True)
class TenantSpec:
    """One traffic class: weight, priority, deadline, rate share, mix.

    ``priority`` 0 is the highest (shed last); ``deadline_s`` is in
    simulated seconds (``None`` = best effort); ``rate_qps`` caps the
    tenant's admitted rate via a token bucket (``None`` = uncapped);
    ``mix`` is a weighted tuple of ``(kind, workload, weight)``.
    """

    name: str
    weight: float = 1.0
    priority: int = 1
    deadline_s: float | None = None
    rate_qps: float | None = None
    burst: int = 4
    mix: tuple = (("run", "Boot", 1.0),)

    def canonical(self) -> dict:
        return {"name": self.name, "weight": self.weight,
                "priority": self.priority, "deadline_s": self.deadline_s,
                "rate_qps": self.rate_qps, "burst": self.burst,
                "mix": [list(entry) for entry in self.mix]}


#: The default three-class tenant population.  Deadlines are sized
#: against the analytic model's per-job service times (tens of
#: simulated milliseconds for Boot/HELR on A100 + near-bank PIM).
DEFAULT_TENANTS = (
    TenantSpec(name="premium", weight=3.0, priority=0, deadline_s=0.25,
               rate_qps=None, mix=(("run", "Boot", 3.0),
                                   ("run", "HELR", 1.0))),
    TenantSpec(name="standard", weight=2.0, priority=1, deadline_s=1.0,
               rate_qps=None, mix=(("run", "Boot", 2.0),
                                   ("bench", "HELR", 1.0))),
    TenantSpec(name="batch", weight=1.0, priority=2, deadline_s=None,
               rate_qps=4.0, mix=(("bench", "HELR", 1.0),
                                  ("faults", "Boot", 1.0))),
)


def parse_tenants(text: str, base=DEFAULT_TENANTS) -> tuple:
    """Tenant tuple from a ``name:weight[,name:weight..]`` CLI string.

    Names must come from ``base`` (the attribute template — mix,
    priority, deadline — is data, not something to re-specify on a
    command line); the weight is overridden per entry.  Weight 0 drops
    the tenant from the population.
    """
    if not text:
        return tuple(base)
    known = {tenant.name: tenant for tenant in base}
    out = []
    for token in text.split(","):
        parts = token.split(":")
        if len(parts) != 2 or parts[0] not in known:
            raise ParameterError(
                f"tenant {token!r}: expected name:weight with name in "
                f"{sorted(known)}")
        try:
            weight = float(parts[1])
        except ValueError:
            raise ParameterError(
                f"tenant {token!r}: weight must be a number") from None
        if weight < 0:
            raise ParameterError(f"tenant {token!r}: weight must be >= 0")
        if weight > 0:
            base_tenant = known[parts[0]]
            out.append(TenantSpec(
                name=base_tenant.name, weight=weight,
                priority=base_tenant.priority,
                deadline_s=base_tenant.deadline_s,
                rate_qps=base_tenant.rate_qps, burst=base_tenant.burst,
                mix=base_tenant.mix))
    if not out:
        raise ParameterError("tenant list selects no tenants")
    return tuple(out)


@dataclass(frozen=True)
class ArrivalSpec:
    """One arrival process: shape, rate, duration, seed."""

    process: str                 # "poisson" | "burst"
    rate_qps: float
    duration_s: float
    burst_factor: float = 4.0
    burst_period_s: float = 1.0
    seed: int = 0

    def canonical(self) -> dict:
        return {"process": self.process, "rate_qps": self.rate_qps,
                "duration_s": self.duration_s,
                "burst_factor": self.burst_factor,
                "burst_period_s": self.burst_period_s, "seed": self.seed}


def parse_arrival_spec(text: str, duration_s: float,
                       seed: int = 0) -> ArrivalSpec:
    """An :class:`ArrivalSpec` from the CLI's ``--arrivals`` token:
    ``poisson:<qps>`` or ``burst:<qps>[:<factor>[:<period_s>]]``."""
    parts = text.split(":")
    process = parts[0]
    if process not in ("poisson", "burst"):
        raise ParameterError(
            f"arrivals {text!r}: expected poisson:<qps> or "
            f"burst:<qps>[:<factor>[:<period_s>]]")
    try:
        rate = float(parts[1]) if len(parts) > 1 else float("nan")
        factor = float(parts[2]) if len(parts) > 2 else 4.0
        period = float(parts[3]) if len(parts) > 3 else 1.0
    except ValueError:
        raise ParameterError(
            f"arrivals {text!r}: rate/factor/period must be numbers"
        ) from None
    if len(parts) < 2 or not rate > 0:
        raise ParameterError(f"arrivals {text!r}: needs a rate > 0 qps")
    if process == "burst" and (factor < 1.0 or period <= 0):
        raise ParameterError(
            f"arrivals {text!r}: burst factor must be >= 1 and period "
            f"> 0")
    if duration_s <= 0:
        raise ParameterError("arrival duration must be > 0 seconds")
    return ArrivalSpec(process=process, rate_qps=rate,
                       duration_s=duration_s, burst_factor=factor,
                       burst_period_s=period, seed=seed)


@dataclass(frozen=True)
class Arrival:
    """One offered job: when it arrives and what it asks for."""

    index: int
    t_s: float
    tenant: str
    kind: str                    # "run" | "bench" | "faults"
    workload: str
    priority: int
    deadline_s: float | None

    @property
    def key(self) -> str:
        return f"a{self.index}-{self.tenant}-{self.kind}:{self.workload}"


def _stream_rng(seed: int, stream: str) -> random.Random:
    """An independent deterministic generator per (seed, stream)."""
    material = f"anaheim-traffic/{seed}/{stream}".encode()
    return random.Random(
        int.from_bytes(hashlib.sha256(material).digest()[:8], "little"))


def _weighted_choice(rng: random.Random, items, weights) -> object:
    total = sum(weights)
    mark = rng.random() * total
    acc = 0.0
    for item, weight in zip(items, weights):
        acc += weight
        if mark < acc:
            return item
    return items[-1]


def _arrival_times(spec: ArrivalSpec, rng: random.Random) -> list:
    """Event times for the process, strictly inside ``duration_s``."""
    if spec.process == "poisson":
        times, t = [], 0.0
        while True:
            t += rng.expovariate(spec.rate_qps)
            if t >= spec.duration_s:
                return times
            times.append(t)
    # Burst: thin a max-rate stream down to the piecewise rate.
    max_rate = spec.rate_qps * spec.burst_factor
    times, t = [], 0.0
    while True:
        t += rng.expovariate(max_rate)
        if t >= spec.duration_s:
            return times
        in_burst = (t % spec.burst_period_s) < spec.burst_period_s / 2.0
        rate = max_rate if in_burst else spec.rate_qps
        if rng.random() < rate / max_rate:
            times.append(t)


def generate_arrivals(spec: ArrivalSpec,
                      tenants=DEFAULT_TENANTS) -> list:
    """The full arrival list — a pure function of ``(spec, tenants)``.

    Times, tenant attribution, and job selection draw from independent
    seeded streams, so changing the tenant population does not perturb
    the arrival *times* (campaigns stay comparable across mixes).
    """
    if not tenants:
        raise ParameterError("traffic needs at least one tenant")
    time_rng = _stream_rng(spec.seed, f"times/{spec.process}")
    tenant_rng = _stream_rng(spec.seed, "tenants")
    job_rng = _stream_rng(spec.seed, "jobs")
    weights = [tenant.weight for tenant in tenants]
    arrivals = []
    for index, t in enumerate(_arrival_times(spec, time_rng)):
        tenant = _weighted_choice(tenant_rng, tenants, weights)
        kind, workload, _ = _weighted_choice(
            job_rng, tenant.mix, [entry[2] for entry in tenant.mix])
        arrivals.append(Arrival(
            index=index, t_s=t, tenant=tenant.name, kind=kind,
            workload=workload, priority=tenant.priority,
            deadline_s=tenant.deadline_s))
    return arrivals


def capacity_qps(cost_model, tenants=DEFAULT_TENANTS,
                 mode: str = "pim") -> float:
    """The server's sustainable job rate for this tenant mix.

    The weighted mean service cost over every tenant's job mix (all on
    the analytic cost model's simulated clock) inverted into jobs per
    second — what "2x-capacity overload" is 2x *of*.
    """
    total_weight = 0.0
    total_cost = 0.0
    for tenant in tenants:
        mix_weight = sum(entry[2] for entry in tenant.mix)
        for kind, workload, weight in tenant.mix:
            share = tenant.weight * weight / mix_weight
            total_weight += share
            total_cost += share * cost_model.cost(kind, workload, mode)
    mean_cost = total_cost / total_weight
    return 1.0 / mean_cost
