"""Admission control: bounded queues, rate limits, load shedding.

Anaheim feeds GPU and PIM kernels through a single stream queue
(PAPER §V); this module is the layer *above* that queue that decides
which jobs deserve a place in it at all.  Under a burst of arrivals a
FIFO server degrades every job together — the overload discipline here
rejects or sheds the work that cannot be served well so the rest is
served on time:

* :class:`TokenBucket` — per-tenant rate limiting at the front door;
* :class:`BoundedQueue` — a priority queue with a hard capacity and
  high/low watermarks; crossing the high watermark sheds the
  lowest-priority (newest-first) queued jobs until the low watermark
  is restored;
* :class:`CostModel` — per-workload service costs derived from the
  existing analytic GPU/PIM models, so admission can *predict* a
  job's completion time from the current backlog;
* :class:`AdmissionController` — the policy: a job is admitted only if
  its tenant has tokens, the queue has room, and the predicted
  completion time meets its deadline; otherwise
  :class:`~repro.errors.AdmissionError` (one line) at enqueue, before
  any work is wasted;
* **brownout** — sustained overload (a run of arrivals during which
  the queue never recovers below the low watermark) feeds the existing
  :class:`~repro.serving.health.HealthMonitor`: service quality
  degrades (wider effective deadlines at PIM_DEGRADED, GPU-only
  re-lowering at GPU_ONLY) instead of the queue collapsing.

Everything runs on the simulated clock and is deterministic: the same
seeded arrival stream produces byte-identical admit/shed decisions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AdmissionError, ParameterError
from repro.serving.health import DegradationState


class TokenBucket:
    """Deterministic token bucket on the simulated clock."""

    def __init__(self, rate_qps: float | None, burst: int = 4):
        if rate_qps is not None and rate_qps <= 0:
            raise ParameterError("token-bucket rate must be > 0 qps")
        if burst < 1:
            raise ParameterError("token-bucket burst must be >= 1")
        self.rate_qps = rate_qps
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last_s = 0.0

    def allow(self, now: float) -> bool:
        """Take one token if available; refills at ``rate_qps``."""
        if self.rate_qps is None:
            return True
        elapsed = max(0.0, now - self._last_s)
        self._last_s = max(self._last_s, now)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate_qps)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass
class QueueItem:
    """One admitted, not-yet-dispatched job."""

    arrival: object
    seq: int
    enqueued_s: float
    cost_s: float

    def order_key(self) -> tuple:
        return (self.arrival.priority, self.seq)


class BoundedQueue:
    """Priority queue with a hard cap and shed watermarks.

    Dispatch order is (priority, arrival sequence): priority 0 first,
    FIFO within a class.  Shedding removes from the *other* end —
    lowest priority first, newest first within a class — so the jobs
    that have waited longest in the best classes survive.
    """

    def __init__(self, cap: int, high_watermark: int | None = None,
                 low_watermark: int | None = None):
        if cap < 1:
            raise ParameterError("queue capacity must be >= 1")
        self.cap = cap
        self.high_watermark = (high_watermark if high_watermark is not None
                               else max(1, (3 * cap) // 4))
        self.low_watermark = (low_watermark if low_watermark is not None
                              else max(0, cap // 2))
        if not 0 <= self.low_watermark < self.high_watermark <= cap:
            raise ParameterError(
                f"need 0 <= low ({self.low_watermark}) < high "
                f"({self.high_watermark}) <= cap ({cap})")
        self._items: list = []      # kept sorted by order_key()
        self.peak_depth = 0

    @property
    def depth(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.cap

    @property
    def over_high_watermark(self) -> bool:
        return len(self._items) >= self.high_watermark

    def backlog_s(self) -> float:
        return sum(item.cost_s for item in self._items)

    def push(self, item: QueueItem) -> None:
        if self.full:
            raise AdmissionError(
                f"queue full ({self.cap} jobs); cannot enqueue "
                f"{item.arrival.key}")
        self._items.append(item)
        self._items.sort(key=QueueItem.order_key)
        self.peak_depth = max(self.peak_depth, len(self._items))

    def pop(self) -> QueueItem:
        if not self._items:
            raise ParameterError("pop from an empty queue")
        return self._items.pop(0)

    def shed_to_low_watermark(self) -> list:
        """Remove lowest-priority-newest jobs until depth <= low."""
        victims = []
        while len(self._items) > self.low_watermark:
            victims.append(self._items.pop())
        return victims


class CostModel:
    """Per-(kind, workload) service costs in simulated seconds.

    ``costs`` maps workload name to ``{"pim": s, "gpu": s}`` — the
    analytic schedule's ``total_time`` with and without PIM offload.
    Job kind does not change the modeled service cost: run, bench, and
    analytic-faults jobs all execute the same schedule shape.
    """

    def __init__(self, costs: dict):
        if not costs:
            raise ParameterError("cost model needs at least one workload")
        self.costs = dict(costs)

    def cost(self, kind: str, workload: str, mode: str = "pim") -> float:
        entry = self.costs.get(workload)
        if entry is None:
            raise ParameterError(
                f"cost model has no workload {workload!r} "
                f"(knows {sorted(self.costs)})")
        return entry["gpu"] if mode == "gpu" else entry["pim"]

    @classmethod
    def from_model(cls, gpu=None, pim=None, library=None,
                   workloads=("Boot", "HELR", "Sort"),
                   ras=None) -> "CostModel":
        """Build the table by running the analytic framework once per
        (workload, device mode) — the same cost models the scheduler
        charges its timeline with.  ``ras`` (a ``ReliabilityConfig``)
        attaches the memory-RAS layer to the PIM-mode run, so scrub
        and repair overhead shrinks the advertised PIM capacity."""
        from repro.core.framework import AnaheimFramework
        from repro.gpu.configs import A100_80GB
        from repro.params import paper_params
        from repro.pim.configs import A100_NEAR_BANK
        from repro.workloads import applications as apps
        gpu = gpu if gpu is not None else A100_80GB
        pim = pim if pim is not None else A100_NEAR_BANK
        kwargs = {"library": library} if library is not None else {}
        params = paper_params()
        costs = {}
        for name in workloads:
            workload = apps.build(name, params)
            with_pim = AnaheimFramework(gpu, pim, ras_config=ras,
                                        **kwargs).run(
                workload.blocks, params.degree, label=name).report
            gpu_only = AnaheimFramework(gpu, None, **kwargs).run(
                workload.blocks, params.degree, label=name).report
            costs[name] = {"pim": with_pim.total_time,
                           "gpu": gpu_only.total_time}
        return cls(costs)


@dataclass(frozen=True)
class AdmissionPolicy:
    """Every knob of the overload layer, canonicalizable."""

    queue_cap: int = 16
    high_watermark: int | None = None
    low_watermark: int | None = None
    shed_policy: str = "priority"        # "priority" | "none"
    deadline_slack: float = 1.0          # margin on predicted completion
    brownout_after: int = 8              # hot arrivals before brownout
    brownout_deadline_factor: float = 2.0

    def canonical(self) -> dict:
        return {"queue_cap": self.queue_cap,
                "high_watermark": self.high_watermark,
                "low_watermark": self.low_watermark,
                "shed_policy": self.shed_policy,
                "deadline_slack": self.deadline_slack,
                "brownout_after": self.brownout_after,
                "brownout_deadline_factor": self.brownout_deadline_factor}


class _AdmissionMetrics:
    """Queue/admission/shed metric families, declared once."""

    def __init__(self, registry):
        from repro.obs.metrics import QUEUE_SECONDS_BUCKETS
        self.decisions = registry.counter(
            "anaheim_admission_total",
            "Admission decisions at enqueue, by outcome",
            labelnames=("decision",))
        self.shed = registry.counter(
            "anaheim_shed_total",
            "Queued jobs shed after admission, by reason",
            labelnames=("reason",))
        self.depth = registry.gauge(
            "anaheim_queue_depth", "Bounded-queue depth (current)")
        self.peak = registry.gauge(
            "anaheim_queue_depth_peak", "Bounded-queue depth (peak)")
        self.wait = registry.histogram(
            "anaheim_queue_wait_seconds",
            "Simulated seconds between enqueue and dispatch",
            buckets=QUEUE_SECONDS_BUCKETS)
        self.brownout = registry.counter(
            "anaheim_admission_brownout_total",
            "Brownout escalations triggered by sustained overload",
            labelnames=("to",))


class AdmissionController:
    """The admission policy over one :class:`BoundedQueue`.

    ``health`` is the *existing* service health monitor: chaos events
    (quarantines, breaker trips) escalate it from the fault side, and
    this controller escalates it from the overload side (brownout).
    Its state feeds back into admission as the service ``mode`` (pim
    vs gpu-only costs) and the effective-deadline widening factor.
    """

    def __init__(self, policy: AdmissionPolicy, cost_model: CostModel,
                 tenants, health=None, metrics=None, tracer=None):
        if policy.shed_policy not in ("priority", "none"):
            raise ParameterError(
                f"unknown shed policy {policy.shed_policy!r} "
                f"(expected priority or none)")
        self.policy = policy
        self.cost_model = cost_model
        self.health = health
        self.tracer = tracer
        self.queue = BoundedQueue(policy.queue_cap,
                                  policy.high_watermark,
                                  policy.low_watermark)
        self.buckets = {tenant.name: TokenBucket(tenant.rate_qps,
                                                 tenant.burst)
                        for tenant in tenants}
        self.decisions: list = []
        self.counts = {"admitted": 0, "rate-limited": 0, "queue-full": 0,
                       "deadline-infeasible": 0}
        self.shed_counts = {"watermark": 0, "expired": 0}
        self._seq = 0
        self._hot_streak = 0
        self._m = _AdmissionMetrics(metrics) if metrics is not None \
            else None

    # -- Health coupling -----------------------------------------------------

    @property
    def mode(self) -> str:
        """Service mode the *next* dispatch will use."""
        if self.health is not None and self.health.gpu_only:
            return "gpu"
        return "pim"

    def deadline_factor(self) -> float:
        """How much wider deadlines are at the current health level."""
        if self.health is None:
            return 1.0
        factor = self.policy.brownout_deadline_factor
        return {DegradationState.HEALTHY: 1.0,
                DegradationState.PIM_DEGRADED: factor,
                DegradationState.GPU_ONLY: factor * factor,
                DegradationState.FAILED: factor * factor}[self.health.state]

    def effective_deadline(self, arrival) -> float | None:
        if arrival.deadline_s is None:
            return None
        return arrival.deadline_s * self.deadline_factor()

    def _note_brownout(self, now: float) -> None:
        """Sustained overload escalates the health monitor.

        A streak of ``brownout_after`` arrivals without the queue ever
        recovering below the low watermark enters PIM_DEGRADED (wider
        deadlines); a streak twice as long re-lowers to GPU_ONLY.  The
        monitor's escalate-only semantics make brownout sticky for the
        run, like every other degradation source.
        """
        if self.health is None:
            return
        streak = self._hot_streak
        target = None
        if streak >= 2 * self.policy.brownout_after:
            target = DegradationState.GPU_ONLY
        elif streak >= self.policy.brownout_after:
            target = DegradationState.PIM_DEGRADED
        if target is None:
            return
        if self.health.escalate(
                target, now,
                f"brownout: {streak} consecutive arrivals with the "
                f"queue at or over the low watermark "
                f"({self.queue.low_watermark})"):
            if self._m is not None:
                self._m.brownout.inc(to=target.value)
            if self.tracer is not None:
                self.tracer.count(f"admission.brownout.{target.value}")

    # -- Admission -----------------------------------------------------------

    def admit(self, arrival, now: float,
              server_backlog_s: float = 0.0) -> QueueItem:
        """Enqueue ``arrival`` or raise a one-line
        :class:`~repro.errors.AdmissionError`.

        ``server_backlog_s`` is the in-service remaining time; the
        predicted completion is ``now + backlog + queue + own cost``
        against the (possibly brownout-widened) deadline.
        """
        bucket = self.buckets.get(arrival.tenant)
        if bucket is not None and not bucket.allow(now):
            raise AdmissionError(
                f"{arrival.key}: tenant {arrival.tenant!r} is "
                f"rate-limited")
        if self.queue.full:
            raise AdmissionError(
                f"{arrival.key}: queue full "
                f"({self.queue.depth}/{self.queue.cap})")
        mode = self.mode
        cost = self.cost_model.cost(arrival.kind, arrival.workload, mode)
        deadline = self.effective_deadline(arrival)
        if deadline is not None:
            predicted = (server_backlog_s + self.queue.backlog_s()
                         + cost) * self.policy.deadline_slack
            if predicted > deadline:
                raise AdmissionError(
                    f"{arrival.key}: predicted completion in "
                    f"{predicted:.4f}s cannot meet the {deadline:.4f}s "
                    f"deadline")
        item = QueueItem(arrival=arrival, seq=self._seq, enqueued_s=now,
                         cost_s=cost)
        self._seq += 1
        self.queue.push(item)
        return item

    def offer(self, arrival, now: float,
              server_backlog_s: float = 0.0) -> dict:
        """One arrival through the full policy; the decision record.

        Admission failures become ``rejected`` records instead of
        propagating; watermark shedding and brownout bookkeeping run
        after every offered arrival.
        """
        record = {"index": arrival.index, "t_s": arrival.t_s,
                  "tenant": arrival.tenant, "kind": arrival.kind,
                  "workload": arrival.workload,
                  "priority": arrival.priority}
        try:
            self.admit(arrival, now, server_backlog_s)
        except AdmissionError as exc:
            reason = ("rate-limited" if "rate-limited" in str(exc)
                      else "queue-full" if "queue full" in str(exc)
                      else "deadline-infeasible")
            record.update(decision="rejected", reason=reason)
            self.counts[reason] += 1
            if self._m is not None:
                self._m.decisions.inc(decision=reason)
        else:
            record.update(decision="admitted", reason=None)
            self.counts["admitted"] += 1
            if self._m is not None:
                self._m.decisions.inc(decision="admitted")
        self.decisions.append(record)

        # Watermark shedding + sustained-pressure accounting.  The hot
        # streak counts arrivals since the queue last recovered below
        # the low watermark — shedding drops the depth back to the low
        # watermark, so "over the high watermark" alone would reset on
        # every crossing and brownout could never engage.
        if self.queue.over_high_watermark \
                and self.policy.shed_policy == "priority":
            for victim in self.queue.shed_to_low_watermark():
                self.record_shed(victim, "watermark")
        if self.queue.depth >= max(1, self.queue.low_watermark):
            self._hot_streak += 1
        else:
            self._hot_streak = 0
        self._note_brownout(now)
        if self._m is not None:
            self._m.depth.set(self.queue.depth)
            self._m.peak.set(self.queue.peak_depth)
        return record

    # -- Post-admission bookkeeping ------------------------------------------

    def record_shed(self, item: QueueItem, reason: str) -> None:
        self.shed_counts[reason] += 1
        self.decisions.append({
            "index": item.arrival.index, "t_s": item.arrival.t_s,
            "tenant": item.arrival.tenant, "kind": item.arrival.kind,
            "workload": item.arrival.workload,
            "priority": item.arrival.priority,
            "decision": "shed", "reason": reason})
        if self._m is not None:
            self._m.shed.inc(reason=reason)
        if self.tracer is not None:
            self.tracer.count(f"admission.shed.{reason}")

    def record_wait(self, wait_s: float) -> None:
        if self._m is not None:
            self._m.wait.observe(wait_s)
            self._m.depth.set(self.queue.depth)
