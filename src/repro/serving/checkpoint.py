"""Checkpoint/resume for long-running job matrices.

A checkpoint is a single JSON document (written crash-safely via
:func:`repro.obs.export.write_json`: temp file + ``os.replace``)
holding every finished unit's result keyed by ``job_id/unit_key``,
plus a digest binding it to the exact job matrix and policy that
produced it.  Because every unit of work in the serving layer is
deterministic — seeded fault plans, seeded backoff, the analytic
timeline — resuming from a checkpoint replays the remaining units and
reassembles output **byte-identical** to an uninterrupted run: the
completed units' results are spliced back in verbatim (JSON
round-tripping preserves key order and numeric values exactly).

Two hardening layers on top of the matrix digest:

* the generated :class:`~repro.faults.plan.FaultPlan` digest is
  embedded alongside it, so a resume refuses a checkpoint whose fault
  plan no longer matches what the current invocation would generate —
  the matrix digest covers the plan's *parameters*, the plan digest
  covers its *contents*;
* ``keep=N`` retains the N most recent checkpoint **generations** as
  ``<path>.<seq>`` files next to the always-current ``<path>``,
  pruning older generations only after the newer write is durable.
"""

from __future__ import annotations

import hashlib
import json
import os

from repro.errors import CheckpointError
from repro.obs.export import write_json

CHECKPOINT_KIND = "serve-checkpoint"
CHECKPOINT_VERSION = 1

#: Sentinel distinguishing "caller did not ask" from "caller expects
#: no fault plan" in :func:`load_checkpoint`.
_UNCHECKED = object()


def matrix_digest(jobs_canonical, policy_canonical: dict) -> str:
    """SHA-256 binding a checkpoint to one job matrix + policy."""
    blob = json.dumps({"jobs": jobs_canonical, "policy": policy_canonical},
                      sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class Checkpointer:
    """Accumulates unit results and persists them atomically."""

    def __init__(self, path, digest: str, every: int = 1,
                 keep: int | None = None,
                 fault_plan_digest: str | None = None):
        if every < 1:
            raise CheckpointError("checkpoint interval must be >= 1")
        if keep is not None and keep < 1:
            raise CheckpointError("checkpoint keep count must be >= 1")
        self.path = path
        self.digest = digest
        self.every = every
        self.keep = keep
        self.fault_plan_digest = fault_plan_digest
        self.units: dict = {}
        self._since_flush = 0
        self._generation = 0

    def record(self, key: str, unit_doc: dict) -> None:
        """Store one finished unit; flush per the write interval."""
        self.units[key] = unit_doc
        self._since_flush += 1
        if self.path is not None and self._since_flush >= self.every:
            self.flush()

    def flush(self) -> None:
        if self.path is None:
            return
        document = {
            "tool": "anaheim-repro",
            "kind": CHECKPOINT_KIND,
            "version": CHECKPOINT_VERSION,
            "matrix_digest": self.digest,
            "fault_plan_digest": self.fault_plan_digest,
            "units": self.units,
        }
        write_json(self.path, document)
        if self.keep is not None:
            self._generation += 1
            write_json(f"{self.path}.{self._generation:06d}", document)
            self._prune()
        self._since_flush = 0

    def _prune(self) -> None:
        """Drop generation files beyond ``keep``, oldest first.

        Only runs after the newest generation is durably on disk, so a
        crash mid-prune can only leave *extra* generations behind.
        """
        base = os.path.basename(str(self.path))
        directory = os.path.dirname(str(self.path)) or "."
        generations = []
        for name in os.listdir(directory):
            if not name.startswith(base + "."):
                continue
            suffix = name[len(base) + 1:]
            if suffix.isdigit():
                generations.append((int(suffix), name))
        generations.sort()
        for _, name in generations[:-self.keep]:
            try:
                os.remove(os.path.join(directory, name))
            except OSError:
                pass                     # a racing prune already won


def load_checkpoint(path, expected_digest: str | None = None,
                    expected_fault_digest=_UNCHECKED) -> dict:
    """Completed units from a checkpoint file, validated for resume.

    Raises :class:`CheckpointError` (one line) on unreadable/truncated
    files, on documents that are not serve checkpoints, on a digest
    mismatch — resuming a checkpoint into a *different* job matrix or
    policy would silently mix incompatible results — and, when the
    caller passes ``expected_fault_digest``, on a checkpoint whose
    embedded fault-plan digest differs from the plan the current
    invocation generates.
    """
    try:
        with open(path) as fh:
            document = json.load(fh)
    except FileNotFoundError:
        raise CheckpointError(f"no checkpoint at {path}") from None
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CheckpointError(
            f"cannot read checkpoint {path}: corrupted or truncated "
            f"({exc.__class__.__name__}: {exc})") from None
    if not isinstance(document, dict) \
            or document.get("kind") != CHECKPOINT_KIND:
        raise CheckpointError(f"{path} is not a serve checkpoint")
    if document.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {document.get('version')} "
            f"in {path}")
    if expected_digest is not None \
            and document.get("matrix_digest") != expected_digest:
        raise CheckpointError(
            f"checkpoint {path} was recorded for a different job "
            f"matrix/policy (digest mismatch); refusing to resume")
    if expected_fault_digest is not _UNCHECKED \
            and document.get("fault_plan_digest") != expected_fault_digest:
        raise CheckpointError(
            f"checkpoint {path} embeds fault-plan digest "
            f"{document.get('fault_plan_digest')!r} but this invocation "
            f"generates {expected_fault_digest!r}; refusing to resume")
    units = document.get("units")
    if not isinstance(units, dict):
        raise CheckpointError(f"checkpoint {path} carries no unit table")
    return units
