"""DRAM substrate: geometry, timing, energy, banks, and devices."""

from repro.dram.bank import Bank, BankStats
from repro.dram.configs import GDDR6X_4090, HBM2_A100, timing_for
from repro.dram.device import DramDevice, Die
from repro.dram.energy import DEFAULT_ENERGY, DramEnergyModel
from repro.dram.geometry import (CHUNK_BITS, ELEMENTS_PER_CHUNK,
                                 DramGeometry)
from repro.dram.timing import GDDR6X_TIMING, HBM2_TIMING, DramTiming

__all__ = [
    "Bank", "BankStats", "CHUNK_BITS", "DEFAULT_ENERGY", "DramDevice",
    "DramEnergyModel", "DramGeometry", "DramTiming", "Die",
    "ELEMENTS_PER_CHUNK", "GDDR6X_4090", "GDDR6X_TIMING", "HBM2_A100",
    "HBM2_TIMING", "timing_for",
]
