"""DRAM timing parameters relevant to all-bank PIM execution.

During PIM execution all banks of a die operate in lockstep (§VI), so
row ACT/PRE latencies are directly exposed instead of being hidden by
bank-level parallelism — the overhead the column-partitioning layout
amortizes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DramTiming:
    """Row-cycle timings in seconds."""

    name: str
    t_rcd: float        # ACT to column access
    t_rp: float         # PRE latency
    t_ras: float        # minimum row-open time

    @property
    def row_turnaround(self) -> float:
        """Cost of closing one row and opening another (PRE + ACT)."""
        return self.t_rp + self.t_rcd


#: HBM2(E) timings (JEDEC-typical, as modeled in Ramulator 2.0 [57]).
HBM2_TIMING = DramTiming(name="HBM2", t_rcd=14e-9, t_rp=14e-9, t_ras=33e-9)

#: GDDR6X timings — slightly longer row cycles at higher I/O rates.
GDDR6X_TIMING = DramTiming(name="GDDR6X", t_rcd=15e-9, t_rp=15e-9,
                           t_ras=32e-9)
