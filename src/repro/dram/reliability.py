"""Retention/wear reliability model for in-DRAM FHE regions.

Anaheim keeps live ciphertext limbs resident in DRAM banks between
kernel executions, so the substrate's failure physics are part of the
compute model: charge leaks between refreshes, so the probability that
a stored word has flipped grows with the *simulated time* since the
region was last refreshed or scrubbed, and regions that are activated
heavily wear and leak faster.  :class:`ReliabilityConfig` captures that
model as a small set of seeded, deterministic knobs;
:class:`RegionState` holds the per-(bank, region) mutable health
bookkeeping consumed by :class:`repro.faults.ras.RasEngine`.

The model is intentionally coarse — a Poisson process per region whose
rate scales with the un-scrubbed window and a wear multiplier — but it
is charged on the same simulated timeline as the kernels
(:mod:`repro.dram.timing`), so scrub and repair overhead land in
``ScheduleReport`` and ``UtilizationReport`` like any other work.

Every random draw comes from a per-region stream derived from the
config seed, consumed in timeline order, so a run is a pure function
of ``(config, trace)`` regardless of worker count.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace

import numpy as np

from repro.dram.timing import DramTiming
from repro.errors import ParameterError

__all__ = ["ReliabilityConfig", "RegionState", "DEFAULT_RELIABILITY"]


@dataclass(frozen=True)
class ReliabilityConfig:
    """Seeded knobs of the retention/wear error model.

    Rates are per *region* — the unit of scrub, remap, and fault
    quarantine, aligned with the fault plan's PIM sites so one region
    index names the same stripe of banks everywhere.
    """

    #: Seed for every RNG stream the model consumes.
    seed: int = 0
    #: Correctable-error opportunities per second per region at zero
    #: wear.  The per-window Poisson rate is
    #: ``retention_rate * dt * (1 + wear_factor * wear)``.
    retention_rate: float = 200.0
    #: Wear multiplier per recorded region activation.
    wear_factor: float = 1e-3
    #: Fraction of raw errors that are double-bit (ECC detects,
    #: cannot correct).
    multi_bit_fraction: float = 0.05
    #: Fraction of raw errors with >= 3 flipped bits — invisible to
    #: SEC-DED, handed to the residue-checksum guard.
    escape_fraction: float = 0.01
    #: Period of the background scrubber on the simulated clock.
    scrub_interval_s: float = 5e-3
    #: Number of live regions (mirrors ``FaultPlan.n_sites``).
    n_regions: int = 32
    #: Spare regions available for predictive remapping.
    spare_regions: int = 4
    #: Corrected-error count at which a region is predictively
    #: remapped to a spare.
    remap_threshold: int = 16
    #: Uncorrectable events (double-bit + escapes) at which a region
    #: is reactively remapped.
    uncorrectable_remap_threshold: int = 4
    #: Rows swept by one per-region scrub pass (``BankLayout`` default
    #: row budget).
    rows_per_region: int = 64
    #: Inline SEC-DED correction latency per corrected word.
    correction_time_s: float = 20e-9

    def __post_init__(self):
        if self.retention_rate <= 0:
            raise ParameterError(
                f"retention_rate must be positive, got {self.retention_rate}")
        if self.scrub_interval_s <= 0:
            raise ParameterError(
                f"scrub_interval_s must be positive, got "
                f"{self.scrub_interval_s}")
        if self.wear_factor < 0:
            raise ParameterError("wear_factor must be non-negative")
        if not 0 <= self.multi_bit_fraction < 1:
            raise ParameterError("multi_bit_fraction must be in [0, 1)")
        if not 0 <= self.escape_fraction < 1:
            raise ParameterError("escape_fraction must be in [0, 1)")
        if self.multi_bit_fraction + self.escape_fraction >= 1:
            raise ParameterError(
                "multi_bit_fraction + escape_fraction must be < 1")
        if self.n_regions < 1:
            raise ParameterError("n_regions must be >= 1")
        if self.spare_regions < 0:
            raise ParameterError("spare_regions must be >= 0")
        if self.remap_threshold < 1:
            raise ParameterError("remap_threshold must be >= 1")
        if self.uncorrectable_remap_threshold < 1:
            raise ParameterError("uncorrectable_remap_threshold must be >= 1")
        if self.rows_per_region < 1:
            raise ParameterError("rows_per_region must be >= 1")
        if self.correction_time_s < 0:
            raise ParameterError("correction_time_s must be >= 0")

    def canonical(self) -> dict:
        """JSON-stable dict of every knob (for digests and manifests)."""
        return {
            "seed": self.seed,
            "retention_rate": self.retention_rate,
            "wear_factor": self.wear_factor,
            "multi_bit_fraction": self.multi_bit_fraction,
            "escape_fraction": self.escape_fraction,
            "scrub_interval_s": self.scrub_interval_s,
            "n_regions": self.n_regions,
            "spare_regions": self.spare_regions,
            "remap_threshold": self.remap_threshold,
            "uncorrectable_remap_threshold":
                self.uncorrectable_remap_threshold,
            "rows_per_region": self.rows_per_region,
            "correction_time_s": self.correction_time_s,
        }

    def digest(self) -> str:
        material = json.dumps(self.canonical(), sort_keys=True,
                              separators=(",", ":"))
        return hashlib.sha256(material.encode()).hexdigest()

    def rng(self, *key) -> np.random.Generator:
        """A generator keyed off the seed and an arbitrary tuple."""
        material = json.dumps([self.seed] + [str(k) for k in key])
        word = int.from_bytes(
            hashlib.sha256(material.encode()).digest()[:8], "little")
        return np.random.default_rng(word)

    def with_overrides(self, retention_rate=None,
                       scrub_interval_s=None) -> "ReliabilityConfig":
        """Copy with the grid-swept knobs replaced (None = keep)."""
        updates = {}
        if retention_rate is not None:
            updates["retention_rate"] = retention_rate
        if scrub_interval_s is not None:
            updates["scrub_interval_s"] = scrub_interval_s
        return replace(self, **updates) if updates else self

    def scrub_pass_s(self, timing: DramTiming) -> float:
        """Simulated cost of scrubbing one region: a read-correct-write
        sweep of its rows, each paying a full activate/restore/precharge
        plus the next activate (§III DRAM timing)."""
        return self.rows_per_region * (timing.t_ras + timing.row_turnaround)

    def migration_s(self, timing: DramTiming) -> float:
        """Simulated cost of migrating a region to a spare: read the
        source rows and rewrite them in the spare bank."""
        return 2.0 * self.scrub_pass_s(timing)


@dataclass
class RegionState:
    """Mutable health bookkeeping for one (bank, region) stripe."""

    #: Simulated time the region was last known error-free.
    last_clean_s: float = 0.0
    #: Activations recorded against the region (drives the wear
    #: multiplier).
    wear: int = 0
    #: ECC single-bit corrections observed in the region.
    corrected: int = 0
    #: ECC double-bit detections observed in the region.
    detected: int = 0
    #: ECC escapes (>= 3-bit) caught downstream by the checksum guard.
    escaped: int = 0
    #: Whether the region has been migrated to a spare.
    remapped: bool = False
    #: RNG stream consumed in timeline order (lazily bound).
    stream: object = field(default=None, repr=False)

    @property
    def uncorrectable(self) -> int:
        return self.detected + self.escaped


#: The default model: tuned so the pinned Boot cell scrubs ~5 times,
#: corrects a few hundred single-bit errors, and stays under 5% of the
#: clean runtime in scrub + repair overhead.
DEFAULT_RELIABILITY = ReliabilityConfig()
