"""Die/device containers over functional banks.

Small functional aggregates used by :class:`repro.pim.device.PimDevice`:
a :class:`Die` owns its banks; a :class:`DramDevice` owns the die groups
of one GPU's memory system (§VI-B's partitioning).
"""

from __future__ import annotations

from repro.dram.bank import Bank, BankStats
from repro.dram.geometry import DramGeometry


class Die:
    """One DRAM die: ``banks_per_die`` banks operating in lockstep."""

    def __init__(self, geometry: DramGeometry, rows: int = 64):
        self.geometry = geometry
        self.banks = [Bank(geometry, rows=rows)
                      for _ in range(geometry.banks_per_die)]

    def aggregate_stats(self) -> BankStats:
        total = BankStats()
        for bank in self.banks:
            total.activates += bank.stats.activates
            total.precharges += bank.stats.precharges
            total.chunk_reads += bank.stats.chunk_reads
            total.chunk_writes += bank.stats.chunk_writes
        return total


class DramDevice:
    """All die groups of one memory system.

    ``group_banks(g)`` returns the flat bank list of die group ``g`` —
    the set that cooperates on one limb during all-bank PIM execution.
    """

    def __init__(self, geometry: DramGeometry, rows: int = 64):
        self.geometry = geometry
        self.groups = [
            [Die(geometry, rows=rows)
             for _ in range(geometry.dies_per_group)]
            for _ in range(geometry.die_groups)
        ]

    def group_banks(self, group: int):
        return [bank for die in self.groups[group] for bank in die.banks]

    def all_banks(self):
        for group_index in range(self.geometry.die_groups):
            yield from self.group_banks(group_index)

    def aggregate_stats(self) -> BankStats:
        total = BankStats()
        for bank in self.all_banks():
            total.activates += bank.stats.activates
            total.precharges += bank.stats.precharges
            total.chunk_reads += bank.stats.chunk_reads
            total.chunk_writes += bank.stats.chunk_writes
        return total

    def reset_stats(self) -> None:
        for bank in self.all_banks():
            bank.stats.reset()
