"""DRAM access-energy model (derived from O'Connor et al. [62]).

The paper's Fig. 4b energy argument: with PIM, element-wise operands
stop traveling across the on-die datapath, TSVs, and the external I/O
to the GPU, shrinking the physical distance per access.  We model the
per-bit energy as a sum of segment costs and let each access type pay
only the segments it traverses.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DramEnergyModel:
    """Per-bit energies (pJ/bit) for the access-path segments.

    * ``array`` — bitline/sense-amp access inside the bank;
    * ``on_die`` — bank to die-edge global datapath;
    * ``tsv`` — through-silicon vias to the base/logic die (HBM);
    * ``io`` — external interface + GPU PHY.

    ``act_energy`` is charged once per row activation per bank.
    """

    array: float = 1.1
    on_die: float = 1.3
    tsv: float = 0.4
    io: float = 1.1
    act_energy: float = 0.9e-9   # J per ACT/PRE pair (one 8Kb row)

    @property
    def gpu_access_pj_per_bit(self) -> float:
        """Full-path access from the GPU (the paper's baseline)."""
        return self.array + self.on_die + self.tsv + self.io

    @property
    def near_bank_pj_per_bit(self) -> float:
        """Near-bank PIM: data moves only within the bank's neighborhood."""
        return self.array + 0.2 * self.on_die

    @property
    def logic_die_pj_per_bit(self) -> float:
        """Custom-HBM PIM: data crosses the die datapath and TSVs."""
        return self.array + self.on_die + self.tsv


#: Shared default instance.
DEFAULT_ENERGY = DramEnergyModel()
