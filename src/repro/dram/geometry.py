"""DRAM organization: stacks/dies/banks/rows/chunks (§II-D, Fig. 6)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError

#: Bits per column access — "a chunk of data (typically 256 bits)".
CHUNK_BITS = 256

#: 32-bit words per chunk (residues are stored in 32-bit granularity).
ELEMENTS_PER_CHUNK = CHUNK_BITS // 32


@dataclass(frozen=True)
class DramGeometry:
    """Physical organization of one GPU's DRAM subsystem.

    A *die group* (§VI-B) is the unit that receives whole limbs: one
    HBM stack on A100 (5 groups) or four GDDR dies on RTX 4090
    (3 groups).  All banks of a die group cooperate on one limb.
    """

    name: str
    die_groups: int
    dies_per_group: int
    banks_per_die: int
    row_bits: int = 8192          # "many 8Kb-wide rows"
    rows_per_bank: int = 16384

    def __post_init__(self):
        if self.row_bits % CHUNK_BITS != 0:
            raise ParameterError("row width must be a whole number of chunks")

    @property
    def chunks_per_row(self) -> int:
        return self.row_bits // CHUNK_BITS       # 32 for an 8Kb row

    @property
    def banks_per_group(self) -> int:
        return self.dies_per_group * self.banks_per_die

    @property
    def total_banks(self) -> int:
        return self.die_groups * self.banks_per_group

    @property
    def total_dies(self) -> int:
        return self.die_groups * self.dies_per_group

    def elements_per_bank(self, degree: int) -> int:
        """Coefficients of one limb stored in each bank of a die group."""
        if degree % self.banks_per_group != 0:
            raise ParameterError(
                f"degree {degree} does not divide over "
                f"{self.banks_per_group} banks")
        return degree // self.banks_per_group

    def chunks_per_bank(self, degree: int) -> int:
        elements = self.elements_per_bank(degree)
        if elements % ELEMENTS_PER_CHUNK != 0:
            raise ParameterError("bank slice is not whole chunks")
        return elements // ELEMENTS_PER_CHUNK
