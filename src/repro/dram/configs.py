"""DRAM configurations of the evaluated GPUs (Table III)."""

from __future__ import annotations

from repro.dram.geometry import DramGeometry
from repro.dram.timing import GDDR6X_TIMING, HBM2_TIMING, DramTiming

#: A100 80GB: five 8-Hi HBM2E stacks, 64 banks per die; each stack is
#: one PIM die group (§VI-B).
HBM2_A100 = DramGeometry(
    name="HBM2e x5 (A100 80GB)",
    die_groups=5,
    dies_per_group=8,
    banks_per_die=64,
)

#: RTX 4090: twelve GDDR6X dies, 32 banks per die; four dies form one
#: PIM die group (Table III).
GDDR6X_4090 = DramGeometry(
    name="GDDR6X x12 (RTX 4090)",
    die_groups=3,
    dies_per_group=4,
    banks_per_die=32,
)

TIMINGS = {
    HBM2_A100.name: HBM2_TIMING,
    GDDR6X_4090.name: GDDR6X_TIMING,
}


def timing_for(geometry: DramGeometry) -> DramTiming:
    return TIMINGS[geometry.name]
