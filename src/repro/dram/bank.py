"""Functional DRAM bank with a row-buffer state machine.

Used by the functional PIM tests: data really lives in (row, chunk)
cells, every access goes through ACT/RD/WR/PRE, and the bank counts the
commands so tests can assert the column-partitioning layout's ACT/PRE
savings directly (§VI-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dram.geometry import ELEMENTS_PER_CHUNK, DramGeometry
from repro.errors import LayoutError


@dataclass
class BankStats:
    """DRAM command counts observed by one bank."""

    activates: int = 0
    precharges: int = 0
    chunk_reads: int = 0
    chunk_writes: int = 0

    def reset(self) -> None:
        self.activates = 0
        self.precharges = 0
        self.chunk_reads = 0
        self.chunk_writes = 0


class Bank:
    """One DRAM bank: a (rows × chunks × 8) int64 cell array.

    ``open_row`` models the IOSAs; reading or writing a chunk of a
    closed row raises, forcing callers (the PIM executor) to issue
    explicit ACT/PRE — which is exactly what the stats count.
    """

    def __init__(self, geometry: DramGeometry, rows: int | None = None):
        self.geometry = geometry
        self.rows = rows if rows is not None else 64
        self.storage = np.zeros(
            (self.rows, geometry.chunks_per_row, ELEMENTS_PER_CHUNK),
            dtype=np.int64)
        self.open_row: int | None = None
        self.stats = BankStats()

    def activate(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise LayoutError(f"row {row} outside bank of {self.rows} rows")
        if self.open_row is not None:
            self.precharge()
        self.open_row = row
        self.stats.activates += 1

    def precharge(self) -> None:
        if self.open_row is not None:
            self.stats.precharges += 1
            self.open_row = None

    def _check_open(self, row: int) -> None:
        if self.open_row != row:
            raise LayoutError(
                f"access to row {row} but open row is {self.open_row}")

    def read_chunk(self, row: int, chunk: int) -> np.ndarray:
        self._check_open(row)
        self.stats.chunk_reads += 1
        return self.storage[row, chunk].copy()

    def write_chunk(self, row: int, chunk: int, data: np.ndarray) -> None:
        self._check_open(row)
        if data.shape != (ELEMENTS_PER_CHUNK,):
            raise LayoutError("chunk writes must be 8 elements")
        self.stats.chunk_writes += 1
        self.storage[row, chunk] = data
