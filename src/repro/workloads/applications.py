"""The six evaluation workloads (§VII-A) as block-program generators.

Each application is a composition of bootstrapping and per-unit
homomorphic work, mirroring the published structure of the original
workloads:

* **Boot** — one full-slot bootstrapping (sparse-secret encapsulation).
* **HELR** [33] — one training iteration on a 1024-batch of 14x14 MNIST
  images: only 196 weights bootstrap, so bootstrapping runs sparsely
  packed and ModSwitch dominates (§VII-B).
* **Sort** [35] — two-way sorting of 2^14 reals: log^2-depth comparator
  rounds, each a deep polynomial comparison plus bootstrapping.
* **RNN** [67] — 200 evaluations of an RNN cell on a 32-batch of
  128-long embeddings: a 128-diagonal matrix-vector transform plus
  activation per iteration.
* **ResNet20** [49] — CIFAR-10 CNN inference: per-layer convolution
  transforms, AESPA-free polynomial activations, frequent bootstrapping.
* **ResNet18-AESPA** [37] — ImageNet-scale CNN with NeuJeans packing and
  AESPA activations; the heaviest workload (over 40 GB of memory).

Op mixtures are calibrated against the workload latencies the paper
reports (Table V and Fig. 8); see EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import blocks as B
from repro.core.allocator import MemoryPlan, plan_memory
from repro.errors import ParameterError
from repro.params import PaperParams
from repro.workloads.basic_functions import (hadd_blocks, hmult_blocks,
                                             hrot_blocks, pmult_blocks)
from repro.workloads.bootstrap_trace import BootstrapMeta, bootstrap_blocks
from repro.workloads.linear_transform_trace import transform_blocks


@dataclass
class Workload:
    """A named block program plus metadata for reporting."""

    name: str
    blocks: list
    l_eff: int
    memory: MemoryPlan
    boot_meta: BootstrapMeta | None = None
    description: str = ""


def _extras(params: PaperParams, limbs: int, hmult: int = 0, hrot: int = 0,
            pmult: int = 0, hadd: int = 0, transforms: int = 0,
            transform_diagonals: int = 16):
    """Per-unit application compute besides bootstrapping."""
    blocks = []
    aux, dnum = params.aux_count, params.dnum
    for _ in range(transforms):
        t_blocks, _ = transform_blocks(limbs, aux, dnum,
                                       transform_diagonals, method="hoist")
        blocks.extend(t_blocks)
    for _ in range(hmult):
        blocks.extend(hmult_blocks(limbs, aux, dnum))
    for _ in range(hrot):
        blocks.extend(hrot_blocks(limbs, aux, dnum))
    for _ in range(pmult):
        blocks.extend(pmult_blocks(limbs))
    for _ in range(hadd):
        blocks.extend(hadd_blocks(limbs))
    return blocks


def boot_workload(params: PaperParams | None = None, **boot_kwargs) -> Workload:
    """Full-slot bootstrapping (the T_boot,eff proxy workload)."""
    params = params or PaperParams()
    blocks, meta = bootstrap_blocks(params, **boot_kwargs)
    memory = plan_memory(params, evk_count=meta.evk_count,
                         plaintext_limbs=meta.plaintext_limbs)
    return Workload(name="Boot", blocks=blocks, l_eff=meta.l_eff,
                    memory=memory, boot_meta=meta,
                    description="full-slot bootstrapping, 2^15 slots")


def helr_workload(params: PaperParams | None = None) -> Workload:
    """One HELR training iteration (1024-batch, 14x14 MNIST)."""
    params = params or PaperParams()
    boot, meta = bootstrap_blocks(params, slot_count=256)
    blocks = list(boot)
    # Gradient computation: batch inner products and weight updates.
    blocks += _extras(params, limbs=20, hmult=18, hrot=36, pmult=60,
                      hadd=60, transforms=5, transform_diagonals=14)
    memory = plan_memory(params, evk_count=meta.evk_count + 12,
                         plaintext_limbs=meta.plaintext_limbs + 30 * 20)
    return Workload(name="HELR", blocks=blocks, l_eff=10, memory=memory,
                    boot_meta=meta,
                    description="logistic regression, per-iteration")


def sort_workload(params: PaperParams | None = None,
                  rounds: int = 105) -> Workload:
    """Two-way sorting of 2^14 reals: log^2 comparator rounds [35]."""
    params = params or PaperParams()
    boot, meta = bootstrap_blocks(params)
    blocks = []
    for _ in range(rounds):
        # Each comparison round evaluates a deep minimax polynomial
        # composition, consuming enough levels for two bootstrappings,
        # plus the compare-and-swap data movement.
        blocks.extend(boot)
        blocks.extend(boot)
        blocks.extend(boot)
        blocks += _extras(params, limbs=22, hmult=60, hrot=12, pmult=16,
                          hadd=24)
    memory = plan_memory(params, evk_count=meta.evk_count + 6,
                         plaintext_limbs=meta.plaintext_limbs)
    return Workload(name="Sort", blocks=blocks, l_eff=9, memory=memory,
                    boot_meta=meta,
                    description=f"2-way sort of 2^14 reals, {rounds} rounds")


def rnn_workload(params: PaperParams | None = None,
                 iterations: int = 200, boots: int = 40) -> Workload:
    """RNN cell evaluation, 200 iterations [67]."""
    params = params or PaperParams()
    boot, meta = bootstrap_blocks(params)
    blocks = []
    per_boot = max(1, iterations // boots)
    for i in range(iterations):
        # 128x128 weight matrix as a diagonal transform + activation.
        blocks += _extras(params, limbs=24, hmult=2, hadd=4, transforms=1,
                          transform_diagonals=128)
        if i % per_boot == per_boot - 1:
            blocks.extend(boot)
    memory = plan_memory(params, evk_count=meta.evk_count + 8,
                         plaintext_limbs=meta.plaintext_limbs + 128 * 24)
    return Workload(name="RNN", blocks=blocks, l_eff=10, memory=memory,
                    boot_meta=meta,
                    description="RNN inference, 200 cell evaluations")


def resnet20_workload(params: PaperParams | None = None,
                      layers: int = 30) -> Workload:
    """ResNet20 CIFAR-10 inference [49]."""
    params = params or PaperParams()
    boot, meta = bootstrap_blocks(params)
    blocks = []
    for _ in range(layers):
        # Multiplexed-parallel convolution: rotation-rich transform plus
        # a degree-2 composed polynomial activation.
        blocks += _extras(params, limbs=24, hmult=4, hrot=8, pmult=6,
                          hadd=10, transforms=1, transform_diagonals=36)
        blocks.extend(boot)
    memory = plan_memory(params, evk_count=meta.evk_count + 80,
                         plaintext_limbs=meta.plaintext_limbs + 800 * 24,
                         live_ciphertexts=48)
    return Workload(name="ResNet20", blocks=blocks, l_eff=8, memory=memory,
                    boot_meta=meta,
                    description="ResNet20 inference, 32x32x3 CIFAR-10")


def resnet18_workload(params: PaperParams | None = None,
                      layers: int = 34) -> Workload:
    """ResNet18-AESPA ImageNet inference (NeuJeans + AESPA) [37]."""
    params = params or PaperParams()
    boot, meta = bootstrap_blocks(params)
    blocks = []
    for _ in range(layers):
        blocks += _extras(params, limbs=26, hmult=5, hrot=10, pmult=10,
                          hadd=14, transforms=2, transform_diagonals=40)
        blocks.extend(boot)
    memory = plan_memory(params, evk_count=meta.evk_count + 110,
                         plaintext_limbs=meta.plaintext_limbs + 2200 * 26,
                         live_ciphertexts=64)
    return Workload(name="ResNet18-AESPA", blocks=blocks, l_eff=7,
                    memory=memory, boot_meta=meta,
                    description="ResNet18 inference, 224x224x3 ImageNet")


WORKLOADS = {
    "Boot": boot_workload,
    "HELR": helr_workload,
    "Sort": sort_workload,
    "RNN": rnn_workload,
    "ResNet20": resnet20_workload,
    "ResNet18-AESPA": resnet18_workload,
}


def build(name: str, params: PaperParams | None = None) -> Workload:
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise ParameterError(f"unknown workload {name!r}; choose from "
                             f"{sorted(WORKLOADS)}") from None
    return factory(params)
