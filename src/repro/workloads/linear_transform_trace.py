"""Performance-model traces of FHE linear transforms (§III-B, Fig. 5).

Three strategies, mirroring the functional layer:

* ``base``  — K independent HROT + PMULT evaluations;
* ``minks`` — identical compute to base (MinKS "does not alter the
  amount of computation") but reusing one evk: the metadata reports the
  evk working set, which only matters for hardware with enough cache;
* ``hoist`` — the paper's reordered hoisted flow: one shared ModUp,
  per-rotation KeyMult + extended-modulus PMULT + b-side MAC, a fused
  AutAccum, and a single ModDown pair.

Transforms larger than a few rotations use the baby-step giant-step
split: the baby rotations hoist; the giant rotations remain full HROTs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core import blocks as B
from repro.params import WORD_BYTES
from repro.workloads.basic_functions import hrot_blocks


@dataclass(frozen=True)
class TransformStats:
    """Key-material metadata for the Fig. 1 table."""

    evk_count: int
    plaintext_limbs: int   # total limbs of all plaintexts (size driver)
    rotations: int

    def plaintext_bytes(self, degree: int) -> int:
        return self.plaintext_limbs * degree * WORD_BYTES

    def evk_bytes(self, degree: int, limbs: int, aux: int, dnum: int) -> int:
        per_key = 2 * dnum * (limbs + aux) * degree * WORD_BYTES
        return self.evk_count * per_key


def bsgs_split(diagonals: int) -> tuple:
    """(baby, giant) rotation counts for a diagonal-packed transform."""
    baby = max(1, int(round(math.sqrt(diagonals))))
    giant = math.ceil(diagonals / baby)
    return baby, giant


def hoisted_block(limbs: int, aux: int, dnum: int, rotations: int,
                  pmults: int | None = None, reorder: bool = True,
                  rescale: bool = True):
    """One hoisted rotation bundle (Fig. 5): ModUp once, K KeyMults.

    ``pmults`` — plaintext multiplications performed in the extended
    modulus (defaults to one per rotation).
    """
    if pmults is None:
        pmults = rotations
    ext = limbs + aux
    out = [B.mod_up(limbs, aux, dnum)]
    for _ in range(rotations):
        out.append(B.key_mult(limbs, aux, dnum))
        if not reorder:
            # Automorphism in its original position: between KeyMult
            # and PMULT, on extended-modulus pairs (§V-B: extra 2K DRAM
            # reads and writes that the reordering eliminates).
            out.append(B.automorphism_pair(ext))
    for _ in range(pmults):
        out.append(B.pmult_pair(ext))          # extended-modulus plaintext
        out.append(B.elementwise(
            "bmac", limbs, reads=3, writes=1, ops=1.0,
            streaming_reads=1, instruction="MAC"))
    if reorder:
        out.append(B.aut_accum(ext, rotations))
    else:
        for i in range(rotations - 1):
            out.append(B.elementwise(
                f"accum{i}", 2 * ext, reads=2, writes=1, ops=1.0,
                streaming_reads=0, instruction="Add"))
    out.append(B.mod_down(limbs, aux))
    if rescale:
        out.append(B.rescale_pair(limbs))
    return out


def transform_blocks(limbs: int, aux: int, dnum: int, diagonals: int,
                     method: str = "hoist", reorder: bool = True):
    """Full diagonal-packed linear transform, BSGS-split.

    Returns ``(blocks, TransformStats)``.
    """
    baby, giant = bsgs_split(diagonals)
    ext = limbs + aux
    if method in ("base", "minks"):
        blocks = []
        for _ in range(baby + giant - 1):      # all rotations are full HROTs
            blocks.extend(hrot_blocks(limbs, aux, dnum))
        for _ in range(diagonals):
            blocks.append(B.pmult_pair(limbs))
        for _ in range(diagonals - 1):
            blocks.append(B.hadd(limbs))
        blocks.append(B.rescale_pair(limbs))
        # MinKS iterates with one evk per rotation stride: the unit
        # baby-step key and the giant-step stride key (§III-B).
        evk_count = 2 if method == "minks" else baby + giant - 1
        stats = TransformStats(evk_count=evk_count,
                               plaintext_limbs=diagonals * limbs,
                               rotations=baby + giant - 1)
        return blocks, stats
    if method == "hoist":
        blocks = hoisted_block(limbs, aux, dnum, rotations=baby,
                               pmults=diagonals, reorder=reorder,
                               rescale=False)
        for _ in range(giant - 1):             # giant steps stay full HROTs
            blocks.extend(hrot_blocks(limbs, aux, dnum))
            blocks.append(B.hadd(limbs))
        blocks.append(B.rescale_pair(limbs))
        stats = TransformStats(evk_count=baby + giant - 1,
                               plaintext_limbs=diagonals * ext,
                               rotations=baby + giant - 1)
        return blocks, stats
    raise ValueError(f"unknown transform method {method!r}")


def count_ntt_limbs(blocks, degree: int) -> int:
    """Total limb-transforms of (I)NTT in a lowered trace — the Fig. 1
    table's comparison metric."""
    from repro.core.fusion import GPU_ALL_FUSE, lower
    from repro.core.trace import OpCategory
    from repro.gpu.kernels import NTT_PASSES
    trace = lower(blocks, degree, GPU_ALL_FUSE)
    total = 0
    for kernel in trace.gpu_kernels():
        if kernel.category == OpCategory.NTT:
            # limbs = traffic / (passes * degree * word)
            total += int(kernel.bytes_read / (NTT_PASSES * degree * 4))
    return total
