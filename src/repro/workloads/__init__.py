"""Evaluation workloads, trace generators, and metrics."""

from repro.workloads.applications import WORKLOADS, Workload, build
from repro.workloads.basic_functions import BASIC_FUNCTIONS
from repro.workloads.bootstrap_trace import (BootstrapMeta, bootstrap_blocks,
                                             factor_diagonals, t_boot_eff)
from repro.workloads.linear_transform_trace import (TransformStats,
                                                    bsgs_split,
                                                    transform_blocks)
from repro.workloads.metrics import (edp, edp_improvement,
                                     energy_efficiency_gain, geomean,
                                     speedup)

__all__ = [
    "BASIC_FUNCTIONS", "BootstrapMeta", "TransformStats", "WORKLOADS",
    "Workload", "bootstrap_blocks", "bsgs_split", "build", "edp",
    "edp_improvement", "energy_efficiency_gain", "factor_diagonals",
    "geomean", "speedup", "t_boot_eff", "transform_blocks",
]
