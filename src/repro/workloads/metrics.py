"""Evaluation metrics: T_boot,eff, EDP, speedups, geometric means."""

from __future__ import annotations

import math


def speedup(baseline_time: float, improved_time: float) -> float:
    return baseline_time / improved_time


def energy_efficiency_gain(baseline_energy: float,
                           improved_energy: float) -> float:
    return baseline_energy / improved_energy


def edp(energy: float, time: float) -> float:
    """Energy-delay product (J*s)."""
    return energy * time


def edp_improvement(baseline, improved) -> float:
    """EDP reduction factor between two schedule reports."""
    return edp(baseline.energy, baseline.total_time) / edp(
        improved.energy, improved.total_time)


def geomean(values) -> float:
    values = list(values)
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))
