"""Performance-model trace of full CKKS bootstrapping (§II-C).

Composes ModRaise, CoeffToSlot (fftIter homomorphic DFT factors),
EvalMod (Chebyshev sine), and SlotToCoeff at the paper's parameters
(Table IV), with double-prime scaling: every multiplicative level
consumes two primes ([1], [45]).

The level schedule follows the paper's "L changes as 2 -> 54 -> 24":
the default fftIter mix of three and four leaves L_out = 24, giving
L_eff = (24 - 2) / 2 = 11.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core import blocks as B
from repro.params import PaperParams
from repro.workloads.linear_transform_trace import (TransformStats,
                                                    transform_blocks)

#: Primes consumed per multiplicative level under double-prime scaling.
PRIMES_PER_LEVEL = 2

#: Levels the EvalMod sine evaluation consumes (normalization + degree-63
#: Chebyshev + double-angle), matching the 54 -> 24 schedule with the
#: default fftIter mix.
EVALMOD_LEVELS = 8

#: Multiplications the EvalMod BSGS polynomial evaluation performs.
EVALMOD_HMULTS = 13

#: Constant-accumulation groups of the EvalMod combination step.
EVALMOD_CACCUM_GROUPS = 8


@dataclass
class BootstrapMeta:
    """Outcome metadata of one bootstrapping plan."""

    level_in: int = 2
    level_out: int = 0
    l_eff: int = 0
    evk_count: int = 0
    plaintext_limbs: int = 0
    transform_stats: list = field(default_factory=list)

    def l_schedule(self) -> str:
        return f"{self.level_in} -> raised -> {self.level_out}"


def factor_diagonals(slot_count: int, fft_iter: int) -> int:
    """Nonzero diagonals per DFT factor when the transform matrix is
    decomposed into ``fft_iter`` sparse factors [15]: radix
    ``r = n^(1/fft_iter)`` gives ~2r-1 diagonals."""
    radix = slot_count ** (1.0 / fft_iter)
    return max(3, int(round(2 * radix - 1)))


def _transform_factors(blocks, meta, limbs, params, fft_iter, method,
                       slot_count, reorder):
    for _ in range(fft_iter):
        factor_blocks, stats = transform_blocks(
            limbs, params.aux_count, params.dnum,
            factor_diagonals(slot_count, fft_iter), method=method,
            reorder=reorder)
        blocks.extend(factor_blocks)
        meta.transform_stats.append(stats)
        meta.evk_count += stats.evk_count
        meta.plaintext_limbs += stats.plaintext_limbs
        limbs -= PRIMES_PER_LEVEL
    return limbs


def bootstrap_blocks(params: PaperParams,
                     fft_iter_cts: float = 3.5,
                     fft_iter_stc: float = 3.5,
                     method: str = "hoist",
                     slot_count: int | None = None,
                     reorder: bool = True,
                     evalmod_levels: int = EVALMOD_LEVELS):
    """Build the bootstrapping block list and its metadata.

    ``fft_iter_*`` may be fractional to express the paper's default mix
    of three and four (3.5); ``slot_count`` below N/2 models sparsely
    packed bootstrapping (HELR's 196 slots, §VII-B).
    """
    if slot_count is None:
        slot_count = params.slot_count
    blocks = []
    meta = BootstrapMeta()
    limbs = params.level_count

    # ModRaise: reinterpret + NTT to the full basis.
    blocks.append(B.raw_ntt(limbs))
    blocks.append(B.raw_ntt(limbs))

    # Sparse-secret encapsulation [9]: one key switch at the base level.
    blocks.append(B.mod_up(meta.level_in, params.aux_count, 1))
    blocks.append(B.key_mult(meta.level_in, params.aux_count, 1))
    blocks.append(B.mod_down(meta.level_in, params.aux_count))

    cts_factors = int(round(fft_iter_cts))
    stc_factors = int(round(fft_iter_stc))
    # Fractional fftIter (the 3/4 mix) spends the in-between level count.
    cts_levels = int(round(fft_iter_cts * PRIMES_PER_LEVEL))
    stc_levels = int(round(fft_iter_stc * PRIMES_PER_LEVEL))

    # --- CoeffToSlot.
    _transform_factors(blocks, meta, limbs, params, cts_factors,
                       method, slot_count, reorder)
    limbs -= cts_levels

    # c0/c1 split: conjugation (one key switch) + element-wise combine.
    blocks.append(B.mod_up(limbs, params.aux_count, params.dnum))
    blocks.append(B.key_mult(limbs, params.aux_count, params.dnum))
    blocks.append(B.mod_down(limbs, params.aux_count))
    blocks.append(B.hadd(limbs))
    blocks.append(B.hadd(limbs))
    meta.evk_count += 1

    # --- EvalMod on both halves, with lazy relinearization: the d2
    # parts of one level's products accumulate and key-switch once per
    # half per level — the ModSwitch merging/skipping the paper notes
    # state-of-the-art implementations apply (§IV-B).
    hmults_per_level = max(1, math.ceil(EVALMOD_HMULTS / evalmod_levels))
    for step in range(evalmod_levels):
        for _ in range(2 * hmults_per_level):   # both halves
            blocks.append(B.tensor(limbs))
            blocks.append(B.hadd(limbs))
            blocks.append(B.rescale_pair(limbs))
            blocks.append(B.rescale_pair(limbs - 1))
        for _ in range(2):                      # one key switch per half
            blocks.append(B.mod_up(limbs, params.aux_count, params.dnum))
            blocks.append(B.key_mult(limbs, params.aux_count, params.dnum))
            blocks.append(B.mod_down(limbs, params.aux_count))
        blocks.append(B.caccum(limbs, EVALMOD_CACCUM_GROUPS))
        limbs -= PRIMES_PER_LEVEL
    meta.evk_count += 1   # relinearization key

    # --- SlotToCoeff.
    _transform_factors(blocks, meta, limbs, params, stc_factors, method,
                       slot_count, reorder)
    limbs -= stc_levels

    meta.level_out = limbs
    meta.l_eff = max(1, (meta.level_out - meta.level_in)
                     // PRIMES_PER_LEVEL)
    return blocks, meta


def t_boot_eff(total_time: float, meta: BootstrapMeta) -> float:
    """The paper's primary metric: bootstrapping time per usable level."""
    return total_time / meta.l_eff
