"""Anaheim for other FHE schemes (§VIII-C, future work made concrete).

"A direct extension for other FHE schemes would be feasible. For
example, BGV and BFV include the same KeyMult ops, and FHEW and TFHE
also require similar parallel mult process for their evks."

This module builds performance-model traces for those schemes' hottest
kernels so the same lowering/offload/scheduling stack evaluates them:

* **BGV** multiplication — structurally identical to CKKS HMULT
  (tensor, ModUp, KeyMult, ModDown), with modulus switching instead of
  rescaling.
* **BFV** multiplication — scale-invariant multiplication first extends
  both operands to a double-width basis (extra BConv + NTT work), then
  tensors, scales down, and relinearizes.
* **TFHE gate bootstrapping** — n external products (CMux gates)
  against a GGSW evaluation key at a small ring degree: each is a
  decompose -> NTT -> key-vector MAC -> INTT pipeline whose MAC stage
  is exactly PAccum-shaped.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import blocks as B


def bgv_hmult_blocks(limbs: int, aux: int, dnum: int):
    """BGV multiplication: tensor + key switch + modulus switch.

    The key-switching core is the same KeyMult the paper highlights —
    BGV inherits Anaheim's offload unchanged.
    """
    return [
        B.tensor(limbs),
        B.mod_up(limbs, aux, dnum),
        B.key_mult(limbs, aux, dnum),
        B.mod_down(limbs, aux),
        B.hadd(limbs),
        # BGV modulus switching: scale-and-round, one limb dropped.
        B.rescale_pair(limbs),
    ]


def bfv_hmult_blocks(limbs: int, aux: int, dnum: int):
    """BFV multiplication: basis extension, tensor, scale-down, relin.

    Scale-invariant multiplication computes over Q·B (a doubled basis):
    both operands are extended (2 extra BConv+NTT pipelines), the tensor
    runs at 2L limbs, and the scale-down converts back.
    """
    extended = 2 * limbs
    out = []
    for _ in range(2):   # extend both input ciphertexts (2 polys each)
        out.append(B.mod_up(limbs, limbs, 1, polys=2))
    out.append(B.tensor(extended))
    # Scale down t/Q: per output poly, INTT + BConv back to Q + NTT.
    for _ in range(3):
        out.append(B.raw_ntt(extended, inverse=True))
        out.append(B.raw_bconv(extended, limbs))
        out.append(B.raw_ntt(limbs))
    # Relinearize d2, as in CKKS.
    out.append(B.mod_up(limbs, aux, dnum))
    out.append(B.key_mult(limbs, aux, dnum))
    out.append(B.mod_down(limbs, aux))
    out.append(B.hadd(limbs))
    return out


@dataclass(frozen=True)
class TfheParams:
    """Small-ring TFHE-style parameters for gate bootstrapping."""

    degree: int = 2 ** 11
    decomposition: int = 4      # GGSW decomposition length
    lwe_dimension: int = 630    # external products per bootstrap


def tfhe_gate_bootstrap_blocks(params: TfheParams | None = None):
    """One TFHE gate bootstrap: ``n`` CMux external products.

    Each external product decomposes the accumulator (element-wise),
    NTTs the decomposed digits, MACs them against the GGSW key rows
    (the PAccum-shaped stage: 2·l key polys, streaming), and INTTs
    back.  Rotations are handled as cheap coefficient permutations.
    """
    params = params or TfheParams()
    blocks = []
    l = params.decomposition
    for _ in range(params.lwe_dimension):
        # Digit decomposition of the 2-poly accumulator.
        blocks.append(B.elementwise(
            "decompose", 2 * l, reads=2, writes=l, ops=1.0,
            streaming_reads=0, instruction="CMult"))
        blocks.append(B.raw_ntt(2 * l))
        # The GGSW MAC: accumulate 2l digit polys against key rows.
        blocks.append(B.elementwise(
            "ggsw_mac", 2 * l, reads=3 * l, writes=2, ops=2.0 * l,
            streaming_reads=2 * l, instruction="PAccum", fan_in=l))
        blocks.append(B.raw_ntt(2, inverse=True))
        # Accumulator rotation (X^{a_i} monomial mult) + add.
        blocks.append(B.automorphism_pair(1))
        blocks.append(B.hadd(1))
    return blocks


SCHEME_BUILDERS = {
    "BGV": bgv_hmult_blocks,
    "BFV": bfv_hmult_blocks,
}
