"""Closed-form operation and byte counts for CKKS primitives.

These formulas back the arithmetic-intensity analysis of §IV-D: why
element-wise ops sit below 2 ops/byte while (I)NTT and BConv sit far
above the GPU roofline ridge.  Counts are in modular multiplications
(the dominant op) and bytes of 32-bit words.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.params import WORD_BYTES


@dataclass(frozen=True)
class OpCount:
    """Modular ops and memory footprint of one primitive."""

    mod_ops: float
    bytes_touched: float

    @property
    def ops_per_byte(self) -> float:
        return self.mod_ops / self.bytes_touched if self.bytes_touched else 0.0

    def __add__(self, other: "OpCount") -> "OpCount":
        return OpCount(self.mod_ops + other.mod_ops,
                       self.bytes_touched + other.bytes_touched)

    def times(self, factor: float) -> "OpCount":
        return OpCount(self.mod_ops * factor, self.bytes_touched * factor)


def limb_bytes(degree: int) -> int:
    return degree * WORD_BYTES


def ntt_count(limbs: int, degree: int) -> OpCount:
    """N/2 log N butterflies per limb; one read + one write pass."""
    return OpCount(
        mod_ops=limbs * (degree / 2) * math.log2(degree),
        bytes_touched=2 * limbs * limb_bytes(degree))


def bconv_count(in_limbs: int, out_limbs: int, degree: int) -> OpCount:
    """(out x in) modular matrix product over N coefficients."""
    return OpCount(
        mod_ops=(in_limbs * out_limbs + in_limbs) * degree,
        bytes_touched=(in_limbs + out_limbs) * limb_bytes(degree))


def elementwise_count(limbs: int, degree: int, operands: int,
                      ops_per_element: float = 1.0) -> OpCount:
    """An element-wise kernel touching ``operands`` polynomials."""
    return OpCount(
        mod_ops=limbs * degree * ops_per_element,
        bytes_touched=operands * limbs * limb_bytes(degree))


def automorphism_count(limbs: int, degree: int, polys: int = 2) -> OpCount:
    return OpCount(mod_ops=0.0,
                   bytes_touched=2 * polys * limbs * limb_bytes(degree))


def mod_up_count(limbs: int, aux: int, dnum: int, degree: int) -> OpCount:
    """ModUp = INTT(L) + D x (BConv + NTT) (§II-B)."""
    group = -(-limbs // dnum)
    fresh = limbs + aux - min(aux, limbs)
    total = ntt_count(limbs, degree)
    for _ in range(dnum):
        total = total + bconv_count(group, fresh, degree)
        total = total + ntt_count(fresh, degree)
    return total


def key_mult_count(limbs: int, aux: int, dnum: int, degree: int) -> OpCount:
    """PAccum⟨D⟩ over extended-modulus digits: 2D muls per element."""
    ext = limbs + aux
    return elementwise_count(ext, degree, operands=3 * dnum + 2,
                             ops_per_element=2 * dnum)


def mod_down_count(limbs: int, aux: int, degree: int) -> OpCount:
    """ModDown of a ciphertext pair."""
    total = OpCount(0.0, 0.0)
    for _ in range(2):
        total = total + ntt_count(aux, degree)
        total = total + bconv_count(aux, limbs, degree)
        total = total + ntt_count(limbs, degree)
    total = total + elementwise_count(2 * limbs, degree, operands=3,
                                      ops_per_element=2.0)
    return total


def hrot_count(limbs: int, aux: int, dnum: int, degree: int) -> OpCount:
    return (mod_up_count(limbs, aux, dnum, degree)
            + key_mult_count(limbs, aux, dnum, degree)
            + elementwise_count(2 * limbs, degree, operands=3)
            + automorphism_count(limbs, degree)
            + mod_down_count(limbs, aux, degree))


def hmult_count(limbs: int, aux: int, dnum: int, degree: int) -> OpCount:
    tensor = elementwise_count(limbs, degree, operands=7,
                               ops_per_element=2.0)
    return (tensor
            + mod_up_count(limbs, aux, dnum, degree)
            + key_mult_count(limbs, aux, dnum, degree)
            + mod_down_count(limbs, aux, degree)
            + elementwise_count(2 * limbs, degree, operands=3))
