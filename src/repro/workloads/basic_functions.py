"""Block sequences for the basic CKKS functions (§II-A, Fig. 2a)."""

from __future__ import annotations

from repro.core import blocks as B


def hadd_blocks(limbs: int):
    """HADD: one pair-wise modular addition."""
    return [B.hadd(limbs)]


def pmult_blocks(limbs: int, rescale: bool = True):
    """PMULT: plaintext multiplication (+ rescale)."""
    out = [B.pmult_pair(limbs)]
    if rescale:
        out.append(B.rescale_pair(limbs))
    return out


def hmult_blocks(limbs: int, aux: int, dnum: int, rescale: bool = True):
    """HMULT: Tensor -> ModUp(d2) -> KeyMult -> ModDown -> add -> rescale."""
    out = [
        B.tensor(limbs),
        B.mod_up(limbs, aux, dnum),
        B.key_mult(limbs, aux, dnum),
        B.mod_down(limbs, aux),
        B.hadd(limbs),
    ]
    if rescale:
        out.append(B.rescale_pair(limbs))
    return out


def hrot_blocks(limbs: int, aux: int, dnum: int):
    """HROT: ModUp -> KeyMult -> MAC -> automorphism -> ModDown (Fig. 1)."""
    return [
        B.mod_up(limbs, aux, dnum),
        B.key_mult(limbs, aux, dnum),
        B.mac_pair(limbs),
        B.automorphism_pair(limbs),
        B.mod_down(limbs, aux),
    ]


#: The Fig. 2a basic functions.  PMULT is the bare plaintext product —
#: rescaling is deferred (lazy rescaling), as in the measured libraries.
BASIC_FUNCTIONS = {
    "HADD": lambda L, a, d: hadd_blocks(L),
    "PMULT": lambda L, a, d: pmult_blocks(L, rescale=False),
    "HMULT": lambda L, a, d: hmult_blocks(L, a, d),
    "HROT": lambda L, a, d: hrot_blocks(L, a, d),
}
