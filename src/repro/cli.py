"""Command-line interface to the Anaheim reproduction.

Usage examples::

    anaheim-repro list
    anaheim-repro run --workload Boot --gpu a100 --pim near-bank
    anaheim-repro run --workload HELR --gpu rtx4090 --breakdown
    anaheim-repro gantt --rotations 8
    anaheim-repro microbench --buffer 16

(Equivalently: ``python -m repro ...``.)
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.reporting import (format_ratio, format_seconds,
                                      format_table)
from repro.core.framework import AnaheimFramework
from repro.core.gantt import render_breakdown, render_gantt
from repro.core.trace import PimKernel
from repro.gpu.configs import A100_80GB, LIBRARIES, RTX_4090
from repro.params import paper_params
from repro.pim.configs import (A100_CUSTOM_HBM, A100_NEAR_BANK,
                               RTX4090_NEAR_BANK, with_buffer)
from repro.pim.executor import PimExecutor
from repro.workloads import applications as apps
from repro.workloads.linear_transform_trace import hoisted_block
from repro.workloads.metrics import edp_improvement

GPUS = {"a100": A100_80GB, "rtx4090": RTX_4090}


def _pim_for(gpu_name: str, pim_name: str):
    table = {
        ("a100", "near-bank"): A100_NEAR_BANK,
        ("a100", "custom-hbm"): A100_CUSTOM_HBM,
        ("rtx4090", "near-bank"): RTX4090_NEAR_BANK,
    }
    key = (gpu_name, pim_name)
    if key not in table:
        raise SystemExit(f"no PIM config for gpu={gpu_name} pim={pim_name}")
    return table[key]


def cmd_list(_args) -> int:
    rows = []
    params = paper_params()
    for name in apps.WORKLOADS:
        workload = apps.build(name, params)
        rows.append([name, workload.l_eff,
                     f"{workload.memory.total_bytes / 1e9:.0f}GB",
                     workload.description])
    print(format_table(["workload", "L_eff", "memory", "description"],
                       rows))
    return 0


def cmd_run(args) -> int:
    gpu = GPUS[args.gpu]
    params = paper_params()
    workload = apps.build(args.workload, params)
    if not workload.memory.fits(gpu.dram_capacity):
        print(f"{args.workload} needs {workload.memory.describe()} but "
              f"{gpu.name} has {gpu.dram_capacity / 1e9:.0f}GB: OoM")
        return 1
    library = LIBRARIES[args.library]
    if args.pim == "none":
        framework = AnaheimFramework(gpu, library=library)
        report = framework.run(workload.blocks, params.degree,
                               label=args.workload).report
        print(f"{args.workload} on {gpu.name} ({args.library}): "
              f"{format_seconds(report.total_time)}, "
              f"{report.energy:.2f}J")
        if args.breakdown:
            print(render_breakdown({args.workload: report}))
        return 0
    pim = _pim_for(args.gpu, args.pim)
    framework = AnaheimFramework(gpu, pim, library=library)
    runs = framework.compare(workload.blocks, params.degree,
                             label=args.workload)
    base, anaheim = runs["gpu"].report, runs["pim"].report
    rows = [
        ["baseline GPU", format_seconds(base.total_time),
         f"{base.energy:.2f}J", "-"],
        ["Anaheim", format_seconds(anaheim.total_time),
         f"{anaheim.energy:.2f}J",
         format_ratio(edp_improvement(base, anaheim))],
    ]
    print(format_table(["configuration", "time", "energy", "EDP gain"],
                       rows, title=f"{args.workload} on {gpu.name} + "
                                   f"{pim.name}"))
    if args.breakdown:
        print()
        print(render_breakdown({"GPU": base, "Anaheim": anaheim}))
    return 0


def cmd_gantt(args) -> int:
    params = paper_params()
    blocks = hoisted_block(params.level_count, params.aux_count,
                           params.dnum, rotations=args.rotations)
    framework = AnaheimFramework(A100_80GB, A100_NEAR_BANK,
                                 keep_segments=True)
    report = framework.run(blocks, params.degree,
                           label=f"hoisted transform K={args.rotations}"
                           ).report
    print(render_gantt(report, width=args.width))
    print("  [N=(I)NTT  B=BConv  e=element-wise  A=automorphism  "
          "w=write-back  P=PIM]")
    return 0


def cmd_microbench(args) -> int:
    params = paper_params()
    limbs = params.level_count + params.aux_count
    config = with_buffer(A100_NEAR_BANK, args.buffer)
    executor = PimExecutor(config)
    rows = []
    from repro.pim import isa
    for name in sorted(isa.INSTRUCTIONS):
        inst = isa.instruction(name)
        fan_in = 4 if inst.compound else 1
        if not executor.supports(name, fan_in):
            rows.append([name, "unsupported", "-", "-"])
            continue
        kernel = PimKernel(name=name, instruction=name, limbs=limbs,
                           degree=params.degree, fan_in=fan_in)
        cost = executor.cost(kernel)
        rows.append([name, format_seconds(cost.time),
                     f"{cost.energy * 1e3:.2f}mJ",
                     f"{cost.activations}"])
    print(format_table(["instruction", "time", "energy", "ACT pairs"],
                       rows, title=f"{config.name}, B={args.buffer}, "
                                   f"{limbs} limbs"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="anaheim-repro",
        description="Anaheim (HPCA 2025) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the evaluation workloads")

    run = sub.add_parser("run", help="model a workload on a configuration")
    run.add_argument("--workload", required=True,
                     choices=sorted(apps.WORKLOADS))
    run.add_argument("--gpu", default="a100", choices=sorted(GPUS))
    run.add_argument("--pim", default="near-bank",
                     choices=["near-bank", "custom-hbm", "none"])
    run.add_argument("--library", default="Cheddar",
                     choices=sorted(LIBRARIES))
    run.add_argument("--breakdown", action="store_true",
                     help="print the per-category time breakdown")

    gantt = sub.add_parser("gantt",
                           help="Gantt chart of a hoisted linear transform")
    gantt.add_argument("--rotations", type=int, default=8)
    gantt.add_argument("--width", type=int, default=100)

    micro = sub.add_parser("microbench",
                           help="per-instruction PIM cost table")
    micro.add_argument("--buffer", type=int, default=16)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"list": cmd_list, "run": cmd_run, "gantt": cmd_gantt,
                "microbench": cmd_microbench}
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
