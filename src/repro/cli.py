"""Command-line interface to the Anaheim reproduction.

Usage examples::

    anaheim-repro list
    anaheim-repro run --workload Boot --gpu a100 --pim near-bank
    anaheim-repro run --workload HELR --gpu rtx4090 --breakdown
    anaheim-repro run --workload Boot --json --trace-out trace.json
    anaheim-repro gantt --rotations 8
    anaheim-repro microbench --buffer 16
    anaheim-repro profile --workload HELR
    anaheim-repro bench --workload Boot --dir baselines
    anaheim-repro bench --workload Boot --dir baselines --check

(Equivalently: ``python -m repro ...``.)
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.reporting import (format_ratio, format_seconds,
                                      format_table)
from repro.core.framework import AnaheimFramework
from repro.core.gantt import render_breakdown, render_gantt
from repro.core.scheduler import ScheduleReport, Segment
from repro.core.trace import OpCategory, PimKernel
from repro.errors import ParameterError, ReproError
from repro.gpu.configs import A100_80GB, LIBRARIES, RTX_4090
from repro.obs.baseline import (append_history, baseline_metrics,
                                baseline_path, check_baseline,
                                check_baseline_metrics, load_baseline,
                                load_history, render_history,
                                write_baseline, write_baseline_metrics)
from repro.obs.export import (chrome_trace_from_report,
                              chrome_trace_from_tracer, merge_traces,
                              report_dict, run_manifest, write_json)
from repro.obs.metrics import EventLog, MetricsRegistry, parse_prometheus
from repro.obs.profile import render_counters, render_span_tree
from repro.obs.tracer import Tracer
from repro.obs.utilization import UtilizationReport
from repro.params import paper_params
from repro.pim.configs import (A100_CUSTOM_HBM, A100_NEAR_BANK,
                               RTX4090_NEAR_BANK, with_buffer)
from repro.pim.executor import PimExecutor
from repro.workloads import applications as apps
from repro.workloads.linear_transform_trace import hoisted_block
from repro.workloads.metrics import edp_improvement

GPUS = {"a100": A100_80GB, "rtx4090": RTX_4090}


def _pim_for(gpu_name: str, pim_name: str):
    table = {
        ("a100", "near-bank"): A100_NEAR_BANK,
        ("a100", "custom-hbm"): A100_CUSTOM_HBM,
        ("rtx4090", "near-bank"): RTX4090_NEAR_BANK,
    }
    key = (gpu_name, pim_name)
    if key not in table:
        raise SystemExit(f"no PIM config for gpu={gpu_name} pim={pim_name}")
    return table[key]


# -- Observability plumbing shared by the subcommands --------------------------


def _add_obs_flags(parser) -> None:
    parser.add_argument("--json", action="store_true",
                        help="emit results as JSON on stdout")
    parser.add_argument("--trace-out", metavar="FILE",
                        help="write a Chrome trace-event file "
                             "(load in Perfetto / chrome://tracing)")
    parser.add_argument("--manifest", metavar="FILE",
                        help="write a full JSON run manifest "
                             "(configs, provenance, all report metrics)")


def _write_artifact(path, document, kind: str, quiet: bool) -> None:
    try:
        write_json(path, document)
    except OSError as exc:
        raise SystemExit(f"cannot write {kind} to {path}: {exc}")
    if not quiet:
        print(f"wrote {kind} to {path}")


def _write_text(path, text: str, kind: str, quiet: bool = False) -> None:
    try:
        with open(path, "w") as fh:
            fh.write(text)
    except OSError as exc:
        raise SystemExit(f"cannot write {kind} to {path}: {exc}")
    if not quiet:
        print(f"wrote {kind} to {path}")


def _emit_artifacts(args, trace_doc=None, manifest=None) -> None:
    quiet = getattr(args, "json", False)
    if getattr(args, "trace_out", None) and trace_doc is not None:
        _write_artifact(args.trace_out, trace_doc, "trace", quiet)
    if getattr(args, "manifest", None) and manifest is not None:
        _write_artifact(args.manifest, manifest, "manifest", quiet)


def _check_memory(workload, gpu, quiet: bool = False) -> bool:
    if workload.memory.fits(gpu.dram_capacity):
        return True
    if not quiet:
        print(f"{workload.name} needs {workload.memory.describe()} but "
              f"{gpu.name} has {gpu.dram_capacity / 1e9:.0f}GB: OoM")
    return False


# -- Subcommands ---------------------------------------------------------------


def cmd_list(_args) -> int:
    rows = []
    params = paper_params()
    for name in apps.WORKLOADS:
        workload = apps.build(name, params)
        rows.append([name, workload.l_eff,
                     f"{workload.memory.total_bytes / 1e9:.0f}GB",
                     workload.description])
    print(format_table(["workload", "L_eff", "memory", "description"],
                       rows))
    return 0


def cmd_run(args) -> int:
    gpu = GPUS[args.gpu]
    params = paper_params()
    workload = apps.build(args.workload, params)
    if not _check_memory(workload, gpu):
        return 1
    library = LIBRARIES[args.library]
    keep = args.trace_out is not None
    fault_plan = None
    if args.fault_seed is not None:
        from repro.faults.plan import default_plan
        fault_plan = default_plan(seed=args.fault_seed,
                                  scale=args.fault_scale)
    metrics = MetricsRegistry()
    if args.pim == "none":
        framework = AnaheimFramework(gpu, library=library,
                                     keep_segments=keep,
                                     fault_plan=fault_plan,
                                     metrics=metrics)
        result = framework.run(workload.blocks, params.degree,
                               label=args.workload)
        report = result.report
        manifest = run_manifest(report, gpu=gpu, pim=None, library=library,
                                options=result.options,
                                workload=args.workload,
                                degree=params.degree,
                                fault_plan=fault_plan,
                                metrics=metrics)
        _emit_artifacts(args, trace_doc=chrome_trace_from_report(report),
                        manifest=manifest)
        if args.json:
            print(json.dumps({"workload": args.workload, "gpu": gpu.name,
                              "pim": None, "library": args.library,
                              "report": report_dict(report)}, indent=2))
            return 0
        print(f"{args.workload} on {gpu.name} ({args.library}): "
              f"{format_seconds(report.total_time)}, "
              f"{report.energy:.2f}J")
        if args.breakdown:
            print(render_breakdown({args.workload: report}))
        return 0
    pim = _pim_for(args.gpu, args.pim)
    framework = AnaheimFramework(gpu, pim, library=library,
                                 keep_segments=keep,
                                 fault_plan=fault_plan,
                                 metrics=metrics)
    runs = framework.compare(workload.blocks, params.degree,
                             label=args.workload)
    base, anaheim = runs["gpu"].report, runs["pim"].report
    trace_doc = merge_traces(chrome_trace_from_report(base, pid=0),
                             chrome_trace_from_report(anaheim, pid=1))
    manifest = run_manifest(anaheim, gpu=gpu, pim=pim, library=library,
                            options=runs["pim"].options,
                            workload=args.workload, degree=params.degree,
                            fault_plan=fault_plan, metrics=metrics,
                            extra={"baseline_report": report_dict(base)})
    _emit_artifacts(args, trace_doc=trace_doc, manifest=manifest)
    if args.json:
        print(json.dumps({
            "workload": args.workload, "gpu": gpu.name, "pim": pim.name,
            "library": args.library,
            "baseline": report_dict(base),
            "anaheim": report_dict(anaheim),
            "edp_gain": edp_improvement(base, anaheim),
        }, indent=2))
        return 0
    rows = [
        ["baseline GPU", format_seconds(base.total_time),
         f"{base.energy:.2f}J", "-"],
        ["Anaheim", format_seconds(anaheim.total_time),
         f"{anaheim.energy:.2f}J",
         format_ratio(edp_improvement(base, anaheim))],
    ]
    print(format_table(["configuration", "time", "energy", "EDP gain"],
                       rows, title=f"{args.workload} on {gpu.name} + "
                                   f"{pim.name}"))
    if args.breakdown:
        print()
        print(render_breakdown({"GPU": base, "Anaheim": anaheim}))
    return 0


def cmd_gantt(args) -> int:
    params = paper_params()
    blocks = hoisted_block(params.level_count, params.aux_count,
                           params.dnum, rotations=args.rotations)
    metrics = MetricsRegistry()
    framework = AnaheimFramework(A100_80GB, A100_NEAR_BANK,
                                 keep_segments=True, metrics=metrics)
    result = framework.run(blocks, params.degree,
                           label=f"hoisted transform K={args.rotations}")
    report = result.report
    manifest = run_manifest(report, gpu=A100_80GB, pim=A100_NEAR_BANK,
                            options=result.options,
                            workload=f"hoisted-transform-K{args.rotations}",
                            degree=params.degree, metrics=metrics)
    _emit_artifacts(args, trace_doc=chrome_trace_from_report(report),
                    manifest=manifest)
    if args.json:
        print(json.dumps({"report": report_dict(report, segments=True)},
                         indent=2))
        return 0
    print(render_gantt(report, width=args.width))
    print("  [N=(I)NTT  B=BConv  e=element-wise  A=automorphism  "
          "w=write-back  P=PIM]")
    return 0


def cmd_microbench(args) -> int:
    params = paper_params()
    limbs = params.level_count + params.aux_count
    config = with_buffer(A100_NEAR_BANK, args.buffer)
    executor = PimExecutor(config)
    rows = []
    records = []
    report = ScheduleReport(label=f"{config.name} microbench B={args.buffer}")
    clock = 0.0
    from repro.pim import isa
    for name in sorted(isa.INSTRUCTIONS):
        inst = isa.instruction(name)
        fan_in = 4 if inst.compound else 1
        if not executor.supports(name, fan_in):
            rows.append([name, "unsupported", "-", "-"])
            records.append({"instruction": name, "supported": False})
            continue
        kernel = PimKernel(name=name, instruction=name, limbs=limbs,
                           degree=params.degree, fan_in=fan_in)
        cost = executor.cost(kernel)
        rows.append([name, format_seconds(cost.time),
                     f"{cost.energy * 1e3:.2f}mJ",
                     f"{cost.activations}"])
        records.append({"instruction": name, "supported": True,
                        "time": cost.time, "energy": cost.energy,
                        "activations": cost.activations,
                        "internal_bytes": cost.internal_bytes})
        report.segments.append(Segment(
            start=clock, end=clock + cost.time, device="pim",
            name=name, category=OpCategory.ELEMENTWISE))
        clock += cost.time
        report.pim_time += cost.time
        report.energy_pim += cost.energy
    report.total_time = clock
    manifest = run_manifest(report, pim=config,
                            workload=f"microbench-B{args.buffer}",
                            degree=params.degree,
                            extra={"instructions": records})
    _emit_artifacts(args, trace_doc=chrome_trace_from_report(report),
                    manifest=manifest)
    if args.json:
        print(json.dumps({"config": config.name, "buffer": args.buffer,
                          "limbs": limbs, "instructions": records},
                         indent=2))
        return 0
    print(format_table(["instruction", "time", "energy", "ACT pairs"],
                       rows, title=f"{config.name}, B={args.buffer}, "
                                   f"{limbs} limbs"))
    return 0


def _bench_framework(args):
    """(framework, pim-or-None, workload) for bench/profile runs."""
    gpu = GPUS[args.gpu]
    params = paper_params()
    workload = apps.build(args.workload, params)
    if not _check_memory(workload, gpu):
        return None
    library = LIBRARIES[args.library]
    pim = None if args.pim == "none" else _pim_for(args.gpu, args.pim)
    framework = AnaheimFramework(
        gpu, pim, library=library,
        keep_segments=getattr(args, "trace_out", None) is not None,
        tracer=getattr(args, "_tracer", None))
    return framework, pim, workload, params


def _run_functional(args, tracer=None) -> dict:
    from repro.ckks.bench import run_functional_bench
    return run_functional_bench(repeats=getattr(args, "repeats", 3),
                                tracer=tracer)


def _bench_functional(args) -> int:
    """Wall-clock bench of the executable CKKS layer (no modeled run)."""
    tracer = Tracer()
    result = _run_functional(args, tracer=tracer)
    metrics = result["metrics"]
    if args.check:
        path = baseline_path(args.dir, "functional")
        if not path.exists():
            print(f"no baseline at {path}; run `anaheim-repro bench "
                  f"--workload functional` first")
            return 2
        baseline = load_baseline(args.dir, "functional")
        regressions = check_baseline_metrics(baseline, metrics,
                                             tolerance=args.tolerance)
        if regressions:
            print(f"functional: {len(regressions)} metric(s) outside "
                  f"±{args.tolerance:.0%} of {path}:")
            for regression in regressions:
                print(f"  {regression.describe()}")
            return 1
        print(f"functional: all metrics within ±{args.tolerance:.0%} "
              f"of {path}")
        return 0
    path = write_baseline_metrics(
        args.dir, "functional", metrics, config=result["config"],
        extra={"counters": result["counters"],
               "precision_max_err": result["precision_max_err"]})
    append_history(args.dir, "functional", metrics,
                   config=result["config"])
    print(f"wrote baseline {path} "
          f"(bootstrap {format_seconds(metrics['bootstrap_s'])}, "
          f"key switch {format_seconds(metrics['key_switch_s'])}, "
          f"NTT batch speedup {metrics['ntt_batch_speedup']:.2f}x, "
          f"lazy speedup {metrics['ntt_lazy_speedup']:.2f}x)")
    return 0


def _bench_parallel(args) -> int:
    """Pool-throughput bench: parallel campaign vs serial, gated.

    Runs the same analytic campaign serially and across ``--workers``
    worker processes, byte-compares the two documents, and records the
    **deterministic** pool speedup — :func:`~repro.parallel.pool_timeline`
    replaying the per-unit simulated costs onto worker lanes — in
    ``BENCH_parallel.json``.  Wall clocks are reported for information
    only (``extra``), never gated: the modeled speedup is a pure
    function of (costs, workers) and reproduces exactly under
    ``bench --check`` on any host, including single-core CI runners.
    """
    import time as _time
    from repro.faults.campaign import run_matrix
    from repro.parallel import pool_timeline

    seeds = tuple(range(args.units))
    workers = args.workers

    start = _time.perf_counter()
    serial = run_matrix(seeds=seeds, functional=False,
                        record_wall=False, workload="Boot")
    wall_serial_s = _time.perf_counter() - start
    start = _time.perf_counter()
    parallel = run_matrix(seeds=seeds, functional=False,
                          record_wall=False, workload="Boot",
                          workers=workers, threads=args.threads)
    wall_parallel_s = _time.perf_counter() - start
    digest_match = (json.dumps(serial, sort_keys=True)
                    == json.dumps(parallel, sort_keys=True))

    costs = [run["faulted_time_s"] for run in serial["analytic"]]
    timeline = pool_timeline(costs, workers)
    metrics = {
        "units": float(timeline["units"]),
        "workers": float(workers),
        "serial_s": timeline["serial_s"],
        "makespan_s": timeline["makespan_s"],
        "throughput_speedup": timeline["speedup"],
        "digest_match": 1.0 if digest_match else 0.0,
    }
    config = {"units": args.units, "workers": workers,
              "threads": args.threads, "workload": "Boot"}
    extra = {"wall_serial_s": wall_serial_s,
             "wall_parallel_s": wall_parallel_s,
             "wall_speedup": (wall_serial_s / wall_parallel_s
                              if wall_parallel_s else 0.0)}
    summary = (f"{timeline['units']} units x {workers} workers: "
               f"modeled speedup {timeline['speedup']:.2f}x "
               f"({format_seconds(timeline['serial_s'])} -> "
               f"{format_seconds(timeline['makespan_s'])} simulated), "
               f"documents {'identical' if digest_match else 'DIFFER'}; "
               f"wall {wall_serial_s:.2f}s -> {wall_parallel_s:.2f}s "
               f"(informational)")
    if args.check:
        path = baseline_path(args.dir, "parallel")
        if not path.exists():
            print(f"no baseline at {path}; run `anaheim-repro bench "
                  f"--workload parallel` first")
            return 2
        baseline = load_baseline(args.dir, "parallel")
        regressions = check_baseline_metrics(baseline, metrics,
                                             tolerance=args.tolerance)
        if regressions:
            print(f"parallel: {len(regressions)} metric(s) outside "
                  f"±{args.tolerance:.0%} of {path}:")
            for regression in regressions:
                print(f"  {regression.describe()}")
            return 1
        print(f"parallel: all metrics within ±{args.tolerance:.0%} of "
              f"{path}")
        print(summary)
        return 0 if digest_match else 1
    if not digest_match:
        print(f"parallel: FAIL — {summary}")
        return 1
    if timeline["speedup"] < 2.0:
        print(f"parallel: FAIL — modeled speedup "
              f"{timeline['speedup']:.2f}x < 2x; {summary}")
        return 1
    path = write_baseline_metrics(args.dir, "parallel", metrics,
                                  config=config, extra=extra)
    append_history(args.dir, "parallel", metrics, config=config)
    print(f"wrote baseline {path}")
    print(summary)
    return 0


def _bench_history(args) -> int:
    """Render the recorded run-to-run trend for one workload."""
    entries = load_history(args.dir, args.workload)
    baseline = (load_baseline(args.dir, args.workload)
                if baseline_path(args.dir, args.workload).exists()
                else None)
    if args.workload == "functional":
        trend_metrics = ("bootstrap_s", "key_switch_s",
                         "ntt_batch_speedup", "ntt_lazy_speedup")
    elif args.workload == "parallel":
        trend_metrics = ("throughput_speedup", "serial_s", "makespan_s")
    elif args.workload == "ras":
        trend_metrics = ("corrected", "uncorrected", "overhead")
    elif args.workload == "overload":
        trend_metrics = ("goodput_qps", "shed_rate", "reject_rate")
    else:
        trend_metrics = ("total_time", "energy", "edp")
    print(f"bench history: {args.workload} ({len(entries)} run(s))")
    print(render_history(entries, baseline, metrics=trend_metrics))
    return 0


def cmd_bench(args) -> int:
    if args.history:
        return _bench_history(args)
    if args.workload == "functional":
        return _bench_functional(args)
    if args.workload == "parallel":
        return _bench_parallel(args)
    if args.workload == "overload":
        return _bench_overload(args)
    if args.workload == "ras":
        return _bench_ras(args)
    built = _bench_framework(args)
    if built is None:
        return 1
    framework, pim, workload, params = built
    report = framework.run(workload.blocks, params.degree,
                           label=args.workload).report
    config = {"gpu": framework.gpu.name,
              "pim": pim.name if pim else None,
              "library": args.library}
    if args.check:
        path = baseline_path(args.dir, args.workload)
        if not path.exists():
            print(f"no baseline at {path}; run `anaheim-repro bench "
                  f"--workload {args.workload}` first")
            return 2
        baseline = load_baseline(args.dir, args.workload)
        regressions = check_baseline(baseline, report,
                                     tolerance=args.tolerance)
        if regressions:
            print(f"{args.workload}: {len(regressions)} metric(s) outside "
                  f"±{args.tolerance:.0%} of {path}:")
            for regression in regressions:
                print(f"  {regression.describe()}")
            return 1
        print(f"{args.workload}: all metrics within ±{args.tolerance:.0%} "
              f"of {path}")
        return 0
    path = write_baseline(args.dir, args.workload, report, config=config)
    append_history(args.dir, args.workload, baseline_metrics(report),
                   config=config)
    print(f"wrote baseline {path} "
          f"(total {format_seconds(report.total_time)}, "
          f"{report.energy:.2f}J)")
    return 0


def _faults_baseline_metrics(result: dict) -> dict:
    """Deterministic analytic-campaign metrics for BENCH_faults.json."""
    agg = result.get("analytic_aggregate", {})
    runs = result.get("analytic", [])
    return {
        "injected": agg.get("injected", 0),
        "detected": agg.get("detected", 0),
        "coverage": agg.get("coverage", 1.0),
        "recovered_retry": agg.get("recovered_retry", 0),
        "recovered_fallback": agg.get("recovered_fallback", 0),
        "unrecovered": agg.get("unrecovered", 0),
        "mean_overhead": agg.get("mean_overhead", 0.0),
        "clean_time_s": sum(r["clean_time_s"] for r in runs),
        "faulted_time_s": sum(r["faulted_time_s"] for r in runs),
        "verify_time_s": sum(r["verify_time_s"] for r in runs),
    }


def cmd_faults(args) -> int:
    from repro.faults.campaign import run_matrix
    from repro.parallel import set_threads

    set_threads(args.threads)
    seeds = tuple(int(s) for s in args.seeds.split(","))
    stuck = tuple(args.stuck_site or ())
    result = run_matrix(
        seeds=seeds, scale=args.scale, workload=args.workload,
        stuck_sites=stuck,
        functional=args.layer in ("both", "functional"),
        analytic=args.layer in ("both", "analytic"),
        record_wall=not args.no_wall,
        workers=args.workers, threads=args.threads)
    gate_ok = result["gate"]["passed"]

    if args.manifest:
        _write_artifact(args.manifest, result, "manifest",
                        quiet=args.json)
    if args.check:
        path = baseline_path(args.dir, "faults")
        if not path.exists():
            print(f"no baseline at {path}; run `anaheim-repro faults "
                  f"--write-baseline` first")
            return 2
        baseline = load_baseline(args.dir, "faults")
        regressions = check_baseline_metrics(
            baseline, _faults_baseline_metrics(result),
            tolerance=args.tolerance)
        if regressions:
            print(f"faults: {len(regressions)} metric(s) outside "
                  f"±{args.tolerance:.0%} of {path}:")
            for regression in regressions:
                print(f"  {regression.describe()}")
            return 1
        print(f"faults: all metrics within ±{args.tolerance:.0%} of {path}")
        return 0 if gate_ok else 1
    if args.write_baseline:
        path = write_baseline_metrics(
            args.dir, "faults", _faults_baseline_metrics(result),
            config={"seeds": list(seeds), "scale": args.scale,
                    "workload": args.workload,
                    "stuck_sites": list(stuck)})
        print(f"wrote baseline {path}")
    if args.json:
        print(json.dumps(result, indent=2, default=str))
        return 0 if gate_ok else 1

    rows = []
    for key, label in (("functional_aggregate", "functional"),
                       ("analytic_aggregate", "analytic")):
        agg = result.get(key)
        if agg is None:
            continue
        extra = (f"max err {result['functional_aggregate']['max_error']:.2e}"
                 if key == "functional_aggregate"
                 else f"overhead {agg['mean_overhead']:.2%}")
        rows.append([label, agg["injected"], agg["effective"],
                     agg["detected"], f"{agg['coverage']:.1%}",
                     agg["recovered_retry"], agg["recovered_fallback"],
                     agg["unrecovered"], extra])
    print(format_table(
        ["layer", "injected", "effective", "detected", "coverage",
         "retry", "fallback", "unrecovered", "notes"],
        rows, title=f"fault campaign: seeds {list(seeds)}, "
                    f"scale {args.scale}, workload {args.workload}"))
    print(f"gate: {'PASS' if gate_ok else 'FAIL'} "
          f"(coverage >= {result['gate']['coverage_threshold']:.0%}, "
          f"no unrecovered/undetected faults, decrypt correct)")
    return 0 if gate_ok else 1


def _ras_base(args):
    from repro.dram.reliability import ReliabilityConfig
    return ReliabilityConfig(seed=args.seed)


def _ras_smoke(args) -> int:
    """Gating end-to-end memory-RAS check (``ras --smoke``).

    Runs the default RAS matrix twice — serially and across a worker
    pool — with wall clocks off, and asserts the documents and metric
    digests are byte-identical; that the gate passed with zero
    uncorrected errors in the default cell; that the scrubber and ECC
    actually engaged; and that scrub overhead stayed under the bound.
    """
    from repro.faults.ras_campaign import run_ras_matrix

    base = _ras_base(args)
    workers = args.workers if args.workers > 1 else 4

    def one_run(n_workers, registry):
        return run_ras_matrix(base=base, workload=args.workload,
                              functional=True, record_wall=False,
                              metrics=registry, workers=n_workers,
                              threads=args.threads)

    serial_metrics = MetricsRegistry()
    pool_metrics = MetricsRegistry()
    serial_doc = one_run(1, serial_metrics)
    pool_doc = one_run(workers, pool_metrics)
    cell = serial_doc["default_cell"]
    ras = cell["ras"]
    failures = []
    if json.dumps(serial_doc, sort_keys=True) \
            != json.dumps(pool_doc, sort_keys=True):
        failures.append(f"document differs between --workers 1 and "
                        f"--workers {workers}")
    if serial_metrics.digest() != pool_metrics.digest():
        failures.append(f"metrics digest differs between --workers 1 "
                        f"and --workers {workers}")
    if not serial_doc["gate"]["passed"]:
        for violation in serial_doc["gate"]["violations"]:
            failures.append(f"gate violation: {violation}")
    if ras["uncorrected"] != 0:
        failures.append(f"default cell left {ras['uncorrected']} "
                        f"uncorrected error(s)")
    if ras["corrected"] == 0:
        failures.append("ECC never corrected anything; the retention "
                        "model did not engage")
    if sum(ras["scrub_passes"].values()) == 0:
        failures.append("the scrubber never ran a pass")
    if cell["overhead"] >= serial_doc["gate"]["overhead_bound"]:
        failures.append(f"scrub overhead {cell['overhead']:.4f} over "
                        f"bound {serial_doc['gate']['overhead_bound']}")
    if failures:
        for failure in failures:
            print(f"ras smoke: {failure}")
        print("ras smoke: FAIL")
        return 1
    print(f"ras smoke: PASS ({ras['errors_total']} errors: "
          f"{ras['corrected']} corrected, {ras['detected']} detected, "
          f"{ras['escaped']} escaped, 0 uncorrected; "
          f"{sum(ras['scrub_passes'].values())} scrub pass(es), "
          f"overhead {cell['overhead']:.2%}; documents and metric "
          f"digests identical for workers 1 and {workers}; "
          f"digest {serial_metrics.digest()[:12]})")
    return 0


def cmd_ras(args) -> int:
    from repro.faults.ras_campaign import (ras_baseline_metrics,
                                           run_ras_matrix)
    from repro.parallel import set_threads

    if args.smoke:
        return _ras_smoke(args)
    set_threads(args.threads)
    rates = _parse_positive_floats(args.retention_rates,
                                   "--retention-rates")
    intervals = _parse_positive_floats(args.scrub_intervals,
                                       "--scrub-intervals")
    base = _ras_base(args)
    result = run_ras_matrix(
        retention_rates=rates, scrub_intervals=intervals, base=base,
        workload=args.workload, functional=args.layer == "both",
        record_wall=not args.no_wall, workers=args.workers,
        threads=args.threads)
    gate_ok = result["gate"]["passed"]

    if args.manifest:
        _write_artifact(args.manifest, result, "manifest",
                        quiet=args.json)
    if args.check or args.write_baseline:
        if base.retention_rate not in rates \
                or base.scrub_interval_s not in intervals:
            print("error: baseline metrics come from the default cell; "
                  "the sweep must include the default retention rate "
                  "and scrub interval", file=sys.stderr)
            return 1
        metrics = ras_baseline_metrics(result)
    if args.check:
        path = baseline_path(args.dir, "ras")
        if not path.exists():
            print(f"no baseline at {path}; run `anaheim-repro ras "
                  f"--write-baseline` first")
            return 2
        baseline = load_baseline(args.dir, "ras")
        regressions = check_baseline_metrics(baseline, metrics,
                                             tolerance=args.tolerance)
        if regressions:
            print(f"ras: {len(regressions)} metric(s) outside "
                  f"±{args.tolerance:.0%} of {path}:")
            for regression in regressions:
                print(f"  {regression.describe()}")
            return 1
        print(f"ras: all metrics within ±{args.tolerance:.0%} of {path}")
        return 0 if gate_ok else 1
    if args.write_baseline:
        path = write_baseline_metrics(
            args.dir, "ras", metrics,
            config={"seed": args.seed, "workload": args.workload,
                    "retention_rates": list(rates),
                    "scrub_intervals": list(intervals),
                    "config_digest": base.digest()})
        append_history(args.dir, "ras", metrics,
                       config={"seed": args.seed,
                               "workload": args.workload})
        print(f"wrote baseline {path}")
    if args.json:
        print(json.dumps(result, indent=2, default=str))
        return 0 if gate_ok else 1

    rows = []
    for cell in result["cells"]:
        ras = cell["ras"]
        rows.append([f"{cell['retention_rate']:g}",
                     f"{cell['scrub_interval_s']:g}",
                     ras["errors_total"], ras["corrected"],
                     ras["detected"], ras["escaped"],
                     ras["uncorrected"],
                     sum(ras["scrub_passes"].values()),
                     sum(ras["remaps"].values()),
                     f"{cell['overhead']:.2%}"])
    print(format_table(
        ["rate/s", "scrub s", "errors", "corrected", "detected",
         "escaped", "uncorr", "scrubs", "remaps", "overhead"],
        rows, title=f"memory RAS matrix: workload {args.workload}, "
                    f"seed {args.seed}"))
    func = result.get("functional")
    if func is not None:
        print(f"functional: {func['events']} retention event(s), "
              f"{func['ecc_corrected']} ECC-corrected, "
              f"{func['ecc_detected']} detected, "
              f"{func['checksum_caught']} escape(s) caught by checksum, "
              f"max err {func['max_error']:.2e}")
    print(f"gate: {'PASS' if gate_ok else 'FAIL'} "
          f"(zero uncorrected errors, default-cell overhead < "
          f"{result['gate']['overhead_bound']:.0%}, decrypt correct)")
    return 0 if gate_ok else 1


def _parse_positive_float(text, name: str) -> float:
    """A strictly positive float from a CLI token.

    RAS flags are declared as strings and parsed here so a bad value
    raises :class:`ParameterError` — one line on stderr and exit 1,
    not argparse's usage dump.
    """
    if text is None:
        return None
    try:
        value = float(text)
    except (TypeError, ValueError):
        raise ParameterError(f"{name} must be a number, got {text!r}")
    if not value > 0 or value != value or value == float("inf"):
        raise ParameterError(f"{name} must be positive and finite, "
                             f"got {text!r}")
    return value


def _parse_positive_floats(text, name: str) -> tuple:
    """A comma-separated list of strictly positive floats."""
    tokens = [token.strip() for token in text.split(",") if token.strip()]
    if not tokens:
        raise ParameterError(f"{name} must list at least one value, "
                             f"got {text!r}")
    return tuple(_parse_positive_float(token, name) for token in tokens)


def _serve_policy(args):
    from repro.serving import ServePolicy
    return ServePolicy(
        seed=args.seed,
        max_retries=args.max_retries,
        deadline_s=args.deadline,
        kernel_timeout_s=args.kernel_timeout,
        checkpoint_every=args.checkpoint_every,
        degraded_after=args.degraded_after,
        gpu_only_after=args.gpu_only_after,
        seeds=tuple(int(s) for s in args.seeds.split(",")),
        fault_seed=args.fault_seed,
        fault_scale=args.scale,
        stuck_sites=tuple(args.stuck_site or ()),
        scrub_interval_s=_parse_positive_float(
            getattr(args, "scrub_interval", None), "--scrub-interval"),
        retention_rate=_parse_positive_float(
            getattr(args, "retention_rate", None), "--retention-rate"))


def _admission_policy(args):
    from repro.serving import AdmissionPolicy
    return AdmissionPolicy(
        queue_cap=args.queue_cap,
        high_watermark=args.high_watermark,
        low_watermark=args.low_watermark,
        shed_policy=args.shed_policy,
        deadline_slack=args.deadline_slack,
        brownout_after=args.brownout_after,
        brownout_deadline_factor=args.brownout_deadline_factor)


def _overload_traffic(args):
    """(arrival spec, tenants, chaos events) from the CLI flags."""
    from repro.serving import parse_arrival_spec, parse_tenants
    from repro.serving.overload import chaos_events
    tenants = parse_tenants(args.tenants)
    spec = parse_arrival_spec(args.arrivals, args.duration,
                              seed=args.seed)
    chaos = (chaos_events(args.fault_seed, args.duration,
                          scale=args.scale)
             if args.fault_seed is not None else ())
    return spec, tenants, chaos


def _run_overload(args, workers=None, metrics=None, worker_metrics=None,
                  on_unit=None):
    """One ``serve --arrivals`` pass: simulate admission, execute."""
    from repro.parallel import set_threads
    from repro.serving import run_overload_serve
    set_threads(args.threads)
    spec, tenants, chaos = _overload_traffic(args)
    gpu = GPUS[args.gpu]
    pim = None if args.pim == "none" else _pim_for(args.gpu, args.pim)
    return run_overload_serve(
        spec, tenants, _admission_policy(args), _serve_policy(args),
        gpu=gpu, pim=pim, library=LIBRARIES[args.library], chaos=chaos,
        metrics=metrics, workers=workers if workers is not None
        else args.workers, threads=args.threads,
        checkpoint_path=getattr(args, "checkpoint", None),
        resume_path=getattr(args, "resume", None),
        checkpoint_keep=getattr(args, "checkpoint_keep", None),
        max_units=getattr(args, "max_units", None), on_unit=on_unit,
        worker_metrics=worker_metrics)


def _admission_lines(summary) -> list:
    """Human-readable admission/queue picture for serve/top output."""
    rejected = ", ".join(f"{k} {v}" for k, v in summary["rejected"].items()
                         if v)
    shed = ", ".join(f"{k} {v}" for k, v in summary["shed"].items() if v)
    queue = summary["queue"]
    lines = [
        f"admission: offered {summary['offered']} "
        f"({summary['offered_qps']:.1f} qps) -> admitted "
        f"{summary['admitted']}, rejected {summary['rejected_total']}"
        + (f" ({rejected})" if rejected else "")
        + f", shed {summary['shed_total']}"
        + (f" ({shed})" if shed else ""),
        f"queue: peak depth {queue['peak_depth']}/{queue['cap']}, wait "
        f"p50 {format_seconds(queue['wait_p50_s'])} p95 "
        f"{format_seconds(queue['wait_p95_s'])}; goodput "
        f"{summary['goodput_qps']:.1f} qps, shed rate "
        f"{summary['shed_rate']:.1%}",
    ]
    if summary["brownout"] is not None:
        lines.append(f"brownout: {summary['brownout']['state']} "
                     f"({len(summary['brownout']['events'])} "
                     f"escalation(s))")
    return lines


def _serve_overload(args) -> int:
    """serve --arrivals: the end-to-end overload-protected pipeline."""
    metrics = MetricsRegistry()
    worker_metrics = MetricsRegistry() if args.workers > 1 else None
    document, runner = _run_overload(args, metrics=metrics,
                                     worker_metrics=worker_metrics)
    summary = document["admission"]["summary"]
    if args.manifest:
        _write_artifact(args.manifest, document, "manifest",
                        quiet=args.json)
    if args.json:
        print(json.dumps(document, indent=2))
    else:
        rows = []
        for job in document["jobs"]:
            done = sum(1 for u in job["units"].values()
                       if u.get("status") == "ok")
            rows.append([job["id"], job["kind"], job["status"],
                         f"{done}/{len(job['units'])}", job["retries"]])
        print(format_table(
            ["job", "kind", "status", "units", "retries"], rows,
            title=f"serve: {len(document['jobs'])} dispatched job(s), "
                  f"resumed {runner.resumed_units} unit(s)"))
        for line in _admission_lines(summary):
            print(line)
        if document["interrupted"]:
            print("interrupted by --max-units; progress checkpointed")
    if document["interrupted"]:
        return 2
    return 0 if document["ok"] else 1


def _overload_smoke(args) -> int:
    """Gating end-to-end overload check (serve --smoke --arrivals).

    Runs the same arrival stream through admission + execution twice —
    serially and across a worker pool — and asserts the decisions,
    documents, and metric digests are byte-identical; that the
    overload actually engaged (something rejected or shed); and that
    the admit/complete/shed accounting conserves every offered job.
    """
    serial_metrics = MetricsRegistry()
    pool_metrics = MetricsRegistry()
    workers = args.workers if args.workers > 1 else 4
    serial_doc, _ = _run_overload(args, workers=1,
                                  metrics=serial_metrics)
    pool_doc, _ = _run_overload(args, workers=workers,
                                metrics=pool_metrics,
                                worker_metrics=MetricsRegistry())
    summary = serial_doc["admission"]["summary"]
    failures = []
    if json.dumps(serial_doc, sort_keys=True) \
            != json.dumps(pool_doc, sort_keys=True):
        failures.append(f"document differs between --workers 1 and "
                        f"--workers {workers}")
    if serial_metrics.digest() != pool_metrics.digest():
        failures.append(f"metrics digest differs between --workers 1 "
                        f"and --workers {workers}")
    if summary["rejected_total"] + summary["shed_total"] == 0:
        failures.append("overload never engaged (nothing rejected or "
                        "shed); raise --arrivals rate")
    if summary["offered"] != summary["admitted"] \
            + summary["rejected_total"]:
        failures.append("offered != admitted + rejected")
    if summary["admitted"] != summary["completed"] \
            + summary["shed_total"]:
        failures.append("admitted != completed + shed")
    if len(serial_doc["jobs"]) != summary["completed"]:
        failures.append(f"executed {len(serial_doc['jobs'])} job(s) but "
                        f"the simulation dispatched "
                        f"{summary['completed']}")
    if failures:
        for failure in failures:
            print(f"overload smoke: {failure}")
        print("overload smoke: FAIL")
        return 1
    print(f"overload smoke: PASS (offered {summary['offered']}, "
          f"admitted {summary['admitted']}, rejected "
          f"{summary['rejected_total']}, shed {summary['shed_total']}, "
          f"completed {summary['completed']}; decisions, documents, "
          f"and metric digests identical for workers 1 and {workers}; "
          f"digest {serial_metrics.digest()[:12]})")
    return 0


def cmd_soak(args) -> int:
    """Chaos soak campaign: overload x chaos grid on the sim clock."""
    from repro.serving import parse_tenants
    from repro.serving.soak import run_soak
    gpu = GPUS[args.gpu]
    pim = None if args.pim == "none" else _pim_for(args.gpu, args.pim)
    loads = tuple(float(token) for token in args.loads.split(","))
    chaos_kinds = tuple(args.chaos.split(","))
    for kind in chaos_kinds:
        if kind not in ("none", "faults"):
            print(f"error: unknown chaos kind {kind!r} (expected "
                  f"none/faults)", file=sys.stderr)
            return 2
    document = run_soak(
        seed=args.seed, duration_s=args.duration, loads=loads,
        chaos_kinds=chaos_kinds, process=args.process,
        tenants=parse_tenants(args.tenants),
        policy=_admission_policy(args), gpu=gpu, pim=pim,
        library=LIBRARIES[args.library],
        fault_seed=args.fault_seed if args.fault_seed is not None else 0,
        fault_scale=args.scale)
    gate = document["gate"]
    if args.manifest:
        _write_artifact(args.manifest, document, "manifest",
                        quiet=args.json)
    if args.json:
        print(json.dumps(document, indent=2))
        return 0 if gate["passed"] else 1
    rows = []
    for cell in document["cells"]:
        summary = cell["summary"]
        rows.append([
            f"{cell['load']:g}x", cell["chaos"], summary["offered"],
            summary["admitted"], summary["completed"],
            summary["rejected_total"], summary["shed_total"],
            f"{summary['goodput_qps']:.1f}",
            summary["brownout"]["state"],
            "ok" if cell["passed"] else "FAIL"])
    print(format_table(
        ["load", "chaos", "offered", "admitted", "completed", "rejected",
         "shed", "goodput", "brownout", "invariants"],
        rows, title=f"soak: capacity {document['capacity_qps']:.1f} qps, "
                    f"{args.duration:g}s per cell, seed {args.seed}"))
    for violation in gate["violations"]:
        print(f"  violation: {violation}")
    print(f"gate: {'PASS' if gate['passed'] else 'FAIL'} "
          f"(conservation + bounded queue in every cell; overloaded "
          f"cells must shed or reject)")
    return 0 if gate["passed"] else 1


def _bench_overload(args) -> int:
    """Overload-protection bench: the pinned 2x-capacity chaos cell.

    Entirely on the simulated clock, so the goodput/shed-rate numbers
    are a pure function of the seed and reproduce exactly under
    ``bench --check`` on any host.
    """
    from repro.serving.soak import (overload_bench_cell,
                                    overload_bench_metrics)
    gpu = GPUS[args.gpu]
    pim = None if args.pim == "none" else _pim_for(args.gpu, args.pim)
    cell = overload_bench_cell(gpu=gpu, pim=pim,
                               library=LIBRARIES[args.library])
    if not cell["passed"]:
        for violation in cell["violations"]:
            print(f"overload: invariant violation: {violation}")
        return 1
    metrics = overload_bench_metrics(cell)
    summary = (f"offered {metrics['offered']:.0f}, goodput "
               f"{metrics['goodput_qps']:.1f} qps, shed rate "
               f"{metrics['shed_rate']:.1%}, reject rate "
               f"{metrics['reject_rate']:.1%}")
    config = {"load": cell["load"], "chaos": cell["chaos"],
              "rate_qps": cell["rate_qps"], "gpu": gpu.name,
              "pim": pim.name if pim else None,
              "library": args.library}
    if args.check:
        path = baseline_path(args.dir, "overload")
        if not path.exists():
            print(f"no baseline at {path}; run `anaheim-repro bench "
                  f"--workload overload` first")
            return 2
        baseline = load_baseline(args.dir, "overload")
        regressions = check_baseline_metrics(baseline, metrics,
                                             tolerance=args.tolerance)
        if regressions:
            print(f"overload: {len(regressions)} metric(s) outside "
                  f"±{args.tolerance:.0%} of {path}:")
            for regression in regressions:
                print(f"  {regression.describe()}")
            return 1
        print(f"overload: all metrics within ±{args.tolerance:.0%} of "
              f"{path} ({summary})")
        return 0
    path = write_baseline_metrics(args.dir, "overload", metrics,
                                  config=config)
    append_history(args.dir, "overload", metrics, config=config)
    print(f"wrote baseline {path} ({summary})")
    return 0


def _bench_ras(args) -> int:
    """Memory-RAS bench: the pinned default-cell reliability numbers.

    Wall clocks are off, so every metric is a pure function of the
    seed and reproduces exactly under ``bench --check`` on any host.
    """
    from repro.dram.reliability import ReliabilityConfig
    from repro.faults.ras_campaign import (ras_baseline_metrics,
                                           run_ras_matrix)
    from repro.parallel import set_threads
    set_threads(args.threads)
    gpu = GPUS[args.gpu]
    pim = None if args.pim == "none" else _pim_for(args.gpu, args.pim)
    base = ReliabilityConfig()
    result = run_ras_matrix(base=base, functional=True,
                            record_wall=False, gpu=gpu, pim=pim,
                            workers=args.workers, threads=args.threads)
    if not result["gate"]["passed"]:
        for violation in result["gate"]["violations"]:
            print(f"ras: gate violation: {violation}")
        return 1
    metrics = ras_baseline_metrics(result)
    summary = (f"{metrics['errors_total']:.0f} errors, "
               f"{metrics['corrected']:.0f} corrected, "
               f"{metrics['uncorrected']:.0f} uncorrected, overhead "
               f"{metrics['overhead']:.2%}")
    config = {"config_digest": base.digest(), "gpu": gpu.name,
              "pim": pim.name if pim else None,
              "workload": result["workload"]}
    if args.check:
        path = baseline_path(args.dir, "ras")
        if not path.exists():
            print(f"no baseline at {path}; run `anaheim-repro bench "
                  f"--workload ras` first")
            return 2
        baseline = load_baseline(args.dir, "ras")
        regressions = check_baseline_metrics(baseline, metrics,
                                             tolerance=args.tolerance)
        if regressions:
            print(f"ras: {len(regressions)} metric(s) outside "
                  f"±{args.tolerance:.0%} of {path}:")
            for regression in regressions:
                print(f"  {regression.describe()}")
            return 1
        print(f"ras: all metrics within ±{args.tolerance:.0%} of "
              f"{path} ({summary})")
        return 0
    path = write_baseline_metrics(args.dir, "ras", metrics,
                                  config=config)
    append_history(args.dir, "ras", metrics, config=config)
    print(f"wrote baseline {path} ({summary})")
    return 0


def _serve_runner(args, jobs, policy, checkpoint=None, resume=None,
                  max_units=None, metrics=None, worker_metrics=None,
                  on_unit=None):
    from repro.parallel import set_threads
    from repro.serving import JobRunner
    set_threads(args.threads)
    gpu = GPUS[args.gpu]
    pim = None if args.pim == "none" else _pim_for(args.gpu, args.pim)
    return JobRunner(jobs, policy, gpu=gpu, pim=pim,
                     library=LIBRARIES[args.library],
                     checkpoint_path=checkpoint, resume_path=resume,
                     checkpoint_keep=getattr(args, "checkpoint_keep",
                                             None),
                     max_units=max_units, metrics=metrics,
                     on_unit=on_unit, workers=args.workers,
                     threads=args.threads, worker_metrics=worker_metrics)


def _serve_smoke(args) -> int:
    """Gating end-to-end exercise of the resilience stack.

    Runs a tiny analytic fault campaign with two stuck PIM sites and a
    degradation threshold low enough that quarantines drive the health
    monitor to GPU_ONLY; kills the campaign after one unit; resumes it
    from the checkpoint; and asserts the resumed document is
    byte-identical to the uninterrupted run's, with the degradation
    events present in both.
    """
    import dataclasses
    import os
    import tempfile
    from repro.serving import parse_jobs

    jobs = parse_jobs(["faults:analytic:Boot"])
    policy = _serve_policy(args)
    # Tiny matrix with faults aggressive enough to exercise degradation:
    # two stuck PIM sites and GPU_ONLY after two quarantines.
    policy = dataclasses.replace(
        policy,
        seeds=policy.seeds if args.seeds != "0,1,2" else (0, 1),
        stuck_sites=policy.stuck_sites or (1, 5),
        degraded_after=1,
        gpu_only_after=min(policy.gpu_only_after, 2))
    clean = _serve_runner(args, jobs, policy).run()

    with tempfile.TemporaryDirectory(prefix="anaheim-serve-") as tmp:
        ckpt = os.path.join(tmp, "smoke.ckpt.json")
        killed = _serve_runner(args, jobs, policy, checkpoint=ckpt,
                               max_units=1).run()
        if not killed["interrupted"]:
            print("serve smoke: FAIL (kill at --max-units 1 did not "
                  "interrupt the campaign)")
            return 1
        runner = _serve_runner(args, jobs, policy, checkpoint=ckpt,
                               resume=ckpt)
        resumed = runner.run()

    clean_text = json.dumps(clean, indent=2)
    resumed_text = json.dumps(resumed, indent=2)
    if clean_text != resumed_text:
        print("serve smoke: FAIL (resumed document differs from the "
              "uninterrupted run)")
        return 1
    if runner.resumed_units == 0:
        print("serve smoke: FAIL (resume replayed every unit; the "
              "checkpoint was not used)")
        return 1
    states = [unit["result"]["summary"]["degradation"]["state"]
              for unit in clean["jobs"][0]["units"].values()
              if unit.get("status") == "ok"]
    if "gpu-only" not in states:
        print(f"serve smoke: FAIL (expected GPU_ONLY degradation under "
              f"stuck sites {list(policy.stuck_sites)}; got {states})")
        return 1
    if args.manifest:
        _write_artifact(args.manifest, clean, "manifest", quiet=args.json)
    n = len(clean["jobs"][0]["units"])
    pool = f"; {args.workers} workers" if args.workers > 1 else ""
    print(f"serve smoke: PASS ({n} units; resumed {runner.resumed_units} "
          f"from checkpoint, byte-identical document; degradation "
          f"states {states}{pool})")
    return 0 if clean["ok"] else 1


def cmd_serve(args) -> int:
    from repro.serving import parse_jobs

    if args.arrivals:
        return _overload_smoke(args) if args.smoke \
            else _serve_overload(args)
    if args.smoke:
        return _serve_smoke(args)
    if not args.jobs:
        print("error: serve needs --jobs, --arrivals, or --smoke",
              file=sys.stderr)
        return 2
    jobs = parse_jobs(args.jobs)
    runner = _serve_runner(args, jobs, _serve_policy(args),
                           checkpoint=args.checkpoint, resume=args.resume,
                           max_units=args.max_units)
    document = runner.run()
    if args.manifest:
        _write_artifact(args.manifest, document, "manifest",
                        quiet=args.json)
    if args.json:
        print(json.dumps(document, indent=2))
    else:
        rows = []
        for job in document["jobs"]:
            done = sum(1 for u in job["units"].values()
                       if u.get("status") == "ok")
            rows.append([job["id"], job["kind"], job["status"],
                         f"{done}/{len(job['units'])}", job["retries"],
                         format_seconds(job["service_time_s"])])
        print(format_table(
            ["job", "kind", "status", "units", "retries", "backoff"],
            rows, title=f"serve: {len(document['jobs'])} job(s), "
                        f"resumed {runner.resumed_units} unit(s)"))
        if document["interrupted"]:
            print("interrupted by --max-units; progress checkpointed")
    if document["interrupted"]:
        return 2
    return 0 if document["ok"] else 1


# -- Metrics & telemetry -------------------------------------------------------


def _metrics_smoke(args) -> int:
    """Gating metrics self-check (the CI step).

    Runs the small hoisted-transform workload twice with fresh
    registries and asserts: the Prometheus exposition parses and passes
    the format/monotonicity validation; the utilization accounting
    closes within 1e-9 of the report timeline; and the two runs produce
    byte-identical snapshot digests.
    """
    def one_run():
        registry = MetricsRegistry()
        params = paper_params()
        blocks = hoisted_block(params.level_count, params.aux_count,
                               params.dnum, rotations=4)
        framework = AnaheimFramework(A100_80GB, A100_NEAR_BANK,
                                     keep_segments=True, metrics=registry)
        report = framework.run(blocks, params.degree,
                               label="metrics-smoke").report
        util = UtilizationReport.from_report(report, gpu=A100_80GB,
                                             pim=A100_NEAR_BANK)
        util.record(registry)
        return registry, util

    first, util = one_run()
    second, _ = one_run()
    failures = []
    parsed = None
    text = first.render_prometheus()
    try:
        parsed = parse_prometheus(text)
    except ReproError as exc:
        failures.append(f"exposition failed validation: {exc}")
    if parsed is not None and not parsed["samples"]:
        failures.append("exposition contains no samples")
    if not util.accounting_error < 1e-9:
        failures.append(f"utilization accounting error "
                        f"{util.accounting_error:.3e} >= 1e-9")
    if first.digest() != second.digest():
        failures.append("two identical runs produced different snapshot "
                        "digests")
    if failures:
        for failure in failures:
            print(f"metrics smoke: {failure}")
        print("metrics smoke: FAIL")
        return 1
    print(f"metrics smoke: PASS ({len(parsed['samples'])} samples, "
          f"digest {first.digest()[:12]}, accounting error "
          f"{util.accounting_error:.2e})")
    return 0


#: (display label, tracer-counter prefix) of the functional engine's
#: cache-style counters, reported as hit rates.
_FUNCTIONAL_RATES = (("scratch buffers", "ckks.scratch"),
                     ("diag cache", "ckks.diag_cache"),
                     ("monomial cache", "ckks.monomial_cache"),
                     ("bconv tables", "ckks.bconv_tables"),
                     ("ntt tables", "ckks.ntt_tables"))


def _metrics_functional(args, registry, events):
    """Fold the functional CKKS engine counters into the registry."""
    tracer = Tracer()
    result = _run_functional(args, tracer=tracer)
    counters = result["counters"]
    family = registry.counter("anaheim_functional_events_total",
                              "Functional CKKS engine counters",
                              labelnames=("event",))
    for name in sorted(counters):
        if counters[name]:
            family.inc(counters[name], event=name)
    rates = registry.gauge("anaheim_functional_hit_rate",
                           "Engine cache hit rates (0..1)",
                           labelnames=("cache",))
    lines = ["functional CKKS engine utilization:"]
    for label, prefix in _FUNCTIONAL_RATES:
        hit = counters.get(f"{prefix}.hit", 0)
        total = hit + counters.get(f"{prefix}.miss", 0)
        rate = hit / total if total else 0.0
        rates.set(rate, cache=prefix.split(".", 1)[1])
        lines.append(f"  {label:<16} {rate:7.2%}  ({hit}/{total} lookups)")
    shoup = counters.get("ckks.modmath.shoup", 0)
    strict = counters.get("ckks.modmath.strict_fallback", 0)
    dispatched = shoup + strict
    share = shoup / dispatched if dispatched else 0.0
    lines.append(f"  {'shoup dispatch':<16} {share:7.2%}  "
                 f"({shoup}/{dispatched} limb rows)")
    bench = result["metrics"]
    lines.append(f"  bootstrap {format_seconds(bench['bootstrap_s'])}, "
                 f"NTT batch speedup {bench['ntt_batch_speedup']:.2f}x, "
                 f"lazy speedup {bench['ntt_lazy_speedup']:.2f}x")
    events.emit("functional_bench", metrics=bench,
                precision_max_err=result["precision_max_err"])
    return lines


def cmd_metrics(args) -> int:
    """One instrumented run, exported as prom text / JSON / JSONL."""
    if args.smoke:
        return _metrics_smoke(args)
    registry = MetricsRegistry()
    events = EventLog()
    util = None
    if args.workload == "functional":
        util_lines = _metrics_functional(args, registry, events)
    else:
        gpu = GPUS[args.gpu]
        params = paper_params()
        workload = apps.build(args.workload, params)
        if not _check_memory(workload, gpu):
            return 1
        library = LIBRARIES[args.library]
        pim = None if args.pim == "none" else _pim_for(args.gpu, args.pim)
        framework = AnaheimFramework(gpu, pim, library=library,
                                     keep_segments=True, metrics=registry)
        report = framework.run(workload.blocks, params.degree,
                               label=args.workload).report
        util = UtilizationReport.from_report(report, gpu=gpu, pim=pim)
        util.record(registry)
        events.emit("run", workload=args.workload, gpu=gpu.name,
                    pim=pim.name if pim else None,
                    total_time=report.total_time, energy=report.energy)
        events.emit("utilization", **util.as_dict())
        util_lines = util.render().splitlines()
    if args.format == "prom":
        output = registry.render_prometheus()
    elif args.format == "json":
        output = json.dumps({"digest": registry.digest(),
                             "snapshot": registry.snapshot()},
                            indent=2) + "\n"
    else:
        output = events.to_jsonl()
    if args.out:
        _write_text(args.out, output, f"metrics ({args.format})")
    else:
        print(output, end="")
    if args.events_out:
        _write_text(args.events_out, events.to_jsonl(), "event log")
    if args.utilization:
        print("\n".join(util_lines))
    return 0


def _top_overload(args) -> int:
    """top --arrivals: per-unit progress, then the queue columns."""
    from repro.serving.jobs import _unit_seconds

    done = {"n": 0}

    def on_unit(job, unit, doc, fresh):
        done["n"] += 1
        status = doc.get("status", "ok")
        seconds = _unit_seconds(job.kind, doc)
        note = ("restored" if not fresh
                else f"{format_seconds(seconds)} sim"
                if seconds is not None else "-")
        print(f"[{done['n']:>3}] {job.id:<16} {unit:<20} {status:<18} "
              f"{note}")

    registry = MetricsRegistry()
    worker_registry = MetricsRegistry() if args.workers > 1 else None
    document, runner = _run_overload(args, metrics=registry,
                                     worker_metrics=worker_registry,
                                     on_unit=on_unit)
    summary = document["admission"]["summary"]
    queue = summary["queue"]
    print()
    print(format_table(
        ["depth (peak)", "cap", "admitted", "rejected", "shed",
         "wait p50", "wait p95"],
        [[queue["peak_depth"], queue["cap"], summary["admitted"],
          summary["rejected_total"], summary["shed_total"],
          format_seconds(queue["wait_p50_s"]),
          format_seconds(queue["wait_p95_s"])]],
        title="queue"))
    for line in _admission_lines(summary):
        print(line)
    if args.metrics_out:
        _write_text(args.metrics_out, registry.render_prometheus(),
                    "metrics (prom)")
    if document["interrupted"]:
        return 2
    return 0 if document["ok"] else 1


def cmd_top(args) -> int:
    """Live-ish serve progress: a line per unit as it lands, then the
    latency/retry/degradation picture from the metrics registry."""
    from repro.serving import JobRunner, parse_jobs
    from repro.serving.jobs import _unit_seconds

    if args.arrivals:
        return _top_overload(args)
    if not args.jobs:
        print("error: top needs --jobs or --arrivals", file=sys.stderr)
        return 2
    jobs = parse_jobs(args.jobs)
    policy = _serve_policy(args)
    registry = MetricsRegistry()
    total = sum(len(job.units(policy.seeds)) for job in jobs)
    done = {"n": 0}

    def on_unit(job, unit, doc, fresh):
        done["n"] += 1
        status = doc.get("status", "ok")
        seconds = _unit_seconds(job.kind, doc)
        note = ("restored" if not fresh
                else f"{format_seconds(seconds)} sim"
                if seconds is not None else "-")
        print(f"[{done['n']:>3}/{total}] {job.id:<10} {unit:<20} "
              f"{status:<18} {note}")

    import time as _time
    worker_registry = MetricsRegistry() if args.workers > 1 else None
    runner = _serve_runner(args, jobs, policy,
                           checkpoint=args.checkpoint,
                           resume=args.resume, metrics=registry,
                           worker_metrics=worker_registry,
                           on_unit=on_unit)
    wall_start = _time.perf_counter()
    document = runner.run()
    wall_s = _time.perf_counter() - wall_start

    def value(name, **labels):
        metric = registry.get(name)
        return metric.value(**labels) if metric is not None else 0.0

    print()
    print(f"units {done['n']}/{total} "
          f"(restored {int(value('anaheim_serve_units_restored_total'))})"
          f"  retries {int(value('anaheim_serve_retries_total'))}"
          f"  backoff {format_seconds(value('anaheim_serve_backoff_seconds_total'))}"
          f"  deadline skips "
          f"{int(value('anaheim_serve_deadline_skips_total'))}")
    hist = registry.get("anaheim_serve_unit_seconds")
    if hist is not None and hist.snapshot_samples():
        rows = []
        for sample in hist.snapshot_samples():
            labels = sample["labels"]
            rows.append([labels["kind"], labels["workload"],
                         sample["count"],
                         format_seconds(hist.quantile(0.5, **labels)),
                         format_seconds(hist.quantile(0.95, **labels))])
        print(format_table(["kind", "workload", "units", "p50", "p95"],
                           rows, title="unit latency (simulated)"))
    state = registry.get("anaheim_degradation_state")
    if state is not None and state.snapshot_samples():
        names = ("healthy", "pim-degraded", "gpu-only", "failed")
        level = int(state.value())
        print(f"degradation: {names[min(level, 3)]}")
    if runner.worker_status:
        rows = []
        for label in sorted(runner.worker_status):
            status = runner.worker_status[label]
            busy = status["busy_s"] / wall_s if wall_s > 0 else 0.0
            rows.append([label, status["units"], f"{busy:.0%}",
                         status["last_unit"]])
        print(format_table(["worker", "units", "busy", "last unit"],
                           rows, title=f"pool: {args.workers} workers, "
                                       f"{wall_s:.2f}s wall"))
    if args.metrics_out:
        export = registry
        if worker_registry is not None:
            # Worker telemetry (wall-clock based) lives in its own
            # registry so the serve families stay digest-identical to
            # a serial run; fold it in only for this export.
            export = MetricsRegistry()
            export.merge(registry)
            export.merge(worker_registry)
        _write_text(args.metrics_out, export.render_prometheus(),
                    "metrics (prom)")
    if document["interrupted"]:
        return 2
    return 0 if document["ok"] else 1


def cmd_profile(args) -> int:
    tracer = Tracer()
    if args.workload == "functional":
        result = _run_functional(args, tracer=tracer)
        metrics = result["metrics"]
        print(f"functional CKKS layer: bootstrap "
              f"{format_seconds(metrics['bootstrap_s'])}, key switch "
              f"{format_seconds(metrics['key_switch_s'])}, NTT batch "
              f"speedup {metrics['ntt_batch_speedup']:.2f}x")
        print()
        print(render_counters(tracer))
        return 0
    args._tracer = tracer
    built = _bench_framework(args)
    if built is None:
        return 1
    framework, pim, workload, params = built
    report = framework.run(workload.blocks, params.degree,
                           label=args.workload).report
    target = f"{framework.gpu.name}" + (f" + {pim.name}" if pim else "")
    print(f"{args.workload} on {target}: simulated "
          f"{format_seconds(report.total_time)}, modeled in "
          f"{format_seconds(tracer.total_time())} wall clock")
    print()
    print(render_span_tree(tracer))
    print()
    print(render_counters(tracer))
    if args.trace_out:
        print()
        _write_artifact(args.trace_out,
                        merge_traces(chrome_trace_from_tracer(tracer),
                                     chrome_trace_from_report(report)),
                        "trace", quiet=False)
    return 0


# -- Parser --------------------------------------------------------------------


def _add_target_flags(parser, default_pim: str = "near-bank",
                      extra_workloads=()) -> None:
    # Workload names are validated by apps.build (a clean one-line
    # error), not by argparse choices — the workload table is data, and
    # an unknown name should not dump a usage traceback.
    names = sorted(apps.WORKLOADS) + sorted(extra_workloads)
    parser.add_argument("--workload", required=True,
                        help=f"one of {', '.join(names)}")
    parser.add_argument("--gpu", default="a100", choices=sorted(GPUS))
    parser.add_argument("--pim", default=default_pim,
                        choices=["near-bank", "custom-hbm", "none"])
    parser.add_argument("--library", default="Cheddar",
                        choices=sorted(LIBRARIES))


def _add_serve_flags(parser) -> None:
    """Target + ServePolicy flags shared by ``serve`` and ``top``."""
    parser.add_argument("--gpu", default="a100", choices=sorted(GPUS))
    parser.add_argument("--pim", default="near-bank",
                        choices=["near-bank", "custom-hbm", "none"])
    parser.add_argument("--library", default="Cheddar",
                        choices=sorted(LIBRARIES))
    parser.add_argument("--seed", type=int, default=0,
                        help="service seed (drives backoff jitter)")
    parser.add_argument("--max-retries", type=int, default=2,
                        help="retry budget per unit (default 2)")
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="per-job wall-clock deadline; overrunning "
                             "jobs stop between units")
    parser.add_argument("--kernel-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-kernel simulated-time timeout (hung PIM "
                             "kernels are killed and rerouted to the GPU)")
    parser.add_argument("--seeds", default="0,1,2",
                        help="campaign seeds for faults jobs")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="fault-rate multiplier for attached plans")
    parser.add_argument("--fault-seed", type=int, default=None,
                        help="attach a fault plan to run/bench jobs")
    parser.add_argument("--stuck-site", type=int, action="append",
                        help="persistent stuck-at PIM site (repeatable)")
    parser.add_argument("--scrub-interval", metavar="SECONDS",
                        help="attach the memory RAS layer with this "
                             "scrub interval (simulated seconds)")
    parser.add_argument("--retention-rate", metavar="RATE",
                        help="attach the memory RAS layer with this "
                             "retention error rate (errors/s/region)")
    parser.add_argument("--degraded-after", type=int, default=1,
                        help="quarantined sites before PIM_DEGRADED")
    parser.add_argument("--gpu-only-after", type=int, default=3,
                        help="quarantined sites before GPU_ONLY")
    parser.add_argument("--checkpoint-every", type=int, default=1,
                        help="units between checkpoint writes (default 1)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for fresh units (documents "
                             "and digests byte-identical to --workers 1)")
    parser.add_argument("--threads", type=int, default=1,
                        help="kernel threads per worker (threaded "
                             "limb-plane NTT/BConv)")


def _add_admission_flags(parser) -> None:
    """AdmissionPolicy knobs shared by serve/top/soak."""
    parser.add_argument("--queue-cap", type=int, default=16,
                        help="bounded-queue capacity (default 16)")
    parser.add_argument("--high-watermark", type=int, default=None,
                        help="queue depth that triggers shedding "
                             "(default 3*cap/4)")
    parser.add_argument("--low-watermark", type=int, default=None,
                        help="depth shedding drains down to "
                             "(default cap/2)")
    parser.add_argument("--shed-policy", default="priority",
                        choices=["priority", "none"],
                        help="watermark shedding: drop lowest-priority-"
                             "newest jobs, or never shed")
    parser.add_argument("--deadline-slack", type=float, default=1.0,
                        help="margin on predicted completion vs deadline "
                             "at admission (default 1.0)")
    parser.add_argument("--brownout-after", type=int, default=8,
                        help="arrivals under sustained queue pressure "
                             "before brownout (default 8)")
    parser.add_argument("--brownout-deadline-factor", type=float,
                        default=2.0,
                        help="deadline widening per brownout level "
                             "(default 2.0)")
    parser.add_argument("--tenants", default="",
                        help="tenant weights as name:weight[,..] over "
                             "premium/standard/batch (default: all, "
                             "paper mix)")


def _add_arrivals_flags(parser) -> None:
    """Open-loop traffic flags shared by serve and top."""
    parser.add_argument("--arrivals", metavar="SPEC",
                        help="open-loop arrival process: poisson:<qps> "
                             "or burst:<qps>[:<factor>[:<period_s>]] "
                             "(enables admission control)")
    parser.add_argument("--duration", type=float, default=2.0,
                        help="simulated seconds of traffic (default 2)")
    _add_admission_flags(parser)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="anaheim-repro",
        description="Anaheim (HPCA 2025) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the evaluation workloads")

    run = sub.add_parser("run", help="model a workload on a configuration")
    _add_target_flags(run)
    run.add_argument("--breakdown", action="store_true",
                     help="print the per-category time breakdown")
    run.add_argument("--fault-seed", type=int, default=None,
                     help="attach a default fault plan with this seed "
                          "(resilient scheduling; summary in manifest)")
    run.add_argument("--fault-scale", type=float, default=1.0,
                     help="multiplier on the default fault rates")
    _add_obs_flags(run)

    gantt = sub.add_parser("gantt",
                           help="Gantt chart of a hoisted linear transform")
    gantt.add_argument("--rotations", type=int, default=8)
    gantt.add_argument("--width", type=int, default=100)
    _add_obs_flags(gantt)

    micro = sub.add_parser("microbench",
                           help="per-instruction PIM cost table")
    micro.add_argument("--buffer", type=int, default=16)
    _add_obs_flags(micro)

    bench = sub.add_parser(
        "bench", help="write or check a BENCH_<workload>.json baseline")
    _add_target_flags(bench, extra_workloads=("functional", "parallel",
                                              "overload", "ras"))
    bench.add_argument("--dir", default=".",
                       help="directory holding baseline files")
    bench.add_argument("--workers", type=int, default=4,
                       help="worker processes for the `parallel` "
                            "workload (default 4)")
    bench.add_argument("--threads", type=int, default=1,
                       help="kernel threads per worker for the "
                            "`parallel` workload")
    bench.add_argument("--units", type=int, default=8,
                       help="analytic campaign units for the `parallel` "
                            "workload (default 8)")
    bench.add_argument("--check", action="store_true",
                       help="compare a fresh run against the stored "
                            "baseline; exit nonzero on regression")
    bench.add_argument("--tolerance", type=float, default=0.02,
                       help="relative tolerance per metric (default 0.02; "
                            "use a generous value for the wall-clock "
                            "`functional` workload)")
    bench.add_argument("--repeats", type=int, default=3,
                       help="timing trials per metric for the `functional` "
                            "workload (best-of; default 3)")
    bench.add_argument("--history", action="store_true",
                       help="print the recorded run-to-run trend "
                            "(every bench run appends to "
                            "history/<workload>.jsonl under --dir)")

    profile = sub.add_parser(
        "profile", help="span-tree wall-clock profile of one modeled run")
    _add_target_flags(profile, extra_workloads=("functional",))
    profile.add_argument("--trace-out", metavar="FILE",
                         help="also write wall-clock spans + simulated "
                              "schedule as a Chrome trace file")

    faults = sub.add_parser(
        "faults", help="run a fault-injection campaign matrix "
                       "(coverage + overhead; nonzero exit on gate fail)")
    faults.add_argument("--seeds", default="0,1,2",
                        help="comma-separated campaign seeds")
    faults.add_argument("--scale", type=float, default=1.0,
                        help="multiplier on the default fault rates")
    faults.add_argument("--workload", default="Boot",
                        help="analytic-campaign workload (default Boot)")
    faults.add_argument("--stuck-site", type=int, action="append",
                        help="add a persistent stuck-at fault at this "
                             "PIM site (repeatable)")
    faults.add_argument("--layer", default="both",
                        choices=["both", "functional", "analytic"])
    faults.add_argument("--no-wall", action="store_true",
                        help="omit the functional layer's wall-clock "
                             "field; the document becomes a pure "
                             "function of seeds/scale/workload")
    faults.add_argument("--workers", type=int, default=1,
                        help="worker processes for campaign units "
                             "(results byte-identical to --workers 1)")
    faults.add_argument("--threads", type=int, default=1,
                        help="kernel threads per worker (threaded "
                             "limb-plane NTT/BConv)")
    faults.add_argument("--dir", default=".",
                        help="directory holding BENCH_faults.json")
    faults.add_argument("--write-baseline", action="store_true",
                        help="record the analytic campaign metrics as "
                             "BENCH_faults.json")
    faults.add_argument("--check", action="store_true",
                        help="compare against the stored BENCH_faults.json")
    faults.add_argument("--tolerance", type=float, default=0.02)
    faults.add_argument("--json", action="store_true",
                        help="emit the full campaign document as JSON")
    faults.add_argument("--manifest", metavar="FILE",
                        help="write the campaign document to a file")

    ras = sub.add_parser(
        "ras", help="run the memory RAS campaign matrix (retention "
                    "rate x scrub interval; nonzero exit on gate fail)")
    ras.add_argument("--seed", type=int, default=0,
                     help="reliability model seed (default 0)")
    ras.add_argument("--workload", default="Boot",
                     help="analytic workload to guard (default Boot)")
    ras.add_argument("--retention-rates", default="200,1000,5000",
                     help="comma-separated retention error rates "
                          "(errors/s/region) to sweep")
    ras.add_argument("--scrub-intervals", default="2e-4,1e-3,5e-3",
                     help="comma-separated scrub intervals (simulated "
                          "seconds) to sweep")
    ras.add_argument("--layer", default="both",
                     choices=["both", "analytic"],
                     help="run the functional ECC validation cell too "
                          "(both) or the analytic grid only")
    ras.add_argument("--no-wall", action="store_true",
                     help="omit the functional layer's wall-clock "
                          "field; the document becomes a pure "
                          "function of the seed and grid")
    ras.add_argument("--workers", type=int, default=1,
                     help="worker processes for campaign cells "
                          "(results byte-identical to --workers 1)")
    ras.add_argument("--threads", type=int, default=1,
                     help="kernel threads per worker")
    ras.add_argument("--dir", default=".",
                     help="directory holding BENCH_ras.json")
    ras.add_argument("--write-baseline", action="store_true",
                     help="record the default-cell metrics as "
                          "BENCH_ras.json")
    ras.add_argument("--check", action="store_true",
                     help="compare against the stored BENCH_ras.json")
    ras.add_argument("--tolerance", type=float, default=0.02)
    ras.add_argument("--smoke", action="store_true",
                     help="gating self-check: serial vs pool documents "
                          "and metric digests byte-identical, gate "
                          "passed, zero uncorrected errors, scrub "
                          "overhead under the bound")
    ras.add_argument("--json", action="store_true",
                     help="emit the full campaign document as JSON")
    ras.add_argument("--manifest", metavar="FILE",
                     help="write the campaign document to a file")

    serve = sub.add_parser(
        "serve", help="execute jobs resiliently: deadlines, retries, "
                      "circuit breakers, checkpoint/resume, PIM-to-GPU "
                      "degradation")
    serve.add_argument("--jobs", nargs="+", metavar="SPEC",
                       help="job specs: run:<wl>[,..], bench:<wl>[,..], "
                            "faults[:layer[:workload]]")
    _add_serve_flags(serve)
    _add_arrivals_flags(serve)
    serve.add_argument("--checkpoint", metavar="FILE",
                       help="record finished units to this file "
                            "(crash-safe atomic writes)")
    serve.add_argument("--resume", metavar="FILE",
                       help="resume from a checkpoint; replays only the "
                            "missing units, output is byte-identical to "
                            "an uninterrupted run")
    serve.add_argument("--checkpoint-keep", type=int, default=None,
                       metavar="N",
                       help="also retain the N most recent checkpoint "
                            "generations as <file>.<seq>, pruning older "
                            "ones atomically")
    serve.add_argument("--max-units", type=int, default=None,
                       help="stop after this many fresh units "
                            "(simulates a mid-campaign kill; exit 2)")
    serve.add_argument("--smoke", action="store_true",
                       help="gating end-to-end check: clean run vs "
                            "kill + resume must match byte-for-byte, "
                            "with GPU_ONLY degradation recorded; with "
                            "--arrivals, serial vs pool overload runs "
                            "must match byte-for-byte with shedding "
                            "active")
    serve.add_argument("--json", action="store_true",
                       help="emit the serve document as JSON")
    serve.add_argument("--manifest", metavar="FILE",
                       help="write the serve document to a file")

    metrics_p = sub.add_parser(
        "metrics", help="run one instrumented workload and export its "
                        "metrics (Prometheus text, JSON snapshot+digest, "
                        "or JSONL events)")
    metrics_p.add_argument("--workload", default="HELR",
                           help=f"one of {', '.join(sorted(apps.WORKLOADS))}"
                                f", functional (default HELR)")
    metrics_p.add_argument("--gpu", default="a100", choices=sorted(GPUS))
    metrics_p.add_argument("--pim", default="near-bank",
                           choices=["near-bank", "custom-hbm", "none"])
    metrics_p.add_argument("--library", default="Cheddar",
                           choices=sorted(LIBRARIES))
    metrics_p.add_argument("--format", default="prom",
                           choices=["prom", "json", "jsonl"],
                           help="export format (default: Prometheus text)")
    metrics_p.add_argument("--out", metavar="FILE",
                           help="write the export here instead of stdout")
    metrics_p.add_argument("--events-out", metavar="FILE",
                           help="also write the JSONL event log here")
    metrics_p.add_argument("--utilization", action="store_true",
                           help="print the derived utilization report")
    metrics_p.add_argument("--repeats", type=int, default=1,
                           help="timing trials for the `functional` "
                                "workload (default 1)")
    metrics_p.add_argument("--smoke", action="store_true",
                           help="gating self-check: exposition parses, "
                                "utilization accounting closes within "
                                "1e-9, snapshots are run-to-run "
                                "byte-identical")

    top = sub.add_parser(
        "top", help="serve a job matrix with a live-ish progress line "
                    "per unit, then the latency/retry/degradation "
                    "summary from the metrics registry")
    top.add_argument("--jobs", nargs="+", metavar="SPEC",
                     help="job specs: run:<wl>[,..], bench:<wl>[,..], "
                          "faults[:layer[:workload]]")
    _add_serve_flags(top)
    _add_arrivals_flags(top)
    top.add_argument("--checkpoint", metavar="FILE",
                     help="record finished units to this file")
    top.add_argument("--resume", metavar="FILE",
                     help="resume from a checkpoint")
    top.add_argument("--metrics-out", metavar="FILE",
                     help="write the final Prometheus exposition here")

    soak = sub.add_parser(
        "soak", help="chaos soak: overload x chaos campaign grid on the "
                     "simulated clock, gated on admit/shed conservation "
                     "invariants")
    soak.add_argument("--gpu", default="a100", choices=sorted(GPUS))
    soak.add_argument("--pim", default="near-bank",
                      choices=["near-bank", "custom-hbm", "none"])
    soak.add_argument("--library", default="Cheddar",
                      choices=sorted(LIBRARIES))
    soak.add_argument("--seed", type=int, default=0,
                      help="traffic seed (default 0)")
    soak.add_argument("--duration", type=float, default=2.0,
                      help="simulated seconds per cell (default 2)")
    soak.add_argument("--loads", default="0.5,1,2",
                      help="load factors (multiples of capacity) to "
                           "sweep (default 0.5,1,2)")
    soak.add_argument("--chaos", default="none,faults",
                      help="chaos kinds to sweep: none,faults")
    soak.add_argument("--process", default="poisson",
                      choices=["poisson", "burst"],
                      help="arrival process shape (default poisson)")
    soak.add_argument("--fault-seed", type=int, default=0,
                      help="seed of the fault plan behind chaos cells")
    soak.add_argument("--scale", type=float, default=1.0,
                      help="fault-rate multiplier for chaos cells")
    _add_admission_flags(soak)
    soak.add_argument("--json", action="store_true",
                      help="emit the campaign document as JSON")
    soak.add_argument("--manifest", metavar="FILE",
                      help="write the campaign document to a file")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"list": cmd_list, "run": cmd_run, "gantt": cmd_gantt,
                "microbench": cmd_microbench, "bench": cmd_bench,
                "profile": cmd_profile, "faults": cmd_faults,
                "ras": cmd_ras, "serve": cmd_serve, "metrics": cmd_metrics,
                "top": cmd_top, "soak": cmd_soak}
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as exc:
        print(f"error: malformed JSON input: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
