"""Reporting and breakdown analysis helpers."""

from repro.analysis.breakdown import (BreakdownRow, breakdown_row,
                                      merge_reports, stacked_bars)
from repro.analysis.reporting import (format_bytes, format_ratio,
                                      format_seconds, format_table)

__all__ = [
    "BreakdownRow", "breakdown_row", "format_bytes", "format_ratio",
    "format_seconds", "format_table", "merge_reports", "stacked_bars",
]
