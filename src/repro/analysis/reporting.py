"""Plain-text table formatting for benchmark output."""

from __future__ import annotations


def format_table(headers, rows, title: str = "") -> str:
    """Render a simple aligned text table."""
    columns = [len(str(h)) for h in headers]
    str_rows = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        for i, cell in enumerate(row):
            columns[i] = max(columns[i], len(cell))
    def fmt(cells):
        return "  ".join(str(c).rjust(w) for c, w in zip(cells, columns))
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(headers))
    lines.append("  ".join("-" * w for w in columns))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def format_seconds(seconds: float) -> str:
    """Human-readable duration with paper-style units."""
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.1f}us"


def format_ratio(value: float) -> str:
    return f"{value:.2f}x"


def format_bytes(value: float) -> str:
    if value >= 1e9:
        return f"{value / 1e9:.2f}GB"
    if value >= 1e6:
        return f"{value / 1e6:.1f}MB"
    return f"{value / 1e3:.1f}KB"
