"""Execution-time breakdown analysis (the Figs. 2-3 presentation layer)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.scheduler import ScheduleReport
from repro.core.trace import CATEGORY_LABELS, OpCategory


@dataclass(frozen=True)
class BreakdownRow:
    """One bar of a stacked-breakdown figure."""

    label: str
    total_time: float
    shares: dict            # category label -> fraction of total

    def share(self, category: OpCategory) -> float:
        return self.shares.get(CATEGORY_LABELS[category], 0.0)


def breakdown_row(label: str, report: ScheduleReport) -> BreakdownRow:
    total = report.total_time or 1.0
    shares = {name: seconds / total
              for name, seconds in report.breakdown().items()}
    return BreakdownRow(label=label, total_time=report.total_time,
                        shares=shares)


def merge_reports(reports, label: str = "") -> ScheduleReport:
    """Sum several schedule reports into one (sequential composition)."""
    reports = list(reports)
    if not reports:
        return ScheduleReport(label=label)
    merged = reports[0].scaled(1.0)
    merged.label = label or merged.label
    for report in reports[1:]:
        merged = merged.merged(report, label=merged.label)
    return merged


def stacked_bars(rows, width: int = 60) -> str:
    """ASCII stacked bars, normalized to the slowest row."""
    if not rows:
        return ""
    glyphs = {"(I)NTT": "N", "BConv": "B", "Element-wise": "e",
              "Automorphism": "A", "Transfer": "w"}
    longest = max(r.total_time for r in rows) or 1.0
    name_width = max(len(r.label) for r in rows) + 2
    lines = []
    for row in rows:
        bar_len = int(row.total_time / longest * width)
        bar = []
        for name, share in row.shares.items():
            bar.extend(glyphs.get(name, "?") * int(round(share * bar_len)))
        lines.append(f"{row.label:<{name_width}s}|" + "".join(bar[:width]))
    legend = ", ".join(f"{g}={n}" for n, g in glyphs.items())
    lines.append(f"  [{legend}]")
    return "\n".join(lines)
