"""Tier-1 parallelism: a deterministic process pool for work units.

Serve units and fault-campaign units are seeded, independent, and
checkpointable — exactly the shape of work Anaheim fans out across
thousands of DRAM banks (§IV).  :class:`WorkerPool` executes such
units across a :class:`~concurrent.futures.ProcessPoolExecutor` while
keeping every observable output **byte-identical** to a serial run:

* results are committed in **submission order** (keyed by unit index),
  never completion order, so assembled matrices, checkpoints, and
  merged metrics registries match the serial documents exactly;
* each worker runs a one-time warm-up initializer (params and twiddle
  tables built once per worker, not once per unit);
* a crashed worker process takes down *one unit*, not the run: the
  broken pool is rebuilt, the remaining tasks are resubmitted, and the
  crashed unit comes back marked ``crashed`` so the caller can feed it
  into its normal retry machinery in-process.

``workers <= 1`` bypasses the executor entirely — the caller's serial
path runs unchanged, which is what makes ``--workers 1`` ≡ the
historical behavior by construction.

Throughput accounting follows the repo convention of charging costs to
deterministic clocks: :func:`pool_timeline` replays a greedy
least-loaded assignment of per-unit costs onto ``workers`` lanes, so
the speedup recorded in ``BENCH_parallel.json`` is a pure function of
the unit costs (themselves simulated seconds) and reproduces exactly
under ``bench --check``.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.errors import ParameterError


@dataclass(frozen=True)
class PoolResult:
    """One unit's outcome, yielded in submission order."""

    index: int
    value: object = None          # fn's return value (None if crashed)
    worker: int = -1              # worker pid (parent pid when serial)
    wall_s: float = 0.0           # in-worker wall clock for this unit
    crashed: bool = False         # the worker process died on this unit
    error: str = ""


def _mp_context():
    """Prefer ``fork`` (cheap, inherits warmed caches); fall back to
    the platform default where fork is unavailable."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _traced_call(fn, task):
    """Worker-side wrapper: run one unit and report who ran it."""
    import os
    start = time.perf_counter()
    value = fn(task)
    return value, os.getpid(), time.perf_counter() - start


class WorkerPool:
    """Ordered process-pool execution with crash containment.

    ``initializer(*initargs)`` runs once in every worker before its
    first unit (the warm-up hook).  ``fn`` and every task must be
    picklable (module-level functions; frozen dataclasses travel well).
    """

    def __init__(self, workers: int, initializer=None, initargs=()):
        if workers < 1:
            raise ParameterError("worker count must be >= 1")
        self.workers = workers
        self.initializer = initializer
        self.initargs = tuple(initargs)
        self._executor = None
        self.crashes = 0

    # -- Executor lifecycle --------------------------------------------------

    def _fresh_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers, mp_context=_mp_context(),
            initializer=self.initializer, initargs=self.initargs)

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = self._fresh_executor()
        return self._executor

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.shutdown()
        return False

    # -- Ordered execution ---------------------------------------------------

    def run(self, fn, tasks) -> list:
        """Execute ``fn(task)`` for every task; :class:`PoolResult`
        list in task order.

        With one worker (or one task) the units run inline in the
        parent — no processes, no pickling, serial semantics exactly.
        A :class:`BrokenProcessPool` marks the *current* unit crashed,
        rebuilds the pool, and resubmits every unit after it; an
        ordinary exception from ``fn`` propagates, as it would have
        serially.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        if self.workers <= 1 or len(tasks) == 1:
            return [self._run_inline(i, fn, task)
                    for i, task in enumerate(tasks)]
        results: list = [None] * len(tasks)

        def harvest(index: int, future) -> bool:
            if results[index] is None and future.done() \
                    and future.exception() is None:
                value, pid, wall_s = future.result()
                results[index] = PoolResult(index=index, value=value,
                                            worker=pid, wall_s=wall_s)
            return results[index] is not None

        pending = list(range(len(tasks)))
        while pending:
            executor = self._ensure_executor()
            futures: dict = {}
            try:
                for index in pending:
                    futures[index] = executor.submit(
                        _traced_call, fn, tasks[index])
                for index in pending:
                    futures[index].result()
                    harvest(index, futures[index])
                pending = []
            except BrokenProcessPool as exc:
                self.crashes += 1
                # Keep every unit that finished cleanly before the
                # break; blame the earliest unfinished one (we were
                # draining in order, so it was in flight on the dead
                # worker) and resubmit the rest to a rebuilt pool.
                for index, future in futures.items():
                    harvest(index, future)
                remaining = [i for i in pending if results[i] is None]
                crashed_at = remaining[0]
                results[crashed_at] = PoolResult(
                    index=crashed_at, crashed=True,
                    error=f"worker process died: {exc}")
                self.shutdown()
                pending = remaining[1:]
        return results

    def _run_inline(self, index: int, fn, task) -> PoolResult:
        import os
        start = time.perf_counter()
        value = fn(task)
        return PoolResult(index=index, value=value, worker=os.getpid(),
                          wall_s=time.perf_counter() - start)


# -- Deterministic pool timeline ------------------------------------------------


def pool_timeline(costs, workers: int) -> dict:
    """Greedy least-loaded assignment of unit ``costs`` onto
    ``workers`` lanes — the deterministic model of pool throughput.

    Units are assigned in order to the least-loaded lane (ties broken
    by lane index), mirroring how a process pool drains a queue of
    near-uniform units.  Returns the serial total, the parallel
    makespan, the speedup, and each lane's busy time — a pure function
    of ``(costs, workers)``, which is what lets ``BENCH_parallel.json``
    gate on ≥2x throughput without touching a wall clock.
    """
    if workers < 1:
        raise ParameterError("worker count must be >= 1")
    costs = [float(c) for c in costs]
    lanes = [0.0] * workers
    assignment = []
    for cost in costs:
        lane = min(range(workers), key=lambda w: (lanes[w], w))
        lanes[lane] += cost
        assignment.append(lane)
    serial_s = sum(costs)
    makespan_s = max(lanes) if costs else 0.0
    return {
        "units": len(costs),
        "workers": workers,
        "serial_s": serial_s,
        "makespan_s": makespan_s,
        "speedup": serial_s / makespan_s if makespan_s else 1.0,
        "lane_busy_s": lanes,
        "assignment": assignment,
    }
