"""Tier-2 parallelism: threaded row-block kernels for limb planes.

The batched NTT butterfly passes and the chunked BConv matmuls spend
their time inside NumPy ufuncs and ``@`` products, which release the
GIL — so independent RNS limb planes (rows of an ``(L, N)`` array) can
be processed by a shared :class:`~concurrent.futures.ThreadPoolExecutor`
with real concurrency on multicore hosts.

Determinism is preserved by construction: the planes are split into
**contiguous row blocks**, every block performs exactly the per-row
operation sequence of the serial kernel, and each block writes only its
own rows of the (pre-allocated) output — so the result is bit-identical
to the serial pass for any thread count (the property tests assert
this).  The partition depends only on ``(rows, threads)``, never on
scheduling order.

The module-level thread count mirrors the engine convention of
:mod:`repro.ckks.instrument`: a process-wide setting (``--threads`` on
the CLI) rather than a parameter threaded through every polynomial op.
The executor is rebuilt after ``fork()`` — a worker process inherits
the parent's executor *object* but not its threads, so
:func:`run_blocks` re-creates it on first use in the child.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager

from repro.errors import ParameterError

#: Below this many rows per would-be block, threading costs more in
#: dispatch than it saves — the kernel runs serially instead.
MIN_ROWS_PER_BLOCK = 2

_lock = threading.Lock()
_threads = 1
_executor: ThreadPoolExecutor | None = None
_executor_pid: int | None = None
_executor_size = 0


def set_threads(count: int) -> None:
    """Set the process-wide kernel thread count (1 = serial)."""
    global _threads
    if count < 1:
        raise ParameterError("thread count must be >= 1")
    with _lock:
        _threads = int(count)


def get_threads() -> int:
    """The current kernel thread count."""
    return _threads


@contextmanager
def thread_scope(count: int):
    """Temporarily set the kernel thread count (tests use this)."""
    previous = get_threads()
    set_threads(count)
    try:
        yield
    finally:
        set_threads(previous)


def _get_executor(size: int) -> ThreadPoolExecutor:
    """The shared executor, rebuilt on resize and after ``fork()``."""
    global _executor, _executor_pid, _executor_size
    with _lock:
        pid = os.getpid()
        if _executor is None or _executor_pid != pid \
                or _executor_size < size:
            # NB: after fork() the inherited executor's threads do not
            # exist in the child; dropping the reference (rather than
            # shutdown(), whose queue join could hang) is the safe move.
            _executor = ThreadPoolExecutor(
                max_workers=size, thread_name_prefix="repro-limb")
            _executor_pid = pid
            _executor_size = size
        return _executor


def partition(rows: int, blocks: int) -> list:
    """Contiguous ``[lo, hi)`` row blocks; depends only on its inputs."""
    blocks = max(1, min(blocks, rows))
    return [(b * rows // blocks, (b + 1) * rows // blocks)
            for b in range(blocks)
            if (b + 1) * rows // blocks > b * rows // blocks]


def block_count(rows: int) -> int:
    """How many row blocks the current setting would split ``rows``
    into — 1 when threading is off or the work is too small to pay."""
    if _threads <= 1 or rows < 2 * MIN_ROWS_PER_BLOCK:
        return 1
    return min(_threads, rows // MIN_ROWS_PER_BLOCK)


def run_blocks(rows: int, work) -> int:
    """Run ``work(lo, hi)`` over contiguous row blocks of ``[0, rows)``.

    Serial (in the calling thread, one block) when threading is off or
    the row count is too small; otherwise the blocks are dispatched to
    the shared executor and joined before returning.  Exceptions from
    any block propagate.  Returns the number of blocks used.
    """
    blocks = block_count(rows)
    if blocks <= 1:
        work(0, rows)
        return 1
    spans = partition(rows, blocks)
    executor = _get_executor(_threads)
    futures = [executor.submit(work, lo, hi) for lo, hi in spans]
    for future in futures:
        future.result()
    return len(spans)
