"""Deterministic parallel execution engine.

Anaheim's premise is massive hardware parallelism — thousands of DRAM
banks and MMAC lanes operating on independent RNS limb planes (§IV).
This package is the host-side mirror of that structure, in two tiers:

* **Tier 1 — process pool** (:mod:`repro.parallel.pool`): serve units
  and fault-campaign units are seeded, independent, and checkpointable,
  so :class:`WorkerPool` fans them out across worker processes with
  per-worker warm-up and **ordered result commit** — every assembled
  matrix, checkpoint, and metrics digest is byte-identical to a serial
  run (``--workers 1`` ≡ the historical behavior).

* **Tier 2 — thread pool** (:mod:`repro.parallel.threads`): the
  batched NTT butterflies and chunked BConv matmuls release the GIL
  inside NumPy, so independent limb planes are split into contiguous
  per-thread row blocks — bit-identical to the serial kernels for any
  thread count.

Crashes are contained, not fatal: a dead worker process costs one unit
(marked ``crashed`` and fed back into the caller's retry machinery),
and the pool rebuilds itself for the remaining units.
"""

from repro.parallel.pool import PoolResult, WorkerPool, pool_timeline
from repro.parallel.threads import (block_count, get_threads, partition,
                                    run_blocks, set_threads, thread_scope)


def worker_warmup(thread_count: int = 1) -> None:
    """Per-worker initializer: set the kernel thread count and build
    the shared read-only context every unit would otherwise rebuild —
    paper parameters and the bench-scale NTT twiddle tables.  Pure
    precomputation (no RNG state is advanced), so warmed and cold
    workers produce identical unit results.
    """
    set_threads(thread_count)
    from repro.ckks.bench import BENCH_PARAMS
    from repro.ckks.rns import batch_ntt_context
    from repro.params import CkksParams, paper_params
    paper_params()
    params = CkksParams.create(**BENCH_PARAMS)
    batch_ntt_context(params.degree, tuple(params.moduli))


__all__ = [
    "PoolResult", "WorkerPool", "pool_timeline",
    "block_count", "get_threads", "partition", "run_blocks",
    "set_threads", "thread_scope", "worker_warmup",
]
