"""``python -m repro`` — the Anaheim reproduction CLI."""

import sys

from repro.cli import main

sys.exit(main())
