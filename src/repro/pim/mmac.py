"""Functional model of the modular multiply-accumulate (MMAC) lanes.

Eight MMAC lanes process one 256-bit chunk (8 x 32-bit residues) per
cycle (§VI-A).  Multiplication uses the Montgomery reduction circuit
enabled by ``q ≡ 1 (mod 2N)`` with 28-bit operands; inputs stored as
32-bit words are truncated to 28 bits on entry, exactly as the paper
describes.
"""

from __future__ import annotations

import numpy as np

from repro.ckks.modmath import MontgomeryContext
from repro.errors import ParameterError


class MmacArray:
    """The eight-lane MMAC array of one PIM unit, fixed to one prime.

    The die-group data mapping guarantees all banks of a die work on
    the same prime (§VI-B), so a unit is configured with a single
    modulus at kernel launch, broadcast by the instruction decoder.
    """

    MASK_28 = (1 << 28) - 1

    def __init__(self, modulus: int, injector=None):
        if modulus >= (1 << 28):
            raise ParameterError("MMAC operands are 28-bit (§VI-A)")
        self.modulus = modulus
        self.injector = injector
        self._mont = MontgomeryContext(modulus, r_bits=28)

    def _prep(self, chunk: np.ndarray) -> np.ndarray:
        """Truncate 32-bit storage words to 28-bit MMAC operands."""
        return chunk & self.MASK_28

    def _deliver(self, out: np.ndarray) -> np.ndarray:
        """Lane outputs leave the array; an attached injector models a
        transient upset on one lane's result word."""
        injector = self.injector
        if injector is not None:
            from repro.faults.plan import FaultModel
            if injector.draw(FaultModel.PIM_BITFLIP_MMAC):
                detail = injector.flip_word(out, FaultModel.PIM_BITFLIP_MMAC)
                injector.event(FaultModel.PIM_BITFLIP_MMAC,
                               "mmac.out", "device", **detail)
        return out

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Lane-wise a*b mod q via the Montgomery circuit."""
        a = self._prep(a)
        b = self._prep(b)
        return self._deliver(self._mont.mul(self._mont.to_mont(a), b))

    def mac(self, a: np.ndarray, b: np.ndarray, acc: np.ndarray) -> np.ndarray:
        out = self.mul(a, b) + self._prep(acc)
        return self._deliver(
            np.where(out >= self.modulus, out - self.modulus, out))

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        out = self._prep(a) + self._prep(b)
        return self._deliver(
            np.where(out >= self.modulus, out - self.modulus, out))

    def sub(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        out = self._prep(a) - self._prep(b)
        return self._deliver(
            np.where(out < 0, out + self.modulus, out))

    def neg(self, a: np.ndarray) -> np.ndarray:
        a = self._prep(a)
        return self._deliver(np.where(a == 0, a, self.modulus - a))

    def passthrough(self, a: np.ndarray) -> np.ndarray:
        """Inputs traverse the MMAC even when unused (§VI-A: reduces
        buffer ports); modeled as an identity lane op."""
        return self._deliver(self._prep(a))
