"""The Anaheim PIM microarchitecture: ISA, layout, units, executor."""

from repro.pim.configs import (A100_CUSTOM_HBM, A100_NEAR_BANK, PIM_CONFIGS,
                               RTX4090_NEAR_BANK, PimConfig, PimVariant,
                               with_buffer)
from repro.pim.device import PimDevice
from repro.pim.executor import PimCost, PimExecutor
from repro.pim.isa import INSTRUCTIONS, PimInstruction, instruction
from repro.pim.layout import BankLayout, PolyGroup, PolyPlacement
from repro.pim.mmac import MmacArray
from repro.pim.buffer import DataBuffer
from repro.pim.unit import PimUnit

__all__ = [
    "A100_CUSTOM_HBM", "A100_NEAR_BANK", "BankLayout", "DataBuffer",
    "INSTRUCTIONS", "MmacArray", "PIM_CONFIGS", "PimConfig", "PimCost",
    "PimDevice", "PimExecutor", "PimInstruction", "PimUnit", "PimVariant",
    "PolyGroup", "PolyPlacement", "RTX4090_NEAR_BANK", "instruction",
    "with_buffer",
]
