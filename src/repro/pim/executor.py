"""Analytic all-bank PIM execution model (Alg. 1 generalized).

For every PIM instruction the execution loop is the one Alg. 1 shows
for PAccum⟨4⟩: iterate over the bank's chunks in granularity
``G = floor(B / buffer_polys)``; per iteration, activate one row per
PolyGroup phase and stream ``polys x G`` chunks through the MMAC lanes
(one chunk per PIM clock).  Because all banks operate in lockstep
(§VI), the ACT/PRE turnarounds are fully exposed for near-bank PIM,
while custom-HBM units — each serving several banks — overlap one
bank's row turnaround with another bank's streaming.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.trace import PimKernel
from repro.errors import ParameterError
from repro.faults.plan import FaultModel
from repro.pim import isa
from repro.pim.configs import PimConfig, PimVariant


@dataclass(frozen=True)
class PimCost:
    """Time/energy and DRAM-command accounting for one PIM kernel."""

    time: float
    energy: float
    activations: int        # row ACT/PRE pairs, summed over all banks
    chunk_accesses: int     # column accesses, summed over all banks
    internal_bytes: float   # bytes moved inside the DRAM devices

    def __add__(self, other: "PimCost") -> "PimCost":
        return PimCost(
            time=self.time + other.time,
            energy=self.energy + other.energy,
            activations=self.activations + other.activations,
            chunk_accesses=self.chunk_accesses + other.chunk_accesses,
            internal_bytes=self.internal_bytes + other.internal_bytes,
        )


ZERO_COST = PimCost(0.0, 0.0, 0, 0, 0.0)


class PimExecutor:
    """Costs :class:`PimKernel` descriptors against a :class:`PimConfig`."""

    def __init__(self, config: PimConfig, tracer=None, metrics=None):
        self.config = config
        self.tracer = tracer
        self.metrics = metrics
        if metrics is not None:
            self._m_instructions = metrics.counter(
                "anaheim_pim_instructions_total",
                "PIM kernel costings by ISA instruction",
                labelnames=("instruction",))
            self._m_activations = metrics.counter(
                "anaheim_pim_activations_total",
                "Row ACT/PRE pairs summed over all banks")
            self._m_internal = metrics.counter(
                "anaheim_pim_internal_bytes_total",
                "Bytes moved inside the DRAM devices")

    def supports(self, instruction: str, fan_in: int = 1) -> bool:
        """Whether the data buffer is large enough (Fig. 9: small B
        cannot run some compound instructions)."""
        inst = isa.instruction(instruction)
        return self.config.buffer_entries >= inst.min_buffer(fan_in)

    def chunk_granularity(self, instruction: str, fan_in: int = 1) -> int:
        """G — chunks of each polynomial buffered per loop iteration.

        Bounded by the data buffer (``B / buffer_polys``, Alg. 1) *and*
        by row capacity: one row must hold G chunks of every polynomial
        in the widest PolyGroup (Fig. 7's column partitioning).
        """
        inst = isa.instruction(instruction)
        g = self.config.buffer_entries // inst.buffer_polys(fan_in)
        if g < 1:
            raise ParameterError(
                f"{instruction}<{fan_in}> needs B >= "
                f"{inst.min_buffer(fan_in)}; have {self.config.buffer_entries}")
        row_cap = (self.config.geometry.chunks_per_row
                   // inst.widest_group(fan_in))
        return max(1, min(g, row_cap))

    # -- Fault effects on the command stream --------------------------------

    @staticmethod
    def apply_fault(cost: PimCost, fault) -> PimCost:
        """Cost of one execution under an instruction-stream fault.

        A *dropped* compound instruction never issues: the slot costs
        nothing, but the destination rows keep their stale contents
        (caught downstream by the residue checksum).  A *duplicated*
        instruction executes twice, paying double the commands and
        energy — harmless for pure instructions, corrupting for the
        accumulating ones.
        """
        if fault is FaultModel.PIM_INSTR_DROP:
            return ZERO_COST
        if fault is FaultModel.PIM_INSTR_DUP:
            return cost + cost
        return cost

    # -- Core timing --------------------------------------------------------

    def cost(self, kernel: PimKernel, fault=None) -> PimCost:
        cfg = self.config
        inst = isa.instruction(kernel.instruction)
        fan_in = kernel.fan_in
        g = self.chunk_granularity(kernel.instruction, fan_in)
        geom = cfg.geometry
        chunks = geom.chunks_per_bank(kernel.degree)
        iterations = math.ceil(chunks / g)
        polys = inst.total_polys(fan_in)
        if kernel.column_partitioned:
            act_pairs = inst.row_groups(fan_in)
        else:
            act_pairs = inst.naive_row_groups(fan_in)

        stream_cycles_per_limb = (polys * chunks * cfg.banks_per_unit
                                  * cfg.cycles_per_chunk)
        stream_time = stream_cycles_per_limb / cfg.clock_hz
        # All banks served by one unit activate their rows in lockstep
        # (independent row buffers), so the turnaround count does not
        # grow with banks_per_unit — custom-HBM streams 8x the chunks
        # per activation pair, which is why it "better hides the
        # overhead for accessing DRAM banks" (§VII-B).
        act_time = iterations * act_pairs * cfg.timing.row_turnaround
        limb_time = stream_time + act_time

        rounds = math.ceil(kernel.limbs / geom.die_groups)
        time = rounds * limb_time

        # -- Command and energy accounting over every involved bank.
        limbs = kernel.limbs
        banks = geom.banks_per_group
        total_acts = limbs * banks * iterations * act_pairs
        total_chunks = limbs * banks * polys * chunks
        internal_bytes = total_chunks * cfg.chunk_bytes
        ops = limbs * kernel.degree * inst.ops_per_element * (
            fan_in if inst.compound else 1)
        energy = (total_acts * cfg.energy.act_energy
                  + internal_bytes * 8.0 * cfg.access_pj_per_bit() * 1e-12
                  + ops * cfg.mmac_pj_per_op * 1e-12)
        if self.tracer is not None:
            self.tracer.count("pim.kernel_costs")
            self.tracer.count(f"pim.kernel_costs.{kernel.instruction}")
            self.tracer.count("pim.activations", total_acts)
            self.tracer.count("pim.internal_bytes", internal_bytes)
        if self.metrics is not None:
            self._m_instructions.inc(instruction=kernel.instruction)
            self._m_activations.inc(total_acts)
            self._m_internal.inc(internal_bytes)
        return self.apply_fault(
            PimCost(time=time, energy=energy, activations=total_acts,
                    chunk_accesses=total_chunks,
                    internal_bytes=internal_bytes), fault)

    def verify_cost(self, kernel: PimKernel) -> float:
        """Modeled residue-checksum verification time for one kernel.

        The checksum lanes reduce each output chunk as it streams out of
        the MMAC array, so verification costs a small fixed fraction of
        the kernel's own streaming time (no extra row activations)."""
        return self.cost(kernel).time * 0.02

    def trace_cost(self, kernels) -> PimCost:
        total = ZERO_COST
        for kernel in kernels:
            total = total + self.cost(kernel)
        return total
