"""Functional all-bank PIM device executing on whole RNS polynomials.

Implements the §VI-B data mapping end to end: limb ``ℓ`` of a
polynomial goes to die group ``ℓ mod S`` (so all banks of a die work
with one prime, letting the instruction embed it), and the limb's N
coefficients spread evenly over the group's banks.  Executing an
instruction runs the per-bank :class:`~repro.pim.unit.PimUnit` loop in
lockstep across every involved bank and limb round.

This is the integration point between the executable CKKS layer and the
PIM microarchitecture: tests store real :class:`RnsPolynomial` data into
banks, run Table II instructions, and read back bit-exact results.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ckks.rns import RnsPolynomial
from repro.dram.device import DramDevice
from repro.dram.geometry import ELEMENTS_PER_CHUNK, DramGeometry
from repro.errors import LayoutError, ParameterError
from repro.pim.layout import BankLayout
from repro.pim.unit import PimUnit, load_poly, store_poly


@dataclass(frozen=True)
class PolyGroupHandle:
    """Device-wide PolyGroup: per-(group, round, bank) placements.

    ``placements[group][round][bank]`` is the per-bank
    :class:`PolyGroup` for the limbs of round ``round`` handled by die
    group ``group``.
    """

    name: str
    slots: int
    placements: list


class PimDevice:
    """A functional PIM-enabled memory system for one RNS basis.

    ``basis`` fixes the limb -> prime mapping; ``limb_rounds`` is the
    maximum number of limbs any die group handles
    (``ceil(len(basis) / die_groups)``).
    """

    def __init__(self, geometry: DramGeometry, degree: int, basis: tuple,
                 buffer_entries: int = 16, rows: int = 256,
                 column_group_width: int = 2):
        self.geometry = geometry
        self.degree = degree
        self.basis = tuple(basis)
        self.buffer_entries = buffer_entries
        self.chunks_per_poly = geometry.chunks_per_bank(degree)
        self.device = DramDevice(geometry, rows=rows)
        self.width = column_group_width
        self._layouts = [
            [BankLayout(geometry, self.chunks_per_poly, column_group_width,
                        total_rows=rows)
             for _ in range(geometry.banks_per_group)]
            for _ in range(geometry.die_groups)
        ]

    # -- Limb mapping (§VI-B) ---------------------------------------------------

    def limb_group(self, limb: int) -> int:
        return limb % self.geometry.die_groups

    def limb_round(self, limb: int) -> int:
        return limb // self.geometry.die_groups

    @property
    def limb_rounds(self) -> int:
        return -(-len(self.basis) // self.geometry.die_groups)

    def limbs_of(self, group: int, round_index: int) -> int | None:
        """The basis index handled by (group, round), or None."""
        limb = round_index * self.geometry.die_groups + group
        return limb if limb < len(self.basis) else None

    # -- Allocation ---------------------------------------------------------------

    def allocate(self, name: str, slots: int,
                 naive: bool = False) -> PolyGroupHandle:
        """Allocate a PolyGroup of ``slots`` polynomials device-wide."""
        placements = []
        for group in range(self.geometry.die_groups):
            rounds = []
            for _ in range(self.limb_rounds):
                per_bank = []
                for layout in self._layouts[group]:
                    alloc = (layout.allocate_naive if naive
                             else layout.allocate)
                    per_bank.append(alloc(slots))
                rounds.append(per_bank)
            placements.append(rounds)
        return PolyGroupHandle(name=name, slots=slots, placements=placements)

    # -- Data movement ---------------------------------------------------------------

    def _bank_slices(self, limb_values: np.ndarray):
        elements = self.geometry.elements_per_bank(self.degree)
        return limb_values.reshape(self.geometry.banks_per_group, elements)

    def store(self, handle: PolyGroupHandle, slot: int,
              poly: RnsPolynomial) -> None:
        """Write one polynomial into PolyGroup slot ``slot``."""
        if poly.basis != self.basis:
            raise ParameterError("polynomial basis differs from device basis")
        if not 0 <= slot < handle.slots:
            raise LayoutError(f"slot {slot} outside PolyGroup of "
                              f"{handle.slots}")
        for limb, _ in enumerate(self.basis):
            group = self.limb_group(limb)
            round_index = self.limb_round(limb)
            banks = self.device.group_banks(group)
            slices = self._bank_slices(poly.coeffs[limb])
            for bank, placement_group, values in zip(
                    banks, handle.placements[group][round_index], slices):
                store_poly(bank, placement_group[slot], values)

    def load(self, handle: PolyGroupHandle, slot: int,
             is_ntt: bool = True) -> RnsPolynomial:
        """Read one polynomial back out of the banks."""
        coeffs = np.empty((len(self.basis), self.degree), dtype=np.int64)
        for limb, _ in enumerate(self.basis):
            group = self.limb_group(limb)
            round_index = self.limb_round(limb)
            banks = self.device.group_banks(group)
            pieces = [load_poly(bank, placement_group[slot])
                      for bank, placement_group in zip(
                          banks, handle.placements[group][round_index])]
            coeffs[limb] = np.concatenate(pieces)
        return RnsPolynomial(coeffs, self.basis, is_ntt=is_ntt)

    # -- Execution --------------------------------------------------------------------

    def execute(self, instruction: str, dsts, src_groups,
                constants=None, fan_in: int = 1) -> None:
        """Run one all-bank PIM instruction over every limb.

        ``dsts``/``src_groups`` reference (handle, slot) pairs:
        ``dsts = [(handle, slot), ...]`` and ``src_groups`` is a list of
        such lists, one per PolyGroup phase.  ``constants`` may be a
        per-limb list (one constant per prime, broadcast by the decoder)
        or a list of per-limb lists for compound instructions.
        """
        for limb, modulus in enumerate(self.basis):
            group = self.limb_group(limb)
            round_index = self.limb_round(limb)
            banks = self.device.group_banks(group)
            limb_constants = None
            if constants is not None:
                limb_constants = constants[limb]
                if isinstance(limb_constants, (int, np.integer)):
                    limb_constants = [int(limb_constants)]
            for bank_index, bank in enumerate(banks):
                unit = PimUnit(bank, modulus, self.buffer_entries)
                dst_placements = [
                    handle.placements[group][round_index][bank_index][slot]
                    for handle, slot in dsts]
                src_placements = [
                    [handle.placements[group][round_index][bank_index][slot]
                     for handle, slot in phase]
                    for phase in src_groups]
                unit.execute(instruction, dsts=dst_placements,
                             src_groups=src_placements,
                             constants=limb_constants, fan_in=fan_in)
