"""Anaheim PIM configurations (Table III).

Three evaluated variants: near-bank PIM on the A100's HBM2e, the
custom-HBM alternative with PIM units on the logic die (§VI-D), and
near-bank PIM on the RTX 4090's GDDR6X.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.dram.configs import GDDR6X_4090, HBM2_A100, timing_for
from repro.dram.energy import DEFAULT_ENERGY, DramEnergyModel
from repro.dram.geometry import ELEMENTS_PER_CHUNK, DramGeometry
from repro.dram.timing import DramTiming


class PimVariant(enum.Enum):
    NEAR_BANK = "near-bank"
    CUSTOM_HBM = "custom-HBM"


@dataclass(frozen=True)
class PimConfig:
    """One PIM design point.

    ``banks_per_unit`` distinguishes the variants: near-bank designs put
    one unit beside every bank; custom-HBM shares one logic-die unit
    among several banks, trading peak internal bandwidth for easier
    manufacturing and better ACT/PRE hiding (§VII-B).
    """

    name: str
    variant: PimVariant
    geometry: DramGeometry
    timing: DramTiming
    clock_hz: float
    buffer_entries: int          # B
    banks_per_unit: int
    external_bandwidth: float    # bytes/s of the host GPU
    energy: DramEnergyModel = DEFAULT_ENERGY
    mmac_pj_per_op: float = 0.9
    lanes: int = 8               # MMAC lanes per unit (256-bit datapath)
    #: Average PIM-unit cycles per 256-bit chunk access.  >1 absorbs
    #: data-buffer port conflicts and decode stalls (the buffer has two
    #: read ports and one write port, §VI-A).
    cycles_per_chunk: float = 1.3
    area_mm2_per_die: float = 0.0
    area_fraction: float = 0.0

    @property
    def units(self) -> int:
        return self.geometry.total_banks // self.banks_per_unit

    @property
    def chunk_bytes(self) -> int:
        return ELEMENTS_PER_CHUNK * 4

    @property
    def internal_bandwidth(self) -> float:
        """Aggregate streaming bandwidth with every unit busy (bytes/s)."""
        return self.units * self.chunk_bytes * self.clock_hz

    @property
    def bandwidth_multiplier(self) -> float:
        """Table III "BW incr." — internal over external bandwidth."""
        return self.internal_bandwidth / self.external_bandwidth

    @property
    def mmac_tops_per_die(self) -> float:
        units_per_die = self.geometry.banks_per_die // min(
            self.banks_per_unit, self.geometry.banks_per_die)
        return units_per_die * self.lanes * self.clock_hz / 1e12

    def access_pj_per_bit(self) -> float:
        if self.variant == PimVariant.NEAR_BANK:
            return self.energy.near_bank_pj_per_bit
        return self.energy.logic_die_pj_per_bit


#: A100 80GB + near-bank PIM: 0.194 TOPS/die at 378MHz, B=16, 16x BW.
A100_NEAR_BANK = PimConfig(
    name="A100 near-bank",
    variant=PimVariant.NEAR_BANK,
    geometry=HBM2_A100,
    timing=timing_for(HBM2_A100),
    clock_hz=378e6,
    buffer_entries=16,
    banks_per_unit=1,
    external_bandwidth=1802e9,
    area_mm2_per_die=10.7,
    area_fraction=0.0969,
)

#: A100 80GB + custom-HBM PIM: units on the logic die, one per 8 banks,
#: 756MHz, 4x BW (Table III).
A100_CUSTOM_HBM = PimConfig(
    name="A100 custom-HBM",
    variant=PimVariant.CUSTOM_HBM,
    geometry=HBM2_A100,
    timing=timing_for(HBM2_A100),
    clock_hz=756e6,
    buffer_entries=16,
    banks_per_unit=8,
    external_bandwidth=1802e9,
    area_mm2_per_die=10.9,
    area_fraction=0.0994,
    # Logic-die units are built on a logic process node (§VI-D) and
    # sustain one chunk per cycle without buffer-port stalls.
    cycles_per_chunk=1.0,
)

#: RTX 4090 + near-bank PIM: 0.168 TOPS/die at 656MHz, B=32, 8x BW.
RTX4090_NEAR_BANK = PimConfig(
    name="RTX 4090 near-bank",
    variant=PimVariant.NEAR_BANK,
    geometry=GDDR6X_4090,
    timing=timing_for(GDDR6X_4090),
    clock_hz=656e6,
    buffer_entries=32,
    banks_per_unit=1,
    external_bandwidth=939e9,
    area_mm2_per_die=7.26,
    area_fraction=0.0758,
    # GDDR6X near-bank units see more severe process-node limitations.
    cycles_per_chunk=1.45,
)

PIM_CONFIGS = {
    c.name: c for c in (A100_NEAR_BANK, A100_CUSTOM_HBM, RTX4090_NEAR_BANK)
}


def with_buffer(config: PimConfig, buffer_entries: int) -> PimConfig:
    """Copy of a config with a different data buffer size (Fig. 9 sweep)."""
    from dataclasses import replace
    return replace(config, buffer_entries=buffer_entries)
