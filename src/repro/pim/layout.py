"""Column-partitioning data layout: RowGroups, ColumnGroups, PolyGroups.

Implements §VI-B / Fig. 7: each DRAM row is partitioned into column
groups (CGs) of ``width`` chunks; a polynomial's per-bank slice fills
one CG wrapped across the consecutive rows of a row group (RG).
Related polynomials share a PolyGroup — same rows, different CGs — so
an element-wise op between them touches one row per access phase
instead of one row per polynomial.

``allocate_naive`` provides the ablation layout (Fig. 10 "w/o CP"):
every polynomial contiguously fills whole rows of its own.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.dram.geometry import DramGeometry
from repro.errors import LayoutError


@dataclass(frozen=True)
class PolyPlacement:
    """Where one polynomial's bank slice lives inside a bank."""

    base_row: int
    rows: int
    col_offset: int     # first chunk column of this poly's column group
    width: int          # chunks per row (the CG width)
    chunks: int         # total chunks of the slice

    def location(self, chunk: int) -> tuple:
        """(row, column) of slice chunk ``chunk``."""
        if not 0 <= chunk < self.chunks:
            raise LayoutError(f"chunk {chunk} outside slice of {self.chunks}")
        return (self.base_row + chunk // self.width,
                self.col_offset + chunk % self.width)

    def rows_for_window(self, start: int, stop: int) -> list:
        """Distinct rows covering chunks [start, stop)."""
        first = self.base_row + start // self.width
        last = self.base_row + (stop - 1) // self.width
        return list(range(first, last + 1))

    def stuck_region(self, site: int, bit: int = 12, value: int = 1):
        """A stuck-at fault covering exactly this placement's footprint.

        Scopes a persistent cell fault to the (bank, PolyGroup) region
        the placement occupies — the granularity at which the recovery
        policy quarantines PIM capacity.
        """
        from repro.faults.inject import StuckRegion
        return StuckRegion(site=site, base_row=self.base_row,
                           rows=self.rows, col_offset=self.col_offset,
                           width=self.width, bit=bit, value=value)


@dataclass
class PolyGroup:
    """A set of co-located polynomials (one CG each, shared RG)."""

    placements: list = field(default_factory=list)

    def __getitem__(self, index: int) -> PolyPlacement:
        return self.placements[index]

    def __len__(self) -> int:
        return len(self.placements)


class BankLayout:
    """Static allocator of PolyGroups inside one bank's rows.

    FHE's static dataflow lets the framework preallocate every
    polynomial (§V-C); ``width`` is the column-group width in chunks
    (Fig. 7 uses 8/4/2 for 4/8/16 CGs per row).
    """

    def __init__(self, geometry: DramGeometry, chunks_per_poly: int,
                 width: int, total_rows: int = 64):
        if width < 1 or width > geometry.chunks_per_row:
            raise LayoutError(f"CG width {width} outside row of "
                              f"{geometry.chunks_per_row} chunks")
        self.geometry = geometry
        self.chunks_per_poly = chunks_per_poly
        self.width = width
        self.total_rows = total_rows
        self.next_row = 0

    @property
    def slots_per_row(self) -> int:
        return self.geometry.chunks_per_row // self.width

    @property
    def rows_per_group(self) -> int:
        return math.ceil(self.chunks_per_poly / self.width)

    def _take_rows(self, count: int) -> int:
        if self.next_row + count > self.total_rows:
            raise LayoutError("bank rows exhausted")
        base = self.next_row
        self.next_row += count
        return base

    def allocate(self, poly_count: int) -> PolyGroup:
        """Column-partitioned PolyGroup: shared rows, one CG per poly."""
        if poly_count > self.slots_per_row:
            raise LayoutError(
                f"{poly_count} polys exceed {self.slots_per_row} column "
                "groups per row")
        base = self._take_rows(self.rows_per_group)
        group = PolyGroup()
        for slot in range(poly_count):
            group.placements.append(PolyPlacement(
                base_row=base, rows=self.rows_per_group,
                col_offset=slot * self.width, width=self.width,
                chunks=self.chunks_per_poly))
        return group

    def allocate_naive(self, poly_count: int) -> PolyGroup:
        """Contiguous allocation: each poly fills whole rows of its own
        (the w/o-CP ablation) — accessing k polynomials in lockstep
        ping-pongs between k distinct rows."""
        group = PolyGroup()
        per_row = self.geometry.chunks_per_row
        rows_each = math.ceil(self.chunks_per_poly / per_row)
        for _ in range(poly_count):
            base = self._take_rows(rows_each)
            group.placements.append(PolyPlacement(
                base_row=base, rows=rows_each, col_offset=0,
                width=per_row, chunks=self.chunks_per_poly))
        return group
