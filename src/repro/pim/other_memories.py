"""Anaheim on other DRAM technologies (§VI-D).

"Anaheim is not confined to specific DRAM or PIM architectures...
Anaheim can be applied to DDR, GDDR, and LPDDR memories."  These
configurations model near-bank Anaheim PIM on a DDR5 server platform
and an LPDDR5X mobile SoC, plus a general-purpose UPMEM-style PIM
(§VI-D: "we can also utilize other PIM device types, such as
general-purpose ones, to which the other contributions of ours still
apply").  They are extensions beyond the paper's evaluated set and are
exercised by `tests/pim/test_other_memories.py` and
`examples/design_space_exploration.py`.
"""

from __future__ import annotations

from dataclasses import replace

from repro.dram.energy import DramEnergyModel
from repro.dram.geometry import DramGeometry
from repro.dram.timing import DramTiming
from repro.pim.configs import PimConfig, PimVariant

#: An 8-channel DDR5-5600 server platform: 32 x8 devices (two ranks
#: per channel pair), 32 banks each.
DDR5_SERVER = DramGeometry(
    name="DDR5 x32 (server)",
    die_groups=4,
    dies_per_group=8,
    banks_per_die=32,
)

DDR5_TIMING = DramTiming(name="DDR5", t_rcd=16e-9, t_rp=16e-9, t_ras=32e-9)

#: An LPDDR5X mobile package: 8 dies x 16 banks.
LPDDR5_MOBILE = DramGeometry(
    name="LPDDR5X x8 (mobile)",
    die_groups=2,
    dies_per_group=4,
    banks_per_die=16,
)

LPDDR5_TIMING = DramTiming(name="LPDDR5X", t_rcd=18e-9, t_rp=18e-9,
                           t_ras=42e-9)

#: Near-bank Anaheim on DDR5: modest clocks on a DRAM process, but a
#: lot of banks relative to the narrow external channel — the BW
#: multiplier is the largest of all configurations.
DDR5_NEAR_BANK = PimConfig(
    name="DDR5 near-bank",
    variant=PimVariant.NEAR_BANK,
    geometry=DDR5_SERVER,
    timing=DDR5_TIMING,
    clock_hz=300e6,
    buffer_entries=16,
    banks_per_unit=1,
    external_bandwidth=358e9,       # 8 x DDR5-5600 channels
    cycles_per_chunk=1.3,
)

#: Near-bank Anaheim on LPDDR5X: low clocks, low-power energy profile.
LPDDR5_NEAR_BANK = PimConfig(
    name="LPDDR5X near-bank",
    variant=PimVariant.NEAR_BANK,
    geometry=LPDDR5_MOBILE,
    timing=LPDDR5_TIMING,
    clock_hz=250e6,
    buffer_entries=16,
    banks_per_unit=1,
    external_bandwidth=136e9,       # 8.5 GT/s x 128 bits
    energy=DramEnergyModel(array=0.8, on_die=0.9, tsv=0.0, io=0.9,
                           act_energy=0.5e-9),
    mmac_pj_per_op=0.6,
    cycles_per_chunk=1.3,
)


def general_purpose_pim(base: PimConfig,
                        efficiency: float = 0.25) -> PimConfig:
    """A UPMEM-style general-purpose PIM on the same DRAM.

    General-purpose in-order PIM cores sustain only a fraction of the
    specialized MMAC pipeline's chunk rate ([24], [30], [36] report
    modest gains even against CPUs); ``efficiency`` scales the chunk
    throughput accordingly.  The data-mapping and software-stack
    contributions still apply (§VI-D).
    """
    return replace(
        base,
        name=f"{base.name} (general-purpose)",
        cycles_per_chunk=base.cycles_per_chunk / efficiency,
    )


OTHER_MEMORY_CONFIGS = {
    c.name: c for c in (DDR5_NEAR_BANK, LPDDR5_NEAR_BANK)
}
