"""Functional PIM unit: executes Table II instructions against a bank.

This is the executable counterpart of the analytic executor: data really
lives in :class:`repro.dram.bank.Bank` storage under a
:class:`repro.pim.layout.BankLayout`, every access issues ACT/RD/WR
commands (counted by the bank), operands flow through the
:class:`repro.pim.mmac.MmacArray`, and loop blocking follows Alg. 1 with
chunk granularity ``G = floor(B / buffer_polys)``.

Tests compare both the computed values (against numpy references) and
the command counts (against the analytic :class:`PimExecutor` model).
"""

from __future__ import annotations

import numpy as np

from repro.dram.bank import Bank
from repro.dram.geometry import ELEMENTS_PER_CHUNK
from repro.errors import LayoutError, ParameterError
from repro.pim import isa
from repro.pim.buffer import DataBuffer
from repro.pim.layout import PolyPlacement
from repro.pim.mmac import MmacArray


class PimUnit:
    """One near-bank PIM unit bound to a bank and a prime.

    With a :class:`~repro.faults.inject.FaultInjector` attached, the
    unit's datapath misbehaves per the injector's plan: buffer writes
    and MMAC lane outputs suffer transient bit flips, and any
    :class:`~repro.faults.inject.StuckRegion` registered for ``site``
    overlays its stuck cell on every chunk read from the covered
    (row, column) footprint.
    """

    def __init__(self, bank: Bank, modulus: int, buffer_entries: int,
                 injector=None, site: int = 0):
        self.bank = bank
        self.mmac = MmacArray(modulus, injector=injector)
        self.buffer = DataBuffer(buffer_entries, injector=injector)
        self.buffer_entries = buffer_entries
        self.modulus = modulus
        self.injector = injector
        self.site = site

    # -- Bank access helpers ---------------------------------------------------

    def _activate_rows(self, placements, start: int, stop: int) -> None:
        """Open the row(s) holding chunks [start, stop) of a phase.

        Co-located placements (one PolyGroup) share rows, so the set is
        deduplicated — this is exactly where column partitioning saves
        activations.
        """
        rows = []
        for placement in placements:
            for row in placement.rows_for_window(start, stop):
                if row not in rows:
                    rows.append(row)
        for row in rows:
            self.bank.activate(row)

    def _read_window(self, placement: PolyPlacement, start: int,
                     stop: int) -> np.ndarray:
        injector = self.injector
        out = np.empty((stop - start, ELEMENTS_PER_CHUNK), dtype=np.int64)
        for j in range(start, stop):
            row, col = placement.location(j)
            if self.bank.open_row != row:
                self.bank.activate(row)
            chunk = self.bank.read_chunk(row, col)
            if injector is not None and injector.stuck_regions:
                if injector.apply_stuck_regions(self.site, row, col, chunk):
                    from repro.faults.plan import FaultModel
                    injector.event(FaultModel.PIM_STUCK_AT, "bank.read",
                                   "device", site=self.site,
                                   row=row, col=col)
            out[j - start] = chunk
        return out

    def _write_window(self, placement: PolyPlacement, start: int,
                      data: np.ndarray) -> None:
        for offset, chunk in enumerate(data):
            row, col = placement.location(start + offset)
            if self.bank.open_row != row:
                self.bank.activate(row)
            self.bank.write_chunk(row, col, chunk)

    def _buffer_stage(self, arrays) -> None:
        """Model the arrays passing through the data buffer, enforcing B."""
        slot = 0
        self.buffer.clear()
        for array in arrays:
            for chunk in array:
                if slot >= self.buffer_entries:
                    raise ParameterError(
                        f"buffer overflow: instruction needs more than "
                        f"B={self.buffer_entries} entries")
                self.buffer.write(slot, chunk)
                slot += 1

    # -- Instruction execution ---------------------------------------------------

    def execute(self, name: str, dsts, src_groups, constants=None,
                fan_in: int = 1) -> None:
        """Run one instruction over full polynomial slices.

        ``src_groups`` is a list of placement lists, one per PolyGroup
        phase (matching the ISA's ``reads_by_group``); ``dsts`` are the
        output placements.
        """
        inst = isa.instruction(name)
        expected = inst.scaled_reads(fan_in)
        if tuple(len(g) for g in src_groups) != expected:
            raise ParameterError(
                f"{name} expects source groups {expected}, got "
                f"{tuple(len(g) for g in src_groups)}")
        if len(dsts) != inst.writes:
            raise ParameterError(
                f"{name} writes {inst.writes} polys, got {len(dsts)}")
        granularity = self.buffer_entries // inst.buffer_polys(fan_in)
        if granularity < 1:
            raise ParameterError(
                f"{name}<{fan_in}> needs B >= {inst.min_buffer(fan_in)}")
        # Align loop windows to the column-group width so one iteration
        # touches one row per PolyGroup phase (Fig. 7 / Alg. 1) instead
        # of thrashing the row buffer mid-window.
        widths = [p.width for group in src_groups for p in group]
        widths += [p.width for p in dsts]
        if widths:
            granularity = max(1, min([granularity] + widths))
        chunks = src_groups[0][0].chunks if src_groups else dsts[0].chunks
        handler = _HANDLERS.get(name)
        if handler is None:
            raise ParameterError(f"no functional handler for {name}")
        consts = constants if constants is not None else []
        for start in range(0, chunks, granularity):
            stop = min(start + granularity, chunks)
            loaded = []
            for group in src_groups:
                self._activate_rows(group, start, stop)
                loaded.append([self._read_window(p, start, stop)
                               for p in group])
            if loaded and name != "CAccum":
                # Phase-1 operands transit the buffer (Alg. 1 line 7).
                # CAccum streams every input; only its accumulators
                # occupy buffer entries.
                self._buffer_stage(loaded[0])
            outputs = handler(self.mmac, loaded, consts, fan_in)
            self._activate_rows(dsts, start, stop)
            for placement, data in zip(dsts, outputs):
                self._write_window(placement, start, data)
        self.bank.precharge()


# -- Per-instruction compute semantics (Table II) -----------------------------

def _h_move(mmac, groups, consts, k):
    (a,), = groups
    return [mmac.passthrough(a)]


def _h_neg(mmac, groups, consts, k):
    (a,), = groups
    return [mmac.neg(a)]


def _h_add(mmac, groups, consts, k):
    (a, b), = groups
    return [mmac.add(a, b)]


def _h_sub(mmac, groups, consts, k):
    (a, b), = groups
    return [mmac.sub(a, b)]


def _h_mult(mmac, groups, consts, k):
    (a, b), = groups
    return [mmac.mul(a, b)]


def _h_mac(mmac, groups, consts, k):
    (a, b, c), = groups
    return [mmac.mac(a, b, c)]


def _h_pmult(mmac, groups, consts, k):
    (p,), (a, b) = groups
    return [mmac.mul(a, p), mmac.mul(b, p)]


def _h_pmac(mmac, groups, consts, k):
    (p,), (a, b, c, d) = groups
    return [mmac.mac(a, p, c), mmac.mac(b, p, d)]


def _h_cadd(mmac, groups, consts, k):
    (a,), = groups
    c = np.full_like(a, consts[0])
    return [mmac.add(a, c)]


def _h_csub(mmac, groups, consts, k):
    (a,), = groups
    c = np.full_like(a, consts[0])
    return [mmac.sub(a, c)]


def _h_cmult(mmac, groups, consts, k):
    (a,), = groups
    c = np.full_like(a, consts[0])
    return [mmac.mul(c, a)]


def _h_cmac(mmac, groups, consts, k):
    (a, b), = groups
    c = np.full_like(a, consts[0])
    return [mmac.mac(c, a, b)]


def _h_tensor(mmac, groups, consts, k):
    (a, b, c, d), = groups
    x = mmac.mul(a, c)
    y = mmac.mac(a, d, mmac.mul(b, c))
    z = mmac.mul(b, d)
    return [x, y, z]


def _h_tensor_sq(mmac, groups, consts, k):
    (a, b), = groups
    ab = mmac.mul(a, b)
    return [mmac.mul(a, a), mmac.add(ab, ab), mmac.mul(b, b)]


def _h_mod_down_ep(mmac, groups, consts, k):
    (a, b), = groups
    c = np.full_like(a, consts[0])
    return [mmac.mul(c, mmac.sub(a, b))]


def _h_paccum(mmac, groups, consts, k):
    plaintexts, inputs = groups
    x = np.zeros_like(plaintexts[0])
    y = np.zeros_like(plaintexts[0])
    for i in range(k):
        a, b = inputs[2 * i], inputs[2 * i + 1]
        x = mmac.mac(a, plaintexts[i], x)
        y = mmac.mac(b, plaintexts[i], y)
    return [x, y]


def _h_caccum(mmac, groups, consts, k):
    inputs, = groups
    base = np.full_like(inputs[0], consts[0])
    x = base.copy()
    y = base.copy()
    for i in range(k):
        c = np.full_like(inputs[0], consts[i + 1])
        x = mmac.mac(c, inputs[2 * i], x)
        y = mmac.mac(c, inputs[2 * i + 1], y)
    return [x, y]


_HANDLERS = {
    "Move": _h_move,
    "Neg": _h_neg,
    "Add": _h_add,
    "Sub": _h_sub,
    "Mult": _h_mult,
    "MAC": _h_mac,
    "PMult": _h_pmult,
    "PMAC": _h_pmac,
    "CAdd": _h_cadd,
    "CSub": _h_csub,
    "CMult": _h_cmult,
    "CMAC": _h_cmac,
    "Tensor": _h_tensor,
    "TensorSq": _h_tensor_sq,
    "ModDownEp": _h_mod_down_ep,
    "PAccum": _h_paccum,
    "CAccum": _h_caccum,
}


def store_poly(bank: Bank, placement: PolyPlacement,
               values: np.ndarray) -> None:
    """Write a residue vector into a bank under a placement (test helper)."""
    if values.size != placement.chunks * ELEMENTS_PER_CHUNK:
        raise LayoutError("value count does not match placement")
    chunks = values.reshape(placement.chunks, ELEMENTS_PER_CHUNK)
    for j in range(placement.chunks):
        row, col = placement.location(j)
        if bank.open_row != row:
            bank.activate(row)
        bank.write_chunk(row, col, chunks[j].astype(np.int64))
    bank.precharge()


def load_poly(bank: Bank, placement: PolyPlacement) -> np.ndarray:
    """Read a residue vector back out of a bank (test helper)."""
    out = np.empty((placement.chunks, ELEMENTS_PER_CHUNK), dtype=np.int64)
    for j in range(placement.chunks):
        row, col = placement.location(j)
        if bank.open_row != row:
            bank.activate(row)
        out[j] = bank.read_chunk(row, col)
    bank.precharge()
    return out.reshape(-1)
