"""The PIM unit's B-entry data buffer (§VI-A).

224-bit-wide entries hold one chunk of 28-bit residues each.  The
buffer has two read ports and one write port; the functional model
enforces only the capacity limit (port conflicts are a timing effect,
absorbed by ``cycles_per_chunk`` in the analytic executor).
"""

from __future__ import annotations

import numpy as np

from repro.dram.geometry import ELEMENTS_PER_CHUNK
from repro.errors import ParameterError


class DataBuffer:
    """B entries of one chunk (8 residues) each.

    An optional :class:`~repro.faults.inject.FaultInjector` models soft
    errors in the buffer SRAM: each write may flip one bit of the stored
    chunk, per the injector's ``pim-bitflip-buffer`` rate.
    """

    def __init__(self, entries: int, injector=None):
        if entries < 1:
            raise ParameterError("buffer needs at least one entry")
        self.entries = entries
        self.injector = injector
        self._slots = np.zeros((entries, ELEMENTS_PER_CHUNK), dtype=np.int64)
        self._valid = np.zeros(entries, dtype=bool)
        self.peak_used = 0

    def write(self, index: int, chunk: np.ndarray) -> None:
        if not 0 <= index < self.entries:
            raise ParameterError(
                f"buffer index {index} out of range B={self.entries}")
        self._slots[index] = chunk
        injector = self.injector
        if injector is not None:
            from repro.faults.plan import FaultModel
            if injector.draw(FaultModel.PIM_BITFLIP_BUFFER):
                detail = injector.flip_word(self._slots[index],
                                            FaultModel.PIM_BITFLIP_BUFFER)
                injector.event(FaultModel.PIM_BITFLIP_BUFFER,
                               "buffer.write", "device", **detail)
        self._valid[index] = True
        self.peak_used = max(self.peak_used, int(self._valid.sum()))

    def read(self, index: int) -> np.ndarray:
        if not self._valid[index]:
            raise ParameterError(f"buffer entry {index} read before write")
        return self._slots[index].copy()

    def accumulate(self, index: int, chunk: np.ndarray, modulus: int) -> None:
        """In-place modular accumulation into one entry."""
        current = self.read(index)
        total = current + chunk
        self.write(index, np.where(total >= modulus, total - modulus, total))

    def clear(self) -> None:
        self._valid[:] = False
