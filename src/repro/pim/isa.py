"""The Anaheim PIM instruction set (Table II).

Each descriptor captures what the PIM executor needs to schedule an
instruction: how many source/destination polynomials it touches, how
they split across PolyGroups (distinct row groups → distinct row
activations per loop iteration), how many buffer slots each loop
iteration consumes per chunk of granularity G, and the MMAC work per
element.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError


@dataclass(frozen=True)
class PimInstruction:
    """Static description of one Table II instruction.

    For compound instructions the counts are *per fan-in K*: e.g.
    PAccum⟨K⟩ reads K plaintext polys and 2K input polys and writes 2.
    ``buffer_polys`` is the number of G-chunk buffer slots needed
    concurrently — chunk granularity is ``G = floor(B / buffer_polys)``
    (Alg. 1 uses ``G = B/6`` for PAccum⟨4⟩ : 4 plaintexts + x + y).
    """

    name: str
    #: polynomial reads per iteration, split by PolyGroup phase.
    reads_by_group: tuple
    writes: int
    buffer_polys_fixed: int        # K-independent buffer slots (accumulators)
    buffer_polys_per_k: int        # slots scaling with fan-in K
    ops_per_element: float         # MMAC lane ops per output element
    compound: bool = False
    min_fan_in: int = 1

    def read_polys(self, fan_in: int = 1) -> int:
        return sum(self.scaled_reads(fan_in))

    def scaled_reads(self, fan_in: int = 1) -> tuple:
        if not self.compound:
            return self.reads_by_group
        return tuple(r * fan_in for r in self.reads_by_group)

    def total_polys(self, fan_in: int = 1) -> int:
        return self.read_polys(fan_in) + self.writes

    def buffer_polys(self, fan_in: int = 1) -> int:
        k = fan_in if self.compound else 1
        return self.buffer_polys_fixed + self.buffer_polys_per_k * k

    def row_groups(self, fan_in: int = 1) -> int:
        """Row activations per loop iteration under column partitioning:
        one per PolyGroup phase (reads) plus one for the outputs."""
        return len(self.reads_by_group) + (1 if self.writes else 0)

    def naive_row_groups(self, fan_in: int = 1) -> int:
        """Activations per iteration when every polynomial lives in its
        own rows (the w/o-CP ablation, Fig. 10 / §VI-C)."""
        return self.total_polys(fan_in)

    def min_buffer(self, fan_in: int = 1) -> int:
        """Smallest data buffer B supporting this instruction (G ≥ 1)."""
        return self.buffer_polys(fan_in)

    def widest_group(self, fan_in: int = 1) -> int:
        """Most polynomials sharing one PolyGroup (row capacity limit).

        A DRAM row must hold G chunks of every co-located polynomial
        (Fig. 7), so the usable chunk granularity is also bounded by
        ``chunks_per_row // widest_group``.
        """
        return max(list(self.scaled_reads(fan_in)) + [max(self.writes, 1)])


def _i(name, reads_by_group, writes, fixed, per_k, ops, compound=False):
    return PimInstruction(
        name=name, reads_by_group=tuple(reads_by_group), writes=writes,
        buffer_polys_fixed=fixed, buffer_polys_per_k=per_k,
        ops_per_element=ops, compound=compound)


#: Table II.  Reads are grouped by PolyGroup: e.g. Add reads (a, b)
#: co-located in one PolyGroup — a single row activation serves both.
INSTRUCTIONS = {
    # Basic instructions
    "Move":   _i("Move",   (1,),    1, 2, 0, 0.0),
    "Neg":    _i("Neg",    (1,),    1, 2, 0, 1.0),
    "Add":    _i("Add",    (2,),    1, 3, 0, 1.0),
    "Sub":    _i("Sub",    (2,),    1, 3, 0, 1.0),
    "Mult":   _i("Mult",   (2,),    1, 3, 0, 1.0),
    "MAC":    _i("MAC",    (3,),    1, 4, 0, 1.0),
    "PMult":  _i("PMult",  (1, 2),  2, 5, 0, 1.0),
    "PMAC":   _i("PMAC",   (1, 4),  2, 7, 0, 1.0),
    # Constant instructions (constants broadcast by the decoder)
    "CAdd":   _i("CAdd",   (1,),    1, 2, 0, 1.0),
    "CSub":   _i("CSub",   (1,),    1, 2, 0, 1.0),
    "CMult":  _i("CMult",  (1,),    1, 2, 0, 1.0),
    "CMAC":   _i("CMAC",   (2,),    1, 3, 0, 1.0),
    # Compound instructions
    "Tensor":   _i("Tensor",   (4,),   3, 7, 0, 2.0),
    "TensorSq": _i("TensorSq", (2,),   3, 5, 0, 2.0),
    "ModDownEp": _i("ModDownEp", (2,), 1, 3, 0, 1.0),
    # PAccum buffers the K plaintexts plus the two accumulators
    # (Alg. 1: G = B/6 at K = 4); CAccum's constants ride inside the
    # instruction, so only the two accumulators occupy the buffer.
    "PAccum": _i("PAccum", (1, 2), 2, 2, 1, 1.0, compound=True),
    "CAccum": _i("CAccum", (2,),   2, 2, 0, 1.0, compound=True),
}


def instruction(name: str) -> PimInstruction:
    inst = INSTRUCTIONS.get(name)
    if inst is None:
        raise ParameterError(f"unknown PIM instruction {name!r}")
    return inst
