"""Fig. 4a: Gantt charts of a hoisted linear transform (D=4, K=8).

Three executions of the same transform: baseline GPU, a hypothetical
GPU with quadrupled DRAM bandwidth, and Anaheim's PIM offloading.
Reproduces the §V-A observations: extra bandwidth (or PIM) accelerates
the element-wise ops dramatically while ModSwitch barely moves.
"""

import dataclasses

from conftest import banner

from repro.analysis.reporting import format_table
from repro.core.framework import AnaheimFramework
from repro.core.gantt import render_gantt
from repro.core.trace import OpCategory
from repro.gpu.configs import A100_80GB
from repro.params import paper_params
from repro.pim.configs import A100_NEAR_BANK
from repro.workloads.linear_transform_trace import hoisted_block

PARAMS = paper_params()
ROTATIONS = 8   # the paper's running example (Fig. 5, K = 8)


def run_three_ways():
    blocks = hoisted_block(PARAMS.level_count, PARAMS.aux_count,
                           PARAMS.dnum, rotations=ROTATIONS)
    quad_bw = dataclasses.replace(
        A100_80GB, name="A100 4x BW", dram_bandwidth=4 * 1802e9)
    runs = {
        "w/o PIM": AnaheimFramework(A100_80GB, keep_segments=True),
        "4x BW DRAM": AnaheimFramework(quad_bw, keep_segments=True),
        "PIM": AnaheimFramework(A100_80GB, A100_NEAR_BANK,
                                keep_segments=True),
    }
    return {label: fw.run(blocks, PARAMS.degree, label=label).report
            for label, fw in runs.items()}


def test_fig4a_linear_transform_gantt(benchmark):
    results = benchmark(run_three_ways)
    banner("Fig. 4a — linear transform (D=4, K=8): Gantt charts")
    for label in ("w/o PIM", "4x BW DRAM", "PIM"):
        print()
        print(render_gantt(results[label], width=90))
    rows = []
    for label, report in results.items():
        rows.append([
            label, f"{report.total_time * 1e6:.0f}us",
            f"{report.time_by_category.get(OpCategory.ELEMENTWISE, 0) * 1e6:.0f}us",
            f"{(report.time_by_category.get(OpCategory.NTT, 0) + report.time_by_category.get(OpCategory.BCONV, 0)) * 1e6:.0f}us",
            f"{report.time_by_category.get(OpCategory.AUTOMORPHISM, 0) * 1e6:.0f}us",
        ])
    print()
    print(format_table(
        ["config", "total", "elem-wise", "ModSwitch", "autom."], rows))

    base = results["w/o PIM"]
    quad = results["4x BW DRAM"]
    pim = results["PIM"]

    def ew(report):
        return report.time_by_category.get(OpCategory.ELEMENTWISE, 1e-12)

    def modswitch(report):
        return (report.time_by_category.get(OpCategory.NTT, 0.0)
                + report.time_by_category.get(OpCategory.BCONV, 0.0))

    # §V-A: 4x bandwidth makes element-wise ops ~2.8x faster but
    # ModSwitch variants barely improve.
    ew_gain = ew(base) / ew(quad)
    ms_gain = modswitch(base) / modswitch(quad)
    print(f"4x BW: elem-wise {ew_gain:.2f}x faster (paper: 2.84x), "
          f"ModSwitch {ms_gain:.2f}x (paper: ~1x)")
    assert ew_gain > 2.0
    assert ms_gain < 1.35
    # PIM obtains similar element-wise gains without external bandwidth.
    pim_ew_gain = ew(base) / ew(pim)
    print(f"PIM: elem-wise {pim_ew_gain:.2f}x faster, "
          f"total {base.total_time / pim.total_time:.2f}x")
    assert pim_ew_gain > 2.0
    assert pim.total_time < base.total_time
    # The PIM run actually uses the PIM device in one large block.
    assert pim.pim_time > 0
    assert pim.transitions >= 2
