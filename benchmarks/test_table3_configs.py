"""Table III: the tested GPU and Anaheim PIM configurations.

Regenerates the derived rows of Table III (bandwidth-increase factors,
MMAC throughput, area fractions) from the config objects, so any drift
between the model and the paper's configuration table is caught here.
"""

from conftest import banner

from repro.analysis.reporting import format_table
from repro.gpu.configs import A100_80GB, RTX_4090
from repro.pim.configs import PIM_CONFIGS


def gather():
    rows = []
    gpus = {"A100 near-bank": A100_80GB, "A100 custom-HBM": A100_80GB,
            "RTX 4090 near-bank": RTX_4090}
    for name, config in PIM_CONFIGS.items():
        gpu = gpus[name]
        rows.append({
            "name": name,
            "compute_tops": gpu.int_mult_tops,
            "bandwidth": gpu.dram_bandwidth,
            "capacity": gpu.dram_capacity,
            "banks": config.geometry.total_banks,
            "units": config.units,
            "bw_mult": config.bandwidth_multiplier,
            "buffer": config.buffer_entries,
            "area_pct": config.area_fraction * 100,
        })
    return rows


def test_table3_configurations(benchmark):
    rows = benchmark(gather)
    banner("Table III — tested GPUs and Anaheim configurations")
    print(format_table(
        ["PIM config", "GPU TOPS", "DRAM BW", "capacity", "banks",
         "PIM units", "BW incr.", "B", "area %"],
        [[r["name"], r["compute_tops"], f"{r['bandwidth'] / 1e9:.0f}GB/s",
          f"{r['capacity'] / 1e9:.0f}GB", r["banks"], r["units"],
          f"{r['bw_mult']:.1f}x", r["buffer"], f"{r['area_pct']:.1f}%"]
         for r in rows]))
    by_name = {r["name"]: r for r in rows}
    # Paper Table III values.
    assert abs(by_name["A100 near-bank"]["bw_mult"] - 16) < 2.5
    assert abs(by_name["A100 custom-HBM"]["bw_mult"] - 4) < 1.0
    assert abs(by_name["RTX 4090 near-bank"]["bw_mult"] - 8) < 1.5
    assert by_name["A100 near-bank"]["banks"] == 2560
    assert by_name["RTX 4090 near-bank"]["banks"] == 384
    for r in rows:
        assert r["area_pct"] < 10.0   # "within 10% of the DRAM dies"
