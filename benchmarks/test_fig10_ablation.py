"""Fig. 10: sensitivity study — fusion passes and the data layout.

Incrementally enables BasicFuse / AutFuse on both the GPU-only baseline
(plus its ExtraFuse pass) and Anaheim, and runs Anaheim without the
column-partitioning layout (w/o CP), reproducing §VII-D:

* fusion reduces element-wise time more on PIM (ACT/PRE amortization)
  than on the GPU;
* automorphism fusion adds a further 1.01-1.15x;
* dropping column partitioning makes element-wise ops ~2.2x slower,
  nullifying the benefits.
"""

from conftest import banner

from repro.analysis.reporting import format_table
from repro.core.framework import AnaheimFramework
from repro.core.fusion import (GPU_ALL_FUSE, GPU_BASE, GPU_BASIC_FUSE,
                               GPU_EXTRA_FUSE, PIM_BASE, PIM_BASIC_FUSE,
                               PIM_FULL, PIM_NO_CP)
from repro.core.trace import OpCategory
from repro.gpu.configs import A100_80GB
from repro.params import paper_params
from repro.pim.configs import A100_NEAR_BANK
from repro.workloads.bootstrap_trace import bootstrap_blocks

PARAMS = paper_params()

GPU_LEVELS = [("Base", GPU_BASE), ("+BasicFuse", GPU_BASIC_FUSE),
              ("+ExtraFuse", GPU_EXTRA_FUSE), ("+AutFuse", GPU_ALL_FUSE)]
PIM_LEVELS = [("PIM-Base", PIM_BASE), ("+BasicFuse", PIM_BASIC_FUSE),
              ("+AutFuse", PIM_FULL), ("w/o CP", PIM_NO_CP)]


def run_ablation():
    blocks, _ = bootstrap_blocks(PARAMS)
    framework = AnaheimFramework(A100_80GB, A100_NEAR_BANK)
    results = {}
    for label, options in GPU_LEVELS:
        results[("gpu", label)] = framework.run(
            blocks, PARAMS.degree, options, label=label).report
    for label, options in PIM_LEVELS:
        results[("pim", label)] = framework.run(
            blocks, PARAMS.degree, options, label=label).report
    # §V-B automorphism reordering ablation: the original op order keeps
    # per-rotation automorphisms between KeyMult and PMULT.
    unordered, _ = bootstrap_blocks(PARAMS, reorder=False)
    results[("pim", "w/o Reorder")] = framework.run(
        unordered, PARAMS.degree, PIM_FULL, label="w/o Reorder").report
    return results


def _elementwise_time(report):
    return report.time_by_category.get(OpCategory.ELEMENTWISE, 0.0)


def test_fig10_fusion_and_layout_ablation(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    banner("Fig. 10 — fusion and data-layout ablation (Boot, A100)")
    rows = []
    for (device, label), report in results.items():
        rows.append([
            "GPU w/o PIM" if device == "gpu" else "Anaheim", label,
            f"{report.total_time * 1e3:.1f}ms",
            f"{_elementwise_time(report) * 1e3:.1f}ms",
            f"{report.edp:.3f}"])
    print(format_table(
        ["configuration", "level", "total", "elem-wise time", "EDP (J*s)"],
        rows))

    gpu_base = results[("gpu", "Base")]
    gpu_fused = results[("gpu", "+ExtraFuse")]
    pim_base = results[("pim", "PIM-Base")]
    pim_fused = results[("pim", "+BasicFuse")]
    pim_full = results[("pim", "+AutFuse")]
    pim_nocp = results[("pim", "w/o CP")]

    gpu_ew_cut = 1 - _elementwise_time(gpu_fused) / _elementwise_time(gpu_base)
    pim_ew_cut = 1 - _elementwise_time(pim_fused) / _elementwise_time(pim_base)
    print(f"element-wise time cut by fusion: GPU {gpu_ew_cut * 100:.0f}% "
          "(paper: 27-37%), "
          f"Anaheim {pim_ew_cut * 100:.0f}% (paper: 40-57%)")
    # §VII-D: fusion helps Anaheim more (it also amortizes ACT/PRE).
    assert pim_ew_cut > gpu_ew_cut
    assert 0.10 < gpu_ew_cut < 0.60
    assert 0.25 < pim_ew_cut < 0.70

    aut_gain = results[("pim", "+BasicFuse")].total_time / pim_full.total_time
    print(f"automorphism fusion gain: {aut_gain:.3f}x (paper: 1.01-1.09x)")
    assert 1.0 <= aut_gain < 1.2

    # Without column partitioning, element-wise times inflate ~2.2x and
    # the benefits largely disappear.
    nocp_ratio = _elementwise_time(pim_nocp) / _elementwise_time(pim_full)
    print(f"w/o CP element-wise slowdown: {nocp_ratio:.2f}x (paper: 2.24x)")
    assert 1.6 < nocp_ratio < 3.5
    assert pim_nocp.total_time > pim_full.total_time

    # §V-B: the automorphism reordering removes the per-rotation
    # extended-modulus permutations (2K extra reads and writes each).
    pim_noreorder = results[("pim", "w/o Reorder")]
    aut = lambda r: r.time_by_category.get(OpCategory.AUTOMORPHISM, 0.0)
    reorder_gain = pim_noreorder.total_time / pim_full.total_time
    print(f"automorphism reordering gain: {reorder_gain:.3f}x total, "
          f"{aut(pim_noreorder) / aut(pim_full):.2f}x automorphism time")
    assert aut(pim_noreorder) > aut(pim_full)
    assert reorder_gain > 1.0
