"""Fig. 2b: T_boot,eff breakdown vs decomposition number D.

Sweeps D over {2, 3, 4, 6} at N = 2^16 and log PQ < 1623 on both GPU
models, reproducing the dominance of element-wise ops (45-48% on A100,
68-69% on RTX 4090) and the out-of-memory failure of large D on the
RTX 4090's 24GB.
"""

import pytest
from conftest import banner

from repro.analysis.reporting import format_table
from repro.core.allocator import plan_memory
from repro.core.framework import AnaheimFramework
from repro.core.trace import OpCategory
from repro.gpu.configs import A100_80GB, RTX_4090
from repro.params import params_for_dnum
from repro.workloads.bootstrap_trace import bootstrap_blocks, t_boot_eff

DNUMS = (2, 3, 4, 6)


def sweep():
    results = {}
    for gpu in (A100_80GB, RTX_4090):
        framework = AnaheimFramework(gpu)
        for dnum in DNUMS:
            params = params_for_dnum(dnum)
            blocks, meta = bootstrap_blocks(params)
            memory = plan_memory(params, evk_count=meta.evk_count,
                                 plaintext_limbs=meta.plaintext_limbs)
            if not memory.fits(gpu.dram_capacity):
                results[(gpu.name, dnum)] = ("OoM", meta, memory)
                continue
            report = framework.run(blocks, params.degree,
                                   label=f"D={dnum}").report
            results[(gpu.name, dnum)] = (report, meta, memory)
    return results


def test_fig2b_tboot_vs_dnum(benchmark):
    results = benchmark(sweep)
    banner("Fig. 2b — T_boot,eff breakdown vs decomposition number D")
    rows = []
    for gpu_name in (A100_80GB.name, RTX_4090.name):
        for dnum in DNUMS:
            report, meta, memory = results[(gpu_name, dnum)]
            if report == "OoM":
                rows.append([gpu_name, dnum, "OoM", "-", "-", "-",
                             f"{memory.total_bytes / 1e9:.0f}GB"])
                continue
            tbe = t_boot_eff(report.total_time, meta)
            rows.append([
                gpu_name, dnum, f"{tbe * 1e3:.2f}ms",
                f"{meta.l_eff}",
                f"{report.category_share(OpCategory.ELEMENTWISE) * 100:.0f}%",
                f"{(report.category_share(OpCategory.NTT) + report.category_share(OpCategory.BCONV)) * 100:.0f}%",
                f"{memory.total_bytes / 1e9:.0f}GB"])
    print(format_table(
        ["GPU", "D", "T_boot,eff", "L_eff", "elem-wise", "ModSwitch",
         "memory"], rows))

    # Shape assertions: element-wise dominates on both GPUs, more on 4090.
    a100_d4 = results[(A100_80GB.name, 4)][0]
    rtx_share = None
    for dnum in DNUMS:
        report, _, _ = results[(RTX_4090.name, dnum)]
        if report != "OoM":
            rtx_share = report.category_share(OpCategory.ELEMENTWISE)
            a100_share = results[(A100_80GB.name, dnum)][0].category_share(
                OpCategory.ELEMENTWISE)
            assert rtx_share > a100_share
    a100_share_d4 = a100_d4.category_share(OpCategory.ELEMENTWISE)
    print(f"A100 D=4 element-wise share: {a100_share_d4 * 100:.1f}% "
          "(paper: 45-48%)")
    assert 0.38 <= a100_share_d4 <= 0.58
    assert rtx_share is not None and 0.58 <= rtx_share <= 0.80

    # Large D runs out of memory on the 24GB RTX 4090 (paper: OoM bars).
    assert results[(RTX_4090.name, 6)][0] == "OoM"
    assert results[(A100_80GB.name, 6)][0] != "OoM"

    # T_boot,eff has an interior optimum in D on the A100 (paper: D=3-4).
    tbes = {}
    for dnum in DNUMS:
        report, meta, _ = results[(A100_80GB.name, dnum)]
        tbes[dnum] = t_boot_eff(report.total_time, meta)
    best = min(tbes, key=tbes.get)
    print(f"best D on A100: {best} (paper default: 4)")
    assert best in (3, 4)
