"""Shared fixtures for the figure/table reproduction benchmarks.

Each benchmark module regenerates one table or figure of the paper's
evaluation (§VII) and prints the corresponding rows; run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest

from repro.core.framework import AnaheimFramework
from repro.gpu.configs import A100_80GB, RTX_4090
from repro.params import paper_params
from repro.pim.configs import (A100_CUSTOM_HBM, A100_NEAR_BANK,
                               RTX4090_NEAR_BANK)

#: The three evaluated PIM configurations (Table III).
PIM_SETUPS = [
    ("A100 near-bank", A100_80GB, A100_NEAR_BANK),
    ("A100 custom-HBM", A100_80GB, A100_CUSTOM_HBM),
    ("RTX 4090 near-bank", RTX_4090, RTX4090_NEAR_BANK),
]


@pytest.fixture(scope="session")
def params():
    return paper_params()


@pytest.fixture(scope="session")
def a100_framework():
    return AnaheimFramework(A100_80GB, A100_NEAR_BANK)


@pytest.fixture(scope="session")
def rtx4090_framework():
    return AnaheimFramework(RTX_4090, RTX4090_NEAR_BANK)


def banner(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
