"""Table V: Boot/HELR/ResNet20/Sort latencies vs prior accelerators.

Combines this reproduction's modeled Anaheim latencies with the
published latencies of the prior GPU/FPGA/ASIC systems (quoted from
Table V itself), reproducing the paper's positioning: Anaheim clearly
beats prior GPU and FPGA work, is comparable to GME and BTS, and trails
the large ASICs (SHARP is ~8.9-17.2x faster).
"""

from conftest import banner

from repro.analysis.reporting import format_seconds, format_table
from repro.core.framework import AnaheimFramework
from repro.gpu.configs import A100_80GB, RTX_4090
from repro.params import paper_params
from repro.pim.configs import (A100_CUSTOM_HBM, A100_NEAR_BANK,
                               RTX4090_NEAR_BANK)
from repro.workloads import applications as apps

PARAMS = paper_params()

#: Published latencies (seconds) from Table V of the paper.
PRIOR_WORK = {
    "100x (V100)": {"Boot": 0.328, "HELR": 0.775},
    "TensorFHE (A100)": {"Boot": 0.250, "HELR": 1.007, "ResNet20": 4.94},
    "GME (MI100*)": {"Boot": 0.0336, "HELR": 0.0545, "ResNet20": 0.98},
    "FAB (FPGA)": {"Boot": 0.477, "HELR": 0.103},
    "Poseidon (FPGA)": {"Boot": 0.128, "HELR": 0.0729, "ResNet20": 2.66},
    "CraterLake (ASIC)": {"Boot": 0.00633, "HELR": 0.00381,
                          "ResNet20": 0.32},
    "BTS (ASIC)": {"Boot": 0.0286, "HELR": 0.0284, "ResNet20": 1.91,
                   "Sort": 15.6},
    "ARK (ASIC)": {"Boot": 0.00352, "HELR": 0.00742, "ResNet20": 0.13,
                   "Sort": 1.99},
    "SHARP (ASIC)": {"Boot": 0.00312, "HELR": 0.00253, "ResNet20": 0.10,
                     "Sort": 1.38},
}

WORKLOAD_NAMES = ("Boot", "HELR", "ResNet20", "Sort")


def run_anaheim():
    setups = [
        ("Anaheim (A100)", A100_80GB, A100_NEAR_BANK),
        ("  custom-HBM", A100_80GB, A100_CUSTOM_HBM),
        ("Anaheim (RTX 4090)", RTX_4090, RTX4090_NEAR_BANK),
    ]
    modeled = {}
    for label, gpu, pim in setups:
        framework = AnaheimFramework(gpu, pim)
        for wl_name in WORKLOAD_NAMES:
            workload = apps.build(wl_name, PARAMS)
            if not workload.memory.fits(gpu.dram_capacity):
                modeled[(label, wl_name)] = "OoM"
                continue
            result = framework.run(workload.blocks, PARAMS.degree,
                                   label=wl_name)
            modeled[(label, wl_name)] = result.report.total_time
    return modeled


def test_table5_cross_accelerator_comparison(benchmark):
    modeled = benchmark.pedantic(run_anaheim, rounds=1, iterations=1)
    banner("Table V — execution time vs prior accelerators")
    rows = []
    for proposal, values in PRIOR_WORK.items():
        rows.append([proposal] + [
            format_seconds(values[w]) if w in values else "-"
            for w in WORKLOAD_NAMES])
    for label in ("Anaheim (A100)", "  custom-HBM", "Anaheim (RTX 4090)"):
        cells = []
        for w in WORKLOAD_NAMES:
            value = modeled[(label, w)]
            cells.append("OoM" if value == "OoM" else format_seconds(value))
        rows.append([label + " [modeled]"] + cells)
    print(format_table(["proposal"] + list(WORKLOAD_NAMES), rows))

    a100_boot = modeled[("Anaheim (A100)", "Boot")]
    a100_r20 = modeled[("Anaheim (A100)", "ResNet20")]
    a100_sort = modeled[("Anaheim (A100)", "Sort")]
    # Paper Table V: Anaheim (A100) Boot 29.3ms, R20 1.02s, Sort 12.3s.
    assert 0.020 < a100_boot < 0.040
    assert 0.7 < a100_r20 < 1.4
    assert 7.0 < a100_sort < 16.0
    # Anaheim beats prior GPU and FPGA work by a large margin (§VIII-A).
    assert a100_boot < PRIOR_WORK["TensorFHE (A100)"]["Boot"] / 3
    assert a100_boot < PRIOR_WORK["FAB (FPGA)"]["Boot"] / 3
    # Comparable to BTS/GME.
    assert 0.5 < a100_boot / PRIOR_WORK["BTS (ASIC)"]["Boot"] < 1.5
    # SHARP remains ~8.9-17.2x faster (§VIII-A).
    sharp_gap = a100_boot / PRIOR_WORK["SHARP (ASIC)"]["Boot"]
    print(f"SHARP vs Anaheim Boot gap: {sharp_gap:.1f}x "
          "(paper: 8.9-17.2x across workloads)")
    assert 5 < sharp_gap < 20
    # ResNet20 is OoM on the RTX 4090 (Table V footnote).
    assert modeled[("Anaheim (RTX 4090)", "ResNet20")] == "OoM"
