"""Fig. 9: PIM instruction microbenchmark vs data buffer size B.

Sweeps B from 4 to 64 for every Table II instruction on the three PIM
configurations, reproducing: compound instructions unsupported at small
B, performance saturating with growing B (faster for custom-HBM), and
PAccum/CAccum achieving the largest speedups (1.65-10.33x range at the
default B).
"""

from conftest import PIM_SETUPS, banner

from repro.analysis.reporting import format_table
from repro.core.trace import PimKernel
from repro.gpu.kernels import elementwise_kernel
from repro.gpu.model import GpuModel
from repro.params import paper_params
from repro.pim import isa
from repro.pim.configs import with_buffer
from repro.pim.executor import PimExecutor

PARAMS = paper_params()
LIMBS = PARAMS.level_count + PARAMS.aux_count
BUFFERS = (4, 8, 16, 32, 64)
INSTRUCTIONS = ("Move", "Add", "Mult", "MAC", "PMult", "PMAC", "CMult",
                "Tensor", "ModDownEp", "PAccum", "CAccum")


def _gpu_baseline_time(gpu, instruction, fan_in):
    """Fused GPU kernel moving the same operand set."""
    inst = isa.instruction(instruction)
    polys = inst.total_polys(fan_in)
    kernel = elementwise_kernel(
        instruction, LIMBS, PARAMS.degree, reads=polys - inst.writes,
        writes=inst.writes, streaming_reads=polys - inst.writes)
    model = GpuModel(gpu)
    cost = model.kernel_cost(kernel)
    return cost.time, model.kernel_energy(kernel, cost)


def sweep():
    results = {}
    for setup_name, gpu, pim in PIM_SETUPS:
        for name in INSTRUCTIONS:
            inst = isa.instruction(name)
            fan_in = 4 if inst.compound else 1
            gpu_time, gpu_energy = _gpu_baseline_time(gpu, name, fan_in)
            for b in BUFFERS:
                executor = PimExecutor(with_buffer(pim, b))
                if not executor.supports(name, fan_in):
                    results[(setup_name, name, b)] = None
                    continue
                kernel = PimKernel(name=name, instruction=name,
                                   limbs=LIMBS, degree=PARAMS.degree,
                                   fan_in=fan_in)
                cost = executor.cost(kernel)
                results[(setup_name, name, b)] = (
                    gpu_time / cost.time, gpu_energy / cost.energy)
    return results


def test_fig9_pim_instruction_microbenchmark(benchmark):
    results = benchmark(sweep)
    banner("Fig. 9 — PIM instruction speedups vs buffer size B")
    for setup_name, _, pim in PIM_SETUPS:
        rows = []
        for name in INSTRUCTIONS:
            cells = []
            for b in BUFFERS:
                cell = results[(setup_name, name, b)]
                cells.append("n/a" if cell is None else f"{cell[0]:.2f}x")
            rows.append([name] + cells)
        print()
        print(format_table(
            ["instruction"] + [f"B={b}" for b in BUFFERS], rows,
            title=f"{setup_name} (default B={pim.buffer_entries})"))

    # --- Shape assertions. ---
    # Compound instructions unsupported at B=4.
    assert results[("A100 near-bank", "PAccum", 4)] is None
    assert results[("A100 near-bank", "Tensor", 4)] is None
    assert results[("A100 near-bank", "CAccum", 4)] is not None
    # Speedups increase with B and saturate.
    for setup_name, _, _ in PIM_SETUPS:
        series = [results[(setup_name, "PAccum", b)][0]
                  for b in (8, 16, 32, 64)]
        assert series == sorted(series)
        early = series[1] / series[0]
        late = series[3] / series[2]
        assert late < early          # saturation
    # Defaults: speedups and energy gains in the paper's reported range.
    default_b = {"A100 near-bank": 16, "A100 custom-HBM": 16,
                 "RTX 4090 near-bank": 32}
    speedups = []
    energies = []
    for setup_name, _, _ in PIM_SETUPS:
        for name in INSTRUCTIONS:
            cell = results[(setup_name, name, default_b[setup_name])]
            if cell is not None:
                speedups.append(cell[0])
                energies.append(cell[1])
    print(f"\ndefault-B speedup range: {min(speedups):.2f}-"
          f"{max(speedups):.2f}x (paper: 1.65-10.33x)")
    print(f"default-B energy-efficiency range: {min(energies):.2f}-"
          f"{max(energies):.2f}x (paper: 2.63-17.39x)")
    assert 1.3 < min(speedups) < 4.5
    assert 6.0 < max(speedups) < 16.0
    assert max(energies) < 25.0
    # PAccum/CAccum achieve the largest speedups per configuration.
    for setup_name, _, _ in PIM_SETUPS:
        b = default_b[setup_name]
        best = max(INSTRUCTIONS,
                   key=lambda n: (results[(setup_name, n, b)][0]
                                  if results[(setup_name, n, b)] else 0.0))
        assert best in ("PAccum", "CAccum")
