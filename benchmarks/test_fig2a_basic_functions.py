"""Fig. 2a: execution-time breakdown of the basic CKKS functions.

HADD / PMULT / HMULT / HROT on the A100 80GB model under three GPU
library profiles (Phantom, 100x, Cheddar), reproducing Cheddar's
1.5-1.8x HMULT/HROT advantage and the library-insensitive element-wise
functions.
"""

from conftest import banner

from repro.analysis.reporting import format_table
from repro.core.framework import AnaheimFramework
from repro.core.trace import OpCategory
from repro.gpu.configs import A100_80GB, LIBRARIES
from repro.params import paper_params
from repro.workloads.basic_functions import BASIC_FUNCTIONS

PARAMS = paper_params()


def run_breakdowns():
    results = {}
    for lib_name, library in LIBRARIES.items():
        framework = AnaheimFramework(A100_80GB, library=library)
        for fn_name, factory in BASIC_FUNCTIONS.items():
            blocks = factory(PARAMS.level_count, PARAMS.aux_count,
                             PARAMS.dnum)
            report = framework.run(blocks, PARAMS.degree,
                                   label=f"{fn_name}/{lib_name}").report
            results[(fn_name, lib_name)] = report
    return results


def test_fig2a_basic_function_breakdown(benchmark):
    results = benchmark(run_breakdowns)
    banner("Fig. 2a — basic CKKS functions on A100 80GB, three libraries")
    rows = []
    for fn_name in BASIC_FUNCTIONS:
        for lib_name in LIBRARIES:
            r = results[(fn_name, lib_name)]
            rows.append([
                fn_name, lib_name, f"{r.total_time * 1e6:.1f}",
                f"{r.category_share(OpCategory.NTT) * 100:.0f}%",
                f"{r.category_share(OpCategory.BCONV) * 100:.0f}%",
                f"{r.category_share(OpCategory.ELEMENTWISE) * 100:.0f}%",
                f"{r.category_share(OpCategory.AUTOMORPHISM) * 100:.0f}%",
            ])
    print(format_table(
        ["function", "library", "time (us)", "(I)NTT", "BConv",
         "elem-wise", "autom."], rows))

    def t(fn, lib):
        return results[(fn, lib)].total_time

    hmult_vs_phantom = t("HMULT", "Phantom") / t("HMULT", "Cheddar")
    hmult_vs_100x = t("HMULT", "100x") / t("HMULT", "Cheddar")
    hrot_vs_phantom = t("HROT", "Phantom") / t("HROT", "Cheddar")
    print(f"Cheddar HMULT speedup vs Phantom: {hmult_vs_phantom:.2f}x "
          "(paper: 1.79x)")
    print(f"Cheddar HMULT speedup vs 100x:    {hmult_vs_100x:.2f}x "
          "(paper: 1.54x)")
    print(f"Cheddar HROT speedup vs Phantom:  {hrot_vs_phantom:.2f}x "
          "(paper: 1.73x)")
    # Shape: Cheddar wins on key-switching functions ...
    assert 1.2 < hmult_vs_phantom < 2.2
    assert 1.2 < hmult_vs_100x < 2.0
    # ... but element-wise functions are library-insensitive (Fig. 2a).
    assert t("HADD", "Phantom") / t("HADD", "Cheddar") < 1.15
    assert t("PMULT", "Phantom") / t("PMULT", "Cheddar") < 1.15
    # HMULT/HROT are dominated by ModSwitch, not element-wise ops.
    hrot = results[("HROT", "Cheddar")]
    assert (hrot.category_share(OpCategory.NTT)
            + hrot.category_share(OpCategory.BCONV)) > 0.4
