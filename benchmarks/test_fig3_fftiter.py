"""Fig. 3: T_boot,eff vs fftIter (the linear-transform decomposition depth).

Higher fftIter shrinks each DFT factor (fewer diagonals per factor,
lower element-wise share) but burns more levels, dropping L_eff; the
default mix of three and four achieves the best T_boot,eff, and
fftIter > 4 degrades it (§IV-C).
"""

from conftest import banner

from repro.analysis.reporting import format_table
from repro.core.framework import AnaheimFramework
from repro.core.trace import OpCategory
from repro.gpu.configs import A100_80GB
from repro.params import paper_params
from repro.workloads.bootstrap_trace import bootstrap_blocks, t_boot_eff

PARAMS = paper_params()
FFT_ITERS = (3.0, 3.5, 4.0, 5.0, 6.0)


def sweep():
    framework = AnaheimFramework(A100_80GB)
    results = {}
    for fft in FFT_ITERS:
        blocks, meta = bootstrap_blocks(PARAMS, fft_iter_cts=fft,
                                        fft_iter_stc=fft)
        report = framework.run(blocks, PARAMS.degree,
                               label=f"fftIter={fft}").report
        results[fft] = (report, meta)
    return results


def test_fig3_fftiter_tradeoff(benchmark):
    results = benchmark(sweep)
    banner("Fig. 3 — T_boot,eff vs fftIter (A100, D=4)")
    rows = []
    for fft in FFT_ITERS:
        report, meta = results[fft]
        label = "3/4 mix (default)" if fft == 3.5 else f"{fft:g}"
        rows.append([
            label, f"{report.total_time * 1e3:.1f}ms", meta.l_eff,
            f"{t_boot_eff(report.total_time, meta) * 1e3:.2f}ms",
            f"{report.category_share(OpCategory.ELEMENTWISE) * 100:.0f}%"])
    print(format_table(
        ["fftIter", "boot time", "L_eff", "T_boot,eff", "elem-wise"],
        rows))

    tbe = {fft: t_boot_eff(r.total_time, m)
           for fft, (r, m) in results.items()}
    # Each fftIter increase drops L_eff (§IV-C).
    effs = [results[f][1].l_eff for f in FFT_ITERS]
    assert effs == sorted(effs, reverse=True)
    # Raising fftIter reduces the element-wise share slightly...
    ew3 = results[3.0][0].category_share(OpCategory.ELEMENTWISE)
    ew6 = results[6.0][0].category_share(OpCategory.ELEMENTWISE)
    assert ew6 < ew3
    # ...but degrades T_boot,eff beyond fftIter = 4 (Fig. 3).
    assert tbe[5.0] > tbe[4.0] or tbe[5.0] > tbe[3.5]
    assert tbe[6.0] > tbe[3.5]
    best = min(tbe, key=tbe.get)
    print(f"best fftIter: {best:g} (paper: 3/4 mix)")
    assert best in (3.0, 3.5, 4.0)
