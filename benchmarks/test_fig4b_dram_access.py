"""Fig. 4b: bootstrapping DRAM access volume and energy, with/without PIM.

Reproduces the §V-D analysis: element-wise ops account for the large
majority of baseline GPU DRAM accesses; PIM converts them into internal
accesses, cutting GPU-side traffic by several x (6.15x in the paper)
and total DRAM access energy by ~2.9x.  The "ideal" bar assumes
unlimited cache with MinKS (compulsory evk/plaintext misses only).
"""

from conftest import banner

from repro.analysis.reporting import format_bytes, format_table
from repro.core.framework import AnaheimFramework
from repro.core.trace import OpCategory
from repro.dram.energy import DEFAULT_ENERGY
from repro.gpu.configs import A100_80GB
from repro.gpu.model import GpuModel
from repro.params import paper_params
from repro.pim.configs import A100_NEAR_BANK
from repro.workloads.bootstrap_trace import bootstrap_blocks

PARAMS = paper_params()


def measure():
    blocks, meta = bootstrap_blocks(PARAMS)
    framework = AnaheimFramework(A100_80GB, A100_NEAR_BANK)
    runs = framework.compare(blocks, PARAMS.degree, label="boot")
    base = runs["gpu"].report
    pim = runs["pim"].report

    # Element-wise share of baseline DRAM accesses.
    model = GpuModel(A100_80GB)
    cache = framework.cache
    from repro.core.fusion import GPU_ALL_FUSE, lower
    trace = lower(blocks, PARAMS.degree, GPU_ALL_FUSE)
    ew_dram = sum(cache.dram_bytes(k) for k in trace.gpu_kernels()
                  if k.category == OpCategory.ELEMENTWISE)

    # Ideal: unlimited cache, MinKS evks, compulsory misses only.
    _, minks_meta = bootstrap_blocks(PARAMS, method="minks")
    minks_evks = max(1, minks_meta.evk_count // 4)
    ideal_bytes = (minks_evks * PARAMS.evk_bytes()
                   + minks_meta.plaintext_limbs * PARAMS.degree * 4)

    # Per-bit access-energy accounting, as the paper does for this
    # figure ("derived DRAM access energy using per-bit access energy
    # values estimated based on [62]").
    pj = DEFAULT_ENERGY
    energy = {
        "w/o PIM": base.gpu_dram_bytes * 8 * pj.gpu_access_pj_per_bit * 1e-12,
        "PIM": (pim.gpu_dram_bytes * 8 * pj.gpu_access_pj_per_bit
                + pim.pim_internal_bytes * 8 * pj.near_bank_pj_per_bit
                ) * 1e-12,
    }
    return base, pim, ew_dram, ideal_bytes, energy


def test_fig4b_dram_access_and_energy(benchmark):
    base, pim, ew_dram, ideal_bytes, energy = benchmark(measure)
    banner("Fig. 4b — bootstrapping DRAM access and energy (A100)")
    rows = [
        ["w/o PIM (GPU-side)", format_bytes(base.gpu_dram_bytes),
         f"{energy['w/o PIM']:.3f}J"],
        ["PIM (GPU-side)", format_bytes(pim.gpu_dram_bytes), "-"],
        ["PIM (PIM-side internal)", format_bytes(pim.pim_internal_bytes),
         "-"],
        ["PIM (total energy)", "-", f"{energy['PIM']:.3f}J"],
        ["ideal (unlimited cache + MinKS)", format_bytes(ideal_bytes), "-"],
    ]
    print(format_table(["configuration", "DRAM access", "energy"], rows))
    ew_share = ew_dram / base.gpu_dram_bytes
    traffic_gain = base.gpu_dram_bytes / pim.gpu_dram_bytes
    energy_gain = energy["w/o PIM"] / energy["PIM"]
    print(f"element-wise share of baseline DRAM access: "
          f"{ew_share * 100:.1f}% (paper: 83.7%)")
    print(f"GPU-side DRAM access reduction: {traffic_gain:.2f}x "
          f"(paper: 6.15x)")
    print(f"vs ideal: {pim.gpu_dram_bytes / ideal_bytes:.2f}x "
          f"(paper: 1.86x)")
    print(f"DRAM access energy reduction: {energy_gain:.2f}x "
          f"(paper: 2.87x)")

    # Shape assertions.  The energy reduction is directionally right but
    # smaller than the paper's 2.87x: our L2 model credits the GPU
    # baseline with element-wise operand reuse that the paper's
    # simulation does not, while PIM always re-reads full operand
    # footprints from the banks (see EXPERIMENTS.md).
    assert ew_share > 0.6
    assert traffic_gain > 2.0
    assert pim.gpu_dram_bytes > ideal_bytes          # ideal is a floor
    assert 1.05 < energy_gain < 5.0
    # PIM-side access grows slightly over what the GPU did for the same
    # ops (§V-D: "converted into PIM-side access and slightly increases").
    assert pim.pim_internal_bytes > 0.5 * ew_dram
