"""Fig. 8: workload speedup, energy efficiency, and EDP improvements.

Six FHE workloads x three PIM configurations (Table III), reporting the
paper's headline result: 1.62-3.14x EDP improvements, with HELR gaining
least and ResNet20/ResNet18-AESPA OoM-failing on the RTX 4090.
"""

import pytest
from conftest import PIM_SETUPS, banner

from repro.analysis.reporting import format_seconds, format_table
from repro.core.framework import AnaheimFramework
from repro.params import paper_params
from repro.workloads import applications as apps
from repro.workloads.metrics import edp_improvement, geomean

PARAMS = paper_params()


def run_matrix():
    results = {}
    workloads = {name: apps.build(name, PARAMS) for name in apps.WORKLOADS}
    for setup_name, gpu, pim in PIM_SETUPS:
        framework = AnaheimFramework(gpu, pim)
        for wl_name, workload in workloads.items():
            if not workload.memory.fits(gpu.dram_capacity):
                results[(setup_name, wl_name)] = "OoM"
                continue
            runs = framework.compare(workload.blocks, PARAMS.degree,
                                     label=wl_name)
            results[(setup_name, wl_name)] = (runs["gpu"].report,
                                              runs["pim"].report)
    return results


def test_fig8_workload_improvements(benchmark):
    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    banner("Fig. 8 — workload speedup / energy efficiency / EDP")
    rows = []
    stats = {}
    for setup_name, _, _ in PIM_SETUPS:
        for wl_name in apps.WORKLOADS:
            cell = results[(setup_name, wl_name)]
            if cell == "OoM":
                rows.append([setup_name, wl_name, "OoM", "-", "-", "-"])
                continue
            base, anaheim = cell
            sp = base.total_time / anaheim.total_time
            eff = base.energy / anaheim.energy
            edp = edp_improvement(base, anaheim)
            stats.setdefault(setup_name, []).append((wl_name, sp, eff, edp))
            rows.append([setup_name, wl_name,
                         format_seconds(anaheim.total_time),
                         f"{sp:.2f}x", f"{eff:.2f}x", f"{edp:.2f}x"])
    print(format_table(
        ["PIM config", "workload", "Anaheim time", "speedup",
         "energy eff.", "EDP gain"], rows))

    for setup_name, entries in stats.items():
        speeds = [s for _, s, _, _ in entries]
        edps = [e for _, _, _, e in entries]
        print(f"{setup_name}: speedups {min(speeds):.2f}-{max(speeds):.2f}x, "
              f"EDP {min(edps):.2f}-{max(edps):.2f}x "
              f"(geomean {geomean(edps):.2f}x)")

    # --- Shape assertions against the paper's bands. ---
    # A100 near-bank: speedups 1.24-1.74x (we allow a little slack).
    a100 = dict((w, (s, e, d)) for w, s, e, d in stats["A100 near-bank"])
    for name, (sp, eff, edp) in a100.items():
        assert 1.1 < sp < 1.9, f"{name}: {sp}"
        assert eff > 1.0
        assert 1.4 < edp < 3.3
    # HELR gains least (§VII-B: small-scale bootstrapping).
    assert min(a100, key=lambda n: a100[n][2]) == "HELR"
    # Custom-HBM: slightly lower speedups than near-bank on the A100.
    custom = dict((w, s) for w, s, _, _ in stats["A100 custom-HBM"])
    near = dict((w, s) for w, s, _, _ in stats["A100 near-bank"])
    for name in custom:
        assert custom[name] <= near[name] + 0.02
    # RTX 4090: ResNet20 and ResNet18 out of memory (Fig. 8 note).
    assert results[("RTX 4090 near-bank", "ResNet20")] == "OoM"
    assert results[("RTX 4090 near-bank", "ResNet18-AESPA")] == "OoM"
    # Boot latency comparable to Table V's 29.3ms on the A100.
    boot_time = results[("A100 near-bank", "Boot")][1].total_time
    assert 0.020 < boot_time < 0.040
