"""Fig. 2c: T_boot,eff with MinKS vs hoisting vs neither (D = 4).

Reproduces the §III-C finding: on GPUs, hoisting clearly beats MinKS
and the unoptimized baseline (MinKS "hardly results in speedups"), and
under MinKS the element-wise share falls back to HMULT/HROT-like
levels.
"""

from conftest import banner

from repro.analysis.reporting import format_table
from repro.core.framework import AnaheimFramework
from repro.core.trace import OpCategory
from repro.gpu.configs import A100_80GB
from repro.params import paper_params
from repro.workloads.bootstrap_trace import bootstrap_blocks, t_boot_eff

PARAMS = paper_params()


def run_methods():
    framework = AnaheimFramework(A100_80GB)
    results = {}
    for method, label in (("base", "Base"), ("minks", "MinKS"),
                          ("hoist", "Hoist")):
        blocks, meta = bootstrap_blocks(PARAMS, method=method)
        report = framework.run(blocks, PARAMS.degree, label=label).report
        results[label] = (report, meta)
    return results


def test_fig2c_minks_vs_hoisting(benchmark):
    results = benchmark(run_methods)
    banner("Fig. 2c — T_boot,eff: Base vs MinKS vs Hoist (A100, D=4)")
    rows = []
    for label in ("Base", "MinKS", "Hoist"):
        report, meta = results[label]
        rows.append([
            label,
            f"{t_boot_eff(report.total_time, meta) * 1e3:.2f}ms",
            f"{report.category_share(OpCategory.ELEMENTWISE) * 100:.0f}%",
            f"{report.category_share(OpCategory.NTT) * 100:.0f}%",
            f"{report.category_share(OpCategory.BCONV) * 100:.0f}%",
        ])
    print(format_table(
        ["method", "T_boot,eff", "elem-wise", "(I)NTT", "BConv"], rows))

    base, _ = results["Base"]
    minks, _ = results["MinKS"]
    hoist, _ = results["Hoist"]
    # MinKS hardly helps on GPUs (§IV-B) ...
    assert abs(minks.total_time - base.total_time) / base.total_time < 0.05
    # ... while hoisting is clearly faster.  (Our BSGS-structured
    # transforms hoist only the baby rotations, so the model's gap is
    # smaller than the paper's 2.47x NTT reduction implies.)
    assert hoist.total_time < 0.92 * base.total_time
    # Hoisting raises the element-wise share (§IV-B); without it the
    # share drops toward the HMULT/HROT level (~28% in the paper).
    ew_hoist = hoist.category_share(OpCategory.ELEMENTWISE)
    ew_minks = minks.category_share(OpCategory.ELEMENTWISE)
    print(f"elem-wise share: hoist {ew_hoist * 100:.0f}% vs "
          f"MinKS {ew_minks * 100:.0f}% (paper: ~46% vs ~28%)")
    assert ew_hoist > ew_minks
    assert 0.18 < ew_minks < 0.48
