"""Fig. 1 (table): linear-transform algorithm comparison for CoeffToSlot.

Reproduces the evk/plaintext footprints and the (I)NTT op counts of the
Base / Hoisting / MinKS strategies for the CoeffToSlot transform
collection, including hoisting's 2-3x (I)NTT reduction and MinKS's 4x
evk reduction.
"""

from conftest import banner

from repro.analysis.reporting import format_bytes, format_table
from repro.params import paper_params
from repro.workloads.bootstrap_trace import factor_diagonals
from repro.workloads.linear_transform_trace import (count_ntt_limbs,
                                                    transform_blocks)

PARAMS = paper_params()
FFT_ITER = 3.5
FACTORS = 4


def coeff_to_slot_stats():
    """Per-method totals for the CoeffToSlot transform collection."""
    diagonals = factor_diagonals(PARAMS.slot_count, FACTORS)
    rows = {}
    limbs = PARAMS.level_count
    for method in ("base", "hoist", "minks"):
        evk_bytes = 0
        pt_bytes = 0
        ntt = 0
        evk_counts = 0
        level = limbs
        for _ in range(FACTORS):
            blocks, stats = transform_blocks(
                level, PARAMS.aux_count, PARAMS.dnum, diagonals,
                method=method)
            ntt += count_ntt_limbs(blocks, PARAMS.degree)
            evk_bytes += stats.evk_bytes(PARAMS.degree, level,
                                         PARAMS.aux_count, PARAMS.dnum)
            pt_bytes += stats.plaintext_bytes(PARAMS.degree)
            evk_counts += stats.evk_count
            level -= 2
        rows[method] = {
            "evk_count": evk_counts,
            "evk_bytes": evk_bytes,
            "pt_bytes": pt_bytes,
            "ntt_limbs": ntt,
        }
    return rows


def test_fig1_linear_transform_table(benchmark):
    rows = benchmark(coeff_to_slot_stats)
    banner("Fig. 1 (table) — CoeffToSlot: Base vs Hoisting vs MinKS")
    table = []
    for method in ("base", "hoist", "minks"):
        r = rows[method]
        table.append([method, r["evk_count"], format_bytes(r["evk_bytes"]),
                      format_bytes(r["pt_bytes"]), r["ntt_limbs"]])
    print(format_table(
        ["method", "#evk", "evk bytes", "plaintext bytes", "(I)NTT limbs"],
        table))
    ntt_reduction = rows["base"]["ntt_limbs"] / rows["hoist"]["ntt_limbs"]
    evk_reduction = rows["base"]["evk_count"] / rows["minks"]["evk_count"]
    print(f"hoisting (I)NTT reduction: {ntt_reduction:.2f}x "
          "(paper: 2.47x)")
    print(f"MinKS evk reduction: {evk_reduction:.0f}x (paper: 4x)")
    # Shape assertions.
    assert 1.5 < ntt_reduction < 4.0
    assert 3 <= evk_reduction <= 8
    assert rows["hoist"]["pt_bytes"] > rows["base"]["pt_bytes"]
    assert rows["minks"]["ntt_limbs"] == rows["base"]["ntt_limbs"]
