"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--workload", "Boot"])
        assert args.gpu == "a100"
        assert args.pim == "near-bank"
        assert args.library == "Cheddar"

    def test_bad_workload_rejected(self, capsys):
        # Unknown workloads are a clean one-line error (exit 1), not an
        # argparse usage dump or a traceback.
        assert main(["run", "--workload", "Nope"]) == 1
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "unknown workload 'Nope'" in err
        assert "Boot" in err


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("Boot", "HELR", "Sort", "RNN", "ResNet20"):
            assert name in out

    def test_run_with_pim(self, capsys):
        assert main(["run", "--workload", "Boot", "--breakdown"]) == 0
        out = capsys.readouterr().out
        assert "Anaheim" in out
        assert "EDP gain" in out
        assert "Element-wise" in out

    def test_run_gpu_only(self, capsys):
        assert main(["run", "--workload", "HELR", "--pim", "none"]) == 0
        out = capsys.readouterr().out
        assert "HELR" in out

    def test_run_oom(self, capsys):
        code = main(["run", "--workload", "ResNet20", "--gpu", "rtx4090"])
        assert code == 1
        assert "OoM" in capsys.readouterr().out

    def test_gantt(self, capsys):
        assert main(["gantt", "--rotations", "4", "--width", "60"]) == 0
        out = capsys.readouterr().out
        assert "GPU |" in out
        assert "PIM |" in out

    def test_microbench(self, capsys):
        assert main(["microbench", "--buffer", "8"]) == 0
        out = capsys.readouterr().out
        assert "PAccum" in out
        assert "unsupported" not in out.split("PAccum")[0]

    def test_microbench_small_buffer_marks_unsupported(self, capsys):
        assert main(["microbench", "--buffer", "4"]) == 0
        assert "unsupported" in capsys.readouterr().out


class TestObservabilityFlags:
    def test_run_json_is_parseable(self, capsys):
        assert main(["run", "--workload", "HELR", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["workload"] == "HELR"
        assert doc["anaheim"]["total_time"] > 0
        assert doc["baseline"]["total_time"] > doc["anaheim"]["total_time"]
        assert doc["edp_gain"] > 1.0

    def test_run_gpu_only_json(self, capsys):
        assert main(["run", "--workload", "HELR", "--pim", "none",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["pim"] is None
        assert doc["report"]["pim_time"] == 0.0

    def test_run_trace_out_writes_chrome_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        assert main(["run", "--workload", "HELR", "--trace-out",
                     str(path)]) == 0
        doc = json.loads(path.read_text())
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert events
        assert all("ts" in e and "dur" in e for e in events)
        # Both the GPU-baseline (pid 0) and Anaheim (pid 1) schedules.
        assert {e["pid"] for e in events} == {0, 1}
        assert {e["tid"] for e in events if e["pid"] == 1} == {1, 2}

    def test_run_manifest_has_provenance(self, tmp_path):
        path = tmp_path / "manifest.json"
        assert main(["run", "--workload", "HELR", "--manifest",
                     str(path)]) == 0
        doc = json.loads(path.read_text())
        assert doc["config"]["gpu"]["name"] == "A100 80GB"
        assert doc["report"]["energy"] > 0
        assert "baseline_report" in doc

    def test_gantt_json_and_trace(self, capsys, tmp_path):
        path = tmp_path / "gantt.json"
        assert main(["gantt", "--rotations", "4", "--json",
                     "--trace-out", str(path)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["report"]["segments"]
        assert json.loads(path.read_text())["traceEvents"]

    def test_unwritable_trace_path_errors_cleanly(self, tmp_path):
        with pytest.raises(SystemExit) as err:
            main(["gantt", "--rotations", "2", "--trace-out",
                  str(tmp_path / "no" / "such" / "dir" / "t.json")])
        assert "cannot write trace" in str(err.value)

    def test_microbench_json(self, capsys):
        assert main(["microbench", "--buffer", "16", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        names = {r["instruction"] for r in doc["instructions"]}
        assert "PAccum" in names
        assert all(r["time"] > 0 for r in doc["instructions"]
                   if r["supported"])


class TestBench:
    def test_write_then_check_passes(self, capsys, tmp_path):
        assert main(["bench", "--workload", "HELR", "--dir",
                     str(tmp_path)]) == 0
        assert (tmp_path / "BENCH_HELR.json").exists()
        assert main(["bench", "--workload", "HELR", "--dir", str(tmp_path),
                     "--check"]) == 0
        assert "within" in capsys.readouterr().out

    def test_perturbed_baseline_fails_check(self, capsys, tmp_path):
        assert main(["bench", "--workload", "HELR", "--dir",
                     str(tmp_path)]) == 0
        path = tmp_path / "BENCH_HELR.json"
        doc = json.loads(path.read_text())
        doc["metrics"]["total_time"] *= 1.10
        path.write_text(json.dumps(doc))
        assert main(["bench", "--workload", "HELR", "--dir", str(tmp_path),
                     "--check"]) == 1
        assert "total_time" in capsys.readouterr().out

    def test_loose_tolerance_accepts_perturbation(self, tmp_path):
        assert main(["bench", "--workload", "HELR", "--dir",
                     str(tmp_path)]) == 0
        path = tmp_path / "BENCH_HELR.json"
        doc = json.loads(path.read_text())
        doc["metrics"]["total_time"] *= 1.05
        path.write_text(json.dumps(doc))
        assert main(["bench", "--workload", "HELR", "--dir", str(tmp_path),
                     "--check", "--tolerance", "0.2"]) == 0

    def test_check_without_baseline_errors(self, capsys, tmp_path):
        assert main(["bench", "--workload", "HELR", "--dir", str(tmp_path),
                     "--check"]) == 2
        assert "no baseline" in capsys.readouterr().out


class TestFunctionalBench:
    def test_write_then_check(self, capsys, tmp_path):
        assert main(["bench", "--workload", "functional", "--dir",
                     str(tmp_path), "--repeats", "1"]) == 0
        doc = json.loads((tmp_path / "BENCH_functional.json").read_text())
        metrics = doc["metrics"]
        assert metrics["ntt_batch_speedup"] > 1.0
        assert metrics["bootstrap_s"] > 0
        assert metrics["key_switch_s"] > 0
        assert doc["counters"]["ckks.batch_ntt.forward"] > 0
        assert doc["precision_max_err"] < 5e-3
        # Wall clock is noisy; the check plumbing is what's under test.
        assert main(["bench", "--workload", "functional", "--dir",
                     str(tmp_path), "--repeats", "1",
                     "--check", "--tolerance", "10.0"]) == 0
        assert "within" in capsys.readouterr().out

    def test_profile_surfaces_engine_counters(self, capsys):
        assert main(["profile", "--workload", "functional"]) == 0
        out = capsys.readouterr().out
        assert "ckks.batch_ntt.forward" in out
        assert "ckks.bconv.batched" in out
        assert "NTT batch speedup" in out


class TestFaultsCommand:
    def test_analytic_gate_passes(self, capsys):
        assert main(["faults", "--seeds", "0", "--layer", "analytic"]) == 0
        out = capsys.readouterr().out
        assert "gate: PASS" in out
        assert "analytic" in out

    def test_json_output_parseable(self, capsys):
        assert main(["faults", "--seeds", "0", "--layer", "analytic",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["gate"]["passed"]
        assert doc["analytic"][0]["summary"]["coverage"] == 1.0
        assert doc["analytic"][0]["overhead"] < 0.10

    def test_write_then_check_round_trip(self, capsys, tmp_path):
        assert main(["faults", "--seeds", "0", "--layer", "analytic",
                     "--dir", str(tmp_path), "--write-baseline"]) == 0
        assert (tmp_path / "BENCH_faults.json").exists()
        assert main(["faults", "--seeds", "0", "--layer", "analytic",
                     "--dir", str(tmp_path), "--check"]) == 0
        assert "within" in capsys.readouterr().out

    def test_check_without_baseline_exits_2(self, capsys, tmp_path):
        assert main(["faults", "--seeds", "0", "--layer", "analytic",
                     "--dir", str(tmp_path), "--check"]) == 2
        assert "no baseline" in capsys.readouterr().out

    def test_corrupt_baseline_is_one_line_error(self, capsys, tmp_path):
        (tmp_path / "BENCH_faults.json").write_text("{not json")
        assert main(["faults", "--seeds", "0", "--layer", "analytic",
                     "--dir", str(tmp_path), "--check"]) == 1
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "malformed JSON" in err

    def test_manifest_artifact(self, tmp_path):
        path = tmp_path / "campaign.json"
        assert main(["faults", "--seeds", "0", "--layer", "analytic",
                     "--manifest", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert doc["gate"]["passed"]

    def test_run_with_fault_seed_reports_summary(self, capsys):
        assert main(["run", "--workload", "HELR", "--fault-seed", "3",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        summary = doc["anaheim"]["fault_summary"]
        assert summary["undetected"] == 0
        assert summary["unrecovered"] == 0
        assert summary["plan_digest"]


class TestProfile:
    def test_profile_prints_span_tree(self, capsys):
        assert main(["profile", "--workload", "HELR"]) == 0
        out = capsys.readouterr().out
        assert "framework.run" in out
        assert "framework.schedule" in out
        assert "dispatch.pim.elementwise" in out
        assert "scheduler.kernels.gpu" in out
        assert "self" in out  # profile columns

    def test_profile_trace_out(self, capsys, tmp_path):
        path = tmp_path / "profile.json"
        assert main(["profile", "--workload", "HELR", "--pim", "none",
                     "--trace-out", str(path)]) == 0
        doc = json.loads(path.read_text())
        names = {e.get("name") for e in doc["traceEvents"]}
        assert "framework.run" in names
