"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--workload", "Boot"])
        assert args.gpu == "a100"
        assert args.pim == "near-bank"
        assert args.library == "Cheddar"

    def test_bad_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "Nope"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("Boot", "HELR", "Sort", "RNN", "ResNet20"):
            assert name in out

    def test_run_with_pim(self, capsys):
        assert main(["run", "--workload", "Boot", "--breakdown"]) == 0
        out = capsys.readouterr().out
        assert "Anaheim" in out
        assert "EDP gain" in out
        assert "Element-wise" in out

    def test_run_gpu_only(self, capsys):
        assert main(["run", "--workload", "HELR", "--pim", "none"]) == 0
        out = capsys.readouterr().out
        assert "HELR" in out

    def test_run_oom(self, capsys):
        code = main(["run", "--workload", "ResNet20", "--gpu", "rtx4090"])
        assert code == 1
        assert "OoM" in capsys.readouterr().out

    def test_gantt(self, capsys):
        assert main(["gantt", "--rotations", "4", "--width", "60"]) == 0
        out = capsys.readouterr().out
        assert "GPU |" in out
        assert "PIM |" in out

    def test_microbench(self, capsys):
        assert main(["microbench", "--buffer", "8"]) == 0
        out = capsys.readouterr().out
        assert "PAccum" in out
        assert "unsupported" not in out.split("PAccum")[0]

    def test_microbench_small_buffer_marks_unsupported(self, capsys):
        assert main(["microbench", "--buffer", "4"]) == 0
        assert "unsupported" in capsys.readouterr().out
