"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--workload", "Boot"])
        assert args.gpu == "a100"
        assert args.pim == "near-bank"
        assert args.library == "Cheddar"

    def test_bad_workload_rejected(self, capsys):
        # Unknown workloads are a clean one-line error (exit 1), not an
        # argparse usage dump or a traceback.
        assert main(["run", "--workload", "Nope"]) == 1
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "unknown workload 'Nope'" in err
        assert "Boot" in err


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("Boot", "HELR", "Sort", "RNN", "ResNet20"):
            assert name in out

    def test_run_with_pim(self, capsys):
        assert main(["run", "--workload", "Boot", "--breakdown"]) == 0
        out = capsys.readouterr().out
        assert "Anaheim" in out
        assert "EDP gain" in out
        assert "Element-wise" in out

    def test_run_gpu_only(self, capsys):
        assert main(["run", "--workload", "HELR", "--pim", "none"]) == 0
        out = capsys.readouterr().out
        assert "HELR" in out

    def test_run_oom(self, capsys):
        code = main(["run", "--workload", "ResNet20", "--gpu", "rtx4090"])
        assert code == 1
        assert "OoM" in capsys.readouterr().out

    def test_gantt(self, capsys):
        assert main(["gantt", "--rotations", "4", "--width", "60"]) == 0
        out = capsys.readouterr().out
        assert "GPU |" in out
        assert "PIM |" in out

    def test_microbench(self, capsys):
        assert main(["microbench", "--buffer", "8"]) == 0
        out = capsys.readouterr().out
        assert "PAccum" in out
        assert "unsupported" not in out.split("PAccum")[0]

    def test_microbench_small_buffer_marks_unsupported(self, capsys):
        assert main(["microbench", "--buffer", "4"]) == 0
        assert "unsupported" in capsys.readouterr().out


class TestObservabilityFlags:
    def test_run_json_is_parseable(self, capsys):
        assert main(["run", "--workload", "HELR", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["workload"] == "HELR"
        assert doc["anaheim"]["total_time"] > 0
        assert doc["baseline"]["total_time"] > doc["anaheim"]["total_time"]
        assert doc["edp_gain"] > 1.0

    def test_run_gpu_only_json(self, capsys):
        assert main(["run", "--workload", "HELR", "--pim", "none",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["pim"] is None
        assert doc["report"]["pim_time"] == 0.0

    def test_run_trace_out_writes_chrome_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        assert main(["run", "--workload", "HELR", "--trace-out",
                     str(path)]) == 0
        doc = json.loads(path.read_text())
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert events
        assert all("ts" in e and "dur" in e for e in events)
        # Both the GPU-baseline (pid 0) and Anaheim (pid 1) schedules.
        assert {e["pid"] for e in events} == {0, 1}
        assert {e["tid"] for e in events if e["pid"] == 1} == {1, 2}

    def test_run_manifest_has_provenance(self, tmp_path):
        path = tmp_path / "manifest.json"
        assert main(["run", "--workload", "HELR", "--manifest",
                     str(path)]) == 0
        doc = json.loads(path.read_text())
        assert doc["config"]["gpu"]["name"] == "A100 80GB"
        assert doc["report"]["energy"] > 0
        assert "baseline_report" in doc

    def test_gantt_json_and_trace(self, capsys, tmp_path):
        path = tmp_path / "gantt.json"
        assert main(["gantt", "--rotations", "4", "--json",
                     "--trace-out", str(path)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["report"]["segments"]
        assert json.loads(path.read_text())["traceEvents"]

    def test_unwritable_trace_path_errors_cleanly(self, tmp_path):
        with pytest.raises(SystemExit) as err:
            main(["gantt", "--rotations", "2", "--trace-out",
                  str(tmp_path / "no" / "such" / "dir" / "t.json")])
        assert "cannot write trace" in str(err.value)

    def test_microbench_json(self, capsys):
        assert main(["microbench", "--buffer", "16", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        names = {r["instruction"] for r in doc["instructions"]}
        assert "PAccum" in names
        assert all(r["time"] > 0 for r in doc["instructions"]
                   if r["supported"])


class TestBench:
    def test_write_then_check_passes(self, capsys, tmp_path):
        assert main(["bench", "--workload", "HELR", "--dir",
                     str(tmp_path)]) == 0
        assert (tmp_path / "BENCH_HELR.json").exists()
        assert main(["bench", "--workload", "HELR", "--dir", str(tmp_path),
                     "--check"]) == 0
        assert "within" in capsys.readouterr().out

    def test_perturbed_baseline_fails_check(self, capsys, tmp_path):
        assert main(["bench", "--workload", "HELR", "--dir",
                     str(tmp_path)]) == 0
        path = tmp_path / "BENCH_HELR.json"
        doc = json.loads(path.read_text())
        doc["metrics"]["total_time"] *= 1.10
        path.write_text(json.dumps(doc))
        assert main(["bench", "--workload", "HELR", "--dir", str(tmp_path),
                     "--check"]) == 1
        assert "total_time" in capsys.readouterr().out

    def test_loose_tolerance_accepts_perturbation(self, tmp_path):
        assert main(["bench", "--workload", "HELR", "--dir",
                     str(tmp_path)]) == 0
        path = tmp_path / "BENCH_HELR.json"
        doc = json.loads(path.read_text())
        doc["metrics"]["total_time"] *= 1.05
        path.write_text(json.dumps(doc))
        assert main(["bench", "--workload", "HELR", "--dir", str(tmp_path),
                     "--check", "--tolerance", "0.2"]) == 0

    def test_check_without_baseline_errors(self, capsys, tmp_path):
        assert main(["bench", "--workload", "HELR", "--dir", str(tmp_path),
                     "--check"]) == 2
        assert "no baseline" in capsys.readouterr().out


class TestFunctionalBench:
    def test_write_then_check(self, capsys, tmp_path):
        assert main(["bench", "--workload", "functional", "--dir",
                     str(tmp_path), "--repeats", "1"]) == 0
        doc = json.loads((tmp_path / "BENCH_functional.json").read_text())
        metrics = doc["metrics"]
        assert metrics["ntt_batch_speedup"] > 1.0
        assert metrics["bootstrap_s"] > 0
        assert metrics["key_switch_s"] > 0
        assert doc["counters"]["ckks.batch_ntt.forward"] > 0
        assert doc["precision_max_err"] < 5e-3
        # Wall clock is noisy; the check plumbing is what's under test.
        assert main(["bench", "--workload", "functional", "--dir",
                     str(tmp_path), "--repeats", "1",
                     "--check", "--tolerance", "10.0"]) == 0
        assert "within" in capsys.readouterr().out

    def test_profile_surfaces_engine_counters(self, capsys):
        assert main(["profile", "--workload", "functional"]) == 0
        out = capsys.readouterr().out
        assert "ckks.batch_ntt.forward" in out
        assert "ckks.bconv.batched" in out
        assert "NTT batch speedup" in out


class TestFaultsCommand:
    def test_analytic_gate_passes(self, capsys):
        assert main(["faults", "--seeds", "0", "--layer", "analytic"]) == 0
        out = capsys.readouterr().out
        assert "gate: PASS" in out
        assert "analytic" in out

    def test_json_output_parseable(self, capsys):
        assert main(["faults", "--seeds", "0", "--layer", "analytic",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["gate"]["passed"]
        assert doc["analytic"][0]["summary"]["coverage"] == 1.0
        assert doc["analytic"][0]["overhead"] < 0.10

    def test_write_then_check_round_trip(self, capsys, tmp_path):
        assert main(["faults", "--seeds", "0", "--layer", "analytic",
                     "--dir", str(tmp_path), "--write-baseline"]) == 0
        assert (tmp_path / "BENCH_faults.json").exists()
        assert main(["faults", "--seeds", "0", "--layer", "analytic",
                     "--dir", str(tmp_path), "--check"]) == 0
        assert "within" in capsys.readouterr().out

    def test_check_without_baseline_exits_2(self, capsys, tmp_path):
        assert main(["faults", "--seeds", "0", "--layer", "analytic",
                     "--dir", str(tmp_path), "--check"]) == 2
        assert "no baseline" in capsys.readouterr().out

    def test_corrupt_baseline_is_one_line_error(self, capsys, tmp_path):
        (tmp_path / "BENCH_faults.json").write_text("{not json")
        assert main(["faults", "--seeds", "0", "--layer", "analytic",
                     "--dir", str(tmp_path), "--check"]) == 1
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "malformed JSON" in err

    def test_manifest_artifact(self, tmp_path):
        path = tmp_path / "campaign.json"
        assert main(["faults", "--seeds", "0", "--layer", "analytic",
                     "--manifest", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert doc["gate"]["passed"]

    def test_run_with_fault_seed_reports_summary(self, capsys):
        assert main(["run", "--workload", "HELR", "--fault-seed", "3",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        summary = doc["anaheim"]["fault_summary"]
        assert summary["undetected"] == 0
        assert summary["unrecovered"] == 0
        assert summary["plan_digest"]


class TestProfile:
    def test_profile_prints_span_tree(self, capsys):
        assert main(["profile", "--workload", "HELR"]) == 0
        out = capsys.readouterr().out
        assert "framework.run" in out
        assert "framework.schedule" in out
        assert "dispatch.pim.elementwise" in out
        assert "scheduler.kernels.gpu" in out
        assert "self" in out  # profile columns

    def test_profile_trace_out(self, capsys, tmp_path):
        path = tmp_path / "profile.json"
        assert main(["profile", "--workload", "HELR", "--pim", "none",
                     "--trace-out", str(path)]) == 0
        doc = json.loads(path.read_text())
        names = {e.get("name") for e in doc["traceEvents"]}
        assert "framework.run" in names


class TestMetricsCommand:
    def test_smoke_gates(self, capsys):
        assert main(["metrics", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "metrics smoke: PASS" in out
        assert "accounting error" in out

    def test_prometheus_export_validates(self, capsys):
        from repro.obs.metrics import parse_prometheus
        assert main(["metrics", "--workload", "HELR"]) == 0
        parsed = parse_prometheus(capsys.readouterr().out)
        assert parsed["types"]["anaheim_kernels_total"] == "counter"
        assert parsed["types"]["anaheim_kernel_seconds"] == "histogram"
        assert parsed["types"]["anaheim_device_busy_fraction"] == "gauge"

    def test_json_digest_identical_across_runs(self, capsys):
        assert main(["metrics", "--workload", "HELR", "--format",
                     "json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(["metrics", "--workload", "HELR", "--format",
                     "json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert first["digest"] == second["digest"]
        assert first["snapshot"] == second["snapshot"]

    def test_artifacts_and_utilization_printout(self, capsys, tmp_path):
        from repro.obs.metrics import parse_prometheus
        out = tmp_path / "metrics.prom"
        events = tmp_path / "events.jsonl"
        assert main(["metrics", "--workload", "HELR",
                     "--out", str(out), "--events-out", str(events),
                     "--utilization"]) == 0
        assert parse_prometheus(out.read_text())["samples"]
        kinds = [json.loads(line)["kind"]
                 for line in events.read_text().splitlines()]
        assert kinds == ["run", "utilization"]
        printed = capsys.readouterr().out
        assert "gpu busy" in printed and "pim busy" in printed

    def test_jsonl_format_streams_events(self, capsys):
        assert main(["metrics", "--workload", "HELR", "--format",
                     "jsonl"]) == 0
        lines = capsys.readouterr().out.splitlines()
        docs = [json.loads(line) for line in lines]
        assert [d["seq"] for d in docs] == list(range(len(docs)))
        assert docs[0]["kind"] == "run"

    def test_functional_workload_hit_rates(self, capsys):
        assert main(["metrics", "--workload", "functional",
                     "--utilization"]) == 0
        out = capsys.readouterr().out
        assert "anaheim_functional_events_total" in out
        assert "anaheim_functional_hit_rate" in out
        assert "scratch buffers" in out


class TestTopCommand:
    def test_top_progress_and_latency_table(self, capsys, tmp_path):
        from repro.obs.metrics import parse_prometheus
        prom = tmp_path / "top.prom"
        assert main(["top", "--jobs", "faults:analytic:Boot",
                     "--seeds", "0,1", "--stuck-site", "1",
                     "--stuck-site", "5", "--degraded-after", "1",
                     "--gpu-only-after", "2",
                     "--metrics-out", str(prom)]) == 0
        out = capsys.readouterr().out
        assert "[  1/2]" in out and "[  2/2]" in out
        assert "analytic/0" in out
        assert "units 2/2" in out
        assert "unit latency (simulated)" in out
        assert "degradation:" in out
        parsed = parse_prometheus(prom.read_text())
        assert parsed["types"]["anaheim_serve_unit_seconds"] == \
            "histogram"

    def test_top_resume_marks_restored(self, capsys, tmp_path):
        ckpt = str(tmp_path / "ck.json")
        base = ["top", "--jobs", "faults:analytic:Boot",
                "--seeds", "0,1", "--stuck-site", "1",
                "--stuck-site", "5", "--degraded-after", "1",
                "--gpu-only-after", "2"]
        assert main(base + ["--checkpoint", ckpt]) == 0
        capsys.readouterr()
        assert main(base + ["--resume", ckpt]) == 0
        out = capsys.readouterr().out
        assert out.count("restored") >= 2  # per-unit notes + summary
        assert "(restored 2)" in out

    def test_top_without_jobs_errors(self, capsys):
        assert main(["top"]) == 2
        assert "--jobs" in capsys.readouterr().err


class TestOverloadCommands:
    def test_serve_arrivals_json_conserves_offered_jobs(self, capsys):
        assert main(["serve", "--arrivals", "poisson:64",
                     "--duration", "0.5", "--seeds", "0",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        summary = doc["admission"]["summary"]
        assert summary["offered"] == summary["admitted"] \
            + summary["rejected_total"]
        assert summary["admitted"] == summary["completed"] \
            + summary["shed_total"]
        assert len(doc["jobs"]) == summary["completed"]

    def test_serve_arrivals_table_prints_queue_picture(self, capsys):
        assert main(["serve", "--arrivals", "poisson:64",
                     "--duration", "0.5", "--seeds", "0"]) == 0
        out = capsys.readouterr().out
        assert "admission: offered" in out
        assert "queue: peak depth" in out
        assert "goodput" in out

    def test_soak_json_gates_green(self, capsys):
        assert main(["soak", "--duration", "0.5", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["gate"]["passed"]
        assert len(doc["cells"]) == 6       # 3 loads x 2 chaos kinds

    def test_soak_table(self, capsys):
        assert main(["soak", "--duration", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "soak: capacity" in out
        assert "brownout" in out
        assert "gate: PASS" in out

    def test_soak_bad_chaos_kind(self, capsys):
        assert main(["soak", "--chaos", "meteor"]) == 2
        assert "chaos" in capsys.readouterr().err

    def test_bench_overload_write_then_check(self, capsys, tmp_path):
        assert main(["bench", "--workload", "overload", "--dir",
                     str(tmp_path)]) == 0
        assert (tmp_path / "BENCH_overload.json").exists()
        assert main(["bench", "--workload", "overload", "--dir",
                     str(tmp_path), "--check"]) == 0
        assert "within" in capsys.readouterr().out

    def test_bench_overload_perturbed_baseline_fails(self, capsys,
                                                     tmp_path):
        assert main(["bench", "--workload", "overload", "--dir",
                     str(tmp_path)]) == 0
        path = tmp_path / "BENCH_overload.json"
        doc = json.loads(path.read_text())
        doc["metrics"]["goodput_qps"] *= 1.10
        path.write_text(json.dumps(doc))
        assert main(["bench", "--workload", "overload", "--dir",
                     str(tmp_path), "--check"]) == 1
        assert "goodput_qps" in capsys.readouterr().out

    def test_top_arrivals_shows_queue_columns(self, capsys):
        assert main(["top", "--arrivals", "poisson:64",
                     "--duration", "0.5", "--seeds", "0"]) == 0
        out = capsys.readouterr().out
        assert "admission: offered" in out
        assert "queue: peak depth" in out


class TestBenchHistory:
    def test_runs_append_and_render_trend(self, capsys, tmp_path):
        for _ in range(2):
            assert main(["bench", "--workload", "HELR", "--dir",
                         str(tmp_path)]) == 0
        history = tmp_path / "history" / "HELR.jsonl"
        entries = [json.loads(line)
                   for line in history.read_text().splitlines()]
        assert len(entries) == 2
        assert entries[0]["metrics"]["total_time"] == \
            entries[1]["metrics"]["total_time"]
        capsys.readouterr()
        assert main(["bench", "--workload", "HELR", "--dir",
                     str(tmp_path), "--history"]) == 0
        out = capsys.readouterr().out
        assert "bench history: HELR (2 run(s))" in out
        assert "vs prev" in out and "vs base" in out
        assert "+0.00%" in out

    def test_history_without_runs_is_empty(self, capsys, tmp_path):
        assert main(["bench", "--workload", "HELR", "--dir",
                     str(tmp_path), "--history"]) == 0
        assert "no history recorded" in capsys.readouterr().out


class TestRasCommand:
    def test_matrix_table_and_gate(self, capsys):
        assert main(["ras", "--retention-rates", "200",
                     "--scrub-intervals", "5e-3", "--no-wall"]) == 0
        out = capsys.readouterr().out
        assert "memory RAS matrix" in out
        assert "gate: PASS" in out
        assert "functional:" in out

    def test_json_document(self, capsys):
        assert main(["ras", "--retention-rates", "200,1000",
                     "--scrub-intervals", "5e-3", "--layer", "analytic",
                     "--no-wall", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["gate"]["passed"]
        assert doc["functional"] is None
        assert len(doc["cells"]) == 2

    def test_write_then_check(self, capsys, tmp_path):
        assert main(["ras", "--no-wall", "--dir", str(tmp_path),
                     "--write-baseline"]) == 0
        assert (tmp_path / "BENCH_ras.json").exists()
        assert (tmp_path / "history" / "ras.jsonl").exists()
        capsys.readouterr()
        assert main(["ras", "--no-wall", "--dir", str(tmp_path),
                     "--check"]) == 0
        assert "within" in capsys.readouterr().out

    def test_bench_ras_write_then_check(self, capsys, tmp_path):
        assert main(["bench", "--workload", "ras", "--dir",
                     str(tmp_path), "--workers", "1"]) == 0
        doc = json.loads((tmp_path / "BENCH_ras.json").read_text())
        assert doc["metrics"]["uncorrected"] == 0.0
        assert doc["metrics"]["overhead"] < 0.05
        assert main(["bench", "--workload", "ras", "--dir",
                     str(tmp_path), "--workers", "1", "--check"]) == 0
        assert "within" in capsys.readouterr().out

    def test_perturbed_baseline_fails_check(self, capsys, tmp_path):
        assert main(["ras", "--no-wall", "--dir", str(tmp_path),
                     "--write-baseline"]) == 0
        path = tmp_path / "BENCH_ras.json"
        doc = json.loads(path.read_text())
        doc["metrics"]["corrected"] *= 1.5
        path.write_text(json.dumps(doc))
        assert main(["ras", "--no-wall", "--dir", str(tmp_path),
                     "--check"]) == 1
        assert "corrected" in capsys.readouterr().out

    def test_check_without_baseline_errors(self, capsys, tmp_path):
        assert main(["ras", "--no-wall", "--dir", str(tmp_path),
                     "--check"]) == 2
        assert "no baseline" in capsys.readouterr().out


class TestRasFlagValidation:
    @pytest.mark.parametrize("value", ["0", "-1", "abc", "inf", "nan"])
    def test_bad_scrub_interval_is_one_line_exit_1(self, capsys, value):
        assert main(["serve", "--jobs", "run:Boot",
                     "--scrub-interval", value]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: --scrub-interval")
        assert len(err.strip().splitlines()) == 1

    @pytest.mark.parametrize("value", ["0", "-2.5", "five"])
    def test_bad_retention_rate_is_one_line_exit_1(self, capsys, value):
        assert main(["serve", "--jobs", "run:Boot",
                     "--retention-rate", value]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: --retention-rate")
        assert len(err.strip().splitlines()) == 1

    @pytest.mark.parametrize("flag,value", [
        ("--retention-rates", "200,zero"),
        ("--retention-rates", ","),
        ("--scrub-intervals", "0"),
        ("--scrub-intervals", "1e-3,-1"),
    ])
    def test_bad_sweep_lists_rejected(self, capsys, flag, value):
        assert main(["ras", flag, value]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1

    def test_serve_with_ras_reports_scrub_summary(self, capsys):
        assert main(["serve", "--jobs", "run:Boot",
                     "--scrub-interval", "5e-3", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        unit = doc["jobs"][0]["units"]["Boot"]
        ras = unit["result"]["report"]["fault_summary"]["ras"]
        assert ras["uncorrected"] == 0
        assert ras["corrected"] > 0
