"""Functional-layer guard: detect, retry, fall back, quarantine."""

import numpy as np
import pytest

from repro.ckks import modmath
from repro.ckks.rns import RnsPolynomial
from repro.errors import FaultError
from repro.faults import guard
from repro.faults.guard import FaultSession
from repro.faults.plan import (FaultModel, FaultPlan, FaultSpec,
                               default_plan)

BASIS = tuple(modmath.generate_primes(3, 64, bits=26))
Q_COL = np.array(BASIS, dtype=np.int64).reshape(-1, 1)
N = 64


def _residues(seed):
    rng = np.random.default_rng(seed)
    return np.stack([rng.integers(0, q, size=N, dtype=np.int64)
                     for q in BASIS])


def _guarded(session, op, inputs, clean, scalars=None):
    """Run one guarded kernel whose clean result is ``clean``."""
    out = clean.copy()
    session.elementwise(op, inputs, out, Q_COL,
                        lambda buf: np.copyto(buf, clean), scalars=scalars)
    return out


class TestCleanPath:
    def test_no_session_is_fast_path(self):
        assert guard.ACTIVE is None

    def test_session_restores_active(self):
        with guard.session(default_plan()) as s:
            assert guard.ACTIVE is s
        assert guard.ACTIVE is None

    def test_zero_rate_plan_leaves_results_untouched(self):
        session = FaultSession(FaultPlan(seed=1))
        a, b = _residues(1), _residues(2)
        for op, inputs, clean in [
            ("add", (a, b), (a + b) % Q_COL),
            ("sub", (a, b), (a - b) % Q_COL),
            ("neg", (a,), (-a) % Q_COL),
            ("mul", (a, b), (a * b) % Q_COL),
        ]:
            assert (_guarded(session, op, inputs, clean) == clean).all()
        assert not session.log.events

    def test_scalar_op(self):
        session = FaultSession(FaultPlan(seed=1))
        a = _residues(3)
        col = np.array([17, 23, 99], dtype=np.int64).reshape(-1, 1) % Q_COL
        clean = (a * col) % Q_COL
        assert (_guarded(session, "scalar", (a,), clean,
                         scalars=col) == clean).all()

    def test_unknown_op_rejected(self):
        session = FaultSession(FaultPlan(seed=1))
        a = _residues(4)
        with pytest.raises(FaultError):
            _guarded(session, "ntt", (a,), a)


class TestRecovery:
    def test_always_faulting_kernel_retries_then_falls_back(self):
        plan = FaultPlan(seed=2, specs=(
            FaultSpec(FaultModel.PIM_BITFLIP_BUFFER, rate=1.0),),
            max_attempts=3, n_sites=1)
        session = FaultSession(plan)
        a, b = _residues(5), _residues(6)
        clean = (a + b) % Q_COL
        out = _guarded(session, "add", (a, b), clean)
        assert (out == clean).all()         # corruption never escapes
        summary = session.log.summary()
        assert summary["injected"] == plan.max_attempts + 1
        assert summary["detected"] == summary["injected"]
        assert summary["recovered_retry"] == plan.max_attempts
        assert summary["recovered_fallback"] == 1
        assert summary["unrecovered"] == 0
        assert summary["coverage"] == 1.0

    def test_stuck_site_skips_retry_then_quarantines(self):
        plan = default_plan(seed=3, scale=0.0, stuck_sites=(0,),
                            n_sites=1, quarantine_threshold=1)
        session = FaultSession(plan)
        a = np.zeros_like(_residues(0))     # bit 12 clear: the fault bites
        clean = a.copy()
        out = _guarded(session, "neg", (a,), clean)
        assert (out == clean).all()
        [event] = session.log.events
        assert event.model == "pim-stuck-at"
        assert event.detected and event.recovery == "fallback"
        assert event.attempts == 1          # persistent fault: no retry
        assert session.injector.is_quarantined(0)
        # The quarantined site is now skipped entirely.
        out2 = _guarded(session, "neg", (a,), clean)
        assert (out2 == clean).all()
        assert session.log.rerouted == 1
        assert len(session.log.events) == 1

    def test_fallback_disabled_raises(self):
        plan = default_plan(seed=4, scale=0.0, stuck_sites=(0,),
                            n_sites=1, max_attempts=0, allow_fallback=False)
        session = FaultSession(plan)
        a = np.zeros_like(_residues(0))
        with pytest.raises(FaultError):
            _guarded(session, "neg", (a,), a.copy())

    def test_campaign_results_match_clean_reference(self):
        """A hot campaign over many guarded kernels never lets a
        corrupted result escape, and detects every effective fault."""
        plan = default_plan(seed=7, scale=40.0, n_sites=8)
        session = FaultSession(plan)
        rng = np.random.default_rng(11)
        for i in range(300):
            a, b = _residues(2 * i), _residues(2 * i + 1)
            op = ("add", "sub", "mul")[int(rng.integers(3))]
            clean = {"add": (a + b) % Q_COL, "sub": (a - b) % Q_COL,
                     "mul": (a * b) % Q_COL}[op]
            assert (_guarded(session, op, (a, b), clean) == clean).all()
        summary = session.log.summary()
        assert summary["injected"] > 20
        assert summary["undetected"] == 0
        assert summary["unrecovered"] == 0
        assert summary["coverage"] == 1.0


class TestRnsIntegration:
    def test_rns_ops_under_session_match_clean(self):
        a = RnsPolynomial(_residues(8), BASIS)
        b = RnsPolynomial(_residues(9), BASIS)
        clean = [(a + b).coeffs, (a - b).coeffs, (-a).coeffs]
        with guard.session(default_plan(seed=6, scale=40.0)) as s:
            faulted = [(a + b).coeffs, (a - b).coeffs, (-a).coeffs]
        assert s.log.events                 # the campaign actually injected
        for got, want in zip(faulted, clean):
            assert (got == want).all()
