"""FaultInjector: deterministic draws, corruption, site bookkeeping."""

import numpy as np
import pytest

from repro.core.trace import OpCategory
from repro.faults.inject import FaultInjector, StuckRegion
from repro.faults.plan import (FaultModel, FaultPlan, FaultSpec,
                               default_plan)


def _plan(**kwargs):
    return default_plan(seed=5, **kwargs)


class TestDraws:
    def test_same_plan_same_draws(self):
        a = FaultInjector(_plan())
        b = FaultInjector(_plan())
        model = FaultModel.PIM_BITFLIP_BUFFER
        assert [a.draw(model) for _ in range(500)] == \
               [b.draw(model) for _ in range(500)]

    def test_zero_rate_never_fires(self):
        injector = FaultInjector(FaultPlan(seed=1))
        assert not any(injector.draw(FaultModel.GPU_OUTPUT)
                       for _ in range(1000))

    def test_rate_one_always_fires(self):
        plan = FaultPlan(seed=1, specs=(
            FaultSpec(FaultModel.GPU_OUTPUT, rate=1.0),))
        injector = FaultInjector(plan)
        assert all(injector.draw(FaultModel.GPU_OUTPUT) for _ in range(50))


class TestWordCorruption:
    def test_flip_word_is_deterministic_and_single_word(self):
        ref = np.arange(64, dtype=np.int64)
        a_arr, b_arr = ref.copy(), ref.copy()
        a = FaultInjector(_plan()).flip_word(a_arr,
                                             FaultModel.PIM_BITFLIP_MMAC)
        b = FaultInjector(_plan()).flip_word(b_arr,
                                             FaultModel.PIM_BITFLIP_MMAC)
        assert a == b
        assert (a_arr != ref).sum() == 1
        assert a_arr[a["index"]] == ref[a["index"]] ^ (1 << a["bit"])

    def test_stick_word_fixed_cell_and_latency(self):
        plan = _plan(stuck_sites=(3,))
        injector = FaultInjector(plan)
        arr = np.zeros(64, dtype=np.int64)
        detail = injector.stick_word(arr, site=3)
        assert detail is not None
        assert arr[detail["index"]] == 1 << detail["bit"]
        # Same site, same cell; a word already holding the stuck value
        # is a latent (benign) access.
        assert injector.stick_word(arr, site=3) is None

    def test_stuck_region_overlay(self):
        injector = FaultInjector(_plan())
        region = StuckRegion(site=2, base_row=4, rows=2, col_offset=0,
                             width=8, bit=5, value=1)
        injector.add_stuck_region(region)
        chunk = np.zeros(8, dtype=np.int64)
        assert injector.apply_stuck_regions(2, row=5, col=3, chunk=chunk)
        assert chunk[3 % chunk.size] == 1 << 5
        clean = np.zeros(8, dtype=np.int64)
        assert not injector.apply_stuck_regions(2, row=99, col=3,
                                                chunk=clean)  # outside rows
        assert not injector.apply_stuck_regions(1, row=5, col=3,
                                                chunk=clean)  # other site
        assert not clean.any()


class TestSites:
    def test_site_for_round_robin(self):
        injector = FaultInjector(_plan(n_sites=4))
        assert [injector.site_for(i) for i in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_quarantine_at_threshold(self):
        injector = FaultInjector(_plan(quarantine_threshold=2))
        assert not injector.record_site_failure(7)
        assert not injector.is_quarantined(7)
        assert injector.record_site_failure(7)      # crossing the threshold
        assert injector.is_quarantined(7)
        assert not injector.record_site_failure(7)  # already quarantined
        assert injector.log.quarantined_sites == [7]
        assert not injector.record_site_failure(None)


class TestKernelFault:
    def test_stuck_site_always_faults(self):
        injector = FaultInjector(_plan(stuck_sites=(1,)))
        for _ in range(10):
            assert injector.kernel_fault(
                "pim", OpCategory.ELEMENTWISE,
                site=1) is FaultModel.PIM_STUCK_AT

    def test_transfer_category_draws_transfer_model(self):
        plan = FaultPlan(seed=1, specs=(
            FaultSpec(FaultModel.TRANSFER_LOST, rate=1.0),))
        injector = FaultInjector(plan)
        assert injector.kernel_fault(
            "gpu", OpCategory.TRANSFER) is FaultModel.TRANSFER_LOST
        assert injector.kernel_fault("gpu", OpCategory.ELEMENTWISE) is None

    def test_gpu_category_draws_gpu_model(self):
        plan = FaultPlan(seed=1, specs=(
            FaultSpec(FaultModel.GPU_OUTPUT, rate=1.0),))
        injector = FaultInjector(plan)
        assert injector.kernel_fault(
            "gpu", OpCategory.NTT) is FaultModel.GPU_OUTPUT

    def test_benign_classification(self):
        benign = FaultInjector.fault_is_benign
        assert benign(FaultModel.PIM_INSTR_DUP, "PMult")
        assert not benign(FaultModel.PIM_INSTR_DUP, "PAccum")
        assert not benign(FaultModel.PIM_INSTR_DROP, "PMult")
        assert not benign(FaultModel.PIM_BITFLIP_MMAC, None)
