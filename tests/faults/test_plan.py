"""Fault plan determinism, digests, and validation."""

import pytest

from repro.errors import ParameterError
from repro.faults.plan import (DEFAULT_RATES, FaultModel, FaultPlan,
                               FaultSpec, default_plan)


class TestFaultSpec:
    def test_rate_bounds(self):
        with pytest.raises(ParameterError):
            FaultSpec(FaultModel.GPU_OUTPUT, rate=1.5)
        with pytest.raises(ParameterError):
            FaultSpec(FaultModel.GPU_OUTPUT, rate=-0.1)

    def test_bit_bounds(self):
        with pytest.raises(ParameterError):
            FaultSpec(FaultModel.PIM_STUCK_AT, bit=32)

    def test_stuck_value(self):
        with pytest.raises(ParameterError):
            FaultSpec(FaultModel.PIM_STUCK_AT, stuck_value=2)


class TestFaultPlan:
    def test_default_plan_covers_transient_models(self):
        plan = default_plan()
        for model, rate in DEFAULT_RATES.items():
            assert plan.rate(model) == rate
        assert plan.stuck_sites() == ()

    def test_scale_multiplies_rates(self):
        plan = default_plan(scale=2.0)
        assert plan.rate(FaultModel.GPU_OUTPUT) == pytest.approx(2e-3)

    def test_stuck_sites_round_trip(self):
        plan = default_plan(stuck_sites=(3, 7))
        assert plan.stuck_sites() == (3, 7)

    def test_models_filter(self):
        plan = default_plan(models={FaultModel.PIM_BITFLIP_MMAC})
        assert plan.rate(FaultModel.PIM_BITFLIP_MMAC) > 0
        assert plan.rate(FaultModel.GPU_OUTPUT) == 0.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            FaultPlan(n_sites=0)
        with pytest.raises(ParameterError):
            FaultPlan(max_attempts=-1)
        with pytest.raises(ParameterError):
            FaultPlan(specs=("not a spec",))


class TestDeterminism:
    def test_digest_stable_and_seed_sensitive(self):
        assert default_plan(seed=1).digest() == default_plan(seed=1).digest()
        assert default_plan(seed=1).digest() != default_plan(seed=2).digest()
        assert (default_plan(seed=1).digest()
                != default_plan(seed=1, scale=2.0).digest())

    def test_rng_streams_are_deterministic_and_independent(self):
        plan = default_plan(seed=9)
        a1 = plan.rng("model", "x").random(8)
        a2 = plan.rng("model", "x").random(8)
        b = plan.rng("model", "y").random(8)
        assert (a1 == a2).all()
        assert not (a1 == b).all()

    def test_canonical_is_json_safe(self):
        import json
        json.dumps(default_plan(stuck_sites=(1,)).canonical())
