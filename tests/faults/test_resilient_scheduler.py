"""ResilientScheduler: timeline invariants, recovery, determinism."""

import pytest

from repro.core import blocks as B
from repro.core.fusion import PIM_FULL, lower
from repro.core.scheduler import ResilientScheduler, Scheduler
from repro.errors import FaultError
from repro.faults.plan import default_plan
from repro.gpu.configs import A100_80GB
from repro.gpu.model import GpuModel
from repro.pim.configs import A100_NEAR_BANK
from repro.pim.executor import PimExecutor

N = 2 ** 16
L, AUX, D = 54, 14, 4


def _trace(repeat=1):
    blocks = [B.mod_up(L, AUX, D), B.key_mult(L, AUX, D),
              B.aut_accum(L + AUX, 4), B.mod_down(L, AUX)] * repeat
    return lower(blocks, N, PIM_FULL, label="hybrid")


def _run(plan, repeat=1, **kwargs):
    scheduler = ResilientScheduler(GpuModel(A100_80GB),
                                   PimExecutor(A100_NEAR_BANK),
                                   plan=plan, **kwargs)
    return scheduler.run(_trace(repeat))


class TestNoPlan:
    def test_degrades_to_plain_scheduler(self):
        base = Scheduler(GpuModel(A100_80GB),
                         PimExecutor(A100_NEAR_BANK)).run(_trace())
        resilient = _run(None)
        assert resilient.total_time == pytest.approx(base.total_time)
        assert resilient.fault_summary == {}


class TestCleanPlan:
    def test_verification_is_the_only_overhead(self):
        base = Scheduler(GpuModel(A100_80GB),
                         PimExecutor(A100_NEAR_BANK)).run(_trace())
        report = _run(default_plan(scale=0.0))
        summary = report.fault_summary
        assert summary["injected"] == 0
        assert summary["retry_time"] == 0.0
        assert summary["fallback_time"] == 0.0
        assert summary["verify_time"] > 0.0
        assert report.total_time == pytest.approx(
            base.total_time + summary["verify_time"])


class TestInvariants:
    @pytest.fixture()
    def report(self):
        return _run(default_plan(seed=1, scale=50.0))

    def test_campaign_injects_and_recovers(self, report):
        summary = report.fault_summary
        assert summary["injected"] > 0
        assert summary["undetected"] == 0
        assert summary["unrecovered"] == 0
        assert summary["coverage"] == 1.0
        assert summary["plan_digest"] == default_plan(seed=1,
                                                      scale=50.0).digest()

    def test_total_is_sum_of_parts(self, report):
        assert report.total_time == pytest.approx(
            report.gpu_time + report.pim_time + report.transition_time)

    def test_category_times_sum_to_busy_time(self, report):
        assert sum(report.time_by_category.values()) == pytest.approx(
            report.gpu_time + report.pim_time)

    def test_segments_are_contiguous(self, report):
        clock = 0.0
        for segment in report.segments:
            assert segment.start >= clock - 1e-12
            assert segment.end > segment.start
            clock = segment.end
        assert clock == pytest.approx(report.total_time)

    def test_recovery_labels_in_segments(self, report):
        names = {s.name for s in report.segments}
        assert any(".retry" in n or ".fallback" in n for n in names)

    def test_deterministic_across_runs(self, report):
        again = _run(default_plan(seed=1, scale=50.0))
        assert again.fault_summary == report.fault_summary
        assert again.total_time == pytest.approx(report.total_time)

    def test_seed_changes_campaign(self, report):
        other = _run(default_plan(seed=2, scale=50.0))
        assert other.fault_summary != report.fault_summary


class TestStuckSites:
    def test_stuck_site_quarantined_and_rerouted(self):
        plan = default_plan(seed=3, scale=0.0, stuck_sites=(0,),
                            n_sites=2, quarantine_threshold=1)
        report = _run(plan, repeat=4)
        summary = report.fault_summary
        assert summary["quarantined_sites"] == [0]
        assert summary["rerouted"] > 0
        assert summary["recovered_fallback"] >= 1
        assert summary["unrecovered"] == 0
        assert report.total_time == pytest.approx(
            report.gpu_time + report.pim_time + report.transition_time)

    def test_fallback_disabled_raises(self):
        plan = default_plan(seed=3, scale=0.0, stuck_sites=(0,),
                            n_sites=1, allow_fallback=False)
        with pytest.raises(FaultError):
            _run(plan)


class TestSummaryComposition:
    def test_scaled_preserves_ratios(self):
        report = _run(default_plan(seed=1, scale=50.0))
        double = report.scaled(2.0)
        summary, scaled = report.fault_summary, double.fault_summary
        assert scaled["injected"] == 2 * summary["injected"]
        assert scaled["verify_time"] == pytest.approx(
            2 * summary["verify_time"])
        assert scaled["coverage"] == summary["coverage"]
        assert scaled["plan_digest"] == summary["plan_digest"]

    def test_merged_pools_counts(self):
        a = _run(default_plan(seed=1, scale=50.0))
        b = _run(default_plan(seed=2, scale=50.0))
        merged = a.merged(b).fault_summary
        assert merged["injected"] == (a.fault_summary["injected"]
                                      + b.fault_summary["injected"])
        assert merged["coverage"] == 1.0
