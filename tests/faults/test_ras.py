"""SEC-DED properties and the RasEngine state machine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.reliability import ReliabilityConfig
from repro.faults.inject import FaultInjector
from repro.faults.plan import default_plan
from repro.faults.ras import RasEngine, SecDedCode
from repro.obs.metrics import MetricsRegistry
from repro.serving.health import DegradationState, HealthMonitor

#: One decoder per word width — construction is cheap but hypothesis
#: calls these properties hundreds of times.
_CODES = {}


def _code(data_bits: int) -> SecDedCode:
    if data_bits not in _CODES:
        _CODES[data_bits] = SecDedCode(data_bits)
    return _CODES[data_bits]


@st.composite
def _codewords(draw):
    """(code, word, codeword) across word widths and random words —
    the limb widths the RNS plane stores (8..40-bit residues)."""
    data_bits = draw(st.integers(min_value=8, max_value=40))
    code = _code(data_bits)
    word = draw(st.integers(min_value=0, max_value=(1 << data_bits) - 1))
    return code, word, code.encode(word)


class TestSecDedProperties:
    @given(_codewords())
    @settings(max_examples=200, deadline=None)
    def test_clean_codeword_decodes_ok(self, cwt):
        code, word, cw = cwt
        assert code.decode(cw) == (word, "ok")

    @given(_codewords(), st.data())
    @settings(max_examples=300, deadline=None)
    def test_every_single_bit_flip_is_corrected(self, cwt, data):
        code, word, cw = cwt
        pos = data.draw(st.integers(0, code.codeword_bits - 1))
        decoded, status = code.decode(cw ^ (1 << pos))
        assert status == "corrected"
        assert decoded == word

    @given(_codewords(), st.data())
    @settings(max_examples=300, deadline=None)
    def test_every_double_bit_flip_is_detected_never_miscorrected(
            self, cwt, data):
        code, word, cw = cwt
        positions = data.draw(st.lists(
            st.integers(0, code.codeword_bits - 1),
            min_size=2, max_size=2, unique=True))
        corrupted = cw
        for pos in positions:
            corrupted ^= 1 << pos
        _, status = code.decode(corrupted)
        # Even parity rules out the single-error hypothesis, so the
        # decoder must flag the word rather than "fix" the wrong bit.
        assert status == "detected"

    def test_exhaustive_single_and_double_flips_32bit(self):
        code = _code(32)
        word = 0xDEADBEEF
        cw = code.encode(word)
        for i in range(code.codeword_bits):
            assert code.decode(cw ^ (1 << i)) == (word, "corrected")
            for j in range(i + 1, code.codeword_bits):
                _, status = code.decode(cw ^ (1 << i) ^ (1 << j))
                assert status == "detected"

    def test_word_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            _code(8).encode(256)


def _engine(metrics=None, health=None, injector=None, **overrides):
    config = ReliabilityConfig(**overrides)
    engine = RasEngine(config, metrics=metrics)
    engine.bind(injector, health)
    return engine


class TestRasEngine:
    def test_no_elapsed_time_no_errors(self):
        engine = _engine()
        items, escape = engine.before_kernel(0, 0.0)
        assert not escape
        assert engine.errors_total == 0
        assert items == []

    def test_same_config_same_history(self):
        def run(engine):
            clock = 0.0
            for step in range(40):
                clock += 1e-3
                engine.before_kernel(step % 4, clock)
            return engine.summary()
        assert run(_engine(seed=3)) == run(_engine(seed=3))

    def test_summary_accounts_every_error(self):
        engine = _engine(seed=1, retention_rate=5000.0)
        clock = 0.0
        for step in range(50):
            clock += 1e-3
            items, escape = engine.before_kernel(step % 8, clock)
            if escape:
                engine.repair_items(step % 8, clock)
        summary = engine.summary()
        assert summary["errors_total"] == (summary["corrected"]
                                           + summary["detected"]
                                           + summary["escaped"])
        assert summary["errors_total"] > 0
        assert summary["uncorrected"] == 0
        assert summary["ras_time_s"] > 0.0

    def test_pending_escape_counts_until_repaired(self):
        # escape_fraction 0.9: nearly every error is an ECC escape.
        engine = _engine(seed=0, retention_rate=5000.0,
                         escape_fraction=0.9, multi_bit_fraction=0.05)
        clock, site = 0.0, 2
        escape = False
        while not escape:
            clock += 1e-3
            _, escape = engine.before_kernel(site, clock)
        assert engine.summary()["uncorrected"] > 0
        items = engine.repair_items(site, clock)
        assert any(name == "ras.repair" for name, _ in items)
        assert engine.summary()["uncorrected"] == 0

    def test_idle_budget_absorbs_scrub_passes(self):
        engine = _engine(seed=2)
        engine.note_idle(1.0)  # capped at one full sweep
        items = []
        engine._scrub_due(engine.config.scrub_interval_s, items)
        assert engine.scrub_passes["idle"] == 1
        assert engine.scrub_time_s == 0.0
        # The cap means the next due pass is charged again.
        engine._scrub_due(2 * engine.config.scrub_interval_s, items)
        assert engine.scrub_passes["periodic"] == 1
        assert engine.scrub_time_s > 0.0

    def test_metrics_families_exported(self):
        registry = MetricsRegistry()
        engine = _engine(metrics=registry, seed=1,
                         retention_rate=5000.0, remap_threshold=4)
        clock = 0.0
        for step in range(60):
            clock += 1e-3
            items, escape = engine.before_kernel(step % 4, clock)
            if escape:
                engine.repair_items(step % 4, clock)
        text = registry.render_prometheus()
        assert "anaheim_ecc_corrected_total" in text
        assert "anaheim_scrub_passes_total" in text
        assert "anaheim_remap_total" in text


class TestRemap:
    def test_predictive_remap_uses_a_spare_and_resets_health(self):
        engine = _engine(seed=1, retention_rate=5000.0,
                         remap_threshold=4)
        clock, site = 0.0, 3
        while not engine.remaps["predictive"]:
            clock += 1e-3
            engine.before_kernel(site, clock)
        assert engine.spares_used == 1
        assert site in engine.remapped_sites
        state = engine._regions[site]
        assert state.remapped
        assert state.corrected == 0 and state.wear == 0

    def test_exhausted_spares_stop_remapping(self):
        engine = _engine(seed=1, retention_rate=5000.0,
                         remap_threshold=4, spare_regions=0)
        clock, site = 0.0, 3
        for _ in range(200):
            clock += 1e-3
            engine.before_kernel(site, clock)
        assert engine.spares_used == 0
        assert site in engine._spares_flagged
        assert sum(engine.remaps.values()) == 0

    def test_remap_retires_stuck_site_in_injector(self):
        """A stuck_region fault pinned to a remapped region no longer
        fires: the spare's physical cells are healthy."""
        import numpy as np
        site = 5
        injector = FaultInjector(default_plan(seed=0, stuck_sites=(site,)))
        assert injector.is_stuck(site)
        engine = _engine(injector=injector, seed=1,
                         retention_rate=5000.0, remap_threshold=4)
        clock = 0.0
        while not sum(engine.remaps.values()):
            clock += 1e-3
            engine.before_kernel(site, clock)
        assert not injector.is_stuck(site)
        arr = np.zeros(64, dtype=np.int64)
        assert injector.apply_stuck_regions(site, 0, 0, arr) is False
        assert (arr == 0).all()


class TestHealthPressure:
    def test_uncorrectable_stream_degrades_to_gpu_only(self):
        health = HealthMonitor(uncorrectable_limit=8)
        engine = _engine(health=health, seed=1, retention_rate=5000.0,
                         multi_bit_fraction=0.4, escape_fraction=0.1)
        clock = 0.0
        for step in range(200):
            clock += 1e-3
            items, escape = engine.before_kernel(step % 4, clock)
            if escape:
                engine.repair_items(step % 4, clock)
            if health.state is DegradationState.GPU_ONLY:
                break
        assert health.state is DegradationState.GPU_ONLY
        assert health.uncorrectable_memory >= 8
        assert health.summary()["uncorrectable_memory"] \
            == health.uncorrectable_memory

    def test_no_limit_counts_without_escalating(self):
        health = HealthMonitor()
        health.note_uncorrectable(0, 0.0)
        assert health.uncorrectable_memory == 1
        assert health.state is DegradationState.HEALTHY
