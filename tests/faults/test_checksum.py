"""Residue-checksum algebra and the single-word detection guarantee.

The load-bearing property: for every RNS basis of odd primes, a single
bit flip in any residue word always shifts that limb's checksum, so the
verifier catches every single-word corruption.  The sweep is a seeded
randomized campaign over random bases, prime widths, degrees, flipped
positions, and bit indices.
"""

import numpy as np
import pytest

from repro.ckks.modmath import generate_primes
from repro.faults import checksum as cks

RNG = np.random.default_rng(20250806)


def _random_case(rng):
    """(coeffs, q_col, basis) with random prime widths and degree."""
    bits = int(rng.integers(17, 31))
    limbs = int(rng.integers(1, 6))
    degree = 2 ** int(rng.integers(3, 9))
    basis = tuple(generate_primes(limbs, 2 * degree, bits=bits))
    q_col = np.array(basis, dtype=np.int64).reshape(-1, 1)
    coeffs = np.stack([rng.integers(0, q, size=degree, dtype=np.int64)
                       for q in basis])
    return coeffs, q_col, basis


class TestSingleWordDetection:
    def test_every_single_bit_flip_is_detected(self):
        """Seeded sweep: flip one random bit of one random word, across
        random bases/widths; the corrupted limb's checksum must move."""
        for _ in range(300):
            coeffs, q_col, basis = _random_case(RNG)
            expected = cks.limb_checksum(coeffs, q_col)
            corrupted = coeffs.copy()
            limb = int(RNG.integers(len(basis)))
            pos = int(RNG.integers(coeffs.shape[1]))
            bit = int(RNG.integers(32))
            corrupted[limb, pos] ^= 1 << bit
            mask = cks.mismatched_limbs(corrupted, expected, q_col)
            assert mask[limb], (
                f"flip of bit {bit} at ({limb},{pos}) escaped, q={basis[limb]}")
            assert mask.sum() == 1  # the fault is localized to its limb

    def test_power_of_two_never_divisible_by_odd_prime(self):
        """The arithmetic heart of the guarantee, checked exhaustively
        for every bit position against a sample of generated primes."""
        for q in generate_primes(8, 256, bits=28):
            for k in range(32):
                assert (1 << k) % q != 0
                assert (-(1 << k)) % q != 0


class TestChecksumAlgebra:
    @pytest.fixture()
    def case(self):
        rng = np.random.default_rng(3)
        coeffs, q_col, basis = _random_case(rng)
        other = np.stack([rng.integers(0, q, size=coeffs.shape[1],
                                       dtype=np.int64) for q in basis])
        return coeffs, other, q_col

    def test_add_commutes(self, case):
        a, b, q_col = case
        out = (a + b) % q_col
        expected = cks.checksum_add(cks.limb_checksum(a, q_col),
                                    cks.limb_checksum(b, q_col), q_col)
        assert not cks.mismatched_limbs(out, expected, q_col).any()

    def test_sub_commutes(self, case):
        a, b, q_col = case
        out = (a - b) % q_col
        expected = cks.checksum_sub(cks.limb_checksum(a, q_col),
                                    cks.limb_checksum(b, q_col), q_col)
        assert not cks.mismatched_limbs(out, expected, q_col).any()

    def test_neg_commutes(self, case):
        a, _, q_col = case
        out = (-a) % q_col
        expected = cks.checksum_neg(cks.limb_checksum(a, q_col), q_col)
        assert not cks.mismatched_limbs(out, expected, q_col).any()

    def test_scalar_mul_commutes(self, case):
        a, _, q_col = case
        scalars = np.array([5, 11, 123, 7, 99], dtype=np.int64)[
            :a.shape[0]].reshape(-1, 1) % q_col
        out = (a * scalars) % q_col
        expected = cks.checksum_scalar_mul(
            scalars, cks.limb_checksum(a, q_col), q_col)
        assert not cks.mismatched_limbs(out, expected, q_col).any()

    def test_mul_pairs_matches_product(self, case):
        a, b, q_col = case
        out = (a * b) % q_col
        expected = cks.checksum_mul_pairs(a, b, q_col)
        assert not cks.mismatched_limbs(out, expected, q_col).any()

    def test_residues_in_range(self, case):
        a, _, q_col = case
        assert cks.residues_in_range(a, q_col)
        bad = a.copy()
        bad[0, 0] = -1
        assert not cks.residues_in_range(bad, q_col)
        bad[0, 0] = int(q_col[0, 0])
        assert not cks.residues_in_range(bad, q_col)
