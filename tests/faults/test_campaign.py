"""End-to-end fault campaigns and their observability plumbing."""

import json

import pytest

from repro.faults.campaign import (run_analytic_campaign,
                                   run_functional_campaign, run_matrix)
from repro.faults.plan import default_plan


class TestFunctionalCampaign:
    @pytest.fixture(scope="class")
    def result(self):
        return run_functional_campaign(default_plan(seed=0))

    def test_gate_properties(self, result):
        summary = result["summary"]
        assert summary["injected"] > 0
        assert summary["undetected"] == 0
        assert summary["unrecovered"] == 0
        assert summary["coverage"] >= 0.99
        assert result["decrypt_ok"]
        assert result["max_error"] < 1e-2

    def test_provenance(self, result):
        assert result["plan_digest"] == default_plan(seed=0).digest()
        assert result["events_by_model"]
        assert sum(result["events_by_model"].values()) == \
            result["summary"]["injected"]


class TestAnalyticCampaign:
    def test_overhead_is_small_and_positive(self):
        result = run_analytic_campaign(default_plan(seed=0))
        assert result["summary"]["coverage"] == 1.0
        assert result["summary"]["unrecovered"] == 0
        assert 0.0 < result["overhead"] < 0.10
        assert result["verify_time_s"] > 0.0

    def test_matrix_gate(self):
        result = run_matrix(seeds=(0,), functional=False)
        assert result["gate"]["passed"]
        agg = result["analytic_aggregate"]
        assert agg["undetected"] == 0
        assert agg["mean_overhead"] < 0.10
        json.dumps(result)      # the whole matrix is JSON-exportable


class TestObservability:
    def test_manifest_and_report_carry_fault_data(self):
        from repro.core.framework import AnaheimFramework
        from repro.gpu.configs import A100_80GB
        from repro.obs.export import report_dict, run_manifest
        from repro.pim.configs import A100_NEAR_BANK
        from repro.workloads.applications import PaperParams, build

        plan = default_plan(seed=5, scale=10.0)
        params = PaperParams()
        wl = build("Boot", params)
        result = AnaheimFramework(A100_80GB, pim=A100_NEAR_BANK,
                                  fault_plan=plan).run(
            wl.blocks, params.degree, label="Boot")
        doc = report_dict(result.report)
        assert doc["fault_summary"]["plan_digest"] == plan.digest()
        assert doc["fault_summary"]["injected"] > 0

        manifest = run_manifest(result.report, gpu=A100_80GB,
                                pim=A100_NEAR_BANK, workload="Boot",
                                degree=params.degree, fault_plan=plan)
        assert manifest["config"]["fault_plan"]["digest"] == plan.digest()
        assert manifest["config"]["fault_plan"]["plan"] == plan.canonical()
        json.dumps(manifest)

    def test_manifest_without_plan_has_null_fault_plan(self):
        from repro.core.scheduler import ScheduleReport
        from repro.obs.export import run_manifest
        manifest = run_manifest(ScheduleReport(label="x"))
        assert manifest["config"]["fault_plan"] is None
