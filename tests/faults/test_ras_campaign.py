"""RAS campaign: gate, determinism, scheduler integration."""

import json

import pytest

from repro.dram.reliability import ReliabilityConfig
from repro.faults.ras_campaign import (ras_baseline_metrics,
                                       run_analytic_ras,
                                       run_functional_ras,
                                       run_ras_matrix)
from repro.obs.metrics import MetricsRegistry

#: A 2x2 grid containing the default cell — small enough for tests,
#: wide enough to exercise the surfaces.
RATES = (200.0, 1000.0)
INTERVALS = (1e-3, 5e-3)


@pytest.fixture(scope="module")
def matrix():
    return run_ras_matrix(retention_rates=RATES,
                          scrub_intervals=INTERVALS,
                          functional=True, record_wall=False)


class TestAnalyticCell:
    def test_overhead_is_guarded_minus_clean(self, matrix):
        cell = matrix["default_cell"]
        assert cell["guarded_time_s"] > cell["clean_time_s"]
        assert cell["overhead"] == pytest.approx(
            cell["guarded_time_s"] / cell["clean_time_s"] - 1.0)

    def test_default_cell_is_clean_and_cheap(self, matrix):
        cell = matrix["default_cell"]
        assert cell["ras"]["uncorrected"] == 0
        assert cell["ras"]["corrected"] > 0
        assert sum(cell["ras"]["scrub_passes"].values()) > 0
        assert cell["overhead"] < 0.05

    def test_scrubbing_more_often_costs_more(self, matrix):
        # Row-major surfaces: rows are rates, columns intervals.
        for row in matrix["surfaces"]["scrub_time_s"]:
            assert row[0] >= row[-1]

    def test_gate_passes_with_zero_uncorrected(self, matrix):
        assert matrix["gate"]["passed"]
        for row in matrix["surfaces"]["uncorrected"]:
            assert all(v == 0 for v in row)

    def test_ras_segments_on_the_timeline(self):
        cell = run_analytic_ras(ReliabilityConfig())
        ras = cell["ras"]
        assert ras["ras_time_s"] == pytest.approx(
            ras["scrub_time_s"] + ras["repair_time_s"]
            + ras["correct_time_s"] + ras["migration_time_s"])
        assert cell["guarded_time_s"] >= (cell["clean_time_s"]
                                          + ras["ras_time_s"])


class TestDeterminism:
    def test_serial_reruns_are_byte_identical(self, matrix):
        again = run_ras_matrix(retention_rates=RATES,
                               scrub_intervals=INTERVALS,
                               functional=True, record_wall=False)
        assert json.dumps(matrix, sort_keys=True) \
            == json.dumps(again, sort_keys=True)

    def test_pool_matches_serial_documents_and_digests(self, matrix):
        serial_metrics = MetricsRegistry()
        pool_metrics = MetricsRegistry()
        serial = run_ras_matrix(retention_rates=RATES,
                                scrub_intervals=INTERVALS,
                                functional=True, record_wall=False,
                                metrics=serial_metrics, workers=1)
        pooled = run_ras_matrix(retention_rates=RATES,
                                scrub_intervals=INTERVALS,
                                functional=True, record_wall=False,
                                metrics=pool_metrics, workers=2)
        assert json.dumps(serial, sort_keys=True) \
            == json.dumps(pooled, sort_keys=True)
        assert serial_metrics.digest() == pool_metrics.digest()


class TestFunctionalCell:
    def test_every_retention_event_is_accounted(self, matrix):
        func = matrix["functional"]
        assert func["events"] > 0
        assert func["events"] == (func["ecc_corrected"]
                                  + func["ecc_detected"]
                                  + func["checksum_caught"])
        assert func["unaccounted"] == 0
        assert func["decrypt_ok"]

    def test_record_wall_controls_the_one_wall_field(self):
        config = ReliabilityConfig()
        with_wall = run_functional_ras(config, record_wall=True)
        without = run_functional_ras(config, record_wall=False)
        assert "wall_s" in with_wall and "wall_s" not in without
        with_wall.pop("wall_s")
        assert json.dumps(with_wall, sort_keys=True) \
            == json.dumps(without, sort_keys=True)


class TestBaselineMetrics:
    def test_flat_gateable_and_json_safe(self, matrix):
        metrics = ras_baseline_metrics(matrix)
        for key in ("errors_total", "corrected", "detected", "escaped",
                    "uncorrected", "scrub_passes_total", "remaps_total",
                    "overhead", "ras_time_s", "clean_time_s",
                    "functional_events", "functional_ecc_corrected",
                    "functional_checksum_caught"):
            assert isinstance(metrics[key], float), key
        assert metrics["uncorrected"] == 0.0
        json.dumps(metrics)
