"""Tests for parameter sets and security accounting."""

import pytest

from repro.errors import ParameterError
from repro.params import (MAX_LOG_PQ_128, CkksParams, PaperParams,
                          paper_params, params_for_dnum, toy_params)


class TestCkksParams:
    def test_create_generates_valid_primes(self):
        params = toy_params(degree=256, level_count=4, aux_count=2)
        assert params.level_count == 4
        assert params.aux_count == 2
        for q in params.moduli + params.aux_moduli:
            assert (q - 1) % (2 * 256) == 0

    def test_dnum(self):
        params = toy_params(degree=256, level_count=5, aux_count=2)
        assert params.dnum == 3

    def test_sizes(self):
        params = toy_params(degree=256, level_count=4, aux_count=2)
        assert params.limb_bytes() == 256 * 4
        assert params.poly_bytes() == 4 * 256 * 4
        assert params.ciphertext_bytes() == 2 * 4 * 256 * 4
        assert params.evk_bytes() == 2 * 2 * (4 + 2) * 256 * 4

    def test_at_level(self):
        params = toy_params(degree=256, level_count=5, aux_count=2)
        lowered = params.at_level(3)
        assert lowered.moduli == params.moduli[:3]
        assert lowered.aux_moduli == params.aux_moduli

    def test_at_level_bounds(self):
        params = toy_params(degree=256, level_count=5, aux_count=2)
        with pytest.raises(ParameterError):
            params.at_level(0)
        with pytest.raises(ParameterError):
            params.at_level(6)

    def test_distinct_primes(self):
        params = toy_params(degree=256, level_count=6, aux_count=3)
        all_primes = params.moduli + params.aux_moduli
        assert len(set(all_primes)) == len(all_primes)


class TestPaperParams:
    def test_default_matches_table_iv(self):
        params = paper_params()
        assert params.degree == 2 ** 16
        assert params.level_count == 54
        assert params.aux_count == 14
        assert params.dnum == 4

    def test_meets_128_bit_security(self):
        assert paper_params().meets_128_bit_security()

    def test_evk_size_matches_paper(self):
        # §III-A: "an evk [can be as large as] 136MB".
        evk_mb = paper_params().evk_bytes() / 2 ** 20
        assert 130 <= evk_mb <= 145

    def test_poly_size_matches_paper(self):
        # §III-A: "a polynomial can be as large as 17MB" (L+α limbs).
        params = paper_params()
        poly_mb = params.poly_bytes(params.level_count
                                    + params.aux_count) / 2 ** 20
        assert 16 <= poly_mb <= 18

    def test_with_levels(self):
        params = paper_params().with_levels(24)
        assert params.level_count == 24
        assert params.aux_count == 14


class TestParamsForDnum:
    @pytest.mark.parametrize("dnum", [2, 3, 4, 6])
    def test_feasible_and_secure(self, dnum):
        params = params_for_dnum(dnum)
        assert params.dnum == dnum
        assert params.log_pq < MAX_LOG_PQ_128[2 ** 16]

    def test_larger_dnum_allows_more_levels(self):
        l2 = params_for_dnum(2).level_count
        l4 = params_for_dnum(4).level_count
        l6 = params_for_dnum(6).level_count
        assert l2 < l4 <= l6

    def test_d4_matches_table_iv(self):
        params = params_for_dnum(4)
        assert params.level_count >= 52
        assert params.aux_count <= 14
