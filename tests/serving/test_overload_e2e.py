"""End-to-end overload protection: simulation, soak, serve wiring.

The heart of the acceptance bar lives here: the same seed must produce
byte-identical admit/shed decisions, unit documents, and metrics
digests for any worker count, and the 2x-capacity chaos cell must
complete with every offered job conserved.
"""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serving import ServePolicy
from repro.serving.admission import AdmissionPolicy, CostModel
from repro.serving.health import DegradationState, HealthMonitor
from repro.serving.overload import (chaos_events, check_invariants,
                                    jobs_from_completions,
                                    run_overload_serve, simulate_overload)
from repro.serving.soak import (overload_bench_cell,
                                overload_bench_metrics, run_soak)
from repro.serving.traffic import (DEFAULT_TENANTS, ArrivalSpec,
                                   capacity_qps)

#: Synthetic service costs in the same ballpark as the analytic model's
#: Boot/HELR times — keeps simulation tests off the real framework.
MODEL = CostModel({"Boot": {"pim": 0.027, "gpu": 0.037},
                   "HELR": {"pim": 0.033, "gpu": 0.041}})

POLICY = AdmissionPolicy()


def overload_spec(load=2.0, duration_s=2.0, seed=0) -> ArrivalSpec:
    rate = load * capacity_qps(MODEL, DEFAULT_TENANTS)
    return ArrivalSpec(process="poisson", rate_qps=rate,
                       duration_s=duration_s, seed=seed)


class TestSimulation:
    def test_deterministic(self):
        docs = [simulate_overload(overload_spec(), DEFAULT_TENANTS,
                                  POLICY, MODEL, health=HealthMonitor())
                for _ in range(2)]
        assert json.dumps(docs[0], sort_keys=True) == \
            json.dumps(docs[1], sort_keys=True)

    def test_invariants_hold_under_overload(self):
        sim = simulate_overload(overload_spec(), DEFAULT_TENANTS, POLICY,
                                MODEL, health=HealthMonitor())
        assert check_invariants(sim) == []
        summary = sim["summary"]
        assert summary["shed_total"] > 0            # protection engaged
        assert summary["completed"] > 0
        assert summary["brownout"]["state"] == "gpu-only"

    def test_underload_admits_everything(self):
        sim = simulate_overload(overload_spec(load=0.4), DEFAULT_TENANTS,
                                POLICY, MODEL, health=HealthMonitor())
        summary = sim["summary"]
        assert summary["rejected_total"] == 0
        assert summary["shed_total"] == 0
        assert summary["admitted"] == summary["completed"]
        assert summary["brownout"]["state"] == "healthy"

    def test_queue_drains_fully(self):
        """Every admitted job ends completed or cleanly shed."""
        sim = simulate_overload(overload_spec(load=3.0), DEFAULT_TENANTS,
                                POLICY, MODEL, health=HealthMonitor())
        summary = sim["summary"]
        assert summary["admitted"] == summary["completed"] \
            + summary["shed_total"]

    def test_chaos_quarantines_escalate_health(self):
        health = HealthMonitor(gpu_only_after=3)
        chaos = chaos_events(fault_seed=0, duration_s=2.0)
        sim = simulate_overload(overload_spec(load=0.4), DEFAULT_TENANTS,
                                POLICY, MODEL, health=health, chaos=chaos)
        assert health.state is DegradationState.GPU_ONLY
        # post-brownout dispatches re-lowered to GPU-only service
        assert any(c["mode"] == "gpu" for c in sim["completions"])

    def test_chaos_events_are_seeded(self):
        assert chaos_events(0, 2.0) == chaos_events(0, 2.0)
        assert chaos_events(0, 2.0) != chaos_events(1, 2.0)

    def test_jobs_from_completions_wires_degraded_start(self):
        completions = [
            {"index": 0, "kind": "run", "workload": "Boot",
             "mode": "pim"},
            {"index": 1, "kind": "faults", "workload": "Boot",
             "mode": "gpu"},
        ]
        jobs = jobs_from_completions(completions)
        assert not jobs[0].degraded_start
        assert jobs[0].kind == "run"
        assert jobs[1].degraded_start
        assert jobs[1].layers == ("analytic",)


class TestSoak:
    def test_campaign_gates_green(self):
        doc = run_soak(cost_model=MODEL, duration_s=1.0)
        assert doc["gate"]["passed"], doc["gate"]["violations"]
        assert len(doc["cells"]) == 6           # 3 loads x 2 chaos kinds
        overloaded = [c for c in doc["cells"] if c["load"] > 1.0]
        assert all(c["summary"]["shed_total"]
                   + c["summary"]["rejected_total"] > 0
                   for c in overloaded)

    def test_campaign_is_deterministic(self):
        docs = [run_soak(cost_model=MODEL, duration_s=1.0)
                for _ in range(2)]
        assert json.dumps(docs[0], sort_keys=True) == \
            json.dumps(docs[1], sort_keys=True)

    def test_bench_cell_metrics_are_stable(self):
        cells = [overload_bench_cell(cost_model=MODEL)
                 for _ in range(2)]
        assert overload_bench_metrics(cells[0]) == \
            overload_bench_metrics(cells[1])
        metrics = overload_bench_metrics(cells[0])
        assert metrics["shed_rate"] > 0
        assert metrics["goodput_qps"] > 0
        assert metrics["offered"] == metrics["admitted"] \
            + metrics["rejected_total"]


class TestServeWiring:
    """The full pipeline on the real analytic model (slower)."""

    def run_one(self, workers, metrics):
        # 0.8s at ~2x capacity: long enough that watermark shedding and
        # door rejections are both active, short enough to execute.
        spec = ArrivalSpec(process="poisson", rate_qps=64.0,
                           duration_s=0.8, seed=0)
        return run_overload_serve(
            spec, DEFAULT_TENANTS, AdmissionPolicy(),
            ServePolicy(seeds=(0,)), metrics=metrics, workers=workers,
            worker_metrics=MetricsRegistry() if workers > 1 else None)

    def test_workers_do_not_change_the_bytes(self):
        """Acceptance bar: byte-identical documents, decisions, and
        metric digests for --workers 1, 2, and 4 with shedding and
        rejections active (shed/rejected units exercise
        MetricsRegistry.merge on the pool paths)."""
        documents, digests = [], []
        for workers in (1, 2, 4):
            registry = MetricsRegistry()
            document, _ = self.run_one(workers, registry)
            documents.append(json.dumps(document, sort_keys=True))
            digests.append(registry.digest())
        assert documents[0] == documents[1] == documents[2]
        assert digests[0] == digests[1] == digests[2]
        summary = json.loads(documents[0])["admission"]["summary"]
        assert summary["shed_total"] > 0
        assert summary["rejected_total"] > 0

    def test_document_carries_the_admission_section(self):
        registry = MetricsRegistry()
        document, runner = self.run_one(1, registry)
        admission = document["admission"]
        summary = admission["summary"]
        assert summary["offered"] == summary["admitted"] \
            + summary["rejected_total"]
        assert summary["admitted"] == summary["completed"] \
            + summary["shed_total"]
        assert len(document["jobs"]) == summary["completed"]
        assert len(admission["decisions"]) >= summary["offered"]
        # simulation metrics landed in the registry
        assert registry.get("anaheim_admission_total").value(
            decision="admitted") == summary["admitted"]
        assert registry.get("anaheim_shed_total").value(
            reason="watermark") + registry.get(
                "anaheim_shed_total").value(reason="expired") == \
            summary["shed_total"]
