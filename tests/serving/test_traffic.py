"""Seeded open-loop traffic: determinism, parsing, capacity."""

import pytest

from repro.errors import ParameterError
from repro.serving.admission import CostModel
from repro.serving.traffic import (DEFAULT_TENANTS, ArrivalSpec,
                                   TenantSpec, capacity_qps,
                                   generate_arrivals, parse_arrival_spec,
                                   parse_tenants)

SPEC = ArrivalSpec(process="poisson", rate_qps=40.0, duration_s=2.0,
                   seed=7)


class TestParsing:
    def test_poisson_spec(self):
        spec = parse_arrival_spec("poisson:32", 1.5, seed=3)
        assert spec.process == "poisson"
        assert spec.rate_qps == 32.0
        assert spec.duration_s == 1.5
        assert spec.seed == 3

    def test_burst_spec_with_defaults(self):
        spec = parse_arrival_spec("burst:20", 1.0)
        assert (spec.burst_factor, spec.burst_period_s) == (4.0, 1.0)
        spec = parse_arrival_spec("burst:20:8:0.5", 1.0)
        assert (spec.burst_factor, spec.burst_period_s) == (8.0, 0.5)

    @pytest.mark.parametrize("text", ["poisson", "poisson:0", "drip:5",
                                      "poisson:abc", "burst:10:0.5"])
    def test_bad_specs_are_one_line_errors(self, text):
        with pytest.raises(ParameterError) as excinfo:
            parse_arrival_spec(text, 1.0)
        assert "\n" not in str(excinfo.value)

    def test_bad_duration(self):
        with pytest.raises(ParameterError, match="duration"):
            parse_arrival_spec("poisson:10", 0.0)

    def test_parse_tenants_reweights(self):
        tenants = parse_tenants("premium:5,batch:1")
        assert [t.name for t in tenants] == ["premium", "batch"]
        assert tenants[0].weight == 5.0
        # the attribute template comes from the base population
        assert tenants[0].deadline_s == DEFAULT_TENANTS[0].deadline_s

    def test_parse_tenants_zero_weight_drops(self):
        tenants = parse_tenants("premium:1,standard:0,batch:1")
        assert [t.name for t in tenants] == ["premium", "batch"]

    def test_parse_tenants_empty_returns_base(self):
        assert parse_tenants("") == tuple(DEFAULT_TENANTS)

    @pytest.mark.parametrize("text", ["nosuch:1", "premium", "premium:x",
                                      "premium:-1", "premium:0"])
    def test_bad_tenants_are_one_line_errors(self, text):
        with pytest.raises(ParameterError) as excinfo:
            parse_tenants(text)
        assert "\n" not in str(excinfo.value)


class TestGeneration:
    def test_same_spec_same_arrivals(self):
        first = generate_arrivals(SPEC)
        second = generate_arrivals(SPEC)
        assert first == second

    def test_seed_changes_the_stream(self):
        import dataclasses
        other = dataclasses.replace(SPEC, seed=8)
        assert generate_arrivals(SPEC) != generate_arrivals(other)

    def test_times_sorted_and_inside_duration(self):
        arrivals = generate_arrivals(SPEC)
        times = [a.t_s for a in arrivals]
        assert times == sorted(times)
        assert all(0.0 < t < SPEC.duration_s for t in times)
        assert [a.index for a in arrivals] == list(range(len(arrivals)))

    def test_rate_is_roughly_honored(self):
        long_spec = ArrivalSpec(process="poisson", rate_qps=100.0,
                                duration_s=20.0, seed=0)
        count = len(generate_arrivals(long_spec))
        assert 0.85 * 2000 < count < 1.15 * 2000

    def test_burst_offers_more_than_base_rate(self):
        base = ArrivalSpec(process="poisson", rate_qps=30.0,
                           duration_s=10.0, seed=1)
        burst = ArrivalSpec(process="burst", rate_qps=30.0,
                            duration_s=10.0, burst_factor=4.0, seed=1)
        assert len(generate_arrivals(burst)) > len(generate_arrivals(base))

    def test_tenant_mix_does_not_perturb_times(self):
        """Independent streams: reweighting tenants keeps arrival times
        comparable across campaigns."""
        first = [a.t_s for a in generate_arrivals(SPEC, DEFAULT_TENANTS)]
        second = [a.t_s for a in generate_arrivals(
            SPEC, parse_tenants("premium:1"))]
        assert first == second

    def test_attributes_come_from_the_tenant(self):
        for arrival in generate_arrivals(SPEC):
            tenant = {t.name: t for t in DEFAULT_TENANTS}[arrival.tenant]
            assert arrival.priority == tenant.priority
            assert arrival.deadline_s == tenant.deadline_s
            assert (arrival.kind, arrival.workload) in [
                (kind, wl) for kind, wl, _ in tenant.mix]

    def test_no_tenants_rejected(self):
        with pytest.raises(ParameterError, match="tenant"):
            generate_arrivals(SPEC, ())


class TestCapacity:
    def test_capacity_is_inverse_mean_cost(self):
        model = CostModel({"Boot": {"pim": 0.1, "gpu": 0.2}})
        tenants = (TenantSpec(name="solo", mix=(("run", "Boot", 1.0),)),)
        assert capacity_qps(model, tenants) == pytest.approx(10.0)
        assert capacity_qps(model, tenants, mode="gpu") == \
            pytest.approx(5.0)

    def test_weights_shift_capacity(self):
        model = CostModel({"Fast": {"pim": 0.1, "gpu": 0.1},
                           "Slow": {"pim": 0.4, "gpu": 0.4}})
        fast = (TenantSpec(name="t", mix=(("run", "Fast", 3.0),
                                          ("run", "Slow", 1.0))),)
        slow = (TenantSpec(name="t", mix=(("run", "Fast", 1.0),
                                          ("run", "Slow", 3.0))),)
        assert capacity_qps(model, fast) > capacity_qps(model, slow)
