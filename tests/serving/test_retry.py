"""Determinism and bounds of the seeded backoff policy.

The property the serving layer leans on: for a fixed ``(seed, key)``,
the backoff schedule is a pure function — two independently constructed
policies (a fresh run and a resumed one) must produce bit-identical
delays and identical retry decisions.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.serving.retry import RetryPolicy

keys = st.text(min_size=1, max_size=40)
seeds = st.integers(min_value=0, max_value=2 ** 32 - 1)


class TestDeterminism:
    @given(seed=seeds, key=keys,
           max_retries=st.integers(min_value=0, max_value=6))
    @settings(max_examples=60, deadline=None)
    def test_schedule_is_reproducible(self, seed, key, max_retries):
        first = RetryPolicy(max_retries=max_retries, seed=seed)
        second = RetryPolicy(max_retries=max_retries, seed=seed)
        assert first.schedule(key) == second.schedule(key)
        assert len(first.schedule(key)) == max_retries

    @given(seed=seeds, key=keys, attempt=st.integers(0, 5))
    @settings(max_examples=60, deadline=None)
    def test_delay_is_pure(self, seed, key, attempt):
        policy = RetryPolicy(seed=seed)
        assert policy.delay(key, attempt) == policy.delay(key, attempt)

    def test_different_keys_decorrelate(self):
        policy = RetryPolicy(seed=0)
        delays = {policy.delay(f"job/{i}", 0) for i in range(16)}
        assert len(delays) == 16

    def test_different_seeds_decorrelate(self):
        delays = {RetryPolicy(seed=s).delay("job/unit", 0)
                  for s in range(16)}
        assert len(delays) == 16


class TestBounds:
    @given(seed=seeds, key=keys, attempt=st.integers(0, 8),
           jitter=st.floats(0.0, 1.0, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_jitter_envelope(self, seed, key, attempt, jitter):
        policy = RetryPolicy(base_s=0.1, factor=2.0, jitter=jitter,
                             seed=seed)
        nominal = 0.1 * 2.0 ** attempt
        delay = policy.delay(key, attempt)
        assert nominal * (1 - jitter / 2) <= delay
        # upper bound is half-open, but allow fp rounding to collapse
        # the interval when jitter is denormal-tiny
        assert delay <= nominal * (1 + jitter / 2)

    def test_no_jitter_is_exact_exponential(self):
        policy = RetryPolicy(max_retries=4, base_s=0.5, factor=3.0,
                             jitter=0.0)
        assert policy.schedule("k") == (0.5, 1.5, 4.5, 13.5)

    @given(seed=seeds, key=keys)
    @settings(max_examples=40, deadline=None)
    def test_backoff_grows(self, seed, key):
        """With jitter < 2(factor-1)/(factor+1), delays strictly grow."""
        policy = RetryPolicy(max_retries=5, base_s=0.05, factor=2.0,
                             jitter=0.5, seed=seed)
        schedule = policy.schedule(key)
        assert all(a < b for a, b in zip(schedule, schedule[1:]))


class TestValidation:
    def test_rejects_bad_config(self):
        with pytest.raises(ParameterError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ParameterError):
            RetryPolicy(factor=0.0)
        with pytest.raises(ParameterError):
            RetryPolicy(jitter=1.5)

    def test_canonical_roundtrip(self):
        policy = RetryPolicy(max_retries=3, base_s=0.1, factor=1.5,
                             jitter=0.25, seed=7)
        assert RetryPolicy(**policy.canonical()) == policy
