"""JobRunner behavior with a stubbed unit executor.

The stub lets these tests pin down the *service* semantics — retry
decisions, deadlines, interruption, checkpoint/resume byte-identity,
degradation carry-over — without paying for real scheduler runs (the
end-to-end versions live in test_serve_e2e.py).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DeadlineError, FaultError, ParameterError
from repro.serving.jobs import (JobRunner, JobSpec, ServePolicy,
                                parse_job_spec, parse_jobs)


class StubRunner(JobRunner):
    """JobRunner whose units are scripted: ``failures[key]`` attempts
    raise FaultError before one succeeds; executions are logged."""

    def __init__(self, *args, failures=None, end_states=None, **kwargs):
        super().__init__(*args, **kwargs)
        self.failures = dict(failures or {})
        self.end_states = dict(end_states or {})
        self.calls = []

    def _execute_unit(self, job, unit, degraded):
        key = f"{job.id}:{unit}"
        self.calls.append((key, degraded))
        if self.failures.get(key, 0) > 0:
            self.failures[key] -= 1
            raise FaultError(f"scripted failure for {key}")
        return {"unit": unit, "degraded": degraded,
                "end_state": self.end_states.get(key, "healthy")}


def run_job(workloads=("Boot",), **kwargs):
    jobs = [JobSpec(id="0-run", kind="run", workloads=tuple(workloads))]
    policy = kwargs.pop("policy", ServePolicy())
    runner = StubRunner(jobs, policy, **kwargs)
    return runner, runner.run()


class TestRetries:
    def test_success_first_try(self):
        runner, doc = run_job()
        unit = doc["jobs"][0]["units"]["Boot"]
        assert unit["status"] == "ok"
        assert unit["attempts"] == 1
        assert unit["backoff_s"] == []
        assert doc["ok"]

    def test_retry_then_success(self):
        runner, doc = run_job(failures={"0-run:Boot": 2})
        unit = doc["jobs"][0]["units"]["Boot"]
        assert unit["status"] == "ok"
        assert unit["attempts"] == 3
        assert len(unit["backoff_s"]) == 2
        assert doc["jobs"][0]["retries"] == 2
        assert doc["jobs"][0]["service_time_s"] == pytest.approx(
            sum(unit["backoff_s"]))

    def test_budget_exhausted_fails_the_unit(self):
        runner, doc = run_job(failures={"0-run:Boot": 99},
                              policy=ServePolicy(max_retries=2))
        unit = doc["jobs"][0]["units"]["Boot"]
        assert unit["status"] == "failed"
        assert unit["attempts"] == 3
        assert unit["error"].startswith("FaultError:")
        assert "\n" not in unit["error"]
        assert doc["jobs"][0]["status"] == "failed"
        assert not doc["ok"]

    def test_backoff_matches_the_policy_schedule(self):
        policy = ServePolicy(max_retries=2, seed=5)
        runner, doc = run_job(failures={"0-run:Boot": 2}, policy=policy)
        unit = doc["jobs"][0]["units"]["Boot"]
        assert tuple(unit["backoff_s"]) == \
            policy.retry_policy().schedule("0-run:Boot")

    @given(seed=st.integers(0, 2 ** 16),
           pattern=st.lists(st.integers(0, 4), min_size=1, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_retry_decisions_are_deterministic(self, seed, pattern):
        """Same (seed, failure pattern) -> identical retry decisions
        and backoff schedules across independent runners."""
        workloads = [f"W{i}" for i in range(len(pattern))]
        failures = {f"0-run:W{i}": n for i, n in enumerate(pattern)}
        policy = ServePolicy(seed=seed, max_retries=3)

        docs = []
        for _ in range(2):
            jobs = [JobSpec(id="0-run", kind="run",
                            workloads=tuple(workloads))]
            runner = StubRunner(jobs, policy, failures=dict(failures))
            docs.append(runner.run())
        assert json.dumps(docs[0]) == json.dumps(docs[1])
        for i, n in enumerate(pattern):
            unit = docs[0]["jobs"][0]["units"][f"W{i}"]
            expected_attempts = min(n, 3) + 1
            assert unit["attempts"] == expected_attempts
            assert len(unit["backoff_s"]) == min(n, 3)


class TestDeadlines:
    def test_deadline_skips_remaining_units(self):
        ticks = iter([0.0, 0.0, 10.0, 10.0, 10.0, 10.0])
        runner, doc = run_job(
            workloads=("Boot", "HELR", "Sort"),
            policy=ServePolicy(deadline_s=5.0),
            clock=lambda: next(ticks))
        units = doc["jobs"][0]["units"]
        assert units["Boot"]["status"] == "ok"
        assert units["HELR"] == {"status": "deadline-skipped"}
        assert units["Sort"] == {"status": "deadline-skipped"}
        assert doc["jobs"][0]["status"] == "deadline-exceeded"
        assert not doc["ok"]

    def test_deadline_fatal_raises(self):
        ticks = iter([0.0, 0.0, 10.0])
        with pytest.raises(DeadlineError, match="deadline"):
            run_job(workloads=("Boot", "HELR"),
                    policy=ServePolicy(deadline_s=5.0),
                    clock=lambda: next(ticks), deadline_fatal=True)

    def test_deadline_is_per_job(self):
        """A slow first job must not consume the second job's budget."""
        clock = {"now": 0.0}

        class SlowStub(StubRunner):
            def _execute_unit(self, job, unit, degraded):
                clock["now"] += 10.0
                return super()._execute_unit(job, unit, degraded)

        jobs = [JobSpec(id="0-run", kind="run", workloads=("Boot",)),
                JobSpec(id="1-run", kind="run", workloads=("HELR",))]
        runner = SlowStub(jobs, ServePolicy(deadline_s=5.0),
                          clock=lambda: clock["now"])
        doc = runner.run()
        assert doc["jobs"][0]["units"]["Boot"]["status"] == "ok"
        assert doc["jobs"][1]["units"]["HELR"]["status"] == "ok"


class TestInterruptAndResume:
    def test_max_units_interrupts(self, tmp_path):
        ckpt = tmp_path / "ck.json"
        jobs = [JobSpec(id="0-run", kind="run",
                        workloads=("Boot", "HELR", "Sort"))]
        runner = StubRunner(jobs, ServePolicy(), checkpoint_path=ckpt,
                            max_units=2)
        doc = runner.run()
        assert doc["interrupted"]
        assert not doc["ok"]
        assert len(runner.calls) == 2
        assert ckpt.exists()

    def test_resume_is_byte_identical(self, tmp_path):
        ckpt = tmp_path / "ck.json"
        policy = ServePolicy(max_retries=2, seed=3)
        failures = {"0-run:HELR": 1}

        def make(**kwargs):
            jobs = [JobSpec(id="0-run", kind="run",
                            workloads=("Boot", "HELR", "Sort"))]
            return StubRunner(jobs, policy, failures=dict(failures),
                              **kwargs)

        clean = make().run()
        killed = make(checkpoint_path=ckpt, max_units=1).run()
        assert killed["interrupted"]
        resumed_runner = make(checkpoint_path=ckpt, resume_path=ckpt)
        resumed = resumed_runner.run()

        assert json.dumps(clean, indent=2) == json.dumps(resumed, indent=2)
        assert resumed_runner.resumed_units == 1
        # the resumed runner re-executed only the remaining units
        assert [key for key, _ in resumed_runner.calls] == \
            ["0-run:HELR", "0-run:HELR", "0-run:Sort"]

    def test_resume_into_changed_matrix_refuses(self, tmp_path):
        from repro.errors import CheckpointError
        ckpt = tmp_path / "ck.json"
        jobs = [JobSpec(id="0-run", kind="run", workloads=("Boot",))]
        StubRunner(jobs, ServePolicy(), checkpoint_path=ckpt).run()
        other = [JobSpec(id="0-run", kind="run", workloads=("Sort",))]
        with pytest.raises(CheckpointError, match="digest mismatch"):
            StubRunner(other, ServePolicy(), resume_path=ckpt)


class TestDegradationCarryOver:
    def test_gpu_only_unit_degrades_the_rest_of_the_job(self):
        runner, doc = run_job(
            workloads=("Boot", "HELR", "Sort"),
            end_states={"0-run:Boot": "gpu-only"})
        assert runner.calls == [("0-run:Boot", False),
                                ("0-run:HELR", True),
                                ("0-run:Sort", True)]

    def test_healthy_units_do_not_degrade(self):
        runner, doc = run_job(workloads=("Boot", "HELR"))
        assert runner.calls == [("0-run:Boot", False),
                                ("0-run:HELR", False)]

    def test_degradation_does_not_leak_across_jobs(self):
        jobs = [JobSpec(id="0-run", kind="run", workloads=("Boot",)),
                JobSpec(id="1-run", kind="run", workloads=("HELR",))]
        runner = StubRunner(jobs, ServePolicy(),
                            end_states={"0-run:Boot": "gpu-only"})
        runner.run()
        assert runner.calls == [("0-run:Boot", False),
                                ("1-run:HELR", False)]

    def test_degraded_start_skips_straight_to_gpu(self):
        """A brownout decision made at admission time (``degraded_start``)
        dispatches every unit degraded from the first."""
        jobs = [JobSpec(id="0-run", kind="run", workloads=("Boot", "HELR"),
                        degraded_start=True)]
        runner = StubRunner(jobs, ServePolicy())
        runner.run()
        assert runner.calls == [("0-run:Boot", True),
                                ("0-run:HELR", True)]

    def test_carry_over_survives_resume(self, tmp_path):
        """The degradation signal rides in the checkpointed docs."""
        ckpt = tmp_path / "ck.json"
        end_states = {"0-run:Boot": "gpu-only"}

        def make(**kwargs):
            jobs = [JobSpec(id="0-run", kind="run",
                            workloads=("Boot", "HELR"))]
            return StubRunner(jobs, ServePolicy(),
                              end_states=dict(end_states), **kwargs)

        make(checkpoint_path=ckpt, max_units=1).run()
        resumed = make(resume_path=ckpt)
        resumed.run()
        assert resumed.calls == [("0-run:HELR", True)]


class TestSpecs:
    def test_parse_run(self):
        spec = parse_job_spec("run:Boot,HELR", 0)
        assert spec.kind == "run"
        assert spec.workloads == ("Boot", "HELR")
        assert spec.units((0,)) == ["Boot", "HELR"]

    def test_parse_faults(self):
        spec = parse_job_spec("faults:analytic:HELR", 2)
        assert spec.id == "2-faults"
        assert spec.layers == ("analytic",)
        assert spec.units((0, 1)) == ["analytic/0", "analytic/1"]

    def test_parse_faults_both_layers(self):
        spec = parse_job_spec("faults", 0)
        assert spec.units((7,)) == ["functional/7", "analytic/7"]

    @pytest.mark.parametrize("token", [
        "run", "run:", "run:NoSuchWorkload", "faults:neither",
        "faults:analytic:NoSuchWorkload", "deploy:Boot",
    ])
    def test_bad_specs_raise_cleanly(self, token):
        with pytest.raises(ParameterError) as excinfo:
            parse_job_spec(token, 0)
        assert "\n" not in str(excinfo.value)

    def test_parse_jobs_requires_at_least_one(self):
        with pytest.raises(ParameterError):
            parse_jobs([])
