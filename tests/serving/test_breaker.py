"""The circuit-breaker state machine on the simulated clock."""

import pytest

from repro.errors import ParameterError
from repro.serving.breaker import (DEVICES, BreakerBoard, BreakerState,
                                   CircuitBreaker)


def test_stays_closed_below_threshold():
    breaker = CircuitBreaker("pim", threshold=3)
    breaker.record_failure(0.0)
    breaker.record_failure(0.1)
    assert breaker.state is BreakerState.CLOSED
    assert breaker.allow(0.2)


def test_opens_after_consecutive_failures():
    breaker = CircuitBreaker("pim", threshold=3, cooldown_s=1.0)
    assert not breaker.record_failure(0.0)
    assert not breaker.record_failure(0.1)
    assert breaker.record_failure(0.2)      # third one opens it
    assert breaker.state is BreakerState.OPEN
    assert not breaker.allow(0.5)           # still cooling down
    assert breaker.rejected == 1


def test_success_resets_the_consecutive_count():
    breaker = CircuitBreaker("pim", threshold=3)
    breaker.record_failure(0.0)
    breaker.record_failure(0.1)
    breaker.record_success(0.2)
    breaker.record_failure(0.3)
    breaker.record_failure(0.4)
    assert breaker.state is BreakerState.CLOSED
    assert breaker.failures == 4


def test_half_open_probe_closes_on_success():
    breaker = CircuitBreaker("pim", threshold=1, cooldown_s=1.0)
    breaker.record_failure(0.0)
    assert breaker.state is BreakerState.OPEN
    assert breaker.allow(1.5)               # cooldown elapsed: probe admitted
    assert breaker.state is BreakerState.HALF_OPEN
    breaker.record_success(1.6)
    assert breaker.state is BreakerState.CLOSED
    assert breaker.allow(1.7)


def test_half_open_probe_reopens_on_failure():
    breaker = CircuitBreaker("pim", threshold=2, cooldown_s=1.0)
    breaker.record_failure(0.0)
    breaker.record_failure(0.1)
    assert breaker.allow(1.2)
    assert breaker.state is BreakerState.HALF_OPEN
    assert breaker.record_failure(1.3)      # single probe failure reopens
    assert breaker.state is BreakerState.OPEN
    assert breaker.open_until == pytest.approx(2.3)
    assert not breaker.allow(2.0)
    assert breaker.allow(2.4)


def test_events_trace_the_transitions():
    breaker = CircuitBreaker("transfer", threshold=1, cooldown_s=0.5)
    breaker.record_failure(1.0)
    breaker.allow(1.6)
    breaker.record_success(1.7)
    transitions = [(e["from"], e["to"]) for e in breaker.events]
    assert transitions == [("closed", "open"), ("open", "half-open"),
                           ("half-open", "closed")]
    assert all("at_s" in e and "reason" in e for e in breaker.events)


def test_summary_is_json_safe():
    import json
    breaker = CircuitBreaker("gpu", threshold=1)
    breaker.record_failure(0.0)
    doc = breaker.summary()
    assert json.loads(json.dumps(doc)) == doc
    assert doc["state"] == "open"
    assert doc["opens"] == 1


def test_validation():
    with pytest.raises(ParameterError):
        CircuitBreaker("pim", threshold=0)
    with pytest.raises(ParameterError):
        CircuitBreaker("pim", cooldown_s=-1.0)


class TestBoard:
    def test_devices_are_independent(self):
        board = BreakerBoard(threshold=1, cooldown_s=10.0)
        board.record_failure("pim", 0.0)
        assert not board.allow("pim", 0.1)
        assert board.allow("gpu", 0.1)
        assert board.allow("transfer", 0.1)

    def test_unknown_device_is_allowed(self):
        board = BreakerBoard(threshold=1)
        assert board.allow("fpga", 0.0)
        assert not board.record_failure("fpga", 0.0)

    def test_summary_covers_all_devices(self):
        board = BreakerBoard()
        assert set(board.summary()) == set(DEVICES)
