"""Metrics instrumentation of the serving stack.

Pins the satellite requirement that breaker/health *gauge* transitions
agree with the resilient scheduler's ``fault_summary`` counters: the
same run observed through the metrics registry and through the report
must tell one story.
"""

import pytest

from repro.core.framework import AnaheimFramework
from repro.faults.plan import default_plan
from repro.gpu.configs import A100_80GB
from repro.obs.metrics import MetricsRegistry
from repro.pim.configs import A100_NEAR_BANK
from repro.serving import BreakerBoard, HealthMonitor, JobRunner, \
    ServePolicy, parse_jobs
from repro.serving.breaker import STATE_VALUES, BreakerState, \
    CircuitBreaker
from repro.serving.health import _ORDER, DegradationState


class TestBreakerGauge:
    def test_initial_state_published_closed(self):
        registry = MetricsRegistry()
        CircuitBreaker(device="pim", metrics=registry)
        gauge = registry.get("anaheim_breaker_state")
        assert gauge.value(device="pim") == STATE_VALUES[
            BreakerState.CLOSED]

    def test_gauge_tracks_every_transition(self):
        registry = MetricsRegistry()
        breaker = CircuitBreaker(device="pim", threshold=2,
                                 cooldown_s=1.0, metrics=registry)
        gauge = registry.get("anaheim_breaker_state")

        breaker.record_failure(0.0)
        assert gauge.value(device="pim") == 0  # still closed
        breaker.record_failure(0.1)            # threshold hit -> OPEN
        assert gauge.value(device="pim") == STATE_VALUES[
            BreakerState.OPEN]
        assert breaker.allow(2.0)              # cooldown -> HALF_OPEN
        assert gauge.value(device="pim") == STATE_VALUES[
            BreakerState.HALF_OPEN]
        breaker.record_success(2.1)            # probe ok -> CLOSED
        assert gauge.value(device="pim") == STATE_VALUES[
            BreakerState.CLOSED]

        # The transitions counter (declared lazily on the first
        # transition) replays the breaker's own event log.
        transitions = registry.get("anaheim_breaker_transitions_total")
        for state in ("open", "half-open", "closed"):
            recorded = sum(1 for e in breaker.events if e["to"] == state)
            assert transitions.value(device="pim", to=state) == recorded
        assert sum(transitions.value(device="pim", to=s)
                   for s in ("open", "half-open", "closed")) == \
            len(breaker.events)

    def test_board_publishes_one_gauge_per_device(self):
        registry = MetricsRegistry()
        BreakerBoard(metrics=registry)
        gauge = registry.get("anaheim_breaker_state")
        samples = gauge.snapshot_samples()
        assert {s["labels"]["device"] for s in samples} == \
            {"gpu", "pim", "transfer"}
        assert all(s["value"] == 0 for s in samples)


class TestDegradationGauge:
    def test_gauge_matches_order_index_through_escalation(self):
        registry = MetricsRegistry()
        health = HealthMonitor(degraded_after=1, gpu_only_after=2,
                               metrics=registry)
        gauge = registry.get("anaheim_degradation_state")
        assert gauge.value() == 0

        health.note_quarantine(3, now=0.5)
        assert health.state is DegradationState.PIM_DEGRADED
        assert gauge.value() == _ORDER.index(health.state) == 1
        health.note_quarantine(7, now=0.9)
        assert health.state is DegradationState.GPU_ONLY
        assert gauge.value() == _ORDER.index(health.state) == 2
        health.note_breaker_open("gpu", now=1.0)
        assert gauge.value() == _ORDER.index(DegradationState.FAILED)

        # One escalation event per counted transition, by target state.
        counter = registry.get("anaheim_degradation_transitions_total")
        for state in ("pim-degraded", "gpu-only", "failed"):
            recorded = sum(1 for e in health.events if e["to"] == state)
            assert counter.value(to=state) == recorded
        assert len(health.events) == 3

    def test_escalation_only_moves_forward(self):
        registry = MetricsRegistry()
        health = HealthMonitor(metrics=registry)
        health.escalate(DegradationState.GPU_ONLY, 0.0, "forced")
        assert not health.escalate(DegradationState.PIM_DEGRADED, 1.0,
                                   "ignored")
        assert registry.get("anaheim_degradation_state").value() == 2
        assert registry.get(
            "anaheim_degradation_transitions_total").value(
                to="pim-degraded") == 0


class TestSchedulerCountersMatchSummary:
    @pytest.fixture(scope="class")
    def faulted(self):
        """One degrading Boot run observed through a fresh registry."""
        from repro.params import paper_params
        from repro.workloads.applications import build
        params = paper_params()
        workload = build("Boot", params)
        registry = MetricsRegistry()
        plan = default_plan(seed=0, stuck_sites=(1, 5))
        health = HealthMonitor(degraded_after=1, gpu_only_after=2,
                               metrics=registry)
        breakers = BreakerBoard(metrics=registry)
        framework = AnaheimFramework(
            A100_80GB, A100_NEAR_BANK, fault_plan=plan, health=health,
            breakers=breakers, metrics=registry)
        result = framework.run(workload.blocks, params.degree,
                               label="Boot (metrics)")
        return registry, result.report.fault_summary, health, breakers

    def test_fault_event_counters_equal_summary(self, faulted):
        registry, summary, _, _ = faulted
        faults = registry.get("anaheim_fault_events_total")
        for event in ("injected", "benign", "detected"):
            assert faults.value(event=event) == summary[event], event
        assert faults.value(event="rerouted") == summary["rerouted"]
        assert faults.value(event="degraded_reroute") == \
            summary["degraded_reroutes"]
        assert faults.value(event="quarantine") == \
            len(summary["quarantined_sites"])

    def test_degradation_gauge_matches_summary_state(self, faulted):
        registry, summary, health, _ = faulted
        degradation = summary["degradation"]
        assert degradation["state"] == health.state.value
        gauge = registry.get("anaheim_degradation_state")
        assert gauge.value() == _ORDER.index(health.state)
        counter = registry.get("anaheim_degradation_transitions_total")
        total = sum(counter.value(to=s.value) for s in DegradationState)
        assert total == len(degradation["events"])

    def test_breaker_gauges_match_summary_states(self, faulted):
        registry, summary, _, breakers = faulted
        gauge = registry.get("anaheim_breaker_state")
        recorded = registry.get("anaheim_breaker_transitions_total")
        for device, info in summary["breakers"].items():
            state = BreakerState(info["state"])
            assert gauge.value(device=device) == STATE_VALUES[state], \
                device
            total = 0 if recorded is None else sum(
                recorded.value(device=device, to=s.value)
                for s in BreakerState)
            assert total == len(info["events"])


class TestJobRunnerMetrics:
    def test_serve_units_and_latency_histogram(self):
        jobs = parse_jobs(["faults:analytic:Boot"])
        policy = ServePolicy(seeds=(0, 1), stuck_sites=(1, 5),
                             degraded_after=1, gpu_only_after=2)
        registry = MetricsRegistry()
        result = JobRunner(jobs, policy, metrics=registry).run()
        assert result["ok"]

        units = registry.get("anaheim_serve_units_total")
        assert units.value(kind="faults", status="ok") == 2
        hist = registry.get("anaheim_serve_unit_seconds")
        assert hist.count(kind="faults", workload="Boot") == 2
        # Simulated (faulted) time, not wall clock: the histogram sum
        # replays the units' own reported faulted_time_s.
        simulated = sum(
            u["result"]["faulted_time_s"]
            for u in result["jobs"][0]["units"].values())
        assert hist.sum(kind="faults", workload="Boot") == \
            pytest.approx(simulated)

    def test_restored_units_counted_not_reobserved(self, tmp_path):
        jobs = parse_jobs(["faults:analytic:Boot"])
        policy = ServePolicy(seeds=(0, 1), stuck_sites=(1, 5),
                             degraded_after=1, gpu_only_after=2)
        ckpt = tmp_path / "ck.json"
        JobRunner(jobs, policy, checkpoint_path=ckpt, max_units=1).run()

        registry = MetricsRegistry()
        result = JobRunner(jobs, policy, checkpoint_path=ckpt,
                           resume_path=ckpt, metrics=registry).run()
        assert result["ok"]
        assert registry.get(
            "anaheim_serve_units_restored_total").value() == 1
        # Only the freshly-executed unit lands in the latency histogram.
        assert registry.get("anaheim_serve_unit_seconds").count(
            kind="faults", workload="Boot") == 1

    def test_on_unit_fires_for_fresh_and_restored(self, tmp_path):
        jobs = parse_jobs(["faults:analytic:Boot"])
        policy = ServePolicy(seeds=(0, 1), stuck_sites=(1, 5),
                             degraded_after=1, gpu_only_after=2)
        ckpt = tmp_path / "ck.json"
        JobRunner(jobs, policy, checkpoint_path=ckpt, max_units=1).run()

        seen = []
        JobRunner(jobs, policy, checkpoint_path=ckpt, resume_path=ckpt,
                  on_unit=lambda job, unit, doc, fresh:
                  seen.append((unit, fresh))).run()
        assert sorted(seen) == [("analytic/0", False),
                                ("analytic/1", True)]
