"""Admission control: buckets, bounded queues, shedding, brownout."""

import pytest

from repro.errors import AdmissionError, ParameterError, ReproError
from repro.serving.admission import (AdmissionController, AdmissionPolicy,
                                     BoundedQueue, CostModel, QueueItem,
                                     TokenBucket)
from repro.serving.health import DegradationState, HealthMonitor
from repro.serving.traffic import Arrival, TenantSpec

MODEL = CostModel({"Boot": {"pim": 0.1, "gpu": 0.2}})

TENANTS = (
    TenantSpec(name="gold", priority=0, deadline_s=0.5,
               mix=(("run", "Boot", 1.0),)),
    TenantSpec(name="bulk", priority=2, deadline_s=None, rate_qps=2.0,
               burst=1, mix=(("run", "Boot", 1.0),)),
)


def arrival(index=0, t_s=0.0, tenant="gold", priority=0,
            deadline_s=0.5) -> Arrival:
    return Arrival(index=index, t_s=t_s, tenant=tenant, kind="run",
                   workload="Boot", priority=priority,
                   deadline_s=deadline_s)


def controller(policy=None, health=None, tenants=TENANTS,
               metrics=None) -> AdmissionController:
    return AdmissionController(policy or AdmissionPolicy(),
                               MODEL, tenants, health=health,
                               metrics=metrics)


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate_qps=1.0, burst=2)
        assert bucket.allow(0.0)
        assert bucket.allow(0.0)
        assert not bucket.allow(0.0)        # burst spent
        assert bucket.allow(1.0)            # one token back after 1s
        assert not bucket.allow(1.0)

    def test_uncapped(self):
        bucket = TokenBucket(rate_qps=None)
        assert all(bucket.allow(0.0) for _ in range(100))

    def test_time_never_runs_backwards(self):
        bucket = TokenBucket(rate_qps=1.0, burst=1)
        assert bucket.allow(5.0)
        assert not bucket.allow(4.0)        # stale clock: no refill
        assert bucket.allow(6.0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            TokenBucket(rate_qps=0.0)
        with pytest.raises(ParameterError):
            TokenBucket(rate_qps=1.0, burst=0)


class TestBoundedQueue:
    def item(self, priority, seq, cost=0.1):
        return QueueItem(arrival=arrival(index=seq, priority=priority,
                                         deadline_s=None),
                         seq=seq, enqueued_s=0.0, cost_s=cost)

    def test_pop_order_priority_then_fifo(self):
        queue = BoundedQueue(cap=8)
        for priority, seq in ((2, 0), (0, 1), (1, 2), (0, 3)):
            queue.push(self.item(priority, seq))
        order = [queue.pop().seq for _ in range(4)]
        assert order == [1, 3, 2, 0]

    def test_full_raises_one_line_admission_error(self):
        queue = BoundedQueue(cap=1)
        queue.push(self.item(0, 0))
        with pytest.raises(AdmissionError) as excinfo:
            queue.push(self.item(0, 1))
        assert "\n" not in str(excinfo.value)

    def test_shed_removes_lowest_priority_newest_first(self):
        queue = BoundedQueue(cap=8, high_watermark=4, low_watermark=2)
        for priority, seq in ((0, 0), (1, 1), (2, 2), (2, 3)):
            queue.push(self.item(priority, seq))
        victims = [v.seq for v in queue.shed_to_low_watermark()]
        assert victims == [3, 2]
        assert queue.depth == 2

    def test_backlog_and_peak(self):
        queue = BoundedQueue(cap=4)
        queue.push(self.item(0, 0, cost=0.2))
        queue.push(self.item(0, 1, cost=0.3))
        assert queue.backlog_s() == pytest.approx(0.5)
        queue.pop()
        assert queue.peak_depth == 2

    def test_watermark_validation(self):
        with pytest.raises(ParameterError):
            BoundedQueue(cap=0)
        with pytest.raises(ParameterError):
            BoundedQueue(cap=4, high_watermark=5)
        with pytest.raises(ParameterError):
            BoundedQueue(cap=4, high_watermark=2, low_watermark=2)

    def test_pop_empty(self):
        with pytest.raises(ReproError):
            BoundedQueue(cap=1).pop()


class TestCostModel:
    def test_mode_selects_cost(self):
        assert MODEL.cost("run", "Boot", "pim") == 0.1
        assert MODEL.cost("run", "Boot", "gpu") == 0.2

    def test_unknown_workload(self):
        with pytest.raises(ParameterError, match="Sort"):
            MODEL.cost("run", "Sort")

    def test_empty_model(self):
        with pytest.raises(ParameterError):
            CostModel({})


class TestAdmission:
    def test_admit_enqueues(self):
        ctl = controller()
        ctl.admit(arrival(), 0.0)
        assert ctl.queue.depth == 1

    def test_rate_limited_tenant_rejected(self):
        ctl = controller()
        ctl.admit(arrival(index=0, tenant="bulk", priority=2,
                          deadline_s=None), 0.0)
        with pytest.raises(AdmissionError, match="rate-limited") as exc:
            ctl.admit(arrival(index=1, tenant="bulk", priority=2,
                              deadline_s=None), 0.0)
        assert "\n" not in str(exc.value)

    def test_queue_full_rejected(self):
        ctl = controller(AdmissionPolicy(queue_cap=2, high_watermark=2,
                                         low_watermark=1,
                                         shed_policy="none"))
        for index in range(2):
            ctl.admit(arrival(index=index, deadline_s=None), 0.0)
        with pytest.raises(AdmissionError, match="queue full"):
            ctl.admit(arrival(index=2, deadline_s=None), 0.0)

    def test_deadline_infeasible_rejected_at_the_door(self):
        ctl = controller()
        # Server backlog alone pushes predicted completion past 0.5s.
        with pytest.raises(AdmissionError, match="deadline") as exc:
            ctl.admit(arrival(), 0.0, server_backlog_s=1.0)
        assert "\n" not in str(exc.value)
        assert ctl.queue.depth == 0         # rejected before enqueue

    def test_queue_backlog_counts_toward_prediction(self):
        ctl = controller()
        for index in range(5):              # 0.5s queued ahead
            ctl.admit(arrival(index=index, deadline_s=None), 0.0)
        with pytest.raises(AdmissionError, match="deadline"):
            ctl.admit(arrival(index=9), 0.0)

    def test_offer_records_decisions(self):
        ctl = controller()
        ctl.offer(arrival(index=0), 0.0)
        ctl.offer(arrival(index=1), 0.0, server_backlog_s=5.0)
        assert [d["decision"] for d in ctl.decisions] == \
            ["admitted", "rejected"]
        assert ctl.decisions[1]["reason"] == "deadline-infeasible"
        assert ctl.counts["admitted"] == 1
        assert ctl.counts["deadline-infeasible"] == 1

    def test_watermark_shedding_on_offer(self):
        policy = AdmissionPolicy(queue_cap=4, high_watermark=3,
                                 low_watermark=1)
        ctl = controller(policy)
        for index in range(3):
            ctl.offer(arrival(index=index, deadline_s=None,
                              priority=index), 0.0)
        assert ctl.queue.depth == 1         # shed back to the low mark
        assert ctl.shed_counts["watermark"] == 2
        shed = [d for d in ctl.decisions if d["decision"] == "shed"]
        assert [d["index"] for d in shed] == [2, 1]

    def test_shed_policy_none_keeps_the_queue(self):
        policy = AdmissionPolicy(queue_cap=4, high_watermark=3,
                                 low_watermark=1, shed_policy="none")
        ctl = controller(policy)
        for index in range(4):
            ctl.offer(arrival(index=index, deadline_s=None), 0.0)
        assert ctl.queue.depth == 4
        assert ctl.shed_counts["watermark"] == 0

    def test_unknown_shed_policy(self):
        with pytest.raises(ParameterError, match="shed"):
            controller(AdmissionPolicy(shed_policy="random"))


class TestBrownout:
    def policy(self):
        return AdmissionPolicy(queue_cap=8, high_watermark=6,
                               low_watermark=2, brownout_after=3,
                               brownout_deadline_factor=2.0)

    def hot_controller(self, health):
        ctl = controller(self.policy(), health=health)
        # Sustained pressure: keep the depth at/above the low watermark.
        for index in range(20):
            ctl.offer(arrival(index=index, deadline_s=None), 0.0)
        return ctl

    def test_sustained_pressure_escalates(self):
        health = HealthMonitor()
        self.hot_controller(health)
        assert health.state is DegradationState.GPU_ONLY
        reasons = [event["reason"] for event in health.events]
        assert any("brownout" in reason for reason in reasons)

    def test_deadline_widening_tracks_the_level(self):
        health = HealthMonitor()
        ctl = controller(self.policy(), health=health)
        assert ctl.effective_deadline(arrival()) == pytest.approx(0.5)
        health.escalate(DegradationState.PIM_DEGRADED, 0.0, "test")
        assert ctl.effective_deadline(arrival()) == pytest.approx(1.0)
        health.escalate(DegradationState.GPU_ONLY, 0.0, "test")
        assert ctl.effective_deadline(arrival()) == pytest.approx(2.0)
        assert ctl.mode == "gpu"

    def test_light_load_never_browns_out(self):
        health = HealthMonitor()
        ctl = controller(self.policy(), health=health)
        for index in range(20):             # queue drained every time
            ctl.offer(arrival(index=index, deadline_s=None), 0.0)
            ctl.queue.pop()
        assert health.state is DegradationState.HEALTHY
        assert ctl.mode == "pim"

    def test_no_health_monitor_is_fine(self):
        ctl = self.hot_controller(None)
        assert ctl.mode == "pim"
        assert ctl.deadline_factor() == 1.0


class TestMetrics:
    def test_admission_families_recorded(self):
        from repro.obs.metrics import MetricsRegistry
        registry = MetricsRegistry()
        ctl = controller(AdmissionPolicy(queue_cap=4, high_watermark=3,
                                         low_watermark=1),
                         metrics=registry)
        for index in range(3):
            ctl.offer(arrival(index=index, deadline_s=None), 0.0)
        ctl.offer(arrival(index=3), 0.0, server_backlog_s=9.0)
        ctl.record_wait(0.05)
        assert registry.get("anaheim_admission_total").value(
            decision="admitted") == 3
        assert registry.get("anaheim_admission_total").value(
            decision="deadline-infeasible") == 1
        assert registry.get("anaheim_shed_total").value(
            reason="watermark") == 2
        assert registry.get("anaheim_queue_depth_peak").value() == 3
        wait = registry.get("anaheim_queue_wait_seconds")
        assert wait.snapshot_samples()[0]["count"] == 1
