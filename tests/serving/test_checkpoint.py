"""Checkpoint persistence, validation, and crash-safety."""

import json

import pytest

from repro.errors import CheckpointError, SerializationError
from repro.serving.checkpoint import (CHECKPOINT_KIND, Checkpointer,
                                      load_checkpoint, matrix_digest)

DIGEST = matrix_digest([{"id": "0-run", "kind": "run"}], {"seed": 0})


def test_digest_is_stable_and_input_sensitive():
    same = matrix_digest([{"id": "0-run", "kind": "run"}], {"seed": 0})
    assert same == DIGEST
    other = matrix_digest([{"id": "0-run", "kind": "run"}], {"seed": 1})
    assert other != DIGEST


def test_record_flush_load_roundtrip(tmp_path):
    path = tmp_path / "ck.json"
    ckpt = Checkpointer(path, DIGEST, every=1)
    ckpt.record("0-run:Boot", {"status": "ok", "result": {"x": 1}})
    assert json.loads(path.read_text())["kind"] == CHECKPOINT_KIND
    units = load_checkpoint(path, DIGEST)
    assert units == {"0-run:Boot": {"status": "ok", "result": {"x": 1}}}


def test_write_interval_batches_flushes(tmp_path):
    path = tmp_path / "ck.json"
    ckpt = Checkpointer(path, DIGEST, every=2)
    ckpt.record("a", {"status": "ok"})
    assert not path.exists()            # below the interval: not yet
    ckpt.record("b", {"status": "ok"})
    assert len(load_checkpoint(path, DIGEST)) == 2
    ckpt.record("c", {"status": "ok"})
    assert len(load_checkpoint(path, DIGEST)) == 2
    ckpt.flush()
    assert len(load_checkpoint(path, DIGEST)) == 3


def test_no_path_means_no_io(tmp_path):
    ckpt = Checkpointer(None, DIGEST)
    ckpt.record("a", {"status": "ok"})
    ckpt.flush()
    assert list(tmp_path.iterdir()) == []


def test_missing_file(tmp_path):
    with pytest.raises(CheckpointError, match="no checkpoint"):
        load_checkpoint(tmp_path / "absent.json", DIGEST)


def test_corrupt_file_is_one_line(tmp_path):
    path = tmp_path / "ck.json"
    Checkpointer(path, DIGEST).record("a", {"status": "ok"})
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    with pytest.raises(CheckpointError) as excinfo:
        load_checkpoint(path, DIGEST)
    assert "\n" not in str(excinfo.value)
    assert "corrupted or truncated" in str(excinfo.value)


def test_checkpoint_error_is_a_serialization_error(tmp_path):
    """Callers that guard serialization failures catch checkpoints too."""
    assert issubclass(CheckpointError, SerializationError)


def test_wrong_kind_rejected(tmp_path):
    path = tmp_path / "other.json"
    path.write_text(json.dumps({"kind": "run-manifest", "units": {}}))
    with pytest.raises(CheckpointError, match="not a serve checkpoint"):
        load_checkpoint(path, DIGEST)


def test_wrong_version_rejected(tmp_path):
    path = tmp_path / "ck.json"
    Checkpointer(path, DIGEST).record("a", {"status": "ok"})
    doc = json.loads(path.read_text())
    doc["version"] = 99
    path.write_text(json.dumps(doc))
    with pytest.raises(CheckpointError, match="version"):
        load_checkpoint(path, DIGEST)


def test_digest_mismatch_refuses_resume(tmp_path):
    path = tmp_path / "ck.json"
    Checkpointer(path, DIGEST).record("a", {"status": "ok"})
    with pytest.raises(CheckpointError, match="digest mismatch"):
        load_checkpoint(path, "0" * 64)
    # without an expected digest the file still loads
    assert "a" in load_checkpoint(path)


def test_interval_validation():
    with pytest.raises(CheckpointError):
        Checkpointer(None, DIGEST, every=0)


class TestFaultPlanDigest:
    def test_embedded_and_validated(self, tmp_path):
        path = tmp_path / "ck.json"
        Checkpointer(path, DIGEST,
                     fault_plan_digest="f" * 64).record("a", {})
        assert json.loads(path.read_text())["fault_plan_digest"] == \
            "f" * 64
        assert "a" in load_checkpoint(path, DIGEST,
                                      expected_fault_digest="f" * 64)

    def test_mismatch_refuses_resume(self, tmp_path):
        path = tmp_path / "ck.json"
        Checkpointer(path, DIGEST,
                     fault_plan_digest="f" * 64).record("a", {})
        with pytest.raises(CheckpointError) as excinfo:
            load_checkpoint(path, DIGEST, expected_fault_digest="0" * 64)
        assert "\n" not in str(excinfo.value)
        assert "fault-plan" in str(excinfo.value)

    def test_none_vs_plan_mismatch_both_ways(self, tmp_path):
        path = tmp_path / "ck.json"
        Checkpointer(path, DIGEST).record("a", {})   # no plan attached
        assert "a" in load_checkpoint(path, DIGEST,
                                      expected_fault_digest=None)
        with pytest.raises(CheckpointError, match="fault-plan"):
            load_checkpoint(path, DIGEST, expected_fault_digest="f" * 64)

    def test_caller_who_does_not_ask_is_not_checked(self, tmp_path):
        path = tmp_path / "ck.json"
        Checkpointer(path, DIGEST,
                     fault_plan_digest="f" * 64).record("a", {})
        assert "a" in load_checkpoint(path, DIGEST)

    def test_runner_refuses_mismatched_plan(self, tmp_path):
        """End to end: a checkpoint whose recorded fault plan drifted
        from what the resuming policy generates is refused.  (A changed
        fault_seed already trips the matrix-digest guard; this guard
        catches the plan itself changing under an unchanged policy.)"""
        from repro.serving.jobs import JobRunner, JobSpec, ServePolicy

        path = tmp_path / "serve.ckpt.json"
        jobs = [JobSpec(id="0-run", kind="run", workloads=("Boot",))]

        class NoopRunner(JobRunner):
            def _execute_unit(self, job, unit, degraded):
                return {"unit": unit}

        policy = ServePolicy(fault_seed=1)
        NoopRunner(jobs, policy, checkpoint_path=path).run()
        document = json.loads(path.read_text())
        assert document["fault_plan_digest"] == policy.fault_plan_digest()
        document["fault_plan_digest"] = "0" * 64
        path.write_text(json.dumps(document))
        with pytest.raises(CheckpointError, match="fault-plan"):
            NoopRunner(jobs, policy, resume_path=path)
        # untampered, the same resume is accepted
        document["fault_plan_digest"] = policy.fault_plan_digest()
        path.write_text(json.dumps(document))
        NoopRunner(jobs, policy, resume_path=path)


class TestGenerations:
    def unit(self, n):
        return {"status": "ok", "n": n}

    def test_keep_prunes_oldest(self, tmp_path):
        path = tmp_path / "ck.json"
        ckpt = Checkpointer(path, DIGEST, keep=2)
        for n in range(5):
            ckpt.record(f"u{n}", self.unit(n))
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["ck.json", "ck.json.000004", "ck.json.000005"]
        # the latest pointer and the newest generation agree
        assert path.read_text() == (tmp_path / "ck.json.000005").read_text()

    def test_every_generation_is_loadable(self, tmp_path):
        path = tmp_path / "ck.json"
        ckpt = Checkpointer(path, DIGEST, keep=3)
        for n in range(3):
            ckpt.record(f"u{n}", self.unit(n))
        for generation in (1, 2, 3):
            units = load_checkpoint(f"{path}.{generation:06d}", DIGEST)
            assert len(units) == generation

    def test_no_keep_means_no_generations(self, tmp_path):
        path = tmp_path / "ck.json"
        Checkpointer(path, DIGEST).record("a", {"status": "ok"})
        assert [p.name for p in tmp_path.iterdir()] == ["ck.json"]

    def test_keep_validation(self):
        with pytest.raises(CheckpointError):
            Checkpointer(None, DIGEST, keep=0)

    def test_unrelated_suffixes_survive_pruning(self, tmp_path):
        path = tmp_path / "ck.json"
        (tmp_path / "ck.json.bak").write_text("{}")
        ckpt = Checkpointer(path, DIGEST, keep=1)
        ckpt.record("a", {"status": "ok"})
        ckpt.record("b", {"status": "ok"})
        assert (tmp_path / "ck.json.bak").exists()
        assert not (tmp_path / "ck.json.000001").exists()
        assert (tmp_path / "ck.json.000002").exists()


def test_checkpoint_writes_are_atomic(tmp_path, monkeypatch):
    """A kill mid-flush leaves the previous checkpoint readable."""
    from repro.obs import export

    path = tmp_path / "ck.json"
    ckpt = Checkpointer(path, DIGEST, every=1)
    ckpt.record("a", {"status": "ok"})
    before = path.read_bytes()

    class Killed(BaseException):
        pass

    def die(*_args, **_kwargs):
        raise Killed()

    monkeypatch.setattr(export.json, "dump", die)
    with pytest.raises(Killed):
        ckpt.record("b", {"status": "ok"})
    monkeypatch.undo()

    assert path.read_bytes() == before
    assert load_checkpoint(path, DIGEST) == {"a": {"status": "ok"}}
