"""The HEALTHY -> PIM_DEGRADED -> GPU_ONLY -> FAILED state machine."""

import pytest

from repro.errors import ParameterError
from repro.serving.health import DegradationState, HealthMonitor


def test_starts_healthy():
    health = HealthMonitor()
    assert health.state is DegradationState.HEALTHY
    assert not health.gpu_only
    assert not health.failed


def test_quarantine_thresholds_escalate_in_order():
    health = HealthMonitor(degraded_after=1, gpu_only_after=3)
    health.note_quarantine(4, 1.0)
    assert health.state is DegradationState.PIM_DEGRADED
    health.note_quarantine(9, 2.0)
    assert health.state is DegradationState.PIM_DEGRADED
    health.note_quarantine(12, 3.0)
    assert health.state is DegradationState.GPU_ONLY
    assert health.gpu_only


def test_states_never_go_backwards():
    health = HealthMonitor(degraded_after=1, gpu_only_after=2)
    health.note_quarantine(1, 0.0)
    health.note_quarantine(2, 1.0)
    assert health.state is DegradationState.GPU_ONLY
    assert not health.escalate(DegradationState.PIM_DEGRADED, 2.0, "no")
    assert health.state is DegradationState.GPU_ONLY


def test_gpu_breaker_open_is_terminal():
    health = HealthMonitor()
    health.note_breaker_open("gpu", 5.0)
    assert health.failed
    assert health.state is DegradationState.FAILED


def test_pim_breaker_open_degrades():
    health = HealthMonitor()
    health.note_breaker_open("pim", 5.0)
    assert health.state is DegradationState.PIM_DEGRADED


def test_fault_rate_limit_triggers_gpu_only():
    health = HealthMonitor(pim_fault_rate_limit=0.1, rate_window=10)
    for _ in range(10):
        health.note_pim_kernel()
    health.note_fault("pim", 1.0)
    assert health.state is DegradationState.HEALTHY  # 0.1 not > 0.1
    health.note_fault("pim", 1.1)
    assert health.state is DegradationState.GPU_ONLY


def test_fault_rate_needs_the_window():
    """Early faults in a short history must not trip the rate limit."""
    health = HealthMonitor(pim_fault_rate_limit=0.1, rate_window=50)
    health.note_pim_kernel()
    health.note_fault("pim", 0.0)   # rate 1.0, but only 1 kernel seen
    assert health.state is DegradationState.HEALTHY


def test_policy_exhausted_degrades_instead_of_aborting():
    health = HealthMonitor()
    health.note_policy_exhausted("moddown.ep", 2.0)
    assert health.gpu_only
    assert any("moddown.ep" in e["reason"] for e in health.events)


def test_events_record_every_transition():
    health = HealthMonitor(degraded_after=1, gpu_only_after=2)
    health.note_quarantine(3, 1.0)
    health.note_quarantine(7, 2.5)
    transitions = [(e["from"], e["to"]) for e in health.events]
    assert transitions == [("healthy", "pim-degraded"),
                           ("pim-degraded", "gpu-only")]
    assert [e["at_s"] for e in health.events] == [1.0, 2.5]


def test_summary_is_json_safe():
    import json
    health = HealthMonitor(degraded_after=1, gpu_only_after=2)
    health.note_pim_kernel()
    health.note_fault("pim", 0.5)
    health.note_fault("transfer", 0.6)
    health.note_quarantine(1, 1.0)
    doc = health.summary()
    assert json.loads(json.dumps(doc)) == doc
    assert doc["state"] == "pim-degraded"
    assert doc["pim_faults"] == 1
    assert doc["transfer_faults"] == 1
    assert doc["pim_fault_rate"] == 1.0


def test_validation():
    with pytest.raises(ParameterError):
        HealthMonitor(degraded_after=0)
    with pytest.raises(ParameterError):
        HealthMonitor(degraded_after=3, gpu_only_after=2)
    with pytest.raises(ParameterError):
        HealthMonitor(pim_fault_rate_limit=1.5)
